#!/usr/bin/env python3
"""Miniature rv64i assembler for the checked-in test programs.

The simulator's test suite needs a couple of tiny RISC-V binaries, but the
CI image carries no cross-toolchain — so this script *is* the toolchain:
a two-pass assembler covering exactly the subset of rv64i + M the test
programs use, emitting a minimal little-endian ELF64 (machine EM_RISCV,
one PT_LOAD segment at 0x10000).

Rebuild everything with:

    python3 testdata/riscv/rvasm.py

which reassembles every `.s` file in this directory into the `.elf` file
of the same stem. The `.elf` outputs are checked in so tests and CI never
run this script; it exists so a human can modify the programs.

Supported syntax: `label:` definitions, `name rd, rs1, rs2`-style operand
lists, decimal/hex immediates, `label` branch/jump targets, `imm(rs)`
memory operands, `#` comments, and the handful of pseudo-instructions the
programs use (li with a 12-bit immediate, mv, nop, j, ret, call).
"""

import re
import struct
import sys
from pathlib import Path

BASE = 0x10000

REGS = {f"x{i}": i for i in range(32)}
ABI = {
    "zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4,
    "t0": 5, "t1": 6, "t2": 7, "s0": 8, "fp": 8, "s1": 9,
    "a0": 10, "a1": 11, "a2": 12, "a3": 13, "a4": 14, "a5": 15,
    "a6": 16, "a7": 17, "s2": 18, "s3": 19, "s4": 20, "s5": 21,
    "s6": 22, "s7": 23, "s8": 24, "s9": 25, "s10": 26, "s11": 27,
    "t3": 28, "t4": 29, "t5": 30, "t6": 31,
}
REGS.update(ABI)


def reg(tok):
    tok = tok.strip()
    if tok not in REGS:
        raise ValueError(f"unknown register {tok!r}")
    return REGS[tok]


def imm_val(tok, labels):
    tok = tok.strip()
    if tok in labels:
        return labels[tok]
    return int(tok, 0)


def r_type(f7, rs2, rs1, f3, rd, op):
    return (f7 << 25) | (rs2 << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) | op


def i_type(imm, rs1, f3, rd, op):
    if not -2048 <= imm <= 2047:
        raise ValueError(f"I-immediate {imm} out of range")
    return ((imm & 0xFFF) << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) | op


def s_type(imm, rs2, rs1, f3, op):
    if not -2048 <= imm <= 2047:
        raise ValueError(f"S-immediate {imm} out of range")
    imm &= 0xFFF
    return ((imm >> 5) << 25) | (rs2 << 20) | (rs1 << 15) | (f3 << 12) | ((imm & 0x1F) << 7) | op


def b_type(off, rs2, rs1, f3):
    if off % 2 or not -4096 <= off <= 4094:
        raise ValueError(f"branch offset {off} invalid")
    u = off & 0x1FFF
    return (
        ((u >> 12) << 31) | (((u >> 5) & 0x3F) << 25) | (rs2 << 20) | (rs1 << 15)
        | (f3 << 12) | (((u >> 1) & 0xF) << 8) | (((u >> 11) & 1) << 7) | 0x63
    )


def u_type(imm, rd, op):
    return ((imm & 0xFFFFF) << 12) | (rd << 7) | op


def j_type(off, rd):
    if off % 2 or not -(1 << 20) <= off < (1 << 20):
        raise ValueError(f"jump offset {off} invalid")
    u = off & 0x1FFFFF
    return (
        ((u >> 20) << 31) | (((u >> 1) & 0x3FF) << 21) | (((u >> 11) & 1) << 20)
        | (((u >> 12) & 0xFF) << 12) | (rd << 7) | 0x6F
    )


OP_IMM = {"addi": 0, "slti": 2, "sltiu": 3, "xori": 4, "ori": 6, "andi": 7}
OP_REG = {
    "add": (0, 0), "sub": (0x20, 0), "sll": (0, 1), "slt": (0, 2), "sltu": (0, 3),
    "xor": (0, 4), "srl": (0, 5), "sra": (0x20, 5), "or": (0, 6), "and": (0, 7),
    "mul": (1, 0), "mulh": (1, 1), "div": (1, 4), "divu": (1, 5),
    "rem": (1, 6), "remu": (1, 7),
}
OP_REG_32 = {"addw": (0, 0), "subw": (0x20, 0), "mulw": (1, 0)}
BRANCH = {"beq": 0, "bne": 1, "blt": 4, "bge": 5, "bltu": 6, "bgeu": 7}
LOAD = {"lb": 0, "lh": 1, "lw": 2, "ld": 3, "lbu": 4, "lhu": 5, "lwu": 6}
STORE = {"sb": 0, "sh": 1, "sw": 2, "sd": 3}
SHIFT_IMM = {"slli": (0, 1), "srli": (0, 5), "srai": (0x10, 5)}


def mem_operand(tok):
    m = re.fullmatch(r"\s*(-?\w+)\s*\(\s*(\w+)\s*\)\s*", tok)
    if not m:
        raise ValueError(f"bad memory operand {tok!r}")
    return int(m.group(1), 0), reg(m.group(2))


def assemble_inst(mnem, ops, pc, labels):
    """Encodes one instruction; `labels` maps label -> absolute address."""
    if mnem in OP_IMM:
        return i_type(imm_val(ops[2], labels), reg(ops[1]), OP_IMM[mnem], reg(ops[0]), 0x13)
    if mnem == "addiw":
        return i_type(imm_val(ops[2], labels), reg(ops[1]), 0, reg(ops[0]), 0x1B)
    if mnem in SHIFT_IMM:
        f6, f3 = SHIFT_IMM[mnem]
        sh = imm_val(ops[2], labels)
        if not 0 <= sh <= 63:
            raise ValueError(f"shift amount {sh} out of range")
        # rv64i shift-immediate: funct6 in [31:26], 6-bit shamt in [25:20].
        return (f6 << 26) | (sh << 20) | (reg(ops[1]) << 15) | (f3 << 12) | (reg(ops[0]) << 7) | 0x13
    if mnem in OP_REG:
        f7, f3 = OP_REG[mnem]
        return r_type(f7, reg(ops[2]), reg(ops[1]), f3, reg(ops[0]), 0x33)
    if mnem in OP_REG_32:
        f7, f3 = OP_REG_32[mnem]
        return r_type(f7, reg(ops[2]), reg(ops[1]), f3, reg(ops[0]), 0x3B)
    if mnem in BRANCH:
        return b_type(imm_val(ops[2], labels) - pc, reg(ops[1]), reg(ops[0]), BRANCH[mnem])
    if mnem in LOAD:
        off, rs1 = mem_operand(ops[1])
        return i_type(off, rs1, LOAD[mnem], reg(ops[0]), 0x03)
    if mnem in STORE:
        off, rs1 = mem_operand(ops[1])
        return s_type(off, reg(ops[0]), rs1, STORE[mnem], 0x23)
    if mnem == "lui":
        return u_type(imm_val(ops[1], labels), reg(ops[0]), 0x37)
    if mnem == "auipc":
        return u_type(imm_val(ops[1], labels), reg(ops[0]), 0x17)
    if mnem == "jal":
        if len(ops) == 1:  # jal label  (rd = ra)
            return j_type(imm_val(ops[0], labels) - pc, 1)
        return j_type(imm_val(ops[1], labels) - pc, reg(ops[0]))
    if mnem == "jalr":
        if len(ops) == 1:  # jalr rs  (rd = ra, offset 0)
            return i_type(0, reg(ops[0]), 0, 1, 0x67)
        off, rs1 = mem_operand(ops[1])
        return i_type(off, rs1, 0, reg(ops[0]), 0x67)
    if mnem == "ecall":
        return 0x00000073
    if mnem == "ebreak":
        return 0x00100073
    # Pseudo-instructions.
    if mnem == "nop":
        return assemble_inst("addi", ["x0", "x0", "0"], pc, labels)
    if mnem == "li":
        return assemble_inst("addi", [ops[0], "x0", ops[1]], pc, labels)
    if mnem == "mv":
        return assemble_inst("addi", [ops[0], ops[1], "0"], pc, labels)
    if mnem == "j":
        return j_type(imm_val(ops[0], labels) - pc, 0)
    if mnem == "call":
        return j_type(imm_val(ops[0], labels) - pc, 1)
    if mnem == "ret":
        return i_type(0, 1, 0, 0, 0x67)  # jalr x0, 0(ra)
    raise ValueError(f"unsupported mnemonic {mnem!r}")


def parse_lines(text):
    """Yields (labels_defined_here, mnemonic, operands) per instruction."""
    pending = []
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        while line:
            m = re.match(r"(\w+)\s*:\s*(.*)", line)
            if m:
                pending.append(m.group(1))
                line = m.group(2).strip()
                continue
            break
        if not line:
            continue
        parts = line.split(None, 1)
        mnem = parts[0].lower()
        ops = [o.strip() for o in parts[1].split(",")] if len(parts) > 1 else []
        yield pending, mnem, ops
        pending = []
    if pending:
        yield pending, None, None


def assemble(text):
    insts = []
    labels = {}
    pc = BASE
    for labs, mnem, ops in parse_lines(text):
        for lab in labs:
            labels[lab] = pc
        if mnem is None:
            continue
        insts.append((pc, mnem, ops))
        pc += 4
    words = [assemble_inst(mnem, ops, pc, labels) for pc, mnem, ops in insts]
    return b"".join(struct.pack("<I", w) for w in words)


def wrap_elf64(code, bss=4096):
    """Wraps code bytes in a minimal ELF64: one RWX PT_LOAD at BASE."""
    ehsize, phentsize = 64, 56
    ident = b"\x7fELF" + bytes([2, 1, 1, 0]) + b"\x00" * 8
    ehdr = struct.pack(
        "<16sHHIQQQIHHHHHH",
        ident, 2, 243, 1, BASE, ehsize, 0, 0,
        ehsize, phentsize, 1, 0, 0, 0,
    )
    phdr = struct.pack(
        "<IIQQQQQQ",
        1, 7, ehsize + phentsize, BASE, BASE,
        len(code), len(code) + bss, 0x1000,
    )
    return ehdr + phdr + code


def main():
    here = Path(__file__).parent
    for src in sorted(here.glob("*.s")):
        out = src.with_suffix(".elf")
        code = assemble(src.read_text())
        out.write_bytes(wrap_elf64(code))
        print(f"{src.name}: {len(code)} code bytes -> {out.name}")


if __name__ == "__main__":
    sys.exit(main())

# loops.s — nested counted loops with an ALU/multiply body.
#
# Highly predictable branch behaviour (two counted loops) plus a steady
# diet of single-cycle ALU ops and one latency-8 multiply per inner
# iteration, so the issue queues see latency diversity. No memory traffic:
# this program isolates the front end and the integer pipeline.
#
# The final ecall restarts the program (the simulator models program exit
# as a jump back to the entry point), so the workload runs forever.

entry:  li    t0, 0            # outer counter
        li    t3, 6            # outer bound
outer:  li    t1, 0            # inner counter
        li    t4, 25           # inner bound
inner:  add   t2, t0, t1
        mul   t5, t2, t4       # latency-8 integer multiply
        xor   t6, t5, t1
        slli  t6, t6, 3
        srli  t6, t6, 2
        sub   t6, t6, t0
        addi  t1, t1, 1
        blt   t1, t4, inner    # taken 24/25 times
        addi  t0, t0, 1
        blt   t0, t3, outer    # taken 5/6 times
        ecall                  # exit -> restart at entry

# gcd.s — subtraction-based Euclid over a table of operand pairs.
#
# The inner gcd loop's branches are data-dependent (which operand is
# larger flips irregularly), so unlike loops.s this program gives the
# direction predictor real work. The outer loop walks four operand pairs
# loaded from a small table stored at 0x11800.
#
# Pure rv64i: the gcd is computed by repeated subtraction, no M ops.

main:   lui   s4, 0x11
        addi  s4, s4, 0x700    # s4 = 0x11700: table base
        li    t0, 1071         # write the operand table
        sd    t0, 0(s4)
        li    t0, 462
        sd    t0, 8(s4)
        li    t0, 1989
        sd    t0, 16(s4)
        li    t0, 867
        sd    t0, 24(s4)
        li    t0, 610
        sd    t0, 32(s4)
        li    t0, 987
        sd    t0, 40(s4)
        li    t0, 75
        sd    t0, 48(s4)
        li    t0, 2000
        sd    t0, 56(s4)
        li    s5, 0            # pair index
        li    s6, 4            # pair count
pair:   slli  t1, s5, 4        # 16 bytes per pair
        add   t1, t1, s4
        ld    s0, 0(t1)        # a
        ld    s1, 8(t1)        # b
gcd:    beq   s0, s1, done
        blt   s0, s1, swap
        sub   s0, s0, s1       # a > b: a -= b
        j     gcd
swap:   sub   s1, s1, s0       # b > a: b -= a
        j     gcd
done:   sd    s0, 64(s4)       # park the gcd next to the table
        addi  s5, s5, 1
        blt   s5, s6, pair
        ecall                  # exit -> restart at main

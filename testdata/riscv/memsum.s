# memsum.s — array fill + sum through real call/return structure.
#
# main calls fill() then sum() via jal/ret, so the RAS sees genuine
# Call/Return pairs; the loops stream 64-bit stores then loads over a
# 32-element array in the zero-initialized tail of the load segment.
# Exercises Load/Store timing, D-cache locality and return prediction.
#
# The array lives at 0x11000, inside the segment's zero-fill (the image
# is loaded at 0x10000 with a multi-KiB bss pad; see rvasm.py).

main:   lui   a0, 0x11         # a0 = 0x11000: array base
        li    a1, 32           # a1 = element count
        jal   ra, fill
        lui   a0, 0x11
        li    a1, 32
        jal   ra, sum
        ecall                  # exit -> restart at main

fill:   li    t0, 0
        mv    t1, a0
floop:  sd    t0, 0(t1)
        addi  t1, t1, 8
        addi  t0, t0, 1
        blt   t0, a1, floop
        ret

sum:    li    t0, 0
        li    a2, 0            # running sum
        mv    t1, a0
sloop:  ld    t2, 0(t1)
        add   a2, a2, t2
        addi  t1, t1, 8
        addi  t0, t0, 1
        blt   t0, a1, sloop
        ret

#!/usr/bin/env bash
# Kill-and-resume gate for the sweep journal.
#
# Runs a release-mode issue-policy sweep with `--journal`, SIGKILLs the
# process mid-flight (after at least one cell has been journaled, before
# the last one has), resumes the sweep from the same journal directory,
# and byte-compares the resumed JSON document against an uninterrupted
# reference run. This is the crash-consistency property the journal
# exists to provide: a killed sweep, resumed, produces output
# byte-identical to one that was never interrupted.
#
# Landing the kill inside the window is inherently racy, so the script
# retries up to KR_ATTEMPTS times; a run that finishes (or dies) outside
# the window is discarded, not failed. Only exhausting every attempt —
# or a byte mismatch after a clean mid-sweep kill — fails the gate.
#
# Tunables: KR_CYCLES (default 60000), KR_WARMUP (default 20000) size
# the per-cell work; KR_ATTEMPTS (default 5) bounds the kill retries.

set -euo pipefail
cd "$(dirname "$0")/.."

CYCLES="${KR_CYCLES:-60000}"
WARMUP="${KR_WARMUP:-20000}"
ATTEMPTS="${KR_ATTEMPTS:-5}"

# 2 fetch x 2 issue x 2 partitions x 2 mixes x 2 seeds = 32 cells.
ARGS=(--study issue --fetch rr,icount --issue oldest,spec_last
    --partition 2.2,2.8 --mixes standard,int8 --seeds 42,43
    --cycles "$CYCLES" --warmup "$WARMUP" --jobs 2)
TOTAL=32

cargo build --release -p smt-experiments --bin smt_exp
BIN=target/release/smt_exp

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

echo "kill-resume: reference run (uninterrupted, no journal)"
"$BIN" "${ARGS[@]}" --json "$work/ref.json" >/dev/null

journaled() {
    # Tolerates a not-yet-created directory under pipefail.
    { ls "$1"/cell-*.smtj 2>/dev/null || true; } | wc -l
}

for attempt in $(seq 1 "$ATTEMPTS"); do
    dir="$work/journal-$attempt"
    "$BIN" "${ARGS[@]}" --journal "$dir" --json "$work/first.json" \
        >/dev/null 2>&1 &
    pid=$!
    while kill -0 "$pid" 2>/dev/null; do
        n=$(journaled "$dir")
        if [ "$n" -gt 0 ] && [ "$n" -lt "$TOTAL" ]; then
            kill -KILL "$pid" 2>/dev/null || true
            break
        fi
        sleep 0.02
    done
    wait "$pid" 2>/dev/null || true
    n=$(journaled "$dir")
    if [ "$n" -gt 0 ] && [ "$n" -lt "$TOTAL" ]; then
        echo "kill-resume: attempt $attempt: SIGKILL landed with $n/$TOTAL cells journaled"
        "$BIN" "${ARGS[@]}" --journal "$dir" --json "$work/resumed.json" \
            | grep '^journal:' || true
        cmp "$work/ref.json" "$work/resumed.json"
        echo "kill-resume: PASS -- resumed document is byte-identical to the uninterrupted run"
        exit 0
    fi
    echo "kill-resume: attempt $attempt: $n/$TOTAL journaled at exit -- kill missed the window, retrying"
done

echo "kill-resume: FAIL -- no attempt landed a mid-sweep kill in $ATTEMPTS tries" >&2
exit 1

#!/usr/bin/env bash
# PGO build path for smt_bench.
#
#   scripts/pgo.sh record   instrument, train on the reference matrix, and
#                           write the committed profile pgo/smt_bench.profdata
#   scripts/pgo.sh build    build target/pgo/release/smt_bench against the
#                           committed profile (graceful no-op when absent)
#
# `record` needs llvm-profdata, but NOT one matching the Rust toolchain's
# LLVM: raw profiles are converted to the version-stable text format first
# (crates/pgo, `profraw2text`), which any llvm-profdata indexes, and the
# indexed format is backward-compatible for newer readers. That is the
# whole reason the converter exists — see the smt-pgo crate docs.
#
# `build` needs no LLVM tools at all (rustc reads the indexed profile
# directly), so CI only ever needs the committed .profdata.
#
# Tunables: PGO_TRAIN_CYCLES (default 120000) — simulated cycles per
# reference in the training run.

set -euo pipefail
cd "$(dirname "$0")/.."

PROFILE=pgo/smt_bench.profdata
TRAIN_CYCLES="${PGO_TRAIN_CYCLES:-120000}"

case "${1:-build}" in
record)
    command -v llvm-profdata >/dev/null 2>&1 || {
        echo "pgo: llvm-profdata not found -- needed (any version) to index the text profile" >&2
        exit 1
    }
    raw=$(mktemp -d)
    trap 'rm -rf "$raw"' EXIT
    echo "pgo: instrumented build (profile-generate, uncompressed names)"
    RUSTFLAGS="-Cprofile-generate=$raw -Cllvm-args=--enable-name-compression=false" \
        cargo build --release -p smt-bench --target-dir target/pgo-gen
    echo "pgo: training run (reference matrix, $TRAIN_CYCLES cycles per measurement)"
    LLVM_PROFILE_FILE="$raw/train-%m.profraw" \
        target/pgo-gen/release/smt_bench "$TRAIN_CYCLES"
    echo "pgo: converting raw profiles to text"
    cargo run --release -p smt-pgo --bin profraw2text -- "$raw"/*.profraw
    mkdir -p pgo
    llvm-profdata merge -o "$PROFILE" "$raw"/*.proftext
    echo "pgo: wrote $PROFILE ($(wc -c <"$PROFILE") bytes) -- commit it to pin the build"
    ;;
build)
    if [ ! -f "$PROFILE" ]; then
        echo "pgo: no committed profile at $PROFILE -- skipping PGO build (scripts/pgo.sh record)"
        exit 0
    fi
    echo "pgo: profile-use build against $PROFILE"
    RUSTFLAGS="-Cprofile-use=$PWD/$PROFILE" \
        cargo build --release -p smt-bench --target-dir target/pgo
    echo "pgo: built target/pgo/release/smt_bench"
    ;;
*)
    echo "usage: scripts/pgo.sh [record|build]" >&2
    exit 2
    ;;
esac

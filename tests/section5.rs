//! The paper's Section-5 qualitative result: once the front end feeds the
//! queues well, *issue* bandwidth is not the bottleneck — swapping the
//! issue policy (OLDEST_FIRST vs OPT_LAST / SPEC_LAST / BRANCH_FIRST)
//! moves total throughput far less than swapping the *fetch* policy does.
//!
//! The study runs the full issue-policy matrix behind a warmup window so
//! cold-start cache effects do not drown the small issue-policy deltas.

use smt_experiments::study::{run_study, StudyConfig, BASELINE_ISSUE, JSON_SCHEMA_VERSION};
use smt_stats::json::Json;

fn section5_config() -> StudyConfig {
    StudyConfig {
        // The full fetch set is the comparison axis the paper's Section-4
        // spread comes from; all four issue policies are under study.
        fetch_policies: vec![
            "rr".into(),
            "icount".into(),
            "brcount".into(),
            "misscount".into(),
        ],
        issue_policies: vec![
            "oldest".into(),
            "opt_last".into(),
            "spec_last".into(),
            "branch_first".into(),
        ],
        mixes: vec!["standard".into()],
        seeds: vec![42],
        cycles: 6_000,
        warmup: 3_000,
        ..StudyConfig::default()
    }
}

#[test]
fn issue_policy_moves_ipc_less_than_fetch_policy() {
    let cfg = section5_config();
    let study = run_study(&cfg).expect("valid study config");
    assert_eq!(study.cells.len(), cfg.cell_count());

    let issue_spread = study.issue_ipc_spread();
    let fetch_spread = study.fetch_ipc_spread();
    assert!(
        issue_spread < fetch_spread,
        "Section-5 ordering violated: issue-policy spread {issue_spread:.3} IPC \
         >= fetch-policy spread {fetch_spread:.3} IPC\n{}",
        study.summary_table(),
    );

    // Every cell ran the warmed-up window and made real progress.
    for c in &study.cells {
        assert_eq!(c.report.cycles, cfg.cycles);
        assert_eq!(c.report.warmup_cycles, cfg.warmup);
        assert!(c.report.total_ipc() > 0.5, "cell collapsed: {}", c.report);
    }
}

#[test]
fn study_json_document_is_valid_and_versioned() {
    let study = run_study(&StudyConfig {
        fetch_policies: vec!["rr".into(), "icount".into()],
        issue_policies: vec!["oldest".into(), "opt_last".into()],
        mixes: vec!["mixed4".into()],
        seeds: vec![42],
        cycles: 1_000,
        warmup: 500,
        ..StudyConfig::default()
    })
    .expect("valid study config");

    let text = study.to_json().render_pretty();
    let doc = Json::parse(&text).expect("emitted JSON must parse");
    assert_eq!(
        doc.get("schema_version").and_then(Json::as_u64),
        Some(JSON_SCHEMA_VERSION)
    );
    assert_eq!(
        doc.get("kind").and_then(Json::as_str),
        Some("smt-exp-study")
    );

    let cells = doc.get("cells").and_then(Json::as_array).expect("cells");
    assert_eq!(cells.len(), study.cells.len());
    for cell in cells {
        assert!(cell.get("total_ipc").and_then(Json::as_f64).is_some());
        let report = cell.get("report").expect("embedded SimReport");
        assert!(report.get("scheme").and_then(Json::as_str).is_some());
        assert!(report
            .get("fetch")
            .and_then(|f| f.get("fetched"))
            .and_then(Json::as_u64)
            .is_some());
    }
    let summary = doc.get("summary").expect("summary");
    assert_eq!(
        summary.get("baseline_issue").and_then(Json::as_str),
        Some(BASELINE_ISSUE)
    );
    // OLDEST_FIRST cells carry an exactly-zero delta in the document.
    let zero_deltas = cells
        .iter()
        .filter(|c| c.get("issue").and_then(Json::as_str) == Some(BASELINE_ISSUE))
        .all(|c| c.get("delta_vs_oldest").and_then(Json::as_f64) == Some(0.0));
    assert!(zero_deltas, "baseline cells must report delta 0.0");
}

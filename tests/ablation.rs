//! The ablation study's two headline attributions, asserted as tests
//! (ROADMAP: the 2% wrong-path claim and the ICOUNT-vs-RR gap
//! decomposition), plus reset-stats coverage across the ablation matrix.
//!
//! All numbers here are deterministic (fixed seeds), so the bounds are
//! calibrated against the measured values of this exact configuration —
//! see ROADMAP.md "Findings" for the full-scale (20k-cycle, multi-mix)
//! numbers:
//!
//! * Exempting wrong-path fetches from I-cache bank arbitration moves
//!   standard-mix warm IPC by a small bounded amount (~+2.5% here,
//!   +1.5% at full scale) — the paper's ~2% wrong-path overhead claim
//!   reproduces.
//! * `infinite_frontend_queues` collapses the ICOUNT-vs-RR gap in both
//!   windows (warm gap +0.19 → −0.41 here): the gap **is** ICOUNT's
//!   IQ-clog avoidance, visible as RR losing more fetch slots to
//!   `lost_frontend_full` than ICOUNT.
//! * `perfect_icache` does **not** collapse the cold gap (it widens it:
//!   more fetch opportunities amplify the policy choice), refuting the
//!   hypothesis that the cold-window gap is cold-start I-cache
//!   behaviour.

use std::sync::OnceLock;

use smt::{Ablation, Ablations, SimConfig};
use smt_experiments::ablation::{
    run_ablation_study, AblationStudy, AblationStudyConfig, Window, PAPER_WRONG_PATH_CLAIM_PCT,
};
use smt_experiments::study::{mix_by_name, JSON_SCHEMA_VERSION};
use smt_stats::json::Json;

const CYCLES: u64 = 6_000;
const WARMUP: u64 = 5_000;

/// The study every assertion reads, run once (cells are independent
/// simulations; the whole sweep is deterministic).
fn study() -> &'static AblationStudy {
    static STUDY: OnceLock<AblationStudy> = OnceLock::new();
    STUDY.get_or_init(|| {
        run_ablation_study(&AblationStudyConfig {
            fetch_policies: vec!["rr".into(), "icount".into()],
            mixes: vec!["standard".into()],
            seeds: vec![42, 1337],
            cycles: CYCLES,
            warmup: WARMUP,
            ..AblationStudyConfig::default()
        })
        .expect("valid study config")
    })
}

#[test]
fn wrong_path_bank_arbitration_costs_a_bounded_small_amount() {
    // The paper claims wrong-path fetching costs ~2% of throughput; the
    // exemption ablation removes exactly the bank/port-contention part of
    // it, so the relative IPC delta must be a small positive number — not
    // zero-noise, not a double-digit effect.
    let pct = study()
        .wrong_path_claim()
        .expect("standard-mix warm cells present");
    assert!(
        pct > 0.0 && pct < 3.0 * PAPER_WRONG_PATH_CLAIM_PCT,
        "wrong-path bank-arbitration cost should be a small positive effect \
         near the paper's ~{PAPER_WRONG_PATH_CLAIM_PCT}% claim, measured {pct:+.3}%"
    );
}

#[test]
fn infinite_frontend_queues_collapse_the_icount_vs_rr_gap() {
    let s = study();
    let base_cold = s.gap("ICOUNT", "RR", None, Window::Cold).unwrap();
    let base_warm = s.gap("ICOUNT", "RR", None, Window::Warm).unwrap();
    let inf = Ablation::InfiniteFrontendQueues.name();
    let inf_cold = s.gap("ICOUNT", "RR", Some(inf), Window::Cold).unwrap();
    let inf_warm = s.gap("ICOUNT", "RR", Some(inf), Window::Warm).unwrap();

    // ICOUNT wins the baseline comparison in both windows …
    assert!(
        base_cold > 0.1 && base_warm > 0.1,
        "baseline ICOUNT advantage missing: cold {base_cold:+.3}, warm {base_warm:+.3}"
    );
    // … and unbounded queues erase most of that advantage: the gap IS
    // queue clog, which ICOUNT's feedback avoids.
    assert!(
        inf_cold < 0.5 * base_cold && inf_warm < 0.5 * base_warm,
        "infinite queues must collapse the gap: cold {base_cold:+.3} -> {inf_cold:+.3}, \
         warm {base_warm:+.3} -> {inf_warm:+.3}"
    );

    // The mechanism is visible in the loss buckets: on the baseline warm
    // window RR loses more fetch slots to full front-ends/queues than
    // ICOUNT does, and the ablation removes that bucket entirely.
    let warm_lost = |fetch: &str, ablation: Option<&str>| -> u64 {
        let cells: Vec<_> = s
            .cells
            .iter()
            .filter(|c| {
                c.window == Window::Warm && c.fetch == fetch && c.ablation.as_deref() == ablation
            })
            .collect();
        assert!(!cells.is_empty());
        cells
            .iter()
            .map(|c| c.report.fetch.lost_frontend_full)
            .sum()
    };
    assert!(
        warm_lost("RR", None) > warm_lost("ICOUNT", None),
        "RR must clog the queues more than ICOUNT: {} vs {}",
        warm_lost("RR", None),
        warm_lost("ICOUNT", None)
    );
    assert_eq!(warm_lost("RR", Some(inf)), 0);
    assert_eq!(warm_lost("ICOUNT", Some(inf)), 0);
}

#[test]
fn perfect_icache_does_not_explain_the_cold_gap() {
    // The competing hypothesis — the cold-window ICOUNT advantage is
    // cold-start I-cache behaviour — is refuted: with a perfect I-cache
    // the cold gap does not collapse (it widens, because an unblocked
    // fetch unit gives the policy more decisions to differ on).
    let s = study();
    let base_cold = s.gap("ICOUNT", "RR", None, Window::Cold).unwrap();
    let pi = Ablation::PerfectICache.name();
    let pi_cold = s.gap("ICOUNT", "RR", Some(pi), Window::Cold).unwrap();
    assert!(
        pi_cold > 0.5 * base_cold,
        "a perfect I-cache must not collapse the cold gap \
         (cold {base_cold:+.3} -> {pi_cold:+.3}); the gap is queue clog, not I-cache"
    );
    // And the ablation really removed the I-cache terms.
    for c in s.cells.iter().filter(|c| c.ablation.as_deref() == Some(pi)) {
        assert_eq!(c.report.mem.icache.misses, 0, "perfect I-cache misses");
        assert_eq!(c.report.fetch.lost_icache, 0);
        assert_eq!(c.report.fetch.lost_bank_conflict, 0);
    }
}

#[test]
fn perfect_branch_prediction_removes_all_speculation_cost() {
    let s = study();
    let pbp = Ablation::PerfectBranchPrediction.name();
    for c in s
        .cells
        .iter()
        .filter(|c| c.ablation.as_deref() == Some(pbp))
    {
        let r = &c.report;
        assert_eq!(r.fetch.wrong_path, 0, "no wrong-path fetch: {r}");
        assert_eq!(r.fetch.misfetches, 0, "no misfetches: {r}");
        assert_eq!(r.squashes, 0, "no squashes: {r}");
        assert_eq!(r.fetch.wrong_path_fetch_conflicts, 0);
        assert_eq!(r.pred.predictions, 0, "predictor never consulted: {r}");
        assert!(r.cond_prediction.total > 0);
        assert_eq!(r.cond_prediction.percent(), 100.0);
    }
}

#[test]
fn ablation_document_meets_the_acceptance_schema() {
    // `smt_exp --study ablation --json` writes exactly this document:
    // schema_version 4 (v4 added the always-present failed_cells and
    // degraded_cells fault records), quantifying (a) the wrong-path IPC
    // delta against the paper's 2% claim and (b) the gap decomposition.
    let doc = study().to_json();
    let back = Json::parse(&doc.render_pretty()).expect("document parses");
    assert_eq!(back.get("schema_version").and_then(Json::as_u64), Some(4));
    assert_eq!(JSON_SCHEMA_VERSION, 4);
    // A clean run still carries the (empty) fault records.
    for key in ["failed_cells", "degraded_cells"] {
        let list = back.get(key).and_then(Json::as_array);
        assert_eq!(
            list.map(|l| l.len()),
            Some(0),
            "{key} must be present+empty"
        );
    }
    assert_eq!(back.get("study").and_then(Json::as_str), Some("ablation"));
    let summary = back.get("summary").expect("summary present");
    let claim = summary.get("wrong_path_claim").unwrap();
    assert_eq!(
        claim.get("paper_claim_pct").and_then(Json::as_f64),
        Some(PAPER_WRONG_PATH_CLAIM_PCT)
    );
    assert!(claim
        .get("measured_delta_pct")
        .and_then(Json::as_f64)
        .is_some());
    let gaps = summary.get("gap_decomposition").unwrap();
    for key in [
        "cold_gap_baseline",
        "warm_gap_baseline",
        "cold_gap_perfect_icache",
        "warm_gap_infinite_frontend_queues",
    ] {
        assert!(
            gaps.get(key).and_then(Json::as_f64).is_some(),
            "gap_decomposition.{key} missing"
        );
    }
    // Ablated cells carry loss shifts and self-describing reports.
    let cells = back.get("cells").and_then(Json::as_array).unwrap();
    assert!(cells.iter().any(|c| {
        c.get("ablation").and_then(Json::as_str) == Some("infinite_frontend_queues")
            && c.get("loss_shift")
                .and_then(|s| s.get("lost_frontend_full"))
                .and_then(Json::as_f64)
                .is_some_and(|d| d < 0.0)
    }));
}

/// Warm (reset-stats) measurement under an active ablation set must leave
/// architectural state exactly as an uninterrupted run of the same
/// ablated machine: `reset_stats` only re-bases counters, for every point
/// of the ablation matrix (each single ablation, and all at once).
#[test]
fn reset_stats_preserves_state_under_every_ablation() {
    const WARM: u64 = 800;
    const MEASURE: u64 = 1_500;
    let mut matrix: Vec<Ablations> = Ablation::ALL.into_iter().map(Ablations::only).collect();
    matrix.push(Ablations::all());
    for ablations in matrix {
        let config = || {
            SimConfig::new()
                .with_benchmarks(mix_by_name("mixed4").unwrap(), 42)
                .with_ablations(ablations)
        };
        let mut cold = config().build();
        let cold_report = cold.run(WARM + MEASURE);
        let mut warm = config().with_warmup(WARM).build();
        let warm_report = warm.run(MEASURE);
        assert_eq!(
            cold.lifetime_committed(),
            warm.lifetime_committed(),
            "reset_stats disturbed architectural state under {ablations}"
        );
        assert_eq!(cold_report.total_committed(), cold.lifetime_committed());
        assert_eq!(warm_report.warmup_cycles, WARM);
        assert_eq!(warm_report.cycles, MEASURE);
        assert!(
            warm_report.total_committed() < warm.lifetime_committed(),
            "warm window must exclude warmup commits under {ablations}"
        );
    }
}

//! Acceptance test for the policy extension point: a brand-new fetch policy
//! and a brand-new issue policy are registered purely through the public
//! `SimConfig` API — no `smt-core` internals are touched or re-implemented.

use smt::{Benchmark, FetchPolicy, IssueCandidate, IssuePolicy, SimConfig, ThreadFetchView};

/// A deliberately odd custom policy: always prefer the *highest*-numbered
/// fetchable thread. (Nobody should ship this; it proves the trait is the
/// only thing a policy needs.)
struct HighestThreadFirst;

impl FetchPolicy for HighestThreadFirst {
    fn name(&self) -> &str {
        "HIGHEST_THREAD_FIRST"
    }

    fn priority(&self, _cycle: u64, view: &ThreadFetchView) -> i64 {
        -i64::from(view.thread.0)
    }
}

/// A custom issue policy: youngest first (again: intentionally unwise).
struct YoungestFirst;

impl IssuePolicy for YoungestFirst {
    fn name(&self) -> &str {
        "YOUNGEST_FIRST"
    }

    fn priority(&self, c: &IssueCandidate) -> i64 {
        -(c.age as i64)
    }
}

fn mix() -> Vec<Benchmark> {
    vec![
        Benchmark::Espresso,
        Benchmark::Eqntott,
        Benchmark::Alvinn,
        Benchmark::Tomcatv,
    ]
}

#[test]
fn custom_fetch_policy_plugs_in_through_the_public_api() {
    let report = SimConfig::new()
        .with_benchmarks(mix(), 7)
        .with_fetch(Box::new(HighestThreadFirst))
        .build()
        .run(3_000);
    assert_eq!(report.fetch_policy, "HIGHEST_THREAD_FIRST");
    assert!(
        report.total_committed() > 0,
        "custom policy must still make progress"
    );
    // The policy's bias must be visible: the highest-numbered thread gets
    // at least as much fetch priority as the lowest, so it commits work.
    assert!(report.threads.last().unwrap().committed > 0);
}

#[test]
fn custom_issue_policy_plugs_in_through_the_public_api() {
    let report = SimConfig::new()
        .with_benchmarks(mix(), 7)
        .with_issue(Box::new(YoungestFirst))
        .build()
        .run(3_000);
    assert_eq!(report.issue_policy, "YOUNGEST_FIRST");
    assert!(report.total_committed() > 0);
}

#[test]
fn custom_policies_change_behaviour_but_preserve_correctness() {
    let run = |cfg: SimConfig| cfg.with_benchmarks(mix(), 7).build().run(3_000);
    let default = run(SimConfig::new());
    let custom = run(SimConfig::new().with_fetch(Box::new(HighestThreadFirst)));
    // Same workload, same seed: committed work may differ, but both are
    // correct simulations with non-trivial throughput.
    assert!(default.total_ipc() > 0.3);
    assert!(custom.total_ipc() > 0.3);
}

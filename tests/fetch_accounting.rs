//! Property test for the fetch slot-accounting invariant: for every
//! partition scheme whose `T × I` covers the 8-wide fetch bandwidth,
//!
//! ```text
//! fetched + wrong_path + Σ lost_* == 8 × cycles
//! ```
//!
//! holds exactly — across every shipped partition × workload mix × seed,
//! in cold and warm windows, and under every ablation set. This promotes
//! what used to be two ad-hoc single-configuration assertions into the
//! invariant the proportional loss-attribution scheme is required to
//! maintain.

use smt::{Ablation, Ablations, FetchPartition, SimConfig, SimReport};
use smt_experiments::study::{mix_by_name, STUDY_MIXES};

fn assert_slots_balance(r: &SimReport, label: &str) {
    let lost = r.fetch.lost_icache
        + r.fetch.lost_bank_conflict
        + r.fetch.lost_fragmentation
        + r.fetch.lost_frontend_full
        + r.fetch.lost_no_thread;
    assert_eq!(
        r.fetch.fetched + r.fetch.wrong_path + lost,
        u64::from(FetchPartition::TOTAL_WIDTH) * r.cycles,
        "fetch slots not fully accounted for [{label}]: {r}"
    );
}

#[test]
fn slot_accounting_balances_across_partitions_mixes_and_seeds() {
    const CYCLES: u64 = 1_000;
    for partition in FetchPartition::all_schemes() {
        for mix in STUDY_MIXES {
            for seed in [42, 1337] {
                let r = SimConfig::new()
                    .with_benchmarks(mix_by_name(mix).unwrap(), seed)
                    .with_partition(partition)
                    .build()
                    .run(CYCLES);
                assert_slots_balance(&r, &format!("{partition}/{mix}/{seed}/cold"));
            }
        }
    }
}

#[test]
fn slot_accounting_balances_in_warm_windows() {
    // The invariant must hold over a measurement window opened by
    // `reset_stats` mid-flight (in-flight fetch state at the reset point
    // must not leak slots in or out of the window).
    for partition in FetchPartition::all_schemes() {
        for mix in STUDY_MIXES {
            let r = SimConfig::new()
                .with_benchmarks(mix_by_name(mix).unwrap(), 42)
                .with_partition(partition)
                .with_warmup(700)
                .build()
                .run(900);
            assert_slots_balance(&r, &format!("{partition}/{mix}/warm"));
        }
    }
}

#[test]
fn slot_accounting_balances_under_every_ablation() {
    let mut matrix: Vec<Ablations> = Ablation::ALL.into_iter().map(Ablations::only).collect();
    matrix.push(Ablations::all());
    for ablations in matrix {
        for (mix, seed) in [("standard", 42), ("int8", 1337)] {
            let r = SimConfig::new()
                .with_benchmarks(mix_by_name(mix).unwrap(), seed)
                .with_ablations(ablations)
                .with_warmup(500)
                .build()
                .run(1_000);
            assert_slots_balance(&r, &format!("{ablations}/{mix}/{seed}"));
        }
    }
}

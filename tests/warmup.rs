//! Warmup-window coverage on the standard 8-thread mix: a measurement
//! window that opens after the caches and predictor have warmed up must not
//! report worse throughput than the same window measured from a cold start
//! (cold-start compulsory misses depress early IPC — the effect the warmup
//! plumbing exists to exclude).

use smt::{standard_mix, SimConfig};

const WARMUP: u64 = 10_000;
const MEASURE: u64 = 10_000;
const SEED: u64 = 42;

#[test]
fn warmed_up_ipc_not_below_cold_ipc_on_standard_mix() {
    let cold = SimConfig::new()
        .with_benchmarks(standard_mix(), SEED)
        .build()
        .run(MEASURE);
    let warm = SimConfig::new()
        .with_benchmarks(standard_mix(), SEED)
        .with_warmup(WARMUP)
        .build()
        .run(MEASURE);

    assert_eq!(cold.warmup_cycles, 0);
    assert_eq!(warm.warmup_cycles, WARMUP);
    assert_eq!(cold.cycles, MEASURE);
    assert_eq!(warm.cycles, MEASURE);
    assert!(
        warm.total_ipc() >= cold.total_ipc(),
        "warmed-up window slower than cold start: warm {:.3} IPC vs cold {:.3} IPC\n\n{warm}\n\n{cold}",
        warm.total_ipc(),
        cold.total_ipc(),
    );
    // The warm window must also see a lower I-cache miss rate than the cold
    // window — that is the mechanism behind the IPC ordering.
    assert!(
        warm.mem.icache.miss_rate() <= cold.mem.icache.miss_rate(),
        "warm I$ miss rate {:.2}% vs cold {:.2}%",
        warm.mem.icache.miss_rate(),
        cold.mem.icache.miss_rate(),
    );
}

//! Fleet differential-equivalence tests: batched execution through
//! [`SimFleet`] must be **result-neutral by construction**, and these
//! tests prove it three ways over the golden matrix (standard/int8/fp8 ×
//! seeds 42/1337):
//!
//! 1. against N independent sequential `Simulator` runs, byte-for-byte on
//!    `SimReport::to_json()`,
//! 2. against the checked-in `tests/golden/` files themselves — the same
//!    bytes every pre-fleet PR pinned, so the fleet is anchored to the
//!    full historical trajectory, not just to today's simulator,
//! 3. for checkpoint-seeded fleets, against the sequential fork sequence
//!    the experiment sweeps use (restore → mark → reset → run).
//!
//! The interleaving knobs (worker count, cycle-batch granularity) are
//! swept too: none of them may leak into any report.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use smt::{FleetCell, SimConfig, SimFleet};
use smt_core::FetchPartition;
use smt_experiments::study::mix_by_name;
use smt_experiments::warmup::{canonical_config, compute_checkpoint, fork_cell};

/// The golden matrix (kept in lockstep with `tests/golden.rs`).
const MIXES: [&str; 3] = ["standard", "int8", "fp8"];
const SEEDS: [u64; 2] = [42, 1337];
const CYCLES: u64 = 3_000;
const WARMUP: u64 = 1_000;

fn golden_config(mix: &str, seed: u64) -> SimConfig {
    let benchmarks = mix_by_name(mix).expect("golden mixes are predefined");
    SimConfig::new()
        .with_benchmarks(benchmarks, seed)
        .with_warmup(WARMUP)
}

fn golden_text(mix: &str, seed: u64) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(format!("{mix}_seed{seed}.json"));
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()))
}

/// The tentpole differential: one fleet over the full golden matrix,
/// byte-identical to both fresh sequential runs and the checked-in
/// goldens, across worker counts and batch granularities.
#[test]
fn fleet_matches_sequential_runs_and_checked_in_goldens() {
    let sequential: Vec<String> = MIXES
        .iter()
        .flat_map(|mix| SEEDS.iter().map(move |&seed| (mix, seed)))
        .map(|(mix, seed)| {
            golden_config(mix, seed)
                .build()
                .run(CYCLES)
                .to_json()
                .render_pretty()
        })
        .collect();

    for (jobs, batch_cycles) in [(1, 1024), (2, 1024), (6, 256), (3, 999)] {
        let mut fleet = SimFleet::new()
            .with_jobs(jobs)
            .with_batch_cycles(batch_cycles);
        for mix in MIXES {
            for seed in SEEDS {
                fleet.push(FleetCell::cold(golden_config(mix, seed), CYCLES));
            }
        }
        let reports = fleet.run();
        assert_eq!(reports.len(), sequential.len());

        let mut i = 0;
        for mix in MIXES {
            for seed in SEEDS {
                let text = reports[i].to_json().render_pretty();
                assert_eq!(
                    text, sequential[i],
                    "fleet cell diverged from its sequential run for mix={mix} \
                     seed={seed} (jobs={jobs}, batch_cycles={batch_cycles})"
                );
                assert_eq!(
                    text,
                    golden_text(mix, seed),
                    "fleet cell diverged from the checked-in golden for mix={mix} \
                     seed={seed} (jobs={jobs}, batch_cycles={batch_cycles})"
                );
                i += 1;
            }
        }
    }
}

/// Checkpoint-seeded fleets: every cell forked off a shared warmed
/// checkpoint must be byte-identical to the sequential `fork_cell`
/// sequence the experiment sweeps use — including the provenance flag.
#[test]
fn checkpoint_seeded_fleet_matches_sequential_forks() {
    let partition = FetchPartition::new(2, 8);
    let programs = |mix: &str, seed: u64| -> Vec<Arc<smt_workload::Program>> {
        mix_by_name(mix)
            .expect("golden mixes are predefined")
            .iter()
            .enumerate()
            .map(|(slot, b)| Arc::new(b.generate(seed, slot as u32)))
            .collect()
    };

    // One warm checkpoint per (mix, seed) key; both fetch policies fork it.
    let keys: Vec<(&str, u64)> = MIXES
        .iter()
        .flat_map(|&mix| SEEDS.iter().map(move |&seed| (mix, seed)))
        .collect();
    let fetches = ["icount", "rr"];

    let mut fleet = SimFleet::new().with_jobs(4).with_batch_cycles(500);
    let mut sequential = Vec::new();
    for &(mix, seed) in &keys {
        let images = smt_experiments::study::MixImages::Programs(programs(mix, seed));
        let ckpt = Arc::new(compute_checkpoint(&images, seed, partition, 400));
        for fetch in fetches {
            let cfg = || {
                canonical_config(programs(mix, seed), seed, partition)
                    .with_fetch(smt_core::fetch_policy_by_name(fetch).expect("shipped policy"))
            };
            sequential.push(fork_cell(cfg(), &ckpt, 700).to_json().render_pretty());
            fleet.push(FleetCell::forked(cfg(), ckpt.clone(), 700));
        }
    }

    let reports = fleet.run();
    assert_eq!(reports.len(), sequential.len());
    for (i, (report, expect)) in reports.iter().zip(&sequential).enumerate() {
        assert!(report.restored_from_checkpoint, "cell {i} lost provenance");
        assert_eq!(
            &report.to_json().render_pretty(),
            expect,
            "forked fleet cell {i} diverged from the sequential fork"
        );
    }
}

//! Property test for the block-granular front end: the fetch-block chunk
//! size (`SimConfig::fetch_block_chunk`, the number of instructions per
//! slab free-list transaction) is a pure implementation granularity.
//! Forcing chunk size 1 — which reproduces the old one-instruction-at-a-
//! time allocation loop exactly — must yield a bit-identical
//! `SimReport` JSON to the default 8-wide block path, across every
//! partition scheme × workload mix × seed. Intra-block producer→consumer
//! dependencies (renamed through the block-local scratch map) are covered
//! by construction: every mix dispatches dependent instructions fetched
//! in the same block every few cycles.

use smt::{FetchPartition, SimConfig, SimReport};
use smt_experiments::study::{mix_by_name, STUDY_MIXES};

fn run_with_chunk(
    partition: FetchPartition,
    mix: &str,
    seed: u64,
    chunk: usize,
    cycles: u64,
) -> SimReport {
    let mut cfg = SimConfig::new()
        .with_benchmarks(mix_by_name(mix).unwrap(), seed)
        .with_partition(partition);
    cfg.fetch_block_chunk = chunk;
    cfg.build().run(cycles)
}

#[test]
fn block_and_instruction_granular_paths_are_bit_identical() {
    const CYCLES: u64 = 800;
    for partition in FetchPartition::all_schemes() {
        for mix in STUDY_MIXES {
            for seed in [42, 1337] {
                let block = run_with_chunk(partition, mix, seed, 8, CYCLES);
                let single = run_with_chunk(partition, mix, seed, 1, CYCLES);
                assert_eq!(
                    block.to_json().render_pretty(),
                    single.to_json().render_pretty(),
                    "chunked and per-instruction fetch diverged \
                     [{partition}/{mix}/{seed}]"
                );
            }
        }
    }
}

#[test]
fn every_chunk_size_matches_the_default() {
    // Not just 1 vs 8: any chunk size (including ones larger than the
    // fetch width, where the final commit settles a partial chunk) must
    // be invisible in the results.
    let icount_2_8 = FetchPartition::new(2, 8);
    let reference = run_with_chunk(icount_2_8, STUDY_MIXES[0], 7, 8, 600);
    for chunk in [1, 2, 3, 5, 13] {
        let r = run_with_chunk(icount_2_8, STUDY_MIXES[0], 7, chunk, 600);
        assert_eq!(
            reference.to_json().render_pretty(),
            r.to_json().render_pretty(),
            "chunk size {chunk} is observable"
        );
    }
}

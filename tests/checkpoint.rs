//! End-to-end checkpoint determinism: a simulator restored from a
//! checkpoint must be bit-equivalent to the one that wrote it — running
//! both yields byte-for-byte identical `SimReport` JSON — across workload
//! mixes × seeds × partitions × a non-empty ablation set, with the
//! checkpoint taken at odd mid-run cycles (instructions in every pipeline
//! stage, misses outstanding). The warmup-sharing layer in
//! `smt-experiments` is built entirely on this property.

use smt::{Ablation, FetchPartition, SimConfig, Simulator};
use smt_experiments::study::mix_by_name;

fn config(
    mix: &str,
    seed: u64,
    partition: FetchPartition,
    ablation: Option<Ablation>,
) -> SimConfig {
    let mut cfg = SimConfig::new()
        .with_benchmarks(mix_by_name(mix).expect("known mix"), seed)
        .with_partition(partition);
    if let Some(a) = ablation {
        cfg = cfg.with_ablation(a);
    }
    cfg
}

fn checkpoint_of(sim: &Simulator) -> Vec<u8> {
    let mut bytes = Vec::new();
    sim.save_checkpoint(&mut bytes).expect("vec write");
    bytes
}

#[test]
fn restore_matches_straight_through_across_the_matrix() {
    // Every axis the studies sweep, with a non-empty ablation in most
    // cells; 771 is a deliberately odd checkpoint cycle.
    let cases: [(&str, u64, FetchPartition, Option<Ablation>); 4] = [
        ("mixed4", 42, FetchPartition::new(2, 8), None),
        (
            "int8",
            1337,
            FetchPartition::new(2, 2),
            Some(Ablation::PerfectICache),
        ),
        (
            "fp8",
            7,
            FetchPartition::new(4, 4),
            Some(Ablation::ExemptWrongPathFromBankArbitration),
        ),
        (
            "standard",
            42,
            FetchPartition::new(2, 8),
            Some(Ablation::InfiniteFrontendQueues),
        ),
    ];
    for (mix, seed, partition, ablation) in cases {
        let mut sim = config(mix, seed, partition, ablation).build();
        for _ in 0..771 {
            sim.step_cycle();
        }
        let bytes = checkpoint_of(&sim);
        let mut restored =
            Simulator::restore_checkpoint(config(mix, seed, partition, ablation), &mut &bytes[..])
                .expect("restore must succeed");
        let a = sim.run(900).to_json().render();
        let b = restored.run(900).to_json().render();
        assert_eq!(
            a, b,
            "restored run diverged from straight-through for \
             {mix}/seed {seed}/{partition}/{ablation:?}"
        );
    }
}

#[test]
fn restore_preserves_an_open_measurement_window() {
    // A checkpoint taken mid-measurement-window (statistics re-based at a
    // non-zero cycle, then advanced) must restore the open window too.
    let partition = FetchPartition::new(2, 8);
    let mut sim = config("mixed4", 42, partition, None).build();
    for _ in 0..500 {
        sim.step_cycle();
    }
    sim.reset_stats();
    for _ in 0..333 {
        sim.step_cycle();
    }
    let bytes = checkpoint_of(&sim);
    let mut restored =
        Simulator::restore_checkpoint(config("mixed4", 42, partition, None), &mut &bytes[..])
            .expect("restore must succeed");
    let a = sim.run(400).to_json().render();
    let b = restored.run(400).to_json().render();
    assert_eq!(a, b, "open measurement window lost across the round trip");
}

#[test]
fn checkpoints_are_deterministic_bytes() {
    // Same machine, same cycle → identical checkpoint bytes; and a restore
    // re-checkpoints to the identical stream (the restored machine is not
    // just behaviourally equivalent but structurally reproduced).
    let partition = FetchPartition::new(2, 8);
    let mk = || {
        let mut sim = config("int8", 7, partition, None).build();
        for _ in 0..451 {
            sim.step_cycle();
        }
        sim
    };
    let first = checkpoint_of(&mk());
    let second = checkpoint_of(&mk());
    assert_eq!(first, second, "checkpoint bytes are not deterministic");
    let restored =
        Simulator::restore_checkpoint(config("int8", 7, partition, None), &mut &first[..])
            .expect("restore must succeed");
    assert_eq!(
        checkpoint_of(&restored),
        first,
        "re-checkpointing a restored machine diverged"
    );
}

#[test]
fn checkpoints_never_observe_a_partial_fetch_block() {
    // The block-granular front end stages and commits each fetch block
    // entirely inside one `step_cycle` (one slab free-list transaction
    // per chunk), and checkpoints can only be taken between `step_cycle`
    // calls — so a mid-block machine state is unobservable *by
    // construction*. Pin that invariant from the outside: the chunk size
    // is excluded from the config fingerprint, so a checkpoint written
    // under the default 8-wide chunking must restore under forced
    // per-instruction chunking (and vice versa) and continue bit-exactly.
    // Any block state leaking into the checkpoint, or any mid-block save
    // point, would break this equivalence.
    let partition = FetchPartition::new(2, 8);
    let chunked = |chunk: usize| {
        let mut cfg = config("mixed4", 42, partition, None);
        cfg.fetch_block_chunk = chunk;
        cfg
    };
    let mut sim = chunked(8).build();
    for _ in 0..771 {
        sim.step_cycle();
    }
    let bytes = checkpoint_of(&sim);
    let reference = sim.run(600).to_json().render();
    for chunk in [1, 3, 8] {
        let mut restored = Simulator::restore_checkpoint(chunked(chunk), &mut &bytes[..])
            .expect("chunk size must not participate in the config fingerprint");
        assert_eq!(
            restored.run(600).to_json().render(),
            reference,
            "restore under chunk {chunk} diverged: block granularity leaked \
             into the checkpoint"
        );
    }
    // And the write side is chunk-blind too: the same machine advanced
    // under per-instruction chunking checkpoints to the identical bytes.
    let mut single = chunked(1).build();
    for _ in 0..771 {
        single.step_cycle();
    }
    assert_eq!(
        checkpoint_of(&single),
        bytes,
        "checkpoint bytes depend on the fetch-block chunk size"
    );
}

#[test]
fn elf_and_trace_backends_round_trip_through_checkpoints() {
    // The workload-source trait's save/restore hooks must round-trip the
    // non-synthetic backends too: an ELF-backed simulator (registers +
    // memory arena) and a trace-backed one (replay cursor) both restore
    // bit-equivalent to straight-through, exactly like the synthetic
    // matrix above.
    use smt::{RiscvImage, TraceImage, WorkloadSpec};
    use std::sync::Arc;

    let elf = |stem: &str| {
        let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("testdata/riscv")
            .join(format!("{stem}.elf"));
        Arc::new(RiscvImage::load(&path).expect("checked-in ELF must load"))
    };
    let trace = Arc::new(TraceImage::record(&elf("memsum"), 20_000).expect("record"));
    let workloads = || -> Vec<WorkloadSpec> {
        vec![
            WorkloadSpec::Elf(elf("loops")),
            WorkloadSpec::Trace(trace.clone()),
            WorkloadSpec::Elf(elf("gcd")),
            WorkloadSpec::Benchmark(smt::Benchmark::Espresso),
        ]
    };
    let cfg = || SimConfig::new().with_workloads(workloads());
    let mut sim = cfg().build();
    for _ in 0..771 {
        sim.step_cycle();
    }
    let bytes = checkpoint_of(&sim);
    let mut restored = Simulator::restore_checkpoint(cfg(), &mut &bytes[..])
        .expect("elf/trace checkpoint must restore");
    let a = sim.run(900).to_json().render();
    let b = restored.run(900).to_json().render();
    assert_eq!(a, b, "elf/trace restore diverged from straight-through");
    // Determinism of the bytes themselves, as for synthetic workloads.
    let mut again = cfg().build();
    for _ in 0..771 {
        again.step_cycle();
    }
    assert_eq!(
        checkpoint_of(&again),
        bytes,
        "elf/trace checkpoint bytes are not deterministic"
    );
    // A different image is refused by the config fingerprint.
    let swapped = SimConfig::new().with_workloads(vec![
        WorkloadSpec::Elf(elf("memsum")),
        WorkloadSpec::Trace(trace.clone()),
        WorkloadSpec::Elf(elf("gcd")),
        WorkloadSpec::Benchmark(smt::Benchmark::Espresso),
    ]);
    assert!(matches!(
        Simulator::restore_checkpoint(swapped, &mut &bytes[..]),
        Err(smt::CheckpointError::ConfigMismatch { .. })
    ));
}

#[test]
fn corrupt_checkpoints_fail_with_typed_errors_end_to_end() {
    use smt::CheckpointError;
    let sim = config("mixed4", 42, FetchPartition::new(2, 8), None).build();
    let bytes = checkpoint_of(&sim);
    // Truncation at an arbitrary boundary.
    match Simulator::restore_checkpoint(
        config("mixed4", 42, FetchPartition::new(2, 8), None),
        &mut &bytes[..bytes.len() - 3],
    ) {
        Err(CheckpointError::Truncated | CheckpointError::Corrupt(_)) => {}
        Err(other) => panic!("unexpected error for truncation: {other}"),
        Ok(_) => panic!("truncated checkpoint must not restore"),
    }
    // A different machine (other seed) is refused by fingerprint.
    assert!(matches!(
        Simulator::restore_checkpoint(
            config("mixed4", 43, FetchPartition::new(2, 8), None),
            &mut &bytes[..],
        ),
        Err(CheckpointError::ConfigMismatch { .. })
    ));
}

//! The paper's headline experiment: on the standard 8-thread mix,
//! feedback-driven ICOUNT fetch beats round-robin at the same 2.8
//! partition (Tullsen et al., ISCA 1996, Section 4).

use smt::{fetch_policy_by_name, standard_mix, FetchPartition, SimConfig, SimReport};

const CYCLES: u64 = 15_000;
const SEED: u64 = 42;

fn run(policy: &str) -> SimReport {
    SimConfig::new()
        .with_benchmarks(standard_mix(), SEED)
        .with_fetch(fetch_policy_by_name(policy).expect("shipped policy"))
        .with_partition(FetchPartition::new(2, 8))
        .build()
        .run(CYCLES)
}

#[test]
fn icount_2_8_beats_rr_2_8_on_standard_mix() {
    let rr = run("rr");
    let icount = run("icount");
    assert_eq!(rr.scheme(), "RR.2.8");
    assert_eq!(icount.scheme(), "ICOUNT.2.8");
    assert!(
        icount.total_ipc() > rr.total_ipc(),
        "paper ordering violated: ICOUNT.2.8 = {:.3} IPC vs RR.2.8 = {:.3} IPC\n\n{icount}\n\n{rr}",
        icount.total_ipc(),
        rr.total_ipc(),
    );
    // Both machines must be doing real multithreaded work, not limping.
    for r in [&rr, &icount] {
        assert!(r.total_ipc() > 1.0, "throughput collapse: {r}");
        assert!(
            r.threads.iter().all(|t| t.committed > 0),
            "a thread starved: {r}"
        );
        assert!(r.cond_prediction.percent() > 80.0, "predictor broken: {r}");
    }
}

#[test]
fn every_shipped_fetch_policy_runs_the_mix() {
    for policy in ["rr", "icount", "brcount", "misscount"] {
        let report = run(policy);
        assert!(
            report.total_ipc() > 0.5,
            "{policy} collapsed on the standard mix: {report}"
        );
    }
}

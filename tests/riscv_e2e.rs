//! End-to-end tests for the real-binary workload path: the checked-in
//! rv64i ELF images in `testdata/riscv/` run through the full pipeline
//! under both ICOUNT and RR, reports are pinned deterministic across
//! runs, and a recorded trace replays to a byte-identical report.
//!
//! CI runs this file in release mode as the record/replay gate.

use std::path::PathBuf;
use std::sync::Arc;

use smt::{
    Benchmark, FetchPartition, RiscvImage, RoundRobin, SimConfig, SimReport, TraceImage,
    WorkloadSpec,
};

fn elf_path(stem: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("testdata/riscv")
        .join(format!("{stem}.elf"))
}

fn elf(stem: &str) -> Arc<RiscvImage> {
    Arc::new(RiscvImage::load(&elf_path(stem)).expect("checked-in ELF must load"))
}

fn json(report: &SimReport) -> String {
    report.to_json().render_pretty()
}

/// Four real-binary threads: each checked-in program plus a second copy
/// of `loops`, so one image is shared across two contexts.
fn real_workloads() -> Vec<WorkloadSpec> {
    let loops = elf("loops");
    vec![
        WorkloadSpec::Elf(loops.clone()),
        WorkloadSpec::Elf(elf("memsum")),
        WorkloadSpec::Elf(elf("gcd")),
        WorkloadSpec::Elf(loops),
    ]
}

#[test]
fn elf_workload_runs_under_icount_and_rr() {
    for (label, fetch) in [("ICOUNT", None), ("RR", Some(()))] {
        let mut cfg = SimConfig::new().with_workloads(real_workloads());
        if fetch.is_some() {
            cfg = cfg.with_fetch(Box::new(RoundRobin));
        }
        let report = cfg.build().run(3_000);
        assert_eq!(report.cycles, 3_000);
        assert!(
            report.total_committed() > 1_000,
            "{label}: IPC collapsed on the real workload: {report}"
        );
        for t in &report.threads {
            assert!(t.committed > 0, "{label}: thread {} starved", t.thread);
        }
        // Thread labels come from the image names.
        assert_eq!(report.threads[0].benchmark, "loops");
        assert_eq!(report.threads[1].benchmark, "memsum");
        assert_eq!(report.threads[2].benchmark, "gcd");
    }
}

#[test]
fn elf_reports_are_deterministic_across_runs() {
    let run = |partition| {
        json(
            &SimConfig::new()
                .with_workloads(real_workloads())
                .with_partition(partition)
                .build()
                .run(2_500),
        )
    };
    // Everything — images reloaded from disk, fresh simulators — must
    // reproduce the exact report bytes, run after run.
    assert_eq!(
        run(FetchPartition::new(2, 8)),
        run(FetchPartition::new(2, 8))
    );
    assert_eq!(
        run(FetchPartition::new(1, 8)),
        run(FetchPartition::new(1, 8))
    );
}

#[test]
fn trace_replay_report_is_byte_identical_to_execution() {
    // Record generously: fetch consumes correct-path instructions at most
    // TOTAL_WIDTH per cycle, so 8 × cycles steps can never be exhausted
    // (wrapping mid-run would diverge from the still-executing source).
    let cycles = 2_000u64;
    let steps = (cycles as usize) * 8 + 64;
    let executed: Vec<WorkloadSpec> = real_workloads();
    let replayed: Vec<WorkloadSpec> = executed
        .iter()
        .map(|spec| match spec {
            WorkloadSpec::Elf(img) => WorkloadSpec::Trace(Arc::new(
                TraceImage::record(img, steps).expect("record trace"),
            )),
            other => other.clone(),
        })
        .collect();
    let run = |workloads| {
        json(
            &SimConfig::new()
                .with_workloads(workloads)
                .build()
                .run(cycles),
        )
    };
    let from_execution = run(executed);
    let from_replay = run(replayed);
    assert_eq!(
        from_execution, from_replay,
        "replaying a recorded trace must reproduce the executed report exactly"
    );
}

#[test]
fn trace_files_survive_disk_and_replay_identically() {
    let img = elf("memsum");
    let trace = TraceImage::record(&img, 4_096).expect("record");
    let dir = std::env::temp_dir().join("smt_riscv_e2e");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("memsum.trace");
    let mut bytes = Vec::new();
    trace.write_to(&mut bytes).expect("serialize");
    std::fs::write(&path, &bytes).expect("write trace");
    let loaded = Arc::new(TraceImage::load(&path).expect("load trace"));
    let run = |t: Arc<TraceImage>| {
        json(
            &SimConfig::new()
                .with_workloads(vec![
                    WorkloadSpec::Trace(t),
                    WorkloadSpec::Benchmark(Benchmark::Espresso),
                ])
                .build()
                .run(1_500),
        )
    };
    assert_eq!(run(Arc::new(trace)), run(loaded));
    std::fs::remove_file(&path).ok();
}

#[test]
fn elf_threads_mix_with_synthetic_threads() {
    let report = SimConfig::new()
        .with_workloads(vec![
            WorkloadSpec::Elf(elf("gcd")),
            WorkloadSpec::Benchmark(Benchmark::Espresso),
            WorkloadSpec::Benchmark(Benchmark::Tomcatv),
        ])
        .build()
        .run(3_000);
    assert_eq!(report.threads.len(), 3);
    assert_eq!(report.threads[0].benchmark, "gcd");
    assert_eq!(report.threads[1].benchmark, "espresso");
    for t in &report.threads {
        assert!(t.committed > 0, "thread {} starved: {report}", t.thread);
    }
}

#[test]
fn synthetic_only_configs_ignore_the_workloads_field() {
    // An empty `workloads` list must leave the legacy paths bit-exact:
    // same benchmarks + seed => same report as the with_benchmarks path.
    let a = json(
        &SimConfig::new()
            .with_benchmarks(vec![Benchmark::Espresso, Benchmark::Eqntott], 42)
            .build()
            .run(2_000),
    );
    let b = json(
        &SimConfig::new()
            .with_workloads(vec![
                WorkloadSpec::Benchmark(Benchmark::Espresso),
                WorkloadSpec::Benchmark(Benchmark::Eqntott),
            ])
            .with_seed(42)
            .build()
            .run(2_000),
    );
    assert_eq!(
        a, b,
        "a workloads list of benchmarks must behave exactly like with_benchmarks"
    );
}

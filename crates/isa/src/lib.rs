//! Instruction-set model for the SMT simulator.
//!
//! This crate defines the architectural vocabulary shared by the workload
//! generator and the pipeline model: instruction classes, register
//! identifiers, and the instruction latencies of Table 1 of Tullsen et al.,
//! ISCA 1996 ("Exploiting Choice"), which are themselves derived from the
//! Alpha 21164.
//!
//! The ISA is a generic 32-register RISC: 32 integer and 32 floating-point
//! logical registers per hardware context, 4-byte fixed-width instructions.
//! Instruction *semantics* are intentionally not modeled (this is a
//! performance simulator); what matters is each instruction's register
//! dependences, its latency class, the functional unit it occupies, and —
//! for control and memory instructions — the side information supplied by
//! the workload oracle.
//!
//! # Examples
//!
//! ```
//! use smt_isa::{Opcode, RegClass, Reg, StaticInst};
//!
//! let add = StaticInst::op3(Opcode::IntAlu, Reg::int(3), Reg::int(1), Reg::int(2));
//! assert_eq!(add.op.latency(), 1);
//! assert!(add.op.fu_kind().is_integer());
//!
//! let div = StaticInst::op2(Opcode::FpDivDouble, Reg::fp(0), Reg::fp(1));
//! assert_eq!(div.op.latency(), 30);
//! assert_eq!(div.dest.unwrap().class(), RegClass::Fp);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod riscv;

use std::fmt;

/// A virtual (and, in this simulator, also physical) memory address.
///
/// Addresses are plain `u64`s rather than a newtype because the memory
/// hierarchy and workload generator perform pervasive arithmetic on them;
/// the type alias documents intent without ceremony.
pub type Addr = u64;

/// Size of one instruction in bytes (fixed-width RISC encoding).
pub const INST_BYTES: u64 = 4;

/// Number of architectural (logical) registers per class per context.
pub const LOGICAL_REGS: usize = 32;

/// Register class: integer or floating point.
///
/// The two classes rename into disjoint physical register files and issue
/// out of separate instruction queues, exactly as in the paper's machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RegClass {
    /// Integer register file / integer instruction queue.
    Int,
    /// Floating-point register file / FP instruction queue.
    Fp,
}

impl RegClass {
    /// Both register classes, in a fixed order convenient for per-class arrays.
    pub const ALL: [RegClass; 2] = [RegClass::Int, RegClass::Fp];

    /// Index of this class into per-class arrays (`Int == 0`, `Fp == 1`).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            RegClass::Int => 0,
            RegClass::Fp => 1,
        }
    }
}

impl fmt::Display for RegClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegClass::Int => write!(f, "int"),
            RegClass::Fp => write!(f, "fp"),
        }
    }
}

/// A logical (architectural) register: a class plus an index in `0..32`.
///
/// Register `r31`/`f31` is *not* special-cased as a zero register; the
/// workload generator simply never uses it as a destination for
/// dependence-carrying values it cares about.
///
/// Internally a biased `NonZeroU8` (class in bit 7, index below, plus
/// one), so `Option<Reg>` occupies a single byte and [`StaticInst`] packs
/// into 8 — a third off every program image the fetch stage streams
/// through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reg(std::num::NonZeroU8);

impl Reg {
    /// Creates an integer register.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 32`.
    #[inline]
    pub fn int(idx: u8) -> Reg {
        assert!(
            (idx as usize) < LOGICAL_REGS,
            "integer register index out of range"
        );
        Reg(std::num::NonZeroU8::new(idx + 1).expect("idx + 1 > 0"))
    }

    /// Creates a floating-point register.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 32`.
    #[inline]
    pub fn fp(idx: u8) -> Reg {
        assert!(
            (idx as usize) < LOGICAL_REGS,
            "fp register index out of range"
        );
        Reg(std::num::NonZeroU8::new((idx | 0x80) + 1).expect("nonzero by construction"))
    }

    /// The register's class.
    #[inline]
    pub fn class(self) -> RegClass {
        if (self.0.get() - 1) & 0x80 == 0 {
            RegClass::Int
        } else {
            RegClass::Fp
        }
    }

    /// The register's index within its class (`0..32`).
    #[inline]
    pub fn index(self) -> usize {
        ((self.0.get() - 1) & 0x7f) as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class() {
            RegClass::Int => write!(f, "r{}", self.index()),
            RegClass::Fp => write!(f, "f{}", self.index()),
        }
    }
}

/// The functional-unit class an instruction occupies at issue.
///
/// The paper's machine has 6 integer units, 4 of which can also execute
/// loads and stores, and 3 floating-point units (peak issue bandwidth 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuKind {
    /// Any of the 6 integer units.
    IntAlu,
    /// One of the 4 integer units with load/store capability.
    LdSt,
    /// One of the 3 floating-point units.
    Fp,
}

impl FuKind {
    /// Whether this unit class is one of the integer units (including the
    /// load/store-capable ones).
    #[inline]
    pub fn is_integer(self) -> bool {
        matches!(self, FuKind::IntAlu | FuKind::LdSt)
    }
}

/// Instruction class, with latencies from Table 1 of the paper.
///
/// | Class                  | Latency |
/// |------------------------|---------|
/// | integer multiply       | 8, 16   |
/// | conditional move       | 2       |
/// | compare                | 0       |
/// | all other integer      | 1       |
/// | FP divide              | 17, 30  |
/// | all other FP           | 4       |
/// | load (cache hit)       | 1       |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    /// Simple integer ALU operation (add, sub, logical, shift): latency 1.
    IntAlu,
    /// 32-bit integer multiply: latency 8.
    IntMul,
    /// 64-bit integer multiply: latency 16.
    IntMulLong,
    /// Conditional move: latency 2.
    CondMove,
    /// Compare, producing a condition value: latency 0 (same-cycle bypass).
    Compare,
    /// Floating-point add/sub/mul/convert: latency 4.
    FpOp,
    /// Single-precision FP divide: latency 17.
    FpDivSingle,
    /// Double-precision FP divide: latency 30.
    FpDivDouble,
    /// Load; latency 1 on a D-cache hit, otherwise determined by the
    /// memory hierarchy.
    Load,
    /// Floating-point load (writes an FP register; executes on a load/store
    /// unit and waits in the integer queue, as all memory operations do).
    FpLoad,
    /// Store; occupies a load/store unit, no destination register.
    Store,
    /// Floating-point store.
    FpStore,
    /// Conditional branch (direction predicted by the PHT, target by the BTB).
    CondBranch,
    /// Unconditional direct jump.
    Jump,
    /// Indirect jump (target predicted by the BTB).
    JumpInd,
    /// Subroutine call (pushes the return address onto the RAS).
    Call,
    /// Subroutine return (target predicted by the RAS).
    Return,
}

impl Opcode {
    /// Every opcode, in the order of [`Opcode::code`]: `ALL[op.code()]`
    /// is `op`, which is what [`Opcode::from_code`] relies on.
    pub const ALL: [Opcode; 17] = [
        Opcode::IntAlu,
        Opcode::IntMul,
        Opcode::IntMulLong,
        Opcode::CondMove,
        Opcode::Compare,
        Opcode::FpOp,
        Opcode::FpDivSingle,
        Opcode::FpDivDouble,
        Opcode::Load,
        Opcode::FpLoad,
        Opcode::Store,
        Opcode::FpStore,
        Opcode::CondBranch,
        Opcode::Jump,
        Opcode::JumpInd,
        Opcode::Call,
        Opcode::Return,
    ];

    /// A stable numeric code for serialization (checkpoints). Codes are
    /// dense indices into [`Opcode::ALL`]; changing an existing code is a
    /// checkpoint-format break and must bump the checkpoint format version.
    #[inline]
    pub fn code(self) -> u8 {
        match self {
            Opcode::IntAlu => 0,
            Opcode::IntMul => 1,
            Opcode::IntMulLong => 2,
            Opcode::CondMove => 3,
            Opcode::Compare => 4,
            Opcode::FpOp => 5,
            Opcode::FpDivSingle => 6,
            Opcode::FpDivDouble => 7,
            Opcode::Load => 8,
            Opcode::FpLoad => 9,
            Opcode::Store => 10,
            Opcode::FpStore => 11,
            Opcode::CondBranch => 12,
            Opcode::Jump => 13,
            Opcode::JumpInd => 14,
            Opcode::Call => 15,
            Opcode::Return => 16,
        }
    }

    /// Decodes a numeric code written by [`Opcode::code`]; `None` for any
    /// byte outside the defined range (a corrupt checkpoint, not a panic).
    #[inline]
    pub fn from_code(code: u8) -> Option<Opcode> {
        Opcode::ALL.get(usize::from(code)).copied()
    }

    /// Result latency in cycles (Table 1). For loads this is the *cache hit*
    /// latency; misses are determined dynamically by the memory hierarchy.
    ///
    /// A latency of 0 (compare) means a dependent instruction can issue in
    /// the *same* cycle via a same-cycle bypass.
    #[inline]
    pub fn latency(self) -> u32 {
        match self {
            Opcode::IntAlu => 1,
            Opcode::IntMul => 8,
            Opcode::IntMulLong => 16,
            Opcode::CondMove => 2,
            Opcode::Compare => 0,
            Opcode::FpOp => 4,
            Opcode::FpDivSingle => 17,
            Opcode::FpDivDouble => 30,
            Opcode::Load | Opcode::FpLoad => 1,
            Opcode::Store | Opcode::FpStore => 1,
            Opcode::CondBranch | Opcode::Jump | Opcode::JumpInd | Opcode::Call | Opcode::Return => {
                1
            }
        }
    }

    /// The functional-unit class this instruction occupies.
    #[inline]
    pub fn fu_kind(self) -> FuKind {
        match self {
            Opcode::Load | Opcode::FpLoad | Opcode::Store | Opcode::FpStore => FuKind::LdSt,
            Opcode::FpOp | Opcode::FpDivSingle | Opcode::FpDivDouble => FuKind::Fp,
            _ => FuKind::IntAlu,
        }
    }

    /// The instruction queue this instruction waits in.
    ///
    /// As in the paper's machine (and the 21164/PA-8000 lineage), *all*
    /// memory operations — including FP loads and stores — wait in the
    /// integer queue, because address generation is an integer operation.
    #[inline]
    pub fn queue(self) -> RegClass {
        match self {
            Opcode::FpOp | Opcode::FpDivSingle | Opcode::FpDivDouble => RegClass::Fp,
            _ => RegClass::Int,
        }
    }

    /// Whether this is any control-transfer instruction.
    #[inline]
    pub fn is_control(self) -> bool {
        matches!(
            self,
            Opcode::CondBranch | Opcode::Jump | Opcode::JumpInd | Opcode::Call | Opcode::Return
        )
    }

    /// Whether this is a *conditional* branch.
    #[inline]
    pub fn is_cond_branch(self) -> bool {
        matches!(self, Opcode::CondBranch)
    }

    /// Whether this instruction reads memory.
    #[inline]
    pub fn is_load(self) -> bool {
        matches!(self, Opcode::Load | Opcode::FpLoad)
    }

    /// Whether this instruction writes memory.
    #[inline]
    pub fn is_store(self) -> bool {
        matches!(self, Opcode::Store | Opcode::FpStore)
    }

    /// Whether this instruction accesses memory at all.
    #[inline]
    pub fn is_mem(self) -> bool {
        self.is_load() || self.is_store()
    }

    /// Whether control transfers away unconditionally (ends a fetch block
    /// regardless of prediction).
    #[inline]
    pub fn is_uncond_control(self) -> bool {
        matches!(
            self,
            Opcode::Jump | Opcode::JumpInd | Opcode::Call | Opcode::Return
        )
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Opcode::IntAlu => "alu",
            Opcode::IntMul => "mull",
            Opcode::IntMulLong => "mulq",
            Opcode::CondMove => "cmov",
            Opcode::Compare => "cmp",
            Opcode::FpOp => "fpop",
            Opcode::FpDivSingle => "divs",
            Opcode::FpDivDouble => "divt",
            Opcode::Load => "ldq",
            Opcode::FpLoad => "ldt",
            Opcode::Store => "stq",
            Opcode::FpStore => "stt",
            Opcode::CondBranch => "br",
            Opcode::Jump => "jmp",
            Opcode::JumpInd => "jmpi",
            Opcode::Call => "call",
            Opcode::Return => "ret",
        };
        f.write_str(s)
    }
}

/// Sentinel value for [`StaticInst::meta`] meaning "no side-table entry".
pub const NO_META: u32 = u32::MAX;

/// A static (program-image) instruction.
///
/// `meta` indexes into the owning program's side tables: for control
/// instructions it identifies the branch-behaviour entry, for memory
/// instructions the memory-reference-behaviour entry. Side tables are owned
/// by the workload crate; this crate only reserves the index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticInst {
    /// Instruction class.
    pub op: Opcode,
    /// Destination register, if the instruction writes one.
    pub dest: Option<Reg>,
    /// Up to two source registers.
    pub srcs: [Option<Reg>; 2],
    /// Side-table index ([`NO_META`] when absent).
    pub meta: u32,
}

impl StaticInst {
    /// A no-destination, no-source instruction of class `op`.
    pub fn op0(op: Opcode) -> StaticInst {
        StaticInst {
            op,
            dest: None,
            srcs: [None, None],
            meta: NO_META,
        }
    }

    /// `dest <- op src` (one source).
    pub fn op2(op: Opcode, dest: Reg, src: Reg) -> StaticInst {
        StaticInst {
            op,
            dest: Some(dest),
            srcs: [Some(src), None],
            meta: NO_META,
        }
    }

    /// `dest <- src1 op src2`.
    pub fn op3(op: Opcode, dest: Reg, src1: Reg, src2: Reg) -> StaticInst {
        StaticInst {
            op,
            dest: Some(dest),
            srcs: [Some(src1), Some(src2)],
            meta: NO_META,
        }
    }

    /// Attaches a side-table index, builder style.
    pub fn with_meta(mut self, meta: u32) -> StaticInst {
        self.meta = meta;
        self
    }

    /// Iterates over the instruction's present source registers.
    pub fn sources(&self) -> impl Iterator<Item = Reg> + '_ {
        self.srcs.iter().flatten().copied()
    }
}

/// A hardware context (thread slot) identifier.
///
/// The paper's machine supports up to 8 hardware contexts; we allow any
/// small count and validate at simulator construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadId(pub u8);

impl ThreadId {
    /// The context index as a `usize`, for array indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Architectural outcome of one correct-path dynamic instruction, as
/// supplied by the workload oracle at fetch time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outcome {
    /// Address of the next correct-path instruction.
    pub next_pc: Addr,
    /// For conditional branches: whether the branch is taken.
    pub taken: bool,
    /// For memory instructions: the effective address.
    pub mem_addr: Addr,
}

impl Outcome {
    /// A fall-through outcome for a non-control, non-memory instruction at `pc`.
    pub fn fallthrough(pc: Addr) -> Outcome {
        Outcome {
            next_pc: pc + INST_BYTES,
            taken: false,
            mem_addr: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_latencies_match_paper() {
        assert_eq!(Opcode::IntMul.latency(), 8);
        assert_eq!(Opcode::IntMulLong.latency(), 16);
        assert_eq!(Opcode::CondMove.latency(), 2);
        assert_eq!(Opcode::Compare.latency(), 0);
        assert_eq!(Opcode::IntAlu.latency(), 1);
        assert_eq!(Opcode::FpDivSingle.latency(), 17);
        assert_eq!(Opcode::FpDivDouble.latency(), 30);
        assert_eq!(Opcode::FpOp.latency(), 4);
        assert_eq!(Opcode::Load.latency(), 1);
        assert_eq!(Opcode::FpLoad.latency(), 1);
    }

    #[test]
    fn memory_ops_use_ldst_units_and_int_queue() {
        for op in [Opcode::Load, Opcode::FpLoad, Opcode::Store, Opcode::FpStore] {
            assert_eq!(op.fu_kind(), FuKind::LdSt);
            assert!(op.fu_kind().is_integer());
            assert_eq!(op.queue(), RegClass::Int);
            assert!(op.is_mem());
        }
        assert!(Opcode::Load.is_load() && !Opcode::Load.is_store());
        assert!(Opcode::Store.is_store() && !Opcode::Store.is_load());
    }

    #[test]
    fn fp_ops_use_fp_units_and_fp_queue() {
        for op in [Opcode::FpOp, Opcode::FpDivSingle, Opcode::FpDivDouble] {
            assert_eq!(op.fu_kind(), FuKind::Fp);
            assert!(!op.fu_kind().is_integer());
            assert_eq!(op.queue(), RegClass::Fp);
        }
    }

    #[test]
    fn control_classification() {
        assert!(Opcode::CondBranch.is_control());
        assert!(Opcode::CondBranch.is_cond_branch());
        assert!(!Opcode::CondBranch.is_uncond_control());
        for op in [Opcode::Jump, Opcode::JumpInd, Opcode::Call, Opcode::Return] {
            assert!(op.is_control());
            assert!(op.is_uncond_control());
            assert!(!op.is_cond_branch());
        }
        assert!(!Opcode::IntAlu.is_control());
    }

    #[test]
    fn reg_encoding_roundtrips() {
        for i in 0..32u8 {
            let r = Reg::int(i);
            assert_eq!(r.class(), RegClass::Int);
            assert_eq!(r.index(), i as usize);
            let f = Reg::fp(i);
            assert_eq!(f.class(), RegClass::Fp);
            assert_eq!(f.index(), i as usize);
            assert_ne!(r, f);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_index_out_of_range_panics() {
        let _ = Reg::int(32);
    }

    #[test]
    fn reg_display() {
        assert_eq!(Reg::int(5).to_string(), "r5");
        assert_eq!(Reg::fp(31).to_string(), "f31");
        assert_eq!(RegClass::Int.to_string(), "int");
    }

    #[test]
    fn static_inst_is_packed() {
        // `Reg`'s NonZeroU8 niche makes Option<Reg> one byte, so the whole
        // static instruction is 8 — the code-image footprint the fetch
        // stage streams through every cycle.
        assert_eq!(std::mem::size_of::<Option<Reg>>(), 1);
        assert_eq!(std::mem::size_of::<StaticInst>(), 8);
    }

    #[test]
    fn static_inst_builders() {
        let i = StaticInst::op3(Opcode::IntAlu, Reg::int(1), Reg::int(2), Reg::int(3));
        assert_eq!(i.dest, Some(Reg::int(1)));
        assert_eq!(i.sources().count(), 2);
        assert_eq!(i.meta, NO_META);

        let b = StaticInst::op0(Opcode::CondBranch).with_meta(7);
        assert_eq!(b.meta, 7);
        assert_eq!(b.sources().count(), 0);
    }

    #[test]
    fn outcome_fallthrough_advances_one_instruction() {
        let o = Outcome::fallthrough(0x1000);
        assert_eq!(o.next_pc, 0x1000 + INST_BYTES);
        assert!(!o.taken);
    }

    #[test]
    fn class_indices_are_stable() {
        assert_eq!(RegClass::Int.index(), 0);
        assert_eq!(RegClass::Fp.index(), 1);
        assert_eq!(RegClass::ALL[0], RegClass::Int);
    }

    #[test]
    fn opcode_codes_roundtrip_and_are_dense() {
        for (i, op) in Opcode::ALL.iter().enumerate() {
            assert_eq!(usize::from(op.code()), i, "ALL order must match code()");
            assert_eq!(Opcode::from_code(op.code()), Some(*op));
        }
        assert_eq!(Opcode::from_code(Opcode::ALL.len() as u8), None);
        assert_eq!(Opcode::from_code(u8::MAX), None);
    }

    #[test]
    fn thread_id_ordering_and_index() {
        assert!(ThreadId(0) < ThreadId(3));
        assert_eq!(ThreadId(5).index(), 5);
        assert_eq!(ThreadId(2).to_string(), "t2");
    }
}

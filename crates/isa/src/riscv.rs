//! RISC-V (rv32i/rv64i + M) instruction decoding and the mapping onto the
//! simulator's [`StaticInst`] classes.
//!
//! The decoder is deliberately *pure*: [`decode`] turns one 32-bit
//! instruction word into an [`RvInst`] (operation, registers, immediate)
//! with no machine state involved, and [`RvInst::static_inst`] maps that
//! onto the timing-model opcode classes ([`Opcode`]) the pipeline
//! schedules by. Functional execution (register file, memory, next-PC
//! resolution) lives in `smt-workload::riscv`, which consumes both.
//!
//! Only the 4-byte base encodings are handled — the compressed (C)
//! extension is not decoded, so images must be built for `rv32i`/`rv64i`
//! (optionally with M); a 2-byte-aligned compressed word decodes as
//! [`RvOp::Illegal`]. This matches the checked-in `testdata/riscv/`
//! programs, which the bundled assembler emits without compression.
//!
//! # Class mapping
//!
//! | RISC-V | [`Opcode`] |
//! |---|---|
//! | `beq`/`bne`/`blt[u]`/`bge[u]` | `CondBranch` |
//! | `jal` with a link `rd` (`x1`/`x5`) | `Call`, else `Jump` |
//! | `jalr` with a link `rd` | `Call` |
//! | `jalr x0, ra/t0` | `Return`, other `jalr` | `JumpInd` |
//! | loads | `Load`, stores | `Store` |
//! | `mul[w]` | `IntMul`; `mulh*`/`div*`/`rem*` | `IntMulLong` |
//! | `ecall`/`ebreak` | `Jump` (modeled as a program restart) |
//! | everything else | `IntAlu` |
//!
//! Register `x0` is hardwired zero, so it maps to *no* operand
//! ([`None`] — always ready, never written); `x1..x31` map to
//! [`Reg::int`] of the same index.

use crate::{Opcode, Reg, StaticInst, NO_META};

/// One decoded RISC-V operation (rv32i/rv64i base + M extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // the variants are the RISC-V mnemonics themselves
pub enum RvOp {
    Lui,
    Auipc,
    Jal,
    Jalr,
    Beq,
    Bne,
    Blt,
    Bge,
    Bltu,
    Bgeu,
    Lb,
    Lh,
    Lw,
    Lbu,
    Lhu,
    Lwu,
    Ld,
    Sb,
    Sh,
    Sw,
    Sd,
    Addi,
    Slti,
    Sltiu,
    Xori,
    Ori,
    Andi,
    Slli,
    Srli,
    Srai,
    Add,
    Sub,
    Sll,
    Slt,
    Sltu,
    Xor,
    Srl,
    Sra,
    Or,
    And,
    Addiw,
    Slliw,
    Srliw,
    Sraiw,
    Addw,
    Subw,
    Sllw,
    Srlw,
    Sraw,
    Mul,
    Mulh,
    Mulhsu,
    Mulhu,
    Div,
    Divu,
    Rem,
    Remu,
    Mulw,
    Divw,
    Divuw,
    Remw,
    Remuw,
    Fence,
    Ecall,
    Ebreak,
    /// Anything this decoder does not handle (including compressed words).
    Illegal,
}

/// One decoded instruction: operation, register numbers and the
/// sign-extended immediate. Fields not present in the encoding's format
/// are zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RvInst {
    /// The decoded operation.
    pub op: RvOp,
    /// Destination register number (`x0..x31`; 0 means "discard").
    pub rd: u8,
    /// First source register number.
    pub rs1: u8,
    /// Second source register number.
    pub rs2: u8,
    /// Sign-extended immediate (shift amounts are the raw 6-bit field).
    pub imm: i64,
}

/// `x1` (`ra`) and `x5` (`t0`), the standard link registers: `jal`/`jalr`
/// writing one of these is a call, and `jalr x0` through one is a return.
fn is_link(reg: u8) -> bool {
    reg == 1 || reg == 5
}

impl RvInst {
    /// Whether this operation redirects the PC.
    pub fn is_control(&self) -> bool {
        matches!(
            self.op,
            RvOp::Jal
                | RvOp::Jalr
                | RvOp::Beq
                | RvOp::Bne
                | RvOp::Blt
                | RvOp::Bge
                | RvOp::Bltu
                | RvOp::Bgeu
                | RvOp::Ecall
                | RvOp::Ebreak
        )
    }

    /// The statically-known target of a PC-relative control instruction
    /// (`jal` and the conditional branches) fetched at `pc`, `None` for
    /// everything else (indirect or not control).
    pub fn rel_target(&self, pc: u64) -> Option<u64> {
        match self.op {
            RvOp::Jal | RvOp::Beq | RvOp::Bne | RvOp::Blt | RvOp::Bge | RvOp::Bltu | RvOp::Bgeu => {
                Some(pc.wrapping_add(self.imm as u64))
            }
            _ => None,
        }
    }

    /// Maps the decoded operation onto the simulator's timing classes (see
    /// the module docs for the full table). `meta` is always [`NO_META`]:
    /// real code needs no synthetic branch/memory model — targets and
    /// addresses come from execution.
    pub fn static_inst(&self) -> StaticInst {
        let dest = |r: u8| (r != 0).then(|| Reg::int(r));
        let src = dest;
        let (op, d, s1, s2) = match self.op {
            RvOp::Beq | RvOp::Bne | RvOp::Blt | RvOp::Bge | RvOp::Bltu | RvOp::Bgeu => {
                (Opcode::CondBranch, None, src(self.rs1), src(self.rs2))
            }
            RvOp::Jal => {
                let op = if is_link(self.rd) {
                    Opcode::Call
                } else {
                    Opcode::Jump
                };
                (op, dest(self.rd), None, None)
            }
            RvOp::Jalr => {
                let op = if is_link(self.rd) {
                    Opcode::Call
                } else if self.rd == 0 && is_link(self.rs1) {
                    Opcode::Return
                } else {
                    Opcode::JumpInd
                };
                (op, dest(self.rd), src(self.rs1), None)
            }
            RvOp::Lb | RvOp::Lh | RvOp::Lw | RvOp::Lbu | RvOp::Lhu | RvOp::Lwu | RvOp::Ld => {
                (Opcode::Load, dest(self.rd), src(self.rs1), None)
            }
            RvOp::Sb | RvOp::Sh | RvOp::Sw | RvOp::Sd => {
                (Opcode::Store, None, src(self.rs1), src(self.rs2))
            }
            RvOp::Mul | RvOp::Mulw => (Opcode::IntMul, dest(self.rd), src(self.rs1), src(self.rs2)),
            RvOp::Mulh
            | RvOp::Mulhsu
            | RvOp::Mulhu
            | RvOp::Div
            | RvOp::Divu
            | RvOp::Rem
            | RvOp::Remu
            | RvOp::Divw
            | RvOp::Divuw
            | RvOp::Remw
            | RvOp::Remuw => (
                Opcode::IntMulLong,
                dest(self.rd),
                src(self.rs1),
                src(self.rs2),
            ),
            // Exit requests restart the program: an unconditional jump
            // back to the entry point, resolved by the executor.
            RvOp::Ecall | RvOp::Ebreak => (Opcode::Jump, None, None, None),
            RvOp::Lui | RvOp::Auipc => (Opcode::IntAlu, dest(self.rd), None, None),
            RvOp::Addi
            | RvOp::Slti
            | RvOp::Sltiu
            | RvOp::Xori
            | RvOp::Ori
            | RvOp::Andi
            | RvOp::Slli
            | RvOp::Srli
            | RvOp::Srai
            | RvOp::Addiw
            | RvOp::Slliw
            | RvOp::Srliw
            | RvOp::Sraiw => (Opcode::IntAlu, dest(self.rd), src(self.rs1), None),
            RvOp::Add
            | RvOp::Sub
            | RvOp::Sll
            | RvOp::Slt
            | RvOp::Sltu
            | RvOp::Xor
            | RvOp::Srl
            | RvOp::Sra
            | RvOp::Or
            | RvOp::And
            | RvOp::Addw
            | RvOp::Subw
            | RvOp::Sllw
            | RvOp::Srlw
            | RvOp::Sraw => (Opcode::IntAlu, dest(self.rd), src(self.rs1), src(self.rs2)),
            RvOp::Fence => (Opcode::IntAlu, None, None, None),
            // Filler matching the synthetic wrong-path convention: a
            // plausible ALU op with benign dependences.
            RvOp::Illegal => (
                Opcode::IntAlu,
                Some(Reg::int(1)),
                Some(Reg::int(2)),
                Some(Reg::int(3)),
            ),
        };
        StaticInst {
            op,
            dest: d,
            srcs: [s1, s2],
            meta: NO_META,
        }
    }
}

/// Field extraction helpers (bit positions from the RISC-V spec).
fn rd(w: u32) -> u8 {
    ((w >> 7) & 0x1f) as u8
}
fn rs1(w: u32) -> u8 {
    ((w >> 15) & 0x1f) as u8
}
fn rs2(w: u32) -> u8 {
    ((w >> 20) & 0x1f) as u8
}
fn funct3(w: u32) -> u32 {
    (w >> 12) & 0x7
}
fn funct7(w: u32) -> u32 {
    w >> 25
}
fn imm_i(w: u32) -> i64 {
    (w as i32 >> 20) as i64
}
fn imm_s(w: u32) -> i64 {
    (((w & 0xfe00_0000) as i32 >> 20) | ((w >> 7) & 0x1f) as i32) as i64
}
fn imm_b(w: u32) -> i64 {
    let imm = (((w & 0x8000_0000) as i32 >> 19) as u32)
        | ((w & 0x80) << 4)
        | ((w >> 20) & 0x7e0)
        | ((w >> 7) & 0x1e);
    imm as i32 as i64
}
fn imm_u(w: u32) -> i64 {
    (w & 0xffff_f000) as i32 as i64
}
fn imm_j(w: u32) -> i64 {
    let imm = (((w & 0x8000_0000) as i32 >> 11) as u32)
        | (w & 0xf_f000)
        | ((w >> 9) & 0x800)
        | ((w >> 20) & 0x7fe);
    imm as i32 as i64
}

/// Decodes one 32-bit instruction word. Never fails: unhandled encodings
/// (including compressed 16-bit parcels) come back as [`RvOp::Illegal`].
pub fn decode(w: u32) -> RvInst {
    let illegal = RvInst {
        op: RvOp::Illegal,
        rd: 0,
        rs1: 0,
        rs2: 0,
        imm: 0,
    };
    if w & 0x3 != 0x3 {
        return illegal; // compressed or malformed parcel
    }
    let (op, rd, rs1, rs2, imm) = match w & 0x7f {
        0x37 => (RvOp::Lui, rd(w), 0, 0, imm_u(w)),
        0x17 => (RvOp::Auipc, rd(w), 0, 0, imm_u(w)),
        0x6f => (RvOp::Jal, rd(w), 0, 0, imm_j(w)),
        0x67 if funct3(w) == 0 => (RvOp::Jalr, rd(w), rs1(w), 0, imm_i(w)),
        0x63 => {
            let op = match funct3(w) {
                0 => RvOp::Beq,
                1 => RvOp::Bne,
                4 => RvOp::Blt,
                5 => RvOp::Bge,
                6 => RvOp::Bltu,
                7 => RvOp::Bgeu,
                _ => return illegal,
            };
            (op, 0, rs1(w), rs2(w), imm_b(w))
        }
        0x03 => {
            let op = match funct3(w) {
                0 => RvOp::Lb,
                1 => RvOp::Lh,
                2 => RvOp::Lw,
                3 => RvOp::Ld,
                4 => RvOp::Lbu,
                5 => RvOp::Lhu,
                6 => RvOp::Lwu,
                _ => return illegal,
            };
            (op, rd(w), rs1(w), 0, imm_i(w))
        }
        0x23 => {
            let op = match funct3(w) {
                0 => RvOp::Sb,
                1 => RvOp::Sh,
                2 => RvOp::Sw,
                3 => RvOp::Sd,
                _ => return illegal,
            };
            (op, 0, rs1(w), rs2(w), imm_s(w))
        }
        0x13 => {
            // Shift immediates carry funct6 in the top bits (rv64 shamt is
            // 6 bits wide); everything else is a plain I-type.
            let shamt = i64::from((w >> 20) & 0x3f);
            let op = match funct3(w) {
                0 => RvOp::Addi,
                1 if funct7(w) & !1 == 0 => return shift(RvOp::Slli, w, shamt),
                2 => RvOp::Slti,
                3 => RvOp::Sltiu,
                4 => RvOp::Xori,
                5 if funct7(w) & !1 == 0 => return shift(RvOp::Srli, w, shamt),
                5 if funct7(w) & !1 == 0x20 => return shift(RvOp::Srai, w, shamt),
                6 => RvOp::Ori,
                7 => RvOp::Andi,
                _ => return illegal,
            };
            (op, rd(w), rs1(w), 0, imm_i(w))
        }
        0x1b => {
            let shamt = i64::from((w >> 20) & 0x1f);
            return match funct3(w) {
                0 => RvInst {
                    op: RvOp::Addiw,
                    rd: rd(w),
                    rs1: rs1(w),
                    rs2: 0,
                    imm: imm_i(w),
                },
                1 if funct7(w) == 0 => shift(RvOp::Slliw, w, shamt),
                5 if funct7(w) == 0 => shift(RvOp::Srliw, w, shamt),
                5 if funct7(w) == 0x20 => shift(RvOp::Sraiw, w, shamt),
                _ => illegal,
            };
        }
        0x33 => {
            let op = match (funct7(w), funct3(w)) {
                (0x00, 0) => RvOp::Add,
                (0x20, 0) => RvOp::Sub,
                (0x00, 1) => RvOp::Sll,
                (0x00, 2) => RvOp::Slt,
                (0x00, 3) => RvOp::Sltu,
                (0x00, 4) => RvOp::Xor,
                (0x00, 5) => RvOp::Srl,
                (0x20, 5) => RvOp::Sra,
                (0x00, 6) => RvOp::Or,
                (0x00, 7) => RvOp::And,
                (0x01, 0) => RvOp::Mul,
                (0x01, 1) => RvOp::Mulh,
                (0x01, 2) => RvOp::Mulhsu,
                (0x01, 3) => RvOp::Mulhu,
                (0x01, 4) => RvOp::Div,
                (0x01, 5) => RvOp::Divu,
                (0x01, 6) => RvOp::Rem,
                (0x01, 7) => RvOp::Remu,
                _ => return illegal,
            };
            (op, rd(w), rs1(w), rs2(w), 0)
        }
        0x3b => {
            let op = match (funct7(w), funct3(w)) {
                (0x00, 0) => RvOp::Addw,
                (0x20, 0) => RvOp::Subw,
                (0x00, 1) => RvOp::Sllw,
                (0x00, 5) => RvOp::Srlw,
                (0x20, 5) => RvOp::Sraw,
                (0x01, 0) => RvOp::Mulw,
                (0x01, 4) => RvOp::Divw,
                (0x01, 5) => RvOp::Divuw,
                (0x01, 6) => RvOp::Remw,
                (0x01, 7) => RvOp::Remuw,
                _ => return illegal,
            };
            (op, rd(w), rs1(w), rs2(w), 0)
        }
        0x0f => (RvOp::Fence, 0, 0, 0, 0),
        0x73 => match w {
            0x0000_0073 => (RvOp::Ecall, 0, 0, 0, 0),
            0x0010_0073 => (RvOp::Ebreak, 0, 0, 0, 0),
            _ => return illegal, // CSR space: not modeled
        },
        _ => return illegal,
    };
    RvInst {
        op,
        rd,
        rs1,
        rs2,
        imm,
    }
}

/// Builds a shift-immediate instruction (the only I-type whose immediate
/// is the raw shamt field rather than the sign-extended word).
fn shift(op: RvOp, w: u32, shamt: i64) -> RvInst {
    RvInst {
        op,
        rd: rd(w),
        rs1: rs1(w),
        rs2: 0,
        imm: shamt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_the_base_alu_forms() {
        // addi x5, x6, -3
        let i = decode(0xffd3_0293);
        assert_eq!((i.op, i.rd, i.rs1, i.imm), (RvOp::Addi, 5, 6, -3));
        // add x3, x1, x2
        let i = decode(0x0020_81b3);
        assert_eq!((i.op, i.rd, i.rs1, i.rs2), (RvOp::Add, 3, 1, 2));
        // sub x3, x1, x2
        let i = decode(0x4020_81b3);
        assert_eq!(i.op, RvOp::Sub);
        // lui x7, 0x12345
        let i = decode(0x1234_53b7);
        assert_eq!((i.op, i.rd, i.imm), (RvOp::Lui, 7, 0x1234_5000));
        // slli x5, x5, 3
        let i = decode(0x0032_9293);
        assert_eq!((i.op, i.rd, i.rs1, i.imm), (RvOp::Slli, 5, 5, 3));
        // mul x10, x11, x12
        let i = decode(0x02c5_8533);
        assert_eq!((i.op, i.rd, i.rs1, i.rs2), (RvOp::Mul, 10, 11, 12));
    }

    #[test]
    fn decodes_memory_and_control_with_signed_offsets() {
        // lw x8, -8(x2)
        let i = decode(0xff81_2403);
        assert_eq!((i.op, i.rd, i.rs1, i.imm), (RvOp::Lw, 8, 2, -8));
        // sd x9, 16(x2)
        let i = decode(0x0091_3823);
        assert_eq!((i.op, i.rs1, i.rs2, i.imm), (RvOp::Sd, 2, 9, 16));
        // beq x1, x2, -16  (B-immediate sign extension)
        let i = decode(0xfe20_88e3);
        assert_eq!((i.op, i.rs1, i.rs2, i.imm), (RvOp::Beq, 1, 2, -16));
        assert_eq!(i.rel_target(0x100), Some(0xf0));
        // jal x1, +2048 (J-immediate bit shuffle: imm[11] lives in bit 20)
        let i = decode(0x0010_00ef);
        assert_eq!((i.op, i.rd), (RvOp::Jal, 1));
        assert_eq!(i.imm, 0x800);
        // jalr x0, 0(x1)  — a return
        let i = decode(0x0000_8067);
        assert_eq!((i.op, i.rd, i.rs1), (RvOp::Jalr, 0, 1));
        assert_eq!(i.static_inst().op, Opcode::Return);
    }

    #[test]
    fn class_mapping_follows_the_table() {
        // jal x1 → Call (link register), jal x0 → Jump.
        assert_eq!(decode(0x0000_00ef).static_inst().op, Opcode::Call);
        assert_eq!(decode(0x0000_006f).static_inst().op, Opcode::Jump);
        // Branches are CondBranch with no destination.
        let b = decode(0xfe20_88e3).static_inst();
        assert_eq!((b.op, b.dest), (Opcode::CondBranch, None));
        // Loads write rd and read rs1; x0 operands vanish.
        let l = decode(0xff81_2403).static_inst();
        assert_eq!(l.op, Opcode::Load);
        assert_eq!(l.dest, Some(Reg::int(8)));
        assert_eq!(l.srcs, [Some(Reg::int(2)), None]);
        // addi x5, x0, 1: the x0 source is no dependency at all.
        let z = decode(0x0010_0293).static_inst();
        assert_eq!(z.srcs, [None, None]);
        // div → long-latency class; ecall → restart jump.
        assert_eq!(decode(0x02c5_c533).static_inst().op, Opcode::IntMulLong);
        assert_eq!(decode(0x0000_0073).static_inst().op, Opcode::Jump);
    }

    #[test]
    fn unhandled_words_are_illegal_fillers() {
        for w in [0x0000_0000, 0xffff_ffff, 0x0000_0001, 0x8000_0002] {
            let i = decode(w);
            assert_eq!(i.op, RvOp::Illegal);
            assert_eq!(i.static_inst().op, Opcode::IntAlu);
        }
        // CSR instructions are outside the modeled subset.
        assert_eq!(decode(0x3020_2573).op, RvOp::Illegal);
    }
}

//! Minimal MD5 (RFC 1321), here because LLVM's instrumentation profiles
//! key function names by the first 64 bits of their MD5 digest — the
//! `NameRef` field a `.profraw` record carries instead of the name itself.
//! Only the 64-bit prefix is exposed; this is a content key, not a
//! cryptographic hash.

/// First 8 bytes of `md5(data)`, read little-endian — exactly LLVM's
/// `IndexedInstrProf::ComputeHash`, the value stored in a profile
/// record's `NameRef` field.
pub fn md5_prefix64(data: &[u8]) -> u64 {
    // Per-round left-rotate amounts.
    const S: [u32; 64] = [
        7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
        5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
        4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
        6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
    ];
    // K[i] = floor(2^32 * abs(sin(i + 1))).
    const K: [u32; 64] = [
        0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613,
        0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193,
        0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d,
        0x02441453, 0xd8a1e681, 0xe7d3fbc8, 0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed,
        0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122,
        0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
        0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665, 0xf4292244,
        0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
        0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb,
        0xeb86d391,
    ];

    // Pad: 0x80, zeros to 56 mod 64, then the bit length as u64 LE.
    let mut msg = data.to_vec();
    let bit_len = (data.len() as u64).wrapping_mul(8);
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_le_bytes());

    let (mut a0, mut b0, mut c0, mut d0) =
        (0x67452301u32, 0xefcdab89u32, 0x98badcfeu32, 0x10325476u32);
    for chunk in msg.chunks_exact(64) {
        let mut m = [0u32; 16];
        for (i, w) in m.iter_mut().enumerate() {
            *w = u32::from_le_bytes(chunk[i * 4..i * 4 + 4].try_into().expect("4-byte slice"));
        }
        let (mut a, mut b, mut c, mut d) = (a0, b0, c0, d0);
        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let rotated = a
                .wrapping_add(f)
                .wrapping_add(K[i])
                .wrapping_add(m[g])
                .rotate_left(S[i]);
            (a, d, c, b) = (d, c, b, b.wrapping_add(rotated));
        }
        a0 = a0.wrapping_add(a);
        b0 = b0.wrapping_add(b);
        c0 = c0.wrapping_add(c);
        d0 = d0.wrapping_add(d);
    }

    let mut prefix = [0u8; 8];
    prefix[..4].copy_from_slice(&a0.to_le_bytes());
    prefix[4..].copy_from_slice(&b0.to_le_bytes());
    u64::from_le_bytes(prefix)
}

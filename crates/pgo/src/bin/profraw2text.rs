//! `profraw2text` — converts raw instrumentation profiles to LLVM's text
//! profile format, writing `X.proftext` next to each input `X.profraw`.
//!
//! ```text
//! profraw2text FILE.profraw...
//! ```
//!
//! The text outputs are what `scripts/pgo.sh record` hands to
//! `llvm-profdata merge`: the text format is version-stable, so a distro
//! `llvm-profdata` older than the Rust toolchain's LLVM — which rejects
//! the raw files outright — can still index the profile. See the
//! `smt-pgo` crate docs for the full story.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: profraw2text FILE.profraw...");
        std::process::exit(2);
    }
    for path in &args {
        let raw = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) => {
                eprintln!("{path}: {e}");
                std::process::exit(1);
            }
        };
        let functions = match smt_pgo::parse_profraw(&raw) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("{path}: {e}");
                std::process::exit(1);
            }
        };
        let out_path = match path.strip_suffix(".profraw") {
            Some(stem) => format!("{stem}.proftext"),
            None => format!("{path}.proftext"),
        };
        if let Err(e) = std::fs::write(&out_path, smt_pgo::to_text(&functions)) {
            eprintln!("{out_path}: {e}");
            std::process::exit(1);
        }
        println!("{path}: {} functions -> {out_path}", functions.len());
    }
}

//! Offline `.profraw` → LLVM *text* instrumentation-profile converter.
//!
//! # Why this crate exists
//!
//! The PGO build path (`scripts/pgo.sh`) needs `llvm-profdata` to turn the
//! raw profiles written by a `-Cprofile-generate` binary into the indexed
//! `.profdata` that `-Cprofile-use` consumes. But the raw profile format is
//! **not stable across LLVM major versions**: an `llvm-profdata` older than
//! the rustc that produced the `.profraw` refuses it outright
//! ("unsupported instrumentation profile format version") — exactly the
//! situation on hosts whose distro LLVM trails the Rust toolchain's.
//!
//! Two other profile encodings *are* stable enough to bridge the gap:
//!
//! * the **text** format (`.proftext`) is a version-less line protocol that
//!   every `llvm-profdata merge` accepts as input, and
//! * the **indexed** format is backward-compatible: a newer LLVM reads
//!   profiles indexed by an older one.
//!
//! So the bridge is: parse the raw profile ourselves, emit text, and let
//! the *old* `llvm-profdata` index it — the resulting `.profdata` then
//! feeds the *new* rustc's `-Cprofile-use` cleanly. This crate is that
//! parser/emitter, dependency-free (including its own MD5, which the raw
//! format uses to key function names).
//!
//! # What is converted
//!
//! Function counters and value-profiling *site counts* (so profile-use
//! sees consistent shapes instead of warning about a stale profile).
//! Recorded value-profile *data* (indirect-call targets, memop sizes) is
//! dropped: the tail section's encoding is runtime-internal, and the
//! counter profile is what drives the block-layout and inlining decisions
//! the PGO build is after.
//!
//! The instrumented build must disable name compression
//! (`-Cllvm-args=--enable-name-compression=false`) — the name section is
//! otherwise zlib-deflated, and inflating it would need a compression
//! dependency this repo does not take.
//!
//! # Supported layout
//!
//! Raw profile version 10 (LLVM 19+ era, including the Rust 1.8x/1.9x
//! toolchains), 64-bit little-endian, with 2 or 3 value kinds. Every
//! structural assumption is checked and reported as a typed
//! [`ProfrawError`] rather than silently mis-parsed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt;

mod md5;

pub use md5::md5_prefix64;

/// Raw-profile header magic for 64-bit little-endian targets
/// (`\xfflprofr\x81` as the LLVM sources spell it, seen reversed on disk).
const MAGIC_64LE: [u8; 8] = *b"\x81rforpl\xff";

/// The raw format version this parser understands.
const RAW_VERSION: u64 = 10;

/// Bit 56 of the header version word: profile from IR-level
/// instrumentation (what rustc's `-Cprofile-generate` emits).
const VARIANT_MASK_IR: u64 = 1 << 56;

/// Size of one on-disk function record in bytes: six pointer-sized fields,
/// a `u32` counter count, two or three `u16` value-site counts, a `u32`
/// bitmap size, padded to 8-byte alignment.
const RECORD_SIZE: usize = 64;

/// Byte offset of the header's `NamesSize` field.
const H_NAMES_SIZE: usize = 0x48;
/// Byte offset of the header's `CountersDelta` field.
const H_COUNTERS_DELTA: usize = 0x50;
/// Total header size: 16 little-endian `u64` fields.
const HEADER_SIZE: usize = 0x80;

/// Everything that can be structurally wrong with a `.profraw` input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProfrawError {
    /// The file does not start with the 64-bit little-endian magic.
    BadMagic,
    /// The raw format version is not the one this parser understands.
    UnsupportedVersion(u64),
    /// The profile is not from IR-level instrumentation.
    NotIrProfile,
    /// The value-kind count implies a record layout we do not know.
    UnsupportedValueKinds(u64),
    /// A section extends past the end of the file.
    Truncated(&'static str),
    /// The name section is compressed (rebuild the instrumented binary
    /// with `-Cllvm-args=--enable-name-compression=false`).
    CompressedNames,
    /// A name is not valid UTF-8.
    BadName,
    /// A record's counter reference points outside the counter section.
    CounterOutOfRange {
        /// Index of the offending record in the data section.
        record: usize,
    },
    /// A record's name hash has no match in the name section.
    UnknownNameRef {
        /// Index of the offending record in the data section.
        record: usize,
        /// The unmatched 64-bit MD5 name prefix.
        name_ref: u64,
    },
    /// A record declares value-profiling sites for the vtable kind, which
    /// the text emitter does not carry.
    VTableSites {
        /// Index of the offending record in the data section.
        record: usize,
    },
}

impl fmt::Display for ProfrawError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfrawError::BadMagic => write!(f, "not a 64-bit little-endian .profraw (bad magic)"),
            ProfrawError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "raw profile version {v} (this parser understands {RAW_VERSION})"
                )
            }
            ProfrawError::NotIrProfile => write!(f, "not an IR-instrumentation profile"),
            ProfrawError::UnsupportedValueKinds(k) => {
                write!(f, "value-kind count {k} implies an unknown record layout")
            }
            ProfrawError::Truncated(section) => write!(f, "file truncated in {section} section"),
            ProfrawError::CompressedNames => write!(
                f,
                "name section is compressed; rebuild the instrumented binary with \
                 -Cllvm-args=--enable-name-compression=false"
            ),
            ProfrawError::BadName => write!(f, "function name is not valid UTF-8"),
            ProfrawError::CounterOutOfRange { record } => {
                write!(
                    f,
                    "record {record}: counter reference outside the counter section"
                )
            }
            ProfrawError::UnknownNameRef { record, name_ref } => {
                write!(
                    f,
                    "record {record}: name hash {name_ref:#x} not in the name section"
                )
            }
            ProfrawError::VTableSites { record } => {
                write!(
                    f,
                    "record {record}: vtable value-profiling sites are not supported"
                )
            }
        }
    }
}

impl std::error::Error for ProfrawError {}

fn u64_at(b: &[u8], off: usize) -> Result<u64, ProfrawError> {
    b.get(off..off + 8)
        .map(|s| u64::from_le_bytes(s.try_into().expect("8-byte slice")))
        .ok_or(ProfrawError::Truncated("header/data"))
}

fn u32_at(b: &[u8], off: usize) -> Result<u32, ProfrawError> {
    b.get(off..off + 4)
        .map(|s| u32::from_le_bytes(s.try_into().expect("4-byte slice")))
        .ok_or(ProfrawError::Truncated("data"))
}

fn u16_at(b: &[u8], off: usize) -> Result<u16, ProfrawError> {
    b.get(off..off + 2)
        .map(|s| u16::from_le_bytes(s.try_into().expect("2-byte slice")))
        .ok_or(ProfrawError::Truncated("data"))
}

/// Reads one unsigned LEB128 integer, advancing `off`.
fn leb128(b: &[u8], off: &mut usize) -> Result<u64, ProfrawError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *b.get(*off).ok_or(ProfrawError::Truncated("names"))?;
        *off += 1;
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// One function's profile as recovered from the raw file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionProfile {
    /// The PGO name (mangled symbol, possibly `filename:`-prefixed for
    /// internal-linkage functions).
    pub name: String,
    /// The structural hash profile-use matches against the rebuilt IR.
    pub hash: u64,
    /// Execution counts, in instrumentation order.
    pub counters: Vec<u64>,
    /// Declared indirect-call value-profiling sites.
    pub icall_sites: u16,
    /// Declared memory-intrinsic-size value-profiling sites.
    pub memop_sites: u16,
}

/// Parses a 64-bit little-endian version-10 `.profraw` into per-function
/// profiles. See the crate docs for the supported layout and why parsing
/// this format by hand is warranted at all.
pub fn parse_profraw(b: &[u8]) -> Result<Vec<FunctionProfile>, ProfrawError> {
    if b.get(..8) != Some(&MAGIC_64LE) {
        return Err(ProfrawError::BadMagic);
    }
    let version_word = u64_at(b, 0x08)?;
    let version = version_word & 0xff_ffff;
    if version != RAW_VERSION {
        return Err(ProfrawError::UnsupportedVersion(version));
    }
    if version_word & VARIANT_MASK_IR == 0 {
        return Err(ProfrawError::NotIrProfile);
    }
    let binary_ids_size = u64_at(b, 0x10)? as usize;
    let num_data = u64_at(b, 0x18)? as usize;
    let padding_before_counters = u64_at(b, 0x20)? as usize;
    let num_counters = u64_at(b, 0x28)? as usize;
    let padding_after_counters = u64_at(b, 0x30)? as usize;
    let num_bitmap_bytes = u64_at(b, 0x38)? as usize;
    let padding_after_bitmap = u64_at(b, 0x40)? as usize;
    let names_size = u64_at(b, H_NAMES_SIZE)? as usize;
    let counters_delta = u64_at(b, H_COUNTERS_DELTA)?;
    let value_kinds = u64_at(b, 0x78)? + 1;
    // 2 kinds (indirect call, memop size) or 3 (plus vtable targets) both
    // pad to the same 64-byte record; anything else is a layout we have
    // never seen and must not guess at.
    if !(2..=3).contains(&value_kinds) {
        return Err(ProfrawError::UnsupportedValueKinds(value_kinds));
    }

    let data_off = HEADER_SIZE + binary_ids_size;
    let counters_off = data_off + num_data * RECORD_SIZE + padding_before_counters;
    let names_off = counters_off
        + num_counters * 8
        + padding_after_counters
        + num_bitmap_bytes
        + padding_after_bitmap;
    let names_end = names_off + names_size;
    if names_end > b.len() {
        return Err(ProfrawError::Truncated("names"));
    }

    // Name section: concatenated per-module blocks of
    // (uncompressed size, compressed size, payload), names separated by
    // \x01 inside each payload. Keyed by the 64-bit MD5 prefix, which is
    // what the records' NameRef field stores.
    let mut names: HashMap<u64, &str> = HashMap::new();
    let mut pos = names_off;
    while pos < names_end {
        let uncompressed = leb128(b, &mut pos)? as usize;
        let compressed = leb128(b, &mut pos)?;
        if compressed != 0 {
            return Err(ProfrawError::CompressedNames);
        }
        let payload = b
            .get(pos..pos + uncompressed)
            .ok_or(ProfrawError::Truncated("names"))?;
        pos += uncompressed;
        for raw in payload.split(|&c| c == 1) {
            if raw.is_empty() {
                continue;
            }
            let name = std::str::from_utf8(raw).map_err(|_| ProfrawError::BadName)?;
            names.insert(md5_prefix64(raw), name);
        }
    }

    let mut out = Vec::with_capacity(num_data);
    for i in 0..num_data {
        let r = data_off + i * RECORD_SIZE;
        let name_ref = u64_at(b, r)?;
        let hash = u64_at(b, r + 8)?;
        let counter_ptr = u64_at(b, r + 16)?;
        let n = u32_at(b, r + 48)? as usize;
        let icall_sites = u16_at(b, r + 52)?;
        let memop_sites = u16_at(b, r + 54)?;
        if value_kinds == 3 && u16_at(b, r + 56)? != 0 {
            return Err(ProfrawError::VTableSites { record: i });
        }
        // CounterPtr is stored relative to its own record's address, and
        // CountersDelta relative to the first record's — so each record's
        // byte offset into the counter section regains its record index.
        let byte_off = counter_ptr
            .wrapping_sub(counters_delta)
            .wrapping_add((i * RECORD_SIZE) as u64) as usize;
        if !byte_off.is_multiple_of(8) || byte_off / 8 + n > num_counters {
            return Err(ProfrawError::CounterOutOfRange { record: i });
        }
        let name = *names.get(&name_ref).ok_or(ProfrawError::UnknownNameRef {
            record: i,
            name_ref,
        })?;
        let mut counters = Vec::with_capacity(n);
        for j in 0..n {
            counters.push(u64_at(b, counters_off + byte_off + j * 8)?);
        }
        out.push(FunctionProfile {
            name: name.to_string(),
            hash,
            counters,
            icall_sites,
            memop_sites,
        });
    }
    Ok(out)
}

/// Renders per-function profiles in LLVM's text instrumentation-profile
/// format (`llvm-profdata merge` input). Value-profiling sites are
/// declared with empty value lists so profile-use sees site counts
/// consistent with the instrumented IR.
pub fn to_text(functions: &[FunctionProfile]) -> String {
    use std::fmt::Write;

    let mut out = String::from(":ir\n");
    for f in functions {
        write!(
            out,
            "{}\n# Func Hash:\n{}\n# Num Counters:\n{}\n# Counter Values:\n",
            f.name,
            f.hash,
            f.counters.len()
        )
        .expect("writing to String cannot fail");
        for c in &f.counters {
            writeln!(out, "{c}").expect("writing to String cannot fail");
        }
        // Kind 0 = indirect call targets, kind 1 = memory-intrinsic sizes.
        let kinds = [(0u8, f.icall_sites), (1u8, f.memop_sites)];
        let populated = kinds.iter().filter(|&&(_, sites)| sites > 0).count();
        if populated > 0 {
            writeln!(out, "# Num Value Kinds:\n{populated}").expect("infallible");
            for (kind, sites) in kinds {
                if sites == 0 {
                    continue;
                }
                writeln!(out, "# ValueKind:\n{kind}\n# NumValueSites:\n{sites}")
                    .expect("infallible");
                for _ in 0..sites {
                    out.push_str("0\n");
                }
            }
        }
        out.push('\n');
    }
    out
}

/// [`parse_profraw`] + [`to_text`]: one raw profile to one text profile.
pub fn convert(raw: &[u8]) -> Result<String, ProfrawError> {
    Ok(to_text(&parse_profraw(raw)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a syntactically exact version-10 profraw from function
    /// specs: (name, hash, counters, icall sites, memop sites).
    fn synth_profraw(funcs: &[(&str, u64, &[u64], u16, u16)]) -> Vec<u8> {
        let num_data = funcs.len();
        let num_counters: usize = funcs.iter().map(|f| f.2.len()).sum();
        let names_payload: Vec<u8> = funcs
            .iter()
            .map(|f| f.0.as_bytes())
            .collect::<Vec<_>>()
            .join(&[1u8][..]);
        // Single uncompressed block: leb sizes fit a byte in tests.
        assert!(names_payload.len() < 128);
        let names_size = 2 + names_payload.len();

        let counters_delta = 0x1000u64; // arbitrary "runtime address" origin
        let mut header = Vec::new();
        header.extend_from_slice(&MAGIC_64LE);
        header.extend_from_slice(&(RAW_VERSION | VARIANT_MASK_IR).to_le_bytes());
        for field in [
            0u64,                // binary ids size
            num_data as u64,     // NumData
            0,                   // padding before counters
            num_counters as u64, // NumCounters
            0,                   // padding after counters
            0,                   // NumBitmapBytes
            0,                   // padding after bitmap
            names_size as u64,   // NamesSize
            counters_delta,      // CountersDelta
            0,                   // BitmapDelta
            0,                   // NamesDelta
            0,                   // NumVTables
            0,                   // VNamesSize
            2,                   // ValueKindLast (3 kinds)
        ] {
            header.extend_from_slice(&field.to_le_bytes());
        }
        assert_eq!(header.len(), HEADER_SIZE);

        let mut data = Vec::new();
        let mut counter_byte_off = 0usize;
        for (i, &(name, hash, counters, icall, memop)) in funcs.iter().enumerate() {
            // CounterPtr relative to this record's own address.
            let counter_ptr = counters_delta
                .wrapping_add(counter_byte_off as u64)
                .wrapping_sub((i * RECORD_SIZE) as u64);
            data.extend_from_slice(&md5_prefix64(name.as_bytes()).to_le_bytes());
            data.extend_from_slice(&hash.to_le_bytes());
            data.extend_from_slice(&counter_ptr.to_le_bytes());
            data.extend_from_slice(&[0u8; 24]); // bitmap / function / values ptrs
            data.extend_from_slice(&(counters.len() as u32).to_le_bytes());
            data.extend_from_slice(&icall.to_le_bytes());
            data.extend_from_slice(&memop.to_le_bytes());
            data.extend_from_slice(&[0u8; 8]); // vtable sites + pad + bitmap bytes
            counter_byte_off += counters.len() * 8;
        }
        assert_eq!(data.len(), num_data * RECORD_SIZE);

        let mut out = header;
        out.extend_from_slice(&data);
        for f in funcs {
            for &c in f.2 {
                out.extend_from_slice(&c.to_le_bytes());
            }
        }
        out.push(names_payload.len() as u8); // leb128 uncompressed size
        out.push(0); // leb128 compressed size = 0 (uncompressed)
        out.extend_from_slice(&names_payload);
        out
    }

    #[test]
    fn md5_prefix_matches_reference_vectors() {
        // md5("") = d41d8cd98f00b204e9800998ecf8427e; prefix read LE.
        assert_eq!(
            md5_prefix64(b""),
            u64::from_le_bytes(*b"\xd4\x1d\x8c\xd9\x8f\x00\xb2\x04")
        );
        // md5("abc") = 900150983cd24fb0d6963f7d28e17f72.
        assert_eq!(
            md5_prefix64(b"abc"),
            u64::from_le_bytes(*b"\x90\x01\x50\x98\x3c\xd2\x4f\xb0")
        );
        // A message crossing the one-block boundary (56+ bytes).
        // md5("a" x 64) = 014842d480b571495a4a0363793f7367.
        assert_eq!(
            md5_prefix64(&[b'a'; 64]),
            u64::from_le_bytes(*b"\x01\x48\x42\xd4\x80\xb5\x71\x49")
        );
    }

    #[test]
    fn round_trips_a_synthetic_profile() {
        let raw = synth_profraw(&[
            ("_ZN4main4loopE", 0xdead_beef, &[10, 0, 3], 0, 2),
            ("lib.rs:_ZN5localE", 7, &[99], 1, 0),
        ]);
        let funcs = parse_profraw(&raw).expect("synthetic profile must parse");
        assert_eq!(funcs.len(), 2);
        assert_eq!(funcs[0].name, "_ZN4main4loopE");
        assert_eq!(funcs[0].hash, 0xdead_beef);
        assert_eq!(funcs[0].counters, vec![10, 0, 3]);
        assert_eq!((funcs[0].icall_sites, funcs[0].memop_sites), (0, 2));
        assert_eq!(funcs[1].name, "lib.rs:_ZN5localE");
        assert_eq!(funcs[1].counters, vec![99]);
        assert_eq!((funcs[1].icall_sites, funcs[1].memop_sites), (1, 0));

        let text = to_text(&funcs);
        assert!(text.starts_with(":ir\n"));
        assert!(text.contains("_ZN4main4loopE\n# Func Hash:\n3735928559\n# Num Counters:\n3\n"));
        // Sites declared with empty value lists, absent kinds omitted.
        assert!(
            text.contains("# Num Value Kinds:\n1\n# ValueKind:\n1\n# NumValueSites:\n2\n0\n0\n")
        );
        assert!(text.contains("# ValueKind:\n0\n# NumValueSites:\n1\n0\n"));
    }

    #[test]
    fn rejects_what_it_cannot_parse() {
        assert_eq!(parse_profraw(b"not a profile"), Err(ProfrawError::BadMagic));

        let good = synth_profraw(&[("f", 1, &[1], 0, 0)]);

        let mut wrong_version = good.clone();
        wrong_version[8] = 9;
        assert_eq!(
            parse_profraw(&wrong_version),
            Err(ProfrawError::UnsupportedVersion(9))
        );

        let mut not_ir = good.clone();
        not_ir[15] = 0; // clear the IR bit (byte 7 of the version word)
        assert_eq!(parse_profraw(&not_ir), Err(ProfrawError::NotIrProfile));

        let mut truncated = good.clone();
        truncated.truncate(good.len() - 2);
        assert_eq!(
            parse_profraw(&truncated),
            Err(ProfrawError::Truncated("names"))
        );

        let mut compressed = good.clone();
        let names_payload_len = 1; // single name "f"
        let leb_off = good.len() - names_payload_len - 1; // compressed-size byte
        compressed[leb_off] = 5;
        assert_eq!(
            parse_profraw(&compressed),
            Err(ProfrawError::CompressedNames)
        );

        // A record whose name hash is not in the name section.
        let mut unknown = good.clone();
        unknown[HEADER_SIZE] ^= 0xff;
        assert!(matches!(
            parse_profraw(&unknown),
            Err(ProfrawError::UnknownNameRef { record: 0, .. })
        ));

        // A counter pointer outside the counter section.
        let mut oob = good;
        let ptr_off = HEADER_SIZE + 16;
        let bad_ptr = 0xffff_0000u64;
        oob[ptr_off..ptr_off + 8].copy_from_slice(&bad_ptr.to_le_bytes());
        assert_eq!(
            parse_profraw(&oob),
            Err(ProfrawError::CounterOutOfRange { record: 0 })
        );
    }

    #[test]
    fn errors_render_actionable_messages() {
        let e = ProfrawError::CompressedNames.to_string();
        assert!(e.contains("enable-name-compression=false"));
        assert!(ProfrawError::UnsupportedVersion(11)
            .to_string()
            .contains("11"));
    }
}

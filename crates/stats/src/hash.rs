//! A fast, deterministic hasher for simulator-internal maps.
//!
//! The simulator keys hash maps with small integers (request ids, TLB
//! tags). The standard library's default SipHash is DoS-resistant but
//! costs tens of nanoseconds per lookup — real money on a path exercised
//! millions of times per simulated second, for maps whose keys the
//! simulator itself generates. [`FastHasher`] is an FxHash-style
//! multiply-rotate hasher: a few cycles per word, fully deterministic
//! (no per-process random seed), which also keeps simulation behaviour
//! reproducible across runs by construction.
//!
//! ```
//! use smt_stats::hash::FastHashMap;
//!
//! let mut m: FastHashMap<u64, &str> = FastHashMap::default();
//! m.insert(7, "seven");
//! assert_eq!(m.get(&7), Some(&"seven"));
//! ```

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from FxHash (the golden-ratio-derived odd constant also used
/// by rustc's internal hasher).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// An FxHash-style hasher: `state = rotl5(state ^ word) * SEED` per word.
///
/// Not collision-resistant against adversarial keys — use only for maps
/// whose keys the simulator generates itself.
#[derive(Debug, Default, Clone, Copy)]
pub struct FastHasher(u64);

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `HashMap` keyed by the deterministic [`FastHasher`].
pub type FastHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// `HashSet` keyed by the deterministic [`FastHasher`].
pub type FastHashSet<K> = HashSet<K, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips() {
        let mut m: FastHashMap<(u8, u64), u64> = FastHashMap::default();
        for i in 0..1000u64 {
            m.insert((i as u8, i * 3), i);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i as u8, i * 3)), Some(&i));
        }
    }

    #[test]
    fn deterministic_across_instances() {
        use std::hash::Hash;
        let h = |v: u64| {
            let mut s = FastHasher::default();
            v.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43), "degenerate hasher");
    }

    #[test]
    fn spreads_small_integers() {
        // Sequential ids step the top bits by a fixed odd fraction of the
        // range, so perfect balls-in-bins spread is not expected — but the
        // hasher must not collapse them into a handful of buckets.
        let hashes: FastHashSet<u64> = (0..1024u64)
            .map(|v| {
                use std::hash::Hash;
                let mut s = FastHasher::default();
                v.hash(&mut s);
                s.finish() >> 54 // top 10 bits
            })
            .collect();
        assert!(hashes.len() > 128, "only {} distinct buckets", hashes.len());
    }
}

//! A minimal, dependency-free JSON value: build, render, parse.
//!
//! The experiment and benchmark binaries emit machine-readable results
//! (`smt_exp --json`, `smt_bench --json`) with a versioned schema; this
//! module is the shared serializer so every producer escapes strings and
//! formats numbers identically, and the parser lets consumers (and tests)
//! round-trip those documents without external crates.
//!
//! Only what the harness needs is implemented: objects preserve insertion
//! order, numbers are `f64`/`u64`/`i64`, non-finite floats render as
//! `null`, and the parser accepts exactly the JSON grammar (no comments,
//! no trailing commas).
//!
//! # Examples
//!
//! ```
//! use smt_stats::json::Json;
//!
//! let doc = Json::object([
//!     ("schema_version", Json::from(1u64)),
//!     ("ipc", Json::from(5.4)),
//!     ("scheme", Json::from("ICOUNT.2.8")),
//! ]);
//! let text = doc.render();
//! assert_eq!(text, r#"{"schema_version":1,"ipc":5.4,"scheme":"ICOUNT.2.8"}"#);
//! let back = Json::parse(&text).unwrap();
//! assert_eq!(back.get("scheme").and_then(Json::as_str), Some("ICOUNT.2.8"));
//! ```

use std::fmt;

/// A JSON value. Objects keep their insertion order so rendered documents
/// are deterministic and diffable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number. Integers that fit exactly render without a decimal
    /// point; non-finite values render as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object: ordered `(key, value)` pairs.
    Object(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl<T: Into<Json>> FromIterator<T> for Json {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Json {
        Json::Array(iter.into_iter().map(Into::into).collect())
    }
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn object<K: Into<String>, V: Into<Json>>(pairs: impl IntoIterator<Item = (K, V)>) -> Json {
        Json::Object(
            pairs
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        )
    }

    /// Builds an array from values.
    pub fn array<V: Into<Json>>(items: impl IntoIterator<Item = V>) -> Json {
        items.into_iter().collect()
    }

    /// Looks a key up in an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number ≥ 0.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The object's ordered `(key, value)` pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The elements, if the value is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        self.to_string()
    }

    /// Renders the value as indented JSON (two-space indent), for files a
    /// human may read or diff.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth + 1);
        match self {
            Json::Array(items) if !items.is_empty() => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&pad);
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
                out.push(']');
            }
            Json::Object(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&pad);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
                out.push('}');
            }
            other => out.push_str(&other.to_string()),
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first syntax error, or
    /// of trailing non-whitespace after the top-level value.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut buf = String::new();
        match self {
            Json::Null => buf.push_str("null"),
            Json::Bool(b) => buf.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(&mut buf, *n),
            Json::Str(s) => write_escaped(&mut buf, s),
            Json::Array(items) => {
                buf.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        buf.push(',');
                    }
                    buf.push_str(&v.to_string());
                }
                buf.push(']');
            }
            Json::Object(pairs) => {
                buf.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        buf.push(',');
                    }
                    write_escaped(&mut buf, k);
                    buf.push(':');
                    buf.push_str(&v.to_string());
                }
                buf.push('}');
            }
        }
        f.write_str(&buf)
    }
}

// ---- parser ----------------------------------------------------------

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", b as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("sliced on ASCII boundaries");
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number '{text}' at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        // Surrogate pairs are not needed by our own output;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are valid).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid UTF-8")?;
                let c = rest.chars().next().expect("non-empty checked above");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::from(3u64).render(), "3");
        assert_eq!(Json::from(-2i64).render(), "-2");
        assert_eq!(Json::from(2.5).render(), "2.5");
        assert_eq!(Json::from(f64::NAN).render(), "null");
        assert_eq!(Json::from("a\"b\\c\nd").render(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn object_preserves_order_and_gets() {
        let o = Json::object([("b", 1u64), ("a", 2u64)]);
        assert_eq!(o.render(), r#"{"b":1,"a":2}"#);
        assert_eq!(o.get("a").and_then(Json::as_u64), Some(2));
        assert_eq!(o.get("missing"), None);
    }

    #[test]
    fn round_trips_nested_documents() {
        let doc = Json::object([
            ("version", Json::from(1u64)),
            (
                "cells",
                Json::array([
                    Json::object([("ipc", Json::from(5.41)), ("ok", Json::Bool(true))]),
                    Json::Null,
                ]),
            ),
            ("label", Json::from("ICOUNT.2.8 — warm")),
        ]);
        for text in [doc.render(), doc.render_pretty()] {
            let back = Json::parse(&text).unwrap();
            assert_eq!(back, doc, "round-trip failed for {text}");
        }
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = Json::parse(r#""tab\there A""#).unwrap();
        assert_eq!(v.as_str(), Some("tab\there A"));
        let v = Json::parse("\"caché\"").unwrap();
        assert_eq!(v.as_str(), Some("caché"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "1 2",
            "{\"a\":1,}",
            "\"unterminated",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted malformed: {bad:?}");
        }
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Json::from(3.5).as_u64(), None);
        assert_eq!(Json::from(-1i64).as_u64(), None);
        assert_eq!(Json::from(7u64).as_u64(), Some(7));
    }

    #[test]
    fn pretty_rendering_is_indented_and_parseable() {
        let doc = Json::object([
            ("a", Json::array([1u64, 2u64])),
            ("b", Json::object::<&str, Json>([])),
        ]);
        let pretty = doc.render_pretty();
        assert!(pretty.contains("  \"a\": ["));
        assert_eq!(Json::parse(&pretty).unwrap(), doc);
    }
}

//! A work-stealing scheduler for sweeps of independent jobs.
//!
//! Both experiment studies and the fleet driver (`smt-core::fleet`) run
//! many independent simulations whose per-item costs are heavily skewed —
//! a warm cell forks off a checkpoint in about a millisecond while a cold
//! cell simulates its whole warmup, an order of magnitude longer. A static
//! chunking of the index space strands that skew on whichever worker drew
//! the expensive chunk; the [`WorkQueue`] here instead hands out
//! shrinking batches from a single atomic cursor (guided
//! self-scheduling), so early claims are large enough to amortize the
//! atomic traffic and the tail degrades to single items that any idle
//! worker can steal.
//!
//! Two properties matter more than the stealing itself:
//!
//! * **Deterministic output order.** [`work_steal_map`] returns results
//!   in job-index order no matter which worker ran which item or in what
//!   order claims interleaved. Steal order must never leak into results —
//!   the studies byte-compare their JSON across `--jobs` values.
//! * **No per-item locking.** Workers accumulate `(index, result)` pairs
//!   locally and merge once when they run out of work, so the only shared
//!   write traffic in the steady state is the claim cursor itself.
//!
//! # Examples
//!
//! ```
//! use smt_stats::sched::work_steal_map;
//!
//! let squares = work_steal_map(5, 2, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16]);
//! ```

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolves a `--jobs` style worker count: `0` means one worker per
/// available core; the pool never exceeds `count` jobs and is never empty.
pub fn resolve_workers(jobs: usize, count: usize) -> usize {
    let workers = if jobs > 0 {
        jobs
    } else {
        std::thread::available_parallelism().map_or(1, usize::from)
    };
    workers.min(count).max(1)
}

/// A claimable queue over the index space `0..count`: one atomic cursor
/// that workers pull shrinking batches from.
///
/// Each [`claim`](WorkQueue::claim) hands out `remaining / (2 × workers)`
/// indices (at least one), so the first claims split the space coarsely
/// and the tail is handed out item by item — the classic guided
/// self-scheduling compromise between atomic-operation overhead and load
/// balance under skewed per-item costs.
#[derive(Debug)]
pub struct WorkQueue {
    next: AtomicUsize,
    count: usize,
    shrink: usize,
}

impl WorkQueue {
    /// A queue over `0..count` tuned for `workers` concurrent claimants.
    pub fn new(count: usize, workers: usize) -> WorkQueue {
        WorkQueue {
            next: AtomicUsize::new(0),
            count,
            shrink: workers.max(1) * 2,
        }
    }

    /// Total number of indices the queue hands out.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Claims the next batch of indices, or `None` when the queue is
    /// drained. Batches are contiguous, disjoint, and cover `0..count`
    /// exactly across all claimants.
    pub fn claim(&self) -> Option<Range<usize>> {
        // The cursor publishes no data — every job is independent and the
        // results flow back through the caller's own structures — so
        // relaxed ordering suffices; the CAS only has to be atomic.
        let mut start = self.next.load(Ordering::Relaxed);
        loop {
            if start >= self.count {
                return None;
            }
            let take = ((self.count - start) / self.shrink).max(1);
            match self.next.compare_exchange_weak(
                start,
                start + take,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(start..start + take),
                Err(current) => start = current,
            }
        }
    }
}

/// Runs `count` independent jobs across a pool of OS threads and returns
/// the results in job-index order. `jobs == 0` uses one worker per
/// available core; the pool never exceeds `count`.
///
/// Work is distributed through a [`WorkQueue`], so skewed per-item costs
/// rebalance across workers instead of stranding on whichever worker a
/// static chunking would have assigned them to. Results are accumulated
/// per worker and merged after the pool joins; output order is the job
/// index order regardless of worker count or claim interleaving.
pub fn work_steal_map<T, F>(count: usize, jobs: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = resolve_workers(jobs, count);
    if workers <= 1 {
        return (0..count).map(run).collect();
    }
    let queue = WorkQueue::new(count, workers);
    let done: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(count));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local: Vec<(usize, T)> = Vec::new();
                while let Some(batch) = queue.claim() {
                    for i in batch {
                        local.push((i, run(i)));
                    }
                }
                if !local.is_empty() {
                    done.lock().expect("no panics while merging").extend(local);
                }
            });
        }
    });
    let mut done = done.into_inner().expect("workers joined");
    done.sort_unstable_by_key(|&(i, _)| i);
    assert_eq!(
        done.len(),
        count,
        "every job index must complete exactly once"
    );
    done.into_iter()
        .enumerate()
        .map(|(expect, (i, result))| {
            debug_assert_eq!(expect, i);
            result
        })
        .collect()
}

/// Like [`work_steal_map`], but each job runs under
/// [`std::panic::catch_unwind`]: a panicking job yields
/// `Err(panic message)` in its output slot instead of tearing down the
/// pool (and poisoning the merge lock) the way an escaped panic would.
/// Healthy jobs are unaffected — their results land in the same
/// index-ordered slots a fault-free [`work_steal_map`] run would produce.
///
/// The panic payload is rendered to a `String` when it is one (or a
/// `&str`), which covers every `panic!`/`assert!` in practice; exotic
/// [`std::panic::panic_any`] payloads degrade to a fixed placeholder.
/// The process panic hook still runs for each caught panic, so callers
/// that inject panics on purpose may want to silence it around the call.
pub fn work_steal_map_catch<T, F>(count: usize, jobs: usize, run: F) -> Vec<Result<T, String>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    work_steal_map(count, jobs, move |i| {
        // The closure only borrows `run`; any broken invariants a panic
        // could leave behind are confined to the job's own result, which
        // is replaced by the error — hence `AssertUnwindSafe`.
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(i))).map_err(|payload| {
            if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "opaque panic payload".to_string()
            }
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_batches_cover_the_space_disjointly() {
        let queue = WorkQueue::new(100, 3);
        let mut seen = [false; 100];
        while let Some(batch) = queue.claim() {
            for i in batch {
                assert!(!seen[i], "index {i} claimed twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every index claimed");
        assert!(queue.claim().is_none(), "drained queue stays drained");
    }

    #[test]
    fn queue_batches_shrink_toward_the_tail() {
        let queue = WorkQueue::new(64, 2);
        let first = queue.claim().unwrap();
        assert!(first.len() > 1, "early claims amortize the atomic traffic");
        let mut last = first;
        while let Some(batch) = queue.claim() {
            last = batch;
        }
        assert_eq!(last.len(), 1, "the tail is handed out item by item");
    }

    #[test]
    fn empty_and_degenerate_counts() {
        assert!(work_steal_map(0, 4, |i| i).is_empty());
        assert_eq!(work_steal_map(1, 8, |i| i + 7), vec![7]);
        assert_eq!(resolve_workers(0, 0), 1);
        assert_eq!(resolve_workers(9, 3), 3);
        assert_eq!(resolve_workers(2, 100), 2);
    }

    #[test]
    fn output_order_is_deterministic_across_worker_counts() {
        let expect: Vec<usize> = (0..97).map(|i| i * i).collect();
        for jobs in [1, 2, 3, 8] {
            assert_eq!(work_steal_map(97, jobs, |i| i * i), expect, "jobs={jobs}");
        }
    }

    /// Runs `f` with the process panic hook silenced, restoring it after.
    /// The catch tests below panic on purpose dozens of times; without
    /// this the test log drowns in backtraces.
    fn quiet_panics<R>(f: impl FnOnce() -> R) -> R {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(hook);
        out
    }

    #[test]
    fn catch_variant_isolates_panicking_jobs() {
        quiet_panics(|| {
            let run = |i: usize| {
                if i % 5 == 3 {
                    panic!("job {i} exploded");
                }
                i * 2
            };
            for jobs in [1, 2, 8] {
                let out = work_steal_map_catch(23, jobs, run);
                assert_eq!(out.len(), 23, "jobs={jobs}");
                for (i, r) in out.iter().enumerate() {
                    if i % 5 == 3 {
                        assert_eq!(r.as_ref().unwrap_err(), &format!("job {i} exploded"));
                    } else {
                        assert_eq!(*r.as_ref().unwrap(), i * 2, "jobs={jobs}");
                    }
                }
            }
        });
    }

    #[test]
    fn catch_variant_renders_str_and_opaque_payloads() {
        quiet_panics(|| {
            let out = work_steal_map_catch(2, 1, |i| {
                if i == 0 {
                    std::panic::panic_any(42u32);
                }
                panic!("plain literal")
            });
            assert_eq!(out[0].as_ref().unwrap_err(), "opaque panic payload");
            assert_eq!(out[1].as_ref().unwrap_err(), "plain literal");
        });
    }

    #[test]
    fn catch_variant_with_all_jobs_panicking_still_terminates() {
        quiet_panics(|| {
            for jobs in [1, 4] {
                let out: Vec<Result<(), String>> =
                    work_steal_map_catch(17, jobs, |i| panic!("boom {i}"));
                assert!(out.iter().all(|r| r.is_err()), "jobs={jobs}");
            }
        });
    }

    #[test]
    fn skewed_item_costs_complete_with_deterministic_order() {
        // The pattern the studies produce: most items are cheap (a warm
        // cell forking a checkpoint), a few are an order of magnitude
        // more expensive (a cold cell simulating its warmup). All items
        // must complete and the output must be index-ordered regardless
        // of which worker stole what.
        let cost_ms = |i: usize| if i.is_multiple_of(7) { 10 } else { 1 };
        let run = |i: usize| {
            std::thread::sleep(std::time::Duration::from_millis(cost_ms(i)));
            i * 3 + 1
        };
        let expect: Vec<usize> = (0..29).map(|i| i * 3 + 1).collect();
        for jobs in [2, 4, 8] {
            assert_eq!(work_steal_map(29, jobs, run), expect, "jobs={jobs}");
        }
    }
}

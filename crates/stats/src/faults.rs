//! Deterministic fault injection for robustness testing (behind the
//! `fault-inject` cargo feature).
//!
//! The sweep layer (`smt-experiments`) claims to contain cell panics,
//! retry transient I/O, and degrade gracefully on corrupt cache or
//! journal entries. Those claims are only testable if faults can be
//! produced *on demand, deterministically, at a chosen cell* — a real
//! disk does not flip bits on cue. This module is a process-global
//! registry of armed faults keyed by an injection **site** (a static
//! string naming the code location, e.g. `"cell"` or `"journal-write"`)
//! and a **key** (the cell or spec index the caller passes). Production
//! code places cheap probe calls at its fault-sensitive points; each
//! probe consults the registry and either does nothing (the overwhelmingly
//! common case) or produces the armed fault and decrements its shot
//! count.
//!
//! Faults are armed a bounded number of `times`, so a transient error can
//! be injected exactly N times — fewer than the retry budget to prove the
//! retry path recovers, or more to prove the typed failure surfaces.
//!
//! The registry is global mutable state: tests that arm faults must
//! serialize themselves (a `static Mutex` in the test module) and call
//! [`clear`] when done. None of this module exists without the
//! `fault-inject` feature, and the probe points in production crates
//! compile to nothing, so release artifacts carry zero overhead.

use std::io;
use std::sync::Mutex;

/// What an armed fault does when its site/key probe fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The probe panics (exercises `catch_unwind` isolation).
    Panic,
    /// The probe returns a *transient* I/O error
    /// ([`io::ErrorKind::Interrupted`]) that a bounded-backoff retry loop
    /// is expected to absorb.
    IoTransient,
    /// The probe returns a hard I/O error that survives retries.
    Io,
    /// The probe flips one byte of the buffer passed to
    /// [`corrupt_point`] (exercises checksum/typed-corruption paths).
    Corrupt,
}

/// One armed fault: fires on matching `(site, key)` probes until its
/// remaining shot count hits zero. `key == None` matches any key.
#[derive(Debug)]
struct Armed {
    site: String,
    key: Option<u64>,
    kind: FaultKind,
    remaining: usize,
}

static ARMED: Mutex<Vec<Armed>> = Mutex::new(Vec::new());

/// Arms a fault: the next `times` probes matching `site` (and `key`, when
/// `Some`) produce `kind`. Multiple armed faults coexist; the first match
/// in arming order wins each probe.
pub fn arm(site: &str, key: Option<u64>, kind: FaultKind, times: usize) {
    let mut armed = ARMED.lock().expect("fault registry lock");
    armed.push(Armed {
        site: site.to_string(),
        key,
        kind,
        remaining: times,
    });
}

/// Disarms every fault. Tests call this on entry and exit so state never
/// leaks between serialized tests.
pub fn clear() {
    ARMED.lock().expect("fault registry lock").clear();
}

/// Total remaining shots across all armed faults (lets a test assert
/// every injected fault actually fired).
pub fn remaining_shots() -> usize {
    ARMED
        .lock()
        .expect("fault registry lock")
        .iter()
        .map(|a| a.remaining)
        .sum()
}

/// Probe for [`FaultKind::Panic`]: panics with a deterministic message if
/// a matching panic fault is armed. Other fault kinds do not fire here.
pub fn panic_point(site: &str, key: u64) {
    if matches!(fire_of(site, key, FaultKind::Panic), Some(FaultKind::Panic)) {
        panic!("injected panic at {site}#{key}");
    }
}

/// Probe for I/O faults: returns the armed transient or hard error, if
/// any. Call *inside* the retried operation so retries re-probe.
pub fn io_point(site: &str, key: u64) -> io::Result<()> {
    if let Some(kind) = fire_of2(site, key, FaultKind::IoTransient, FaultKind::Io) {
        return Err(match kind {
            FaultKind::IoTransient => io::Error::new(
                io::ErrorKind::Interrupted,
                format!("injected transient I/O fault at {site}#{key}"),
            ),
            _ => io::Error::other(format!("injected hard I/O fault at {site}#{key}")),
        });
    }
    Ok(())
}

/// Probe for [`FaultKind::Corrupt`]: flips one byte in the middle of
/// `bytes` if a matching corruption fault is armed.
pub fn corrupt_point(site: &str, key: u64, bytes: &mut [u8]) {
    if matches!(
        fire_of(site, key, FaultKind::Corrupt),
        Some(FaultKind::Corrupt)
    ) && !bytes.is_empty()
    {
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
    }
}

/// Consumes one shot of the first matching fault **of the given kind**,
/// leaving faults of other kinds (and their shot counts) untouched.
fn fire_of(site: &str, key: u64, kind: FaultKind) -> Option<FaultKind> {
    fire_matching(site, key, |k| k == kind)
}

/// Like [`fire_of`] for either of two kinds.
fn fire_of2(site: &str, key: u64, a: FaultKind, b: FaultKind) -> Option<FaultKind> {
    fire_matching(site, key, |k| k == a || k == b)
}

fn fire_matching(site: &str, key: u64, want: impl Fn(FaultKind) -> bool) -> Option<FaultKind> {
    let mut armed = ARMED.lock().expect("fault registry lock");
    let hit = armed.iter_mut().find(|a| {
        a.remaining > 0 && want(a.kind) && a.site == site && a.key.is_none_or(|k| k == key)
    })?;
    hit.remaining -= 1;
    Some(hit.kind)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global; these tests serialize on one lock.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn shots_are_bounded_and_key_scoped() {
        let _g = LOCK.lock().unwrap();
        clear();
        arm("write", Some(3), FaultKind::IoTransient, 2);
        assert!(io_point("write", 1).is_ok(), "other keys unaffected");
        assert!(io_point("read", 3).is_ok(), "other sites unaffected");
        let e = io_point("write", 3).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::Interrupted);
        assert!(io_point("write", 3).is_err(), "second shot");
        assert!(io_point("write", 3).is_ok(), "shots exhausted");
        assert_eq!(remaining_shots(), 0);
        clear();
    }

    #[test]
    fn wildcard_key_matches_everything() {
        let _g = LOCK.lock().unwrap();
        clear();
        arm("read", None, FaultKind::Io, 1);
        let e = io_point("read", 42).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::Other);
        clear();
    }

    #[test]
    fn panic_probe_panics_with_deterministic_message() {
        let _g = LOCK.lock().unwrap();
        clear();
        arm("cell", Some(7), FaultKind::Panic, 1);
        panic_point("cell", 6); // does not fire
        let err = std::panic::catch_unwind(|| panic_point("cell", 7)).unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert_eq!(msg, "injected panic at cell#7");
        clear();
    }

    #[test]
    fn corruption_flips_exactly_one_byte_once() {
        let _g = LOCK.lock().unwrap();
        clear();
        arm("load", Some(0), FaultKind::Corrupt, 1);
        let mut buf = vec![0u8; 9];
        corrupt_point("load", 0, &mut buf);
        assert_eq!(buf.iter().filter(|&&b| b != 0).count(), 1);
        let snapshot = buf.clone();
        corrupt_point("load", 0, &mut buf);
        assert_eq!(buf, snapshot, "single shot");
        clear();
    }

    #[test]
    fn kind_filtered_probes_do_not_eat_each_others_shots() {
        let _g = LOCK.lock().unwrap();
        clear();
        arm("cell", Some(1), FaultKind::Panic, 1);
        assert!(io_point("cell", 1).is_ok(), "io probe ignores panic fault");
        let mut b = [1u8; 4];
        corrupt_point("cell", 1, &mut b);
        assert_eq!(b, [1u8; 4], "corrupt probe ignores panic fault");
        assert_eq!(remaining_shots(), 1, "panic shot still armed");
        clear();
    }
}

//! Statistics primitives and text-table rendering for the SMT simulator.
//!
//! The pipeline model and the experiment harness both need the same small
//! vocabulary: event/ratio counters, running means, small histograms, named
//! data series (one per figure line), and fixed-width text tables that can
//! be diffed against the paper's tables.
//!
//! # Examples
//!
//! ```
//! use smt_stats::Ratio;
//!
//! let mut miss_rate = Ratio::new();
//! for i in 0..100 {
//!     miss_rate.record(i % 10 == 0);
//! }
//! assert_eq!(miss_rate.percent(), 10.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binio;
#[cfg(feature = "fault-inject")]
pub mod faults;
pub mod hash;
pub mod json;
pub mod sched;

use std::fmt;
use std::fmt::Write as _;

/// A hit/total style ratio counter (miss rates, prediction rates, ...).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Ratio {
    /// Number of events for which the tracked condition held.
    pub hits: u64,
    /// Total number of events observed.
    pub total: u64,
}

impl Ratio {
    /// Creates an empty ratio.
    pub fn new() -> Ratio {
        Ratio::default()
    }

    /// Records one event; `hit` says whether the tracked condition held.
    #[inline]
    pub fn record(&mut self, hit: bool) {
        self.total += 1;
        self.hits += u64::from(hit);
    }

    /// Adds `hits` out of `total` events in bulk.
    #[inline]
    pub fn add(&mut self, hits: u64, total: u64) {
        self.hits += hits;
        self.total += total;
    }

    /// The fraction of events for which the condition held (0.0 when empty).
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }

    /// The ratio expressed as a percentage.
    pub fn percent(&self) -> f64 {
        self.fraction() * 100.0
    }

    /// Merges another ratio into this one.
    pub fn merge(&mut self, other: &Ratio) {
        self.hits += other.hits;
        self.total += other.total;
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}% ({}/{})", self.percent(), self.hits, self.total)
    }
}

/// An incrementally updated arithmetic mean.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningMean {
    sum: f64,
    count: u64,
}

impl RunningMean {
    /// Creates an empty mean.
    pub fn new() -> RunningMean {
        RunningMean::default()
    }

    /// Adds one sample.
    #[inline]
    pub fn record(&mut self, sample: f64) {
        self.sum += sample;
        self.count += 1;
    }

    /// The mean of all recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }
}

/// A small fixed-bucket histogram over `0..=max` with an overflow bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram covering values `0..=max`; larger values land in
    /// the final (overflow) bucket.
    pub fn new(max: usize) -> Histogram {
        Histogram {
            buckets: vec![0; max + 2],
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: usize) {
        let idx = value.min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
    }

    /// Count in the bucket for `value` (overflow bucket for large values).
    pub fn count(&self, value: usize) -> u64 {
        self.buckets[value.min(self.buckets.len() - 1)]
    }

    /// Total number of samples.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean of recorded samples, treating overflow samples as `max + 1`.
    pub fn mean(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let sum: f64 = self
            .buckets
            .iter()
            .enumerate()
            .map(|(v, &c)| v as f64 * c as f64)
            .sum();
        sum / total as f64
    }
}

/// A named series of `(x, y)` points — one line of a paper figure.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Series {
    /// Line label, e.g. `"ICOUNT.2.8"`.
    pub name: String,
    /// `(x, y)` points, e.g. `(threads, IPC)`.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series with the given name.
    pub fn new(name: impl Into<String>) -> Series {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Appends one point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// The `y` value at the given `x`, if present.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points.iter().find(|(px, _)| *px == x).map(|(_, y)| *y)
    }

    /// The maximum `y` value in the series, if non-empty.
    pub fn y_max(&self) -> Option<f64> {
        self.points.iter().map(|&(_, y)| y).fold(None, |acc, y| {
            Some(match acc {
                None => y,
                Some(m) => m.max(y),
            })
        })
    }
}

/// Renders a set of series as a fixed-width text table: one row per distinct
/// `x`, one column per series. Useful for printing figure data.
pub fn render_series_table(x_label: &str, series: &[Series]) -> String {
    let mut xs: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|&(x, _)| x))
        .collect();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN x values"));
    xs.dedup();

    let mut table = TextTable::new();
    let mut header = vec![x_label.to_string()];
    header.extend(series.iter().map(|s| s.name.clone()));
    table.header(header);
    for x in xs {
        let mut row = vec![format_num(x)];
        for s in series {
            row.push(match s.y_at(x) {
                Some(y) => format!("{:.2}", y),
                None => "-".to_string(),
            });
        }
        table.row(row);
    }
    table.to_string()
}

fn format_num(x: f64) -> String {
    if x.fract() == 0.0 {
        format!("{}", x as i64)
    } else {
        format!("{:.2}", x)
    }
}

/// A simple fixed-width text table builder.
///
/// The first column is left-aligned; all other columns are right-aligned,
/// which matches how the paper's tables read.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates an empty table.
    pub fn new() -> TextTable {
        TextTable::default()
    }

    /// Sets the header row.
    pub fn header(&mut self, cells: Vec<String>) -> &mut TextTable {
        self.header = cells;
        self
    }

    /// Appends a data row.
    pub fn row(&mut self, cells: Vec<String>) -> &mut TextTable {
        self.rows.push(cells);
        self
    }

    /// Appends a row from string slices.
    pub fn row_strs(&mut self, cells: &[&str]) -> &mut TextTable {
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as comma-separated values (header included).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |cell: &str| {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        if !self.header.is_empty() {
            let cells: Vec<String> = self.header.iter().map(|c| esc(c)).collect();
            let _ = writeln!(out, "{}", cells.join(","));
        }
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|c| esc(c)).collect();
            let _ = writeln!(out, "{}", cells.join(","));
        }
        out
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        for row in std::iter::once(&self.header).chain(self.rows.iter()) {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, row: &[String]| -> fmt::Result {
            for (i, w) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = row.get(i).unwrap_or(&empty);
                if i == 0 {
                    write!(f, "{:<width$}", cell, width = w)?;
                } else {
                    write!(f, "  {:>width$}", cell, width = w)?;
                }
            }
            writeln!(f)
        };
        if !self.header.is_empty() {
            write_row(f, &self.header)?;
            let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
            writeln!(f, "{}", "-".repeat(total))?;
        }
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_basics() {
        let mut r = Ratio::new();
        assert_eq!(r.fraction(), 0.0);
        r.record(true);
        r.record(false);
        r.record(false);
        r.record(true);
        assert_eq!(r.percent(), 50.0);
        r.add(2, 4);
        assert_eq!(r.hits, 4);
        assert_eq!(r.total, 8);
    }

    #[test]
    fn ratio_merge() {
        let mut a = Ratio { hits: 1, total: 4 };
        let b = Ratio { hits: 3, total: 4 };
        a.merge(&b);
        assert_eq!(a.fraction(), 0.5);
    }

    #[test]
    fn ratio_display_is_nonempty() {
        let r = Ratio { hits: 1, total: 3 };
        let s = r.to_string();
        assert!(s.contains("1/3"));
    }

    #[test]
    fn running_mean() {
        let mut m = RunningMean::new();
        assert_eq!(m.mean(), 0.0);
        for v in [1.0, 2.0, 3.0, 4.0] {
            m.record(v);
        }
        assert_eq!(m.mean(), 2.5);
        assert_eq!(m.count(), 4);
        assert_eq!(m.sum(), 10.0);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(4);
        for v in [0, 1, 1, 4, 9, 100] {
            h.record(v);
        }
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(1), 2);
        assert_eq!(h.count(4), 1);
        // 9 and 100 land in the overflow bucket (treated as 5).
        assert_eq!(h.count(5), 2);
        assert_eq!(h.total(), 6);
        assert!(h.mean() > 0.0);
    }

    #[test]
    fn histogram_empty_mean_is_zero() {
        let h = Histogram::new(4);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn series_points_and_lookup() {
        let mut s = Series::new("ICOUNT.2.8");
        s.push(1.0, 2.1);
        s.push(8.0, 5.4);
        assert_eq!(s.y_at(8.0), Some(5.4));
        assert_eq!(s.y_at(2.0), None);
        assert_eq!(s.y_max(), Some(5.4));
    }

    #[test]
    fn series_table_renders_all_lines() {
        let mut a = Series::new("RR.1.8");
        a.push(1.0, 2.1);
        a.push(8.0, 3.9);
        let mut b = Series::new("ICOUNT.2.8");
        b.push(8.0, 5.4);
        let out = render_series_table("threads", &[a, b]);
        assert!(out.contains("RR.1.8"));
        assert!(out.contains("ICOUNT.2.8"));
        assert!(out.contains("5.40"));
        // x=1 exists only for series a; series b shows "-".
        assert!(out.lines().any(|l| l.starts_with('1') && l.contains('-')));
    }

    #[test]
    fn text_table_alignment_and_csv() {
        let mut t = TextTable::new();
        t.header(vec!["metric".into(), "1".into(), "8".into()]);
        t.row_strs(&["ipc", "2.10", "5.40"]);
        t.row_strs(&["miss,rate", "2.5%", "14.1%"]);
        let s = t.to_string();
        assert!(s.contains("metric"));
        assert!(s.contains("5.40"));
        let csv = t.to_csv();
        assert!(csv.starts_with("metric,1,8"));
        assert!(csv.contains("\"miss,rate\""));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }
}

//! Hand-rolled little-endian binary serialization with an integrity
//! checksum, used by the checkpoint subsystem (`smt-core::checkpoint`).
//!
//! The workspace is dependency-free by design, so instead of `serde` the
//! state-owning crates write their state field by field through a
//! [`BinWriter`] and read it back through a [`BinReader`]. Both sides
//! accumulate an FNV-1a checksum over every payload byte; [`BinWriter::finish`]
//! appends the checksum as an 8-byte trailer and [`BinReader::finish`]
//! verifies it, so arbitrary bit flips anywhere in the payload surface as a
//! clean [`std::io::ErrorKind::InvalidData`] error instead of silently
//! corrupt state. Truncation surfaces as
//! [`std::io::ErrorKind::UnexpectedEof`] from whichever read hits the end.
//!
//! All integers are little-endian. Lengths are `u64`. Booleans are one byte
//! (`0` or `1`; anything else is rejected). There is intentionally no
//! self-describing structure — both sides must agree on the field order,
//! which the checkpoint format version in the file header pins.
//!
//! # Examples
//!
//! ```
//! use smt_stats::binio::{BinReader, BinWriter};
//!
//! let mut buf = Vec::new();
//! let mut w = BinWriter::new(&mut buf);
//! w.u32(7).unwrap();
//! w.bytes(b"state").unwrap();
//! w.finish().unwrap();
//!
//! let mut r = BinReader::new(&buf[..]);
//! assert_eq!(r.u32().unwrap(), 7);
//! let mut s = [0u8; 5];
//! r.bytes(&mut s).unwrap();
//! r.finish().unwrap(); // checksum verified
//! ```

use std::io::{self, Read, Write};

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into a running FNV-1a checksum.
#[inline]
fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A checksumming little-endian binary writer.
#[derive(Debug)]
pub struct BinWriter<W: Write> {
    inner: W,
    checksum: u64,
}

impl<W: Write> BinWriter<W> {
    /// Wraps a writer; the checksum starts at the FNV-1a offset basis.
    pub fn new(inner: W) -> BinWriter<W> {
        BinWriter {
            inner,
            checksum: FNV_OFFSET,
        }
    }

    /// Writes raw bytes (checksummed).
    pub fn bytes(&mut self, b: &[u8]) -> io::Result<()> {
        self.checksum = fnv1a(self.checksum, b);
        self.inner.write_all(b)
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) -> io::Result<()> {
        self.bytes(&[v])
    }

    /// Writes a little-endian `u16`.
    pub fn u16(&mut self, v: u16) -> io::Result<()> {
        self.bytes(&v.to_le_bytes())
    }

    /// Writes a little-endian `u32`.
    pub fn u32(&mut self, v: u32) -> io::Result<()> {
        self.bytes(&v.to_le_bytes())
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) -> io::Result<()> {
        self.bytes(&v.to_le_bytes())
    }

    /// Writes a boolean as one byte (`0` or `1`).
    pub fn bool(&mut self, v: bool) -> io::Result<()> {
        self.u8(u8::from(v))
    }

    /// Writes a collection length as a `u64`.
    pub fn len(&mut self, n: usize) -> io::Result<()> {
        self.u64(n as u64)
    }

    /// The checksum accumulated so far (exposed so callers can derive
    /// fingerprints from a serialized byte stream without a second hash).
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Writes the checksum trailer and flushes. Consumes the writer: no
    /// payload bytes may follow the trailer.
    pub fn finish(mut self) -> io::Result<()> {
        let sum = self.checksum;
        self.inner.write_all(&sum.to_le_bytes())?;
        self.inner.flush()
    }
}

/// A checksum-verifying little-endian binary reader.
#[derive(Debug)]
pub struct BinReader<R: Read> {
    inner: R,
    checksum: u64,
}

// `len` reads a serialized length field (the dual of `BinWriter::len`);
// there is no container to be empty.
#[allow(clippy::len_without_is_empty)]
impl<R: Read> BinReader<R> {
    /// Wraps a reader; the checksum starts at the FNV-1a offset basis.
    pub fn new(inner: R) -> BinReader<R> {
        BinReader {
            inner,
            checksum: FNV_OFFSET,
        }
    }

    /// Reads exactly `out.len()` raw bytes (checksummed).
    pub fn bytes(&mut self, out: &mut [u8]) -> io::Result<()> {
        self.inner.read_exact(out)?;
        self.checksum = fnv1a(self.checksum, out);
        Ok(())
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> io::Result<u8> {
        let mut b = [0u8; 1];
        self.bytes(&mut b)?;
        Ok(b[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> io::Result<u16> {
        let mut b = [0u8; 2];
        self.bytes(&mut b)?;
        Ok(u16::from_le_bytes(b))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> io::Result<u32> {
        let mut b = [0u8; 4];
        self.bytes(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> io::Result<u64> {
        let mut b = [0u8; 8];
        self.bytes(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Reads a boolean; any byte other than `0` or `1` is invalid data.
    pub fn bool(&mut self) -> io::Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(invalid(format!("invalid boolean byte {other:#04x}"))),
        }
    }

    /// Reads a collection length written by [`BinWriter::len`]. The value
    /// is bounds-checked against `usize` but **not** trusted beyond that:
    /// callers must read element by element (never preallocate from it), so
    /// a corrupt length degrades into an EOF or checksum error rather than
    /// a huge allocation.
    pub fn len(&mut self) -> io::Result<usize> {
        let n = self.u64()?;
        usize::try_from(n).map_err(|_| invalid(format!("length {n} exceeds address space")))
    }

    /// Reads the checksum trailer and verifies it against the accumulated
    /// payload checksum. Consumes the reader.
    pub fn finish(mut self) -> io::Result<()> {
        let expected = self.checksum;
        let mut b = [0u8; 8];
        self.inner.read_exact(&mut b)?;
        let stored = u64::from_le_bytes(b);
        if stored != expected {
            return Err(invalid(format!(
                "checksum mismatch: stored {stored:#018x}, computed {expected:#018x}"
            )));
        }
        Ok(())
    }
}

/// An [`io::ErrorKind::InvalidData`] error with the given message — the
/// shape every malformed-payload failure in this module takes.
pub fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_primitives() {
        let mut buf = Vec::new();
        let mut w = BinWriter::new(&mut buf);
        w.u8(0xab).unwrap();
        w.u16(0xbeef).unwrap();
        w.u32(0xdead_beef).unwrap();
        w.u64(0x0123_4567_89ab_cdef).unwrap();
        w.bool(true).unwrap();
        w.bool(false).unwrap();
        w.len(3).unwrap();
        w.bytes(b"xyz").unwrap();
        w.finish().unwrap();

        let mut r = BinReader::new(&buf[..]);
        assert_eq!(r.u8().unwrap(), 0xab);
        assert_eq!(r.u16().unwrap(), 0xbeef);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), 0x0123_4567_89ab_cdef);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.len().unwrap(), 3);
        let mut s = [0u8; 3];
        r.bytes(&mut s).unwrap();
        assert_eq!(&s, b"xyz");
        r.finish().unwrap();
    }

    #[test]
    fn every_bit_flip_fails_the_checksum() {
        let mut buf = Vec::new();
        let mut w = BinWriter::new(&mut buf);
        w.u64(42).unwrap();
        w.u32(7).unwrap();
        w.finish().unwrap();

        for byte in 0..buf.len() {
            for bit in 0..8 {
                let mut bad = buf.clone();
                bad[byte] ^= 1 << bit;
                let mut r = BinReader::new(&bad[..]);
                let result = r.u64().and_then(|_| r.u32()).and_then(|_| r.finish());
                assert!(
                    result.is_err(),
                    "bit {bit} of byte {byte} flipped undetected"
                );
            }
        }
    }

    #[test]
    fn truncation_is_unexpected_eof() {
        let mut buf = Vec::new();
        let mut w = BinWriter::new(&mut buf);
        w.u64(1).unwrap();
        w.finish().unwrap();
        for cut in 0..buf.len() {
            let short = &buf[..cut];
            let mut r = BinReader::new(short);
            let err = r.u64().and_then(|_| r.finish()).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
    }

    #[test]
    fn invalid_boolean_byte_is_rejected() {
        let mut r = BinReader::new(&[2u8][..]);
        let err = r.bool().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn checksum_is_order_sensitive() {
        let sum = |fields: &[u64]| {
            let mut buf = Vec::new();
            let mut w = BinWriter::new(&mut buf);
            for &f in fields {
                w.u64(f).unwrap();
            }
            let c = w.checksum();
            w.finish().unwrap();
            c
        };
        assert_ne!(sum(&[1, 2]), sum(&[2, 1]));
    }
}

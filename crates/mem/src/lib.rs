//! The memory subsystem of the SMT simulator.
//!
//! Implements the cache hierarchy of Table 2 of Tullsen et al., ISCA 1996:
//!
//! | level | size  | assoc | line | banks | xfer | acc/cyc | fill | lat. to next |
//! |-------|-------|-------|------|-------|------|---------|------|--------------|
//! | I$    | 32 KB | DM    | 64 B | 8     | 1    | 1-4     | 2    | 6            |
//! | D$    | 32 KB | DM    | 64 B | 8     | 1    | 4       | 2    | 6            |
//! | L2    | 256 KB| 4-way | 64 B | 8     | 1    | 1       | 2    | 12           |
//! | L3    | 2 MB  | DM    | 64 B | 1     | 4    | 1/4     | 8    | 62           |
//!
//! Caches are lockup-free (MSHRs with secondary-miss merging), banked with
//! per-cycle port limits, and connected by buses with occupancy, so the
//! "memory throughput" concern of the paper (Section 7) is modeled: requests
//! experience queueing delays at busy banks and buses even though latencies
//! are fixed. TLB misses cost two full memory accesses and consume no
//! execution resources.
//!
//! Misses are **scheduled completion events**, not polled state: starting
//! a miss computes its data-return cycle up front (reserving bank and bus
//! occupancy along the way), and [`MemoryHierarchy::begin_cycle`] delivers
//! each [`Completion`] on exactly that cycle. The earliest due cycle of
//! every event class (line fills, delay-only TLB walks, miss completions)
//! is tracked, so an event-free cycle costs four counter resets and three
//! compares — nothing is rescanned. The pipeline consumes the events each
//! cycle:
//!
//! ```
//! use smt_mem::{MemConfig, MemoryHierarchy, AccessResult};
//! use smt_isa::ThreadId;
//!
//! let mut mem = MemoryHierarchy::new(MemConfig::default());
//! mem.begin_cycle(0);
//! match mem.dcache_access(ThreadId(0), 0x1_0000, false) {
//!     AccessResult::Hit => {}
//!     AccessResult::Miss(req) => {
//!         // `req`'s Completion event arrives via `take_completions`
//!         // (or the allocation-free `drain_completions_into`) on the
//!         // cycle the data returns.
//!         let _ = req;
//!     }
//!     AccessResult::BankConflict => { /* retry next cycle */ }
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use smt_isa::{Addr, ThreadId};

/// Parameters of one cache level (one row of Table 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheParams {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (1 = direct mapped).
    pub assoc: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Number of single-ported banks (line-interleaved).
    pub banks: usize,
    /// Maximum accesses started per cycle across all banks.
    pub accesses_per_cycle: u32,
    /// For slow arrays: minimum cycles between successive accesses to the
    /// same bank (L3: 4, i.e. 1/4 access per cycle).
    pub cycles_per_access: u64,
    /// Bus transfer time to the next level, in cycles.
    pub transfer_cycles: u64,
    /// Cycles a fill occupies the bank.
    pub fill_cycles: u64,
    /// Latency to retrieve data from the *next* level on a miss here.
    pub latency_to_next: u64,
}

impl CacheParams {
    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.line_bytes * self.assoc)
    }

    /// The bank index servicing `addr` (line-interleaved). Line size and
    /// bank count are powers of two (the bank mask below already assumes
    /// so), so the line number is a shift, not a division — this runs on
    /// every cache access the pipeline makes.
    pub fn bank_of(&self, addr: Addr) -> usize {
        ((addr >> self.line_bytes.trailing_zeros()) as usize) & (self.banks - 1)
    }

    /// The aligned line address containing `addr`.
    pub fn line_of(&self, addr: Addr) -> Addr {
        addr & !(self.line_bytes as u64 - 1)
    }
}

/// Configuration of the entire memory subsystem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemConfig {
    /// Instruction cache parameters.
    pub icache: CacheParams,
    /// Data cache parameters.
    pub dcache: CacheParams,
    /// Unified second-level cache.
    pub l2: CacheParams,
    /// Unified third-level cache.
    pub l3: CacheParams,
    /// Instruction TLB entries (fully associative, LRU).
    pub itlb_entries: usize,
    /// Data TLB entries.
    pub dtlb_entries: usize,
    /// Page size in bytes.
    pub page_bytes: u64,
    /// Number of MSHRs (outstanding primary misses) per L1 cache.
    pub mshrs: usize,
    /// When set, bank/bus/port contention is disabled: every access sees
    /// only raw latencies (the "infinite bandwidth" ablation of Section 7).
    pub infinite_bandwidth: bool,
    /// When set, every instruction fetch hits in one cycle: no I-cache
    /// misses, no I-TLB walks, and no I-side bank/port conflicts (the
    /// "perfect I-cache" ablation used to isolate cold-start fetch
    /// behaviour). The data side is unaffected.
    pub perfect_icache: bool,
}

impl Default for MemConfig {
    fn default() -> MemConfig {
        MemConfig {
            icache: CacheParams {
                size_bytes: 32 * 1024,
                assoc: 1,
                line_bytes: 64,
                banks: 8,
                accesses_per_cycle: 4,
                cycles_per_access: 1,
                transfer_cycles: 1,
                fill_cycles: 2,
                latency_to_next: 6,
            },
            dcache: CacheParams {
                size_bytes: 32 * 1024,
                assoc: 1,
                line_bytes: 64,
                banks: 8,
                accesses_per_cycle: 4,
                cycles_per_access: 1,
                transfer_cycles: 1,
                fill_cycles: 2,
                latency_to_next: 6,
            },
            l2: CacheParams {
                size_bytes: 256 * 1024,
                assoc: 4,
                line_bytes: 64,
                banks: 8,
                accesses_per_cycle: 1,
                cycles_per_access: 1,
                transfer_cycles: 1,
                fill_cycles: 2,
                latency_to_next: 12,
            },
            l3: CacheParams {
                size_bytes: 2 * 1024 * 1024,
                assoc: 1,
                line_bytes: 64,
                banks: 1,
                accesses_per_cycle: 1,
                cycles_per_access: 4,
                transfer_cycles: 4,
                fill_cycles: 8,
                latency_to_next: 62,
            },
            itlb_entries: 64,
            dtlb_entries: 128,
            page_bytes: 8 * 1024,
            mshrs: 8,
            infinite_bandwidth: false,
            perfect_icache: false,
        }
    }
}

/// Identifier of an outstanding miss request, returned on completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ReqId(pub u64);

/// Result of a cache access attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessResult {
    /// Data available at the level's hit latency.
    Hit,
    /// Miss: data will arrive later; poll [`MemoryHierarchy::take_completions`].
    Miss(ReqId),
    /// The bank (or the cache's per-cycle port budget) is busy this cycle;
    /// the access did not happen and must be retried.
    BankConflict,
}

/// Hit/miss counters for one cache or TLB level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Number of accesses (lookups) at this level.
    pub accesses: u64,
    /// Number of those that missed.
    pub misses: u64,
}

impl LevelStats {
    /// Miss rate in percent (0 when no accesses).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64 * 100.0
        }
    }
}

/// Statistics for the whole memory subsystem.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// I-cache lookups.
    pub icache: LevelStats,
    /// D-cache lookups.
    pub dcache: LevelStats,
    /// L2 lookups (from both I and D sides).
    pub l2: LevelStats,
    /// L3 lookups.
    pub l3: LevelStats,
    /// Instruction TLB lookups.
    pub itlb: LevelStats,
    /// Data TLB lookups.
    pub dtlb: LevelStats,
    /// Dirty lines written back.
    pub writebacks: u64,
    /// D-cache accesses rejected for bank/port conflicts.
    pub bank_conflicts: u64,
    /// Secondary misses merged into an outstanding MSHR.
    pub mshr_merges: u64,
}

/// One tag-array line, packed to 8 bytes: the tag is stored truncated to
/// 32 bits, which is exact for any address below 2^(32 + tag shift) —
/// ≥ 2^47 for every level here, far beyond the simulator's synthetic
/// address space (debug builds assert it). Halving the line doubles how
/// many sets fit in one host cache line on the per-fetch probe path.
#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u32,
    valid: bool,
    dirty: bool,
    lru: u8,
}

/// A set-associative (or direct-mapped) tag array with true LRU.
///
/// Line size and set count are powers of two, so set/tag extraction is
/// shift-and-mask (precomputed at construction) — no division on the
/// per-access hot path.
#[derive(Debug, Clone)]
struct TagArray {
    sets: usize,
    assoc: usize,
    line_shift: u32,
    tag_shift: u32,
    lines: Vec<Line>,
}

impl TagArray {
    fn new(p: &CacheParams) -> TagArray {
        let sets = p.sets();
        assert!(
            sets.is_power_of_two(),
            "cache set count must be a power of two"
        );
        assert!(
            p.line_bytes.is_power_of_two(),
            "cache line size must be a power of two"
        );
        let line_shift = p.line_bytes.trailing_zeros();
        TagArray {
            sets,
            assoc: p.assoc,
            line_shift,
            tag_shift: line_shift + sets.trailing_zeros(),
            lines: vec![Line::default(); sets * p.assoc],
        }
    }

    #[inline]
    fn set_of(&self, addr: Addr) -> usize {
        ((addr >> self.line_shift) as usize) & (self.sets - 1)
    }

    #[inline]
    fn tag_of(&self, addr: Addr) -> u32 {
        debug_assert!(
            addr >> self.tag_shift <= u64::from(u32::MAX),
            "address beyond the packed 32-bit tag range"
        );
        (addr >> self.tag_shift) as u32
    }

    /// Probe without updating replacement state.
    fn probe(&self, addr: Addr) -> bool {
        let base = self.set_of(addr) * self.assoc;
        let tag = self.tag_of(addr);
        (0..self.assoc).any(|w| {
            let l = &self.lines[base + w];
            l.valid && l.tag == tag
        })
    }

    /// Access for read/write; returns true on hit and updates LRU/dirty.
    fn access(&mut self, addr: Addr, write: bool) -> bool {
        let base = self.set_of(addr) * self.assoc;
        let tag = self.tag_of(addr);
        for w in 0..self.assoc {
            if self.lines[base + w].valid && self.lines[base + w].tag == tag {
                let hit_lru = self.lines[base + w].lru;
                for v in 0..self.assoc {
                    let l = &mut self.lines[base + v];
                    if l.valid && l.lru < hit_lru {
                        l.lru += 1;
                    }
                }
                let l = &mut self.lines[base + w];
                l.lru = 0;
                l.dirty |= write;
                return true;
            }
        }
        false
    }

    /// Install the line containing `addr`; returns the evicted dirty line
    /// address, if any.
    fn install(&mut self, addr: Addr, dirty: bool) -> Option<Addr> {
        let set = self.set_of(addr);
        let base = set * self.assoc;
        let tag = self.tag_of(addr);
        // Already present (e.g. a racing fill): just refresh.
        for w in 0..self.assoc {
            if self.lines[base + w].valid && self.lines[base + w].tag == tag {
                self.lines[base + w].dirty |= dirty;
                return None;
            }
        }
        let victim = (0..self.assoc)
            .find(|&w| !self.lines[base + w].valid)
            .unwrap_or_else(|| {
                (0..self.assoc)
                    .max_by_key(|&w| self.lines[base + w].lru)
                    .expect("assoc > 0")
            });
        let evicted = &self.lines[base + victim];
        let wb = if evicted.valid && evicted.dirty {
            Some((u64::from(evicted.tag) << self.tag_shift) | ((set as u64) << self.line_shift))
        } else {
            None
        };
        for w in 0..self.assoc {
            let l = &mut self.lines[base + w];
            if l.valid {
                l.lru = l.lru.saturating_add(1).min(self.assoc as u8 - 1);
            }
        }
        self.lines[base + victim] = Line {
            tag,
            valid: true,
            dirty,
            lru: 0,
        };
        wb
    }
}

/// A fully-associative, LRU, thread-tagged TLB.
///
/// Recency is tracked with unique monotonic use-stamps instead of a
/// physically ordered list: a hit bumps one stamp (O(1), on the pipeline's
/// per-access hot path), and eviction — only on a miss with a full TLB —
/// scans for the minimum stamp, which is exactly the least-recently-used
/// entry an ordered list would evict. Stamps are unique, so the victim is
/// deterministic.
///
/// Storage is a small open-addressed table (linear probing over
/// `(thread, vpn)` keys) fronted by a **per-thread last-translation
/// cache**: memory access streams are page-local, so most lookups match
/// the thread's previous page and resolve to a direct stamp write in the
/// remembered slot — no hashing, no probing. The filter stores the slot
/// index, so LRU stamps stay exact.
#[derive(Debug, Clone, Copy, Default)]
struct TlbEntry {
    /// Occupied-slot marker. Deletion compacts the probe chain
    /// (backward-shift), so an unoccupied slot always terminates a probe —
    /// no tombstones.
    live: bool,
    thread: u8,
    vpn: u64,
    stamp: u64,
}

#[derive(Debug, Clone, Copy)]
struct TlbFilter {
    vpn: u64,
    slot: u32,
}

#[derive(Debug, Clone)]
struct Tlb {
    slots: Vec<TlbEntry>,
    mask: usize,
    /// Per-thread last translation: slot of the thread's previous page.
    last: [Option<TlbFilter>; MAX_TLB_THREADS],
    len: usize,
    capacity: usize,
    page_shift: u32,
    tick: u64,
}

/// The per-thread filter covers the whole `ThreadId` (u8) range, so no
/// caller-visible precondition narrows the public API; only the handful
/// of entries belonging to live contexts are ever touched.
const MAX_TLB_THREADS: usize = 256;

impl Tlb {
    fn new(capacity: usize, page_bytes: u64) -> Tlb {
        assert!(
            page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        // 2x capacity keeps linear probes short; never smaller than 8.
        let table = (capacity * 2).next_power_of_two().max(8);
        Tlb {
            slots: vec![TlbEntry::default(); table],
            mask: table - 1,
            last: [None; MAX_TLB_THREADS],
            len: 0,
            capacity,
            page_shift: page_bytes.trailing_zeros(),
            tick: 0,
        }
    }

    #[inline]
    fn home(&self, thread: u8, vpn: u64) -> usize {
        // FxHash-style mix of the (thread, vpn) key.
        let h = (vpn ^ (u64::from(thread) << 57)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        (h >> 32) as usize & self.mask
    }

    /// Returns true on hit; on miss the translation is installed (the miss
    /// *penalty* is charged by the hierarchy).
    fn access(&mut self, thread: ThreadId, addr: Addr) -> bool {
        let vpn = addr >> self.page_shift;
        self.tick += 1;
        // Fast path: same page as this thread's previous access, and the
        // remembered slot still holds it (eviction invalidates lazily).
        if let Some(f) = self.last[usize::from(thread.0)] {
            let s = &mut self.slots[f.slot as usize];
            if f.vpn == vpn && s.live && s.vpn == vpn && s.thread == thread.0 {
                s.stamp = self.tick;
                return true;
            }
        }
        // Probe the open-addressed table (chains are compact: the first
        // unoccupied slot proves the key absent).
        let mut i = self.home(thread.0, vpn);
        while self.slots[i].live {
            let s = &mut self.slots[i];
            if s.thread == thread.0 && s.vpn == vpn {
                s.stamp = self.tick;
                self.last[usize::from(thread.0)] = Some(TlbFilter {
                    vpn,
                    slot: i as u32,
                });
                return true;
            }
            i = (i + 1) & self.mask;
        }
        // Miss: evict the LRU entry when full (unique stamps make the
        // victim deterministic), then install.
        if self.len == self.capacity {
            let victim = self
                .slots
                .iter()
                .enumerate()
                .filter(|(_, s)| s.live)
                .min_by_key(|(_, s)| s.stamp)
                .map(|(i, _)| i)
                .expect("full TLB is non-empty");
            self.remove_slot(victim);
            self.len -= 1;
            // Compaction may have shifted entries into this key's chain;
            // re-find its terminating unoccupied slot.
            i = self.home(thread.0, vpn);
            while self.slots[i].live {
                debug_assert!(self.slots[i].thread != thread.0 || self.slots[i].vpn != vpn);
                i = (i + 1) & self.mask;
            }
        }
        self.slots[i] = TlbEntry {
            live: true,
            thread: thread.0,
            vpn,
            stamp: self.tick,
        };
        self.len += 1;
        self.last[usize::from(thread.0)] = Some(TlbFilter {
            vpn,
            slot: i as u32,
        });
        false
    }

    /// Removes the entry at `i`, compacting the probe chain behind it
    /// (backward-shift deletion): every follower that cannot reach its
    /// home slot without passing the hole moves into it. Per-thread
    /// last-translation filters may now point at moved slots; they
    /// re-validate against the stored key, so stale ones simply miss.
    fn remove_slot(&mut self, mut i: usize) {
        self.slots[i] = TlbEntry::default();
        let mut j = i;
        loop {
            j = (j + 1) & self.mask;
            let e = self.slots[j];
            if !e.live {
                return;
            }
            let home = self.home(e.thread, e.vpn);
            // `e` may fill the hole if its home lies outside (i, j]
            // cyclically — i.e. probing from `home` reaches `i` no later
            // than `j`.
            if (j.wrapping_sub(home) & self.mask) >= (j.wrapping_sub(i) & self.mask) {
                self.slots[i] = e;
                self.slots[j] = TlbEntry::default();
                i = j;
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Side {
    Instr,
    Data,
}

#[derive(Debug)]
struct Mshr {
    line: Addr,
    side: Side,
    complete_at: u64,
    waiters: Vec<ReqId>,
}

/// One completed miss request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The request id returned by the original access.
    pub req: ReqId,
    /// Cycle at which the data became available.
    pub at_cycle: u64,
}

/// The full memory hierarchy: L1 I/D, L2, L3, TLBs, buses and MSHRs.
#[derive(Debug)]
pub struct MemoryHierarchy {
    cfg: MemConfig,
    icache: TagArray,
    dcache: TagArray,
    l2: TagArray,
    l3: TagArray,
    itlb: Tlb,
    dtlb: Tlb,
    stats: MemStats,

    // Per-cycle port accounting (reset by `begin_cycle`).
    cycle: u64,
    i_ports_used: u32,
    d_ports_used: u32,
    i_banks_used: u64, // bitmask over banks
    d_banks_used: u64,

    // Resource reservations (next free cycle).
    l2_bank_free: Vec<u64>,
    l3_bank_free: Vec<u64>,
    bus_l1i_free: u64,
    bus_l1d_free: u64,
    bus_l2_free: u64,
    bus_mem_free: u64,

    mshrs: Vec<Mshr>,
    /// Recycled MSHR waiter-list buffers: an MSHR's list is handed back
    /// when its completion drains, so steady-state misses allocate
    /// nothing.
    waiter_pool: Vec<Vec<ReqId>>,
    completions: BinaryHeap<Reverse<(u64, u64)>>, // (cycle, mshr key)
    pending_fills: Vec<(u64, Side, Addr)>,        // (cycle, side, line)
    delay_only: Vec<(u64, ReqId)>,                // TLB walks on tag hits
    ready: Vec<Completion>,
    next_req: u64,
    /// Earliest cycle any pending fill lands (`u64::MAX` when none): lets
    /// `begin_cycle` skip the fill list entirely on event-free cycles.
    next_fill_at: u64,
    /// Earliest cycle any delay-only walk retires (`u64::MAX` when none).
    next_delay_at: u64,
}

impl MemoryHierarchy {
    /// Builds the hierarchy from a configuration.
    pub fn new(cfg: MemConfig) -> MemoryHierarchy {
        let icache = TagArray::new(&cfg.icache);
        let dcache = TagArray::new(&cfg.dcache);
        let l2 = TagArray::new(&cfg.l2);
        let l3 = TagArray::new(&cfg.l3);
        let itlb = Tlb::new(cfg.itlb_entries, cfg.page_bytes);
        let dtlb = Tlb::new(cfg.dtlb_entries, cfg.page_bytes);
        let l2_banks = cfg.l2.banks;
        let l3_banks = cfg.l3.banks;
        MemoryHierarchy {
            cfg,
            icache,
            dcache,
            l2,
            l3,
            itlb,
            dtlb,
            stats: MemStats::default(),
            cycle: 0,
            i_ports_used: 0,
            d_ports_used: 0,
            i_banks_used: 0,
            d_banks_used: 0,
            l2_bank_free: vec![0; l2_banks],
            l3_bank_free: vec![0; l3_banks],
            bus_l1i_free: 0,
            bus_l1d_free: 0,
            bus_l2_free: 0,
            bus_mem_free: 0,
            // Event lists are pre-sized past any plausible steady-state
            // high-water mark so the warmed cycle path never grows them
            // (the allocation-guard test in `smt-bench` pins this).
            mshrs: Vec::with_capacity(64),
            waiter_pool: Vec::with_capacity(64),
            completions: BinaryHeap::with_capacity(128),
            pending_fills: Vec::with_capacity(128),
            delay_only: Vec::with_capacity(256),
            ready: Vec::with_capacity(128),
            next_req: 0,
            next_fill_at: u64::MAX,
            next_delay_at: u64::MAX,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Clears statistics (e.g. at the end of a warmup window). Cache and
    /// TLB contents are preserved.
    pub fn reset_stats(&mut self) {
        self.stats = MemStats::default();
    }

    /// Starts a new cycle: resets port budgets and retires due events.
    ///
    /// Event-driven: each event class (fills, delay-only TLB walks, miss
    /// completions) was scheduled with its due cycle when it was created,
    /// and the earliest due cycle of each class is tracked — on the common
    /// event-free cycle this resets four counters and does nothing else.
    #[inline]
    pub fn begin_cycle(&mut self, cycle: u64) {
        self.cycle = cycle;
        self.i_ports_used = 0;
        self.d_ports_used = 0;
        self.i_banks_used = 0;
        self.d_banks_used = 0;

        // Install fills that land this cycle.
        if cycle >= self.next_fill_at {
            let mut i = 0;
            while i < self.pending_fills.len() {
                if self.pending_fills[i].0 <= cycle {
                    let (_, side, line) = self.pending_fills.swap_remove(i);
                    self.install_chain(side, line);
                } else {
                    i += 1;
                }
            }
            self.next_fill_at = self
                .pending_fills
                .iter()
                .map(|&(t, _, _)| t)
                .min()
                .unwrap_or(u64::MAX);
        }

        // Retire finished TLB walks that did not need a line fill.
        if cycle >= self.next_delay_at {
            let mut i = 0;
            while i < self.delay_only.len() {
                if self.delay_only[i].0 <= cycle {
                    let (t, req) = self.delay_only.swap_remove(i);
                    self.ready.push(Completion { req, at_cycle: t });
                } else {
                    i += 1;
                }
            }
            self.next_delay_at = self
                .delay_only
                .iter()
                .map(|&(t, _)| t)
                .min()
                .unwrap_or(u64::MAX);
        }

        // Collect completed misses.
        while let Some(&Reverse((t, key))) = self.completions.peek() {
            if t > cycle {
                break;
            }
            self.completions.pop();
            if let Some(pos) = self
                .mshrs
                .iter()
                .position(|m| m.complete_at == t && key == Self::mshr_key(m))
            {
                let mut m = self.mshrs.swap_remove(pos);
                for &req in &m.waiters {
                    self.ready.push(Completion { req, at_cycle: t });
                }
                m.waiters.clear();
                self.waiter_pool.push(m.waiters);
            }
        }
    }

    /// The earliest future cycle at which any scheduled event (fill,
    /// delay-only walk, or miss completion) falls due, if one exists.
    /// Purely observational — useful for tests and idle-cycle diagnostics.
    pub fn next_event_cycle(&self) -> Option<u64> {
        let heap_next = self.completions.peek().map(|&Reverse((t, _))| t);
        [Some(self.next_fill_at), Some(self.next_delay_at), heap_next]
            .into_iter()
            .flatten()
            .filter(|&t| t != u64::MAX)
            .min()
    }

    fn mshr_key(m: &Mshr) -> u64 {
        m.line
            ^ match m.side {
                Side::Instr => 0x8000_0000_0000_0000,
                Side::Data => 0,
            }
    }

    fn install_chain(&mut self, side: Side, line: Addr) {
        // Fill L1; a dirty eviction consumes downstream bus bandwidth.
        let wb = match side {
            Side::Instr => self.icache.install(line, false),
            Side::Data => self.dcache.install(line, false),
        };
        if let Some(_dirty_line) = wb {
            self.stats.writebacks += 1;
            if !self.cfg.infinite_bandwidth {
                let bus = match side {
                    Side::Instr => &mut self.bus_l1i_free,
                    Side::Data => &mut self.bus_l1d_free,
                };
                *bus = (*bus).max(self.cycle) + self.cfg.dcache.transfer_cycles;
            }
        }
        // Fill outer levels (simple inclusive fill on the miss path).
        if let Some(_wb2) = self.l2.install(line, false) {
            self.stats.writebacks += 1;
            if !self.cfg.infinite_bandwidth {
                self.bus_l2_free = self.bus_l2_free.max(self.cycle) + self.cfg.l2.transfer_cycles;
            }
        }
        if let Some(_wb3) = self.l3.install(line, false) {
            self.stats.writebacks += 1;
            if !self.cfg.infinite_bandwidth {
                self.bus_mem_free = self.bus_mem_free.max(self.cycle) + self.cfg.l3.transfer_cycles;
            }
        }
    }

    /// Computes the data-return time for a miss that leaves L1 at `cycle`,
    /// reserving bus/bank occupancy along the way.
    fn service_miss(&mut self, side: Side, line: Addr, start: u64) -> u64 {
        let inf = self.cfg.infinite_bandwidth;
        let l1 = match side {
            Side::Instr => &self.cfg.icache,
            Side::Data => &self.cfg.dcache,
        };
        // L1 -> L2 request+data uses the L1 bus and the fixed level latency.
        let mut t = start;
        if !inf {
            let bus = match side {
                Side::Instr => &mut self.bus_l1i_free,
                Side::Data => &mut self.bus_l1d_free,
            };
            t = t.max(*bus);
            *bus = t + l1.transfer_cycles;
        }
        t += l1.latency_to_next;

        // L2 access: bank reservation.
        self.stats.l2.accesses += 1;
        if !inf {
            let b = self.cfg.l2.bank_of(line);
            t = t.max(self.l2_bank_free[b]);
            self.l2_bank_free[b] = t + self.cfg.l2.cycles_per_access;
        }
        let l2_hit = self.l2.access(line, false);
        if l2_hit {
            return t + 1; // data starts back after the array access
        }
        self.stats.l2.misses += 1;

        // L2 -> L3.
        if !inf {
            t = t.max(self.bus_l2_free);
            self.bus_l2_free = t + self.cfg.l2.transfer_cycles;
        }
        t += self.cfg.l2.latency_to_next;
        self.stats.l3.accesses += 1;
        if !inf {
            let b = self.cfg.l3.bank_of(line);
            t = t.max(self.l3_bank_free[b]);
            self.l3_bank_free[b] = t + self.cfg.l3.cycles_per_access;
        }
        let l3_hit = self.l3.access(line, false);
        if l3_hit {
            return t + 1;
        }
        self.stats.l3.misses += 1;

        // L3 -> memory.
        if !inf {
            t = t.max(self.bus_mem_free);
            self.bus_mem_free = t + self.cfg.l3.transfer_cycles;
        }
        t += self.cfg.l3.latency_to_next;
        t + 1
    }

    /// Total latency of one full memory access (L1 miss all the way to
    /// memory), used for the TLB miss penalty: the paper charges TLB misses
    /// two of these.
    pub fn full_memory_latency(&self) -> u64 {
        self.cfg.dcache.latency_to_next + self.cfg.l2.latency_to_next + self.cfg.l3.latency_to_next
    }

    fn start_miss(&mut self, side: Side, line: Addr, extra_delay: u64) -> Option<ReqId> {
        let req = ReqId(self.next_req);
        // Merge with an outstanding miss for the same line.
        if let Some(m) = self
            .mshrs
            .iter_mut()
            .find(|m| m.side == side && m.line == line)
        {
            m.waiters.push(req);
            self.next_req += 1;
            self.stats.mshr_merges += 1;
            return Some(req);
        }
        if self.mshrs.len() >= self.cfg.mshrs && !self.cfg.infinite_bandwidth {
            // All MSHRs busy: structural stall, caller must retry.
            return None;
        }
        let start = self.cycle + 1 + extra_delay;
        let complete_at = self.service_miss(side, line, start);
        let mut waiters = self.waiter_pool.pop().unwrap_or_default();
        waiters.push(req);
        let m = Mshr {
            line,
            side,
            complete_at,
            waiters,
        };
        self.completions
            .push(Reverse((complete_at, Self::mshr_key(&m))));
        self.pending_fills.push((complete_at, side, line));
        self.next_fill_at = self.next_fill_at.min(complete_at);
        self.mshrs.push(m);
        self.next_req += 1;
        Some(req)
    }

    /// Instruction fetch access for one thread's fetch block at `addr`.
    ///
    /// On a miss the thread should stop fetching until the returned request
    /// completes. Returns `BankConflict` when the I-cache ports or the
    /// target bank are exhausted this cycle.
    #[inline]
    pub fn icache_fetch(&mut self, thread: ThreadId, addr: Addr) -> AccessResult {
        self.icache_fetch_with(thread, addr, true)
    }

    /// [`icache_fetch`](MemoryHierarchy::icache_fetch) with explicit
    /// bank/port arbitration control. With `arbitrate: false` the access
    /// neither checks nor consumes I-side ports and banks — the hook behind
    /// the wrong-path bank-arbitration-exemption ablation. Misses and TLB
    /// walks still behave normally.
    #[inline]
    pub fn icache_fetch_with(
        &mut self,
        thread: ThreadId,
        addr: Addr,
        arbitrate: bool,
    ) -> AccessResult {
        if self.cfg.perfect_icache {
            self.stats.icache.accesses += 1;
            return AccessResult::Hit;
        }

        // ITLB.
        self.stats.itlb.accesses += 1;
        let tlb_extra = if self.itlb.access(thread, addr) {
            0
        } else {
            self.stats.itlb.misses += 1;
            2 * self.full_memory_latency()
        };

        let p = &self.cfg.icache;
        let bank = p.bank_of(addr) as u64;
        if arbitrate && !self.cfg.infinite_bandwidth {
            if self.i_ports_used >= p.accesses_per_cycle || self.i_banks_used & (1 << bank) != 0 {
                return AccessResult::BankConflict;
            }
            self.i_ports_used += 1;
            self.i_banks_used |= 1 << bank;
        }

        self.stats.icache.accesses += 1;
        let line = p.line_of(addr);
        let tag_hit = self.icache.access(addr, false);
        if tag_hit && tlb_extra == 0 {
            return AccessResult::Hit;
        }
        if !tag_hit {
            self.stats.icache.misses += 1;
            match self.start_miss(Side::Instr, line, tlb_extra) {
                Some(req) => AccessResult::Miss(req),
                None => AccessResult::BankConflict,
            }
        } else {
            // Line present but translation missing: pay the page-walk delay
            // without generating downstream traffic.
            let req = ReqId(self.next_req);
            self.next_req += 1;
            let due = self.cycle + 1 + tlb_extra;
            self.delay_only.push((due, req));
            self.next_delay_at = self.next_delay_at.min(due);
            AccessResult::Miss(req)
        }
    }

    /// Probe the I-cache tags without consuming a port and without side
    /// effects — the early tag lookup used by the ITAG fetch scheme.
    pub fn icache_probe(&self, addr: Addr) -> bool {
        self.icache.probe(addr)
    }

    /// Whether the I-cache bank for `addr` is still free this cycle.
    #[inline]
    pub fn icache_bank_free(&self, addr: Addr) -> bool {
        if self.cfg.infinite_bandwidth || self.cfg.perfect_icache {
            return true;
        }
        let bank = self.cfg.icache.bank_of(addr) as u64;
        self.i_banks_used & (1 << bank) == 0
            && self.i_ports_used < self.cfg.icache.accesses_per_cycle
    }

    /// Data access (load or store) at `addr`.
    ///
    /// Returns `Hit` (1-cycle latency), `Miss` (poll completions), or
    /// `BankConflict` (port/bank exhausted — for loads this squashes
    /// optimistically issued dependents, per Section 2 of the paper).
    #[inline]
    pub fn dcache_access(&mut self, thread: ThreadId, addr: Addr, write: bool) -> AccessResult {
        let p = &self.cfg.dcache;
        let bank = p.bank_of(addr) as u64;
        if !self.cfg.infinite_bandwidth {
            if self.d_ports_used >= p.accesses_per_cycle || self.d_banks_used & (1 << bank) != 0 {
                self.stats.bank_conflicts += 1;
                return AccessResult::BankConflict;
            }
            self.d_ports_used += 1;
            self.d_banks_used |= 1 << bank;
        }

        // DTLB.
        self.stats.dtlb.accesses += 1;
        let tlb_extra = if self.dtlb.access(thread, addr) {
            0
        } else {
            self.stats.dtlb.misses += 1;
            2 * self.full_memory_latency()
        };

        self.stats.dcache.accesses += 1;
        let line = p.line_of(addr);
        let tag_hit = self.dcache.access(addr, write);
        if tag_hit && tlb_extra == 0 {
            return AccessResult::Hit;
        }
        if !tag_hit {
            self.stats.dcache.misses += 1;
            match self.start_miss(Side::Data, line, tlb_extra) {
                Some(req) => AccessResult::Miss(req),
                None => AccessResult::BankConflict,
            }
        } else {
            let req = ReqId(self.next_req);
            self.next_req += 1;
            let due = self.cycle + 1 + tlb_extra;
            self.delay_only.push((due, req));
            self.next_delay_at = self.next_delay_at.min(due);
            AccessResult::Miss(req)
        }
    }

    /// Number of outstanding data-side misses (for the MISSCOUNT policy the
    /// caller tracks per-thread counts; this is the global view).
    pub fn outstanding_data_misses(&self) -> usize {
        self.mshrs.iter().filter(|m| m.side == Side::Data).count()
    }

    /// Drains and returns all miss completions that have become ready.
    pub fn take_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.ready)
    }

    /// Drains all ready miss completions into `out` (appended, preserving
    /// arrival order) — the allocation-free twin of
    /// [`take_completions`](MemoryHierarchy::take_completions) for callers
    /// that reuse a buffer every cycle.
    #[inline]
    pub fn drain_completions_into(&mut self, out: &mut Vec<Completion>) {
        out.append(&mut self.ready);
    }

    /// Serializes the hierarchy's complete deterministic state — tag
    /// arrays, TLBs (including the last-translation filters), statistics,
    /// bank/bus reservations, MSHRs with their waiter lists, scheduled
    /// completions/fills/TLB walks, and the request-id counter — through
    /// `w`, as the `smt-mem` section of a simulator checkpoint. The
    /// configuration itself is *not* written: it is covered by the
    /// checkpoint header's config fingerprint, and
    /// [`restore_state`](MemoryHierarchy::restore_state) targets a
    /// hierarchy freshly built from it.
    pub fn save_state<W: std::io::Write>(&self, w: &mut BinWriter<W>) -> std::io::Result<()> {
        save_stats(w, &self.stats)?;
        for arr in [&self.icache, &self.dcache, &self.l2, &self.l3] {
            arr.save_state(w)?;
        }
        self.itlb.save_state(w)?;
        self.dtlb.save_state(w)?;
        w.u64(self.cycle)?;
        w.u32(self.i_ports_used)?;
        w.u32(self.d_ports_used)?;
        w.u64(self.i_banks_used)?;
        w.u64(self.d_banks_used)?;
        for free in [&self.l2_bank_free, &self.l3_bank_free] {
            w.len(free.len())?;
            for &t in free {
                w.u64(t)?;
            }
        }
        for bus in [
            self.bus_l1i_free,
            self.bus_l1d_free,
            self.bus_l2_free,
            self.bus_mem_free,
        ] {
            w.u64(bus)?;
        }
        w.len(self.mshrs.len())?;
        for m in &self.mshrs {
            w.u64(m.line)?;
            w.u8(side_code(m.side))?;
            w.u64(m.complete_at)?;
            w.len(m.waiters.len())?;
            for &r in &m.waiters {
                w.u64(r.0)?;
            }
        }
        // The completion heap's internal array layout is construction-order
        // dependent; serialize the entries in sorted order so identical
        // logical state always produces identical bytes. (Pop order only
        // depends on the entry multiset — keys are unique — so rebuilding
        // the heap by pushing is behaviour-preserving.)
        let sorted = self.completions.clone().into_sorted_vec();
        w.len(sorted.len())?;
        for Reverse((t, key)) in sorted {
            w.u64(t)?;
            w.u64(key)?;
        }
        // Fill and delay lists are drained with order-sensitive
        // `swap_remove` scans: preserve their exact element order.
        w.len(self.pending_fills.len())?;
        for &(t, side, line) in &self.pending_fills {
            w.u64(t)?;
            w.u8(side_code(side))?;
            w.u64(line)?;
        }
        w.len(self.delay_only.len())?;
        for &(t, req) in &self.delay_only {
            w.u64(t)?;
            w.u64(req.0)?;
        }
        w.len(self.ready.len())?;
        for c in &self.ready {
            w.u64(c.req.0)?;
            w.u64(c.at_cycle)?;
        }
        w.u64(self.next_req)?;
        w.u64(self.next_fill_at)?;
        w.u64(self.next_delay_at)
    }

    /// Restores state written by [`save_state`](MemoryHierarchy::save_state)
    /// into this hierarchy, which must have been built from a configuration
    /// with identical array geometry (the checkpoint layer's fingerprint
    /// check guarantees this). Malformed data yields
    /// [`std::io::ErrorKind::InvalidData`] / `UnexpectedEof` errors, never
    /// a panic; on error the hierarchy is left partially written and must
    /// be discarded.
    pub fn restore_state<R: std::io::Read>(&mut self, r: &mut BinReader<R>) -> std::io::Result<()> {
        restore_stats(r, &mut self.stats)?;
        // Split borrows: destructure so the tag arrays can be iterated
        // mutably while reading.
        for arr in [
            &mut self.icache,
            &mut self.dcache,
            &mut self.l2,
            &mut self.l3,
        ] {
            arr.restore_state(r)?;
        }
        self.itlb.restore_state(r)?;
        self.dtlb.restore_state(r)?;
        self.cycle = r.u64()?;
        self.i_ports_used = r.u32()?;
        self.d_ports_used = r.u32()?;
        self.i_banks_used = r.u64()?;
        self.d_banks_used = r.u64()?;
        for free in [&mut self.l2_bank_free, &mut self.l3_bank_free] {
            let n = r.len()?;
            if n != free.len() {
                return Err(binio::invalid(format!(
                    "bank reservation count {n} does not match configuration ({})",
                    free.len()
                )));
            }
            for slot in free.iter_mut() {
                *slot = r.u64()?;
            }
        }
        self.bus_l1i_free = r.u64()?;
        self.bus_l1d_free = r.u64()?;
        self.bus_l2_free = r.u64()?;
        self.bus_mem_free = r.u64()?;
        let n_mshrs = r.len()?;
        self.mshrs.clear();
        for _ in 0..n_mshrs {
            let line = r.u64()?;
            let side = side_from_code(r.u8()?)?;
            let complete_at = r.u64()?;
            let n_waiters = r.len()?;
            let mut waiters = Vec::new();
            for _ in 0..n_waiters {
                waiters.push(ReqId(r.u64()?));
            }
            self.mshrs.push(Mshr {
                line,
                side,
                complete_at,
                waiters,
            });
        }
        let n_completions = r.len()?;
        self.completions.clear();
        for _ in 0..n_completions {
            let t = r.u64()?;
            let key = r.u64()?;
            self.completions.push(Reverse((t, key)));
        }
        let n_fills = r.len()?;
        self.pending_fills.clear();
        for _ in 0..n_fills {
            let t = r.u64()?;
            let side = side_from_code(r.u8()?)?;
            let line = r.u64()?;
            self.pending_fills.push((t, side, line));
        }
        let n_delay = r.len()?;
        self.delay_only.clear();
        for _ in 0..n_delay {
            let t = r.u64()?;
            let req = ReqId(r.u64()?);
            self.delay_only.push((t, req));
        }
        let n_ready = r.len()?;
        self.ready.clear();
        for _ in 0..n_ready {
            let req = ReqId(r.u64()?);
            let at_cycle = r.u64()?;
            self.ready.push(Completion { req, at_cycle });
        }
        self.next_req = r.u64()?;
        self.next_fill_at = r.u64()?;
        self.next_delay_at = r.u64()?;
        Ok(())
    }
}

use smt_stats::binio::{self, BinReader, BinWriter};

fn side_code(s: Side) -> u8 {
    match s {
        Side::Instr => 0,
        Side::Data => 1,
    }
}

fn side_from_code(code: u8) -> std::io::Result<Side> {
    match code {
        0 => Ok(Side::Instr),
        1 => Ok(Side::Data),
        other => Err(binio::invalid(format!("invalid cache side code {other}"))),
    }
}

fn save_level<W: std::io::Write>(w: &mut BinWriter<W>, s: &LevelStats) -> std::io::Result<()> {
    w.u64(s.accesses)?;
    w.u64(s.misses)
}

fn restore_level<R: std::io::Read>(r: &mut BinReader<R>) -> std::io::Result<LevelStats> {
    Ok(LevelStats {
        accesses: r.u64()?,
        misses: r.u64()?,
    })
}

fn save_stats<W: std::io::Write>(w: &mut BinWriter<W>, s: &MemStats) -> std::io::Result<()> {
    for level in [&s.icache, &s.dcache, &s.l2, &s.l3, &s.itlb, &s.dtlb] {
        save_level(w, level)?;
    }
    w.u64(s.writebacks)?;
    w.u64(s.bank_conflicts)?;
    w.u64(s.mshr_merges)
}

fn restore_stats<R: std::io::Read>(r: &mut BinReader<R>, s: &mut MemStats) -> std::io::Result<()> {
    s.icache = restore_level(r)?;
    s.dcache = restore_level(r)?;
    s.l2 = restore_level(r)?;
    s.l3 = restore_level(r)?;
    s.itlb = restore_level(r)?;
    s.dtlb = restore_level(r)?;
    s.writebacks = r.u64()?;
    s.bank_conflicts = r.u64()?;
    s.mshr_merges = r.u64()?;
    Ok(())
}

impl TagArray {
    fn save_state<W: std::io::Write>(&self, w: &mut BinWriter<W>) -> std::io::Result<()> {
        w.len(self.lines.len())?;
        for l in &self.lines {
            w.u32(l.tag)?;
            w.bool(l.valid)?;
            w.bool(l.dirty)?;
            w.u8(l.lru)?;
        }
        Ok(())
    }

    fn restore_state<R: std::io::Read>(&mut self, r: &mut BinReader<R>) -> std::io::Result<()> {
        let n = r.len()?;
        if n != self.lines.len() {
            return Err(binio::invalid(format!(
                "tag array has {n} lines, configuration expects {}",
                self.lines.len()
            )));
        }
        for l in &mut self.lines {
            l.tag = r.u32()?;
            l.valid = r.bool()?;
            l.dirty = r.bool()?;
            l.lru = r.u8()?;
        }
        Ok(())
    }
}

impl Tlb {
    fn save_state<W: std::io::Write>(&self, w: &mut BinWriter<W>) -> std::io::Result<()> {
        w.len(self.slots.len())?;
        for s in &self.slots {
            w.bool(s.live)?;
            w.u8(s.thread)?;
            w.u64(s.vpn)?;
            w.u64(s.stamp)?;
        }
        for f in &self.last {
            match f {
                None => w.bool(false)?,
                Some(f) => {
                    w.bool(true)?;
                    w.u64(f.vpn)?;
                    w.u32(f.slot)?;
                }
            }
        }
        w.len(self.len)?;
        w.u64(self.tick)
    }

    fn restore_state<R: std::io::Read>(&mut self, r: &mut BinReader<R>) -> std::io::Result<()> {
        let n = r.len()?;
        if n != self.slots.len() {
            return Err(binio::invalid(format!(
                "TLB table has {n} slots, configuration expects {}",
                self.slots.len()
            )));
        }
        for s in &mut self.slots {
            s.live = r.bool()?;
            s.thread = r.u8()?;
            s.vpn = r.u64()?;
            s.stamp = r.u64()?;
        }
        for f in &mut self.last {
            *f = if r.bool()? {
                let vpn = r.u64()?;
                let slot = r.u32()?;
                if slot as usize >= self.slots.len() {
                    return Err(binio::invalid(format!(
                        "TLB filter slot {slot} out of range"
                    )));
                }
                Some(TlbFilter { vpn, slot })
            } else {
                None
            };
        }
        self.len = r.len()?;
        if self.len > self.capacity {
            return Err(binio::invalid(format!(
                "TLB population {} exceeds capacity {}",
                self.len, self.capacity
            )));
        }
        self.tick = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: ThreadId = ThreadId(0);

    fn mem() -> MemoryHierarchy {
        MemoryHierarchy::new(MemConfig::default())
    }

    fn drain_until(m: &mut MemoryHierarchy, req: ReqId, limit: u64) -> u64 {
        for c in 1..limit {
            m.begin_cycle(c);
            for done in m.take_completions() {
                if done.req == req {
                    return c;
                }
            }
        }
        panic!("request {req:?} never completed within {limit} cycles");
    }

    #[test]
    fn default_config_matches_table2() {
        let c = MemConfig::default();
        assert_eq!(c.icache.size_bytes, 32 * 1024);
        assert_eq!(c.icache.assoc, 1);
        assert_eq!(c.dcache.banks, 8);
        assert_eq!(c.l2.size_bytes, 256 * 1024);
        assert_eq!(c.l2.assoc, 4);
        assert_eq!(c.l3.size_bytes, 2 * 1024 * 1024);
        assert_eq!(c.l3.cycles_per_access, 4);
        assert_eq!(c.icache.latency_to_next, 6);
        assert_eq!(c.l2.latency_to_next, 12);
        assert_eq!(c.l3.latency_to_next, 62);
        assert_eq!(c.icache.sets(), 512);
        assert_eq!(c.l2.sets(), 1024);
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut m = mem();
        // Warm the TLB for the page (first touch pays the page walk).
        m.begin_cycle(0);
        let AccessResult::Miss(warm) = m.dcache_access(T0, 0x10_0000, false) else {
            panic!("cold access must miss")
        };
        let warmed = drain_until(&mut m, warm, 2000);
        // A different line in the same (now-translated) page: pure cache miss.
        m.begin_cycle(warmed + 1);
        let AccessResult::Miss(req) = m.dcache_access(T0, 0x10_0040, false) else {
            panic!("expected miss")
        };
        let done = drain_until(&mut m, req, 2000) - (warmed + 1);
        // Cold miss goes all the way to memory: 6 + 12 + 62 plus access
        // costs; it must take at least 80 cycles and not be absurdly long.
        assert!(done >= 80, "cold miss completed too fast: {done}");
        assert!(done < 200, "cold miss too slow: {done}");
        m.begin_cycle(warmed + done + 2);
        assert_eq!(m.dcache_access(T0, 0x10_0040, false), AccessResult::Hit);
        // Same line, different word, next cycle (same bank): still a hit.
        m.begin_cycle(warmed + done + 3);
        assert_eq!(m.dcache_access(T0, 0x10_0048, false), AccessResult::Hit);
    }

    #[test]
    fn l2_hit_is_much_faster_than_memory() {
        let mut m = mem();
        m.begin_cycle(0);
        let AccessResult::Miss(r1) = m.dcache_access(T0, 0x20_0000, false) else {
            panic!("expected miss")
        };
        let t1 = drain_until(&mut m, r1, 1000);
        // Evict from tiny L1 by touching a conflicting line (same set).
        let conflict = 0x20_0000 + 32 * 1024;
        m.begin_cycle(t1 + 1);
        let AccessResult::Miss(r2) = m.dcache_access(T0, conflict, false) else {
            panic!("expected miss")
        };
        let t2 = drain_until(&mut m, r2, 2000);
        // Original line now misses L1 but hits L2.
        m.begin_cycle(t2 + 1);
        let AccessResult::Miss(r3) = m.dcache_access(T0, 0x20_0000, false) else {
            panic!("expected L1 miss")
        };
        let t3 = drain_until(&mut m, r3, 2000);
        let l2_latency = t3 - (t2 + 1);
        assert!(
            l2_latency < 20,
            "L2 hit should be ~7-10 cycles, got {l2_latency}"
        );
    }

    #[test]
    fn dcache_port_limit_is_four_per_cycle() {
        let mut m = mem();
        m.begin_cycle(0);
        let mut ok = 0;
        // 8 accesses to 8 distinct banks: only 4 ports available.
        for b in 0..8u64 {
            match m.dcache_access(T0, 0x40_0000 + b * 64, false) {
                AccessResult::BankConflict => {}
                _ => ok += 1,
            }
        }
        assert_eq!(ok, 4);
        // Next cycle the ports are free again.
        m.begin_cycle(1);
        assert!(!matches!(
            m.dcache_access(T0, 0x50_0000, false),
            AccessResult::BankConflict
        ));
    }

    #[test]
    fn same_bank_conflicts_within_cycle() {
        let mut m = mem();
        m.begin_cycle(0);
        let a = 0x60_0000;
        let same_bank = a + 8 * 64; // 8 banks * 64B line => same bank, different line
        let _ = m.dcache_access(T0, a, false);
        assert_eq!(
            m.dcache_access(T0, same_bank, false),
            AccessResult::BankConflict
        );
        assert!(m.stats().bank_conflicts >= 1);
    }

    #[test]
    fn infinite_bandwidth_removes_conflicts() {
        let mut m = MemoryHierarchy::new(MemConfig {
            infinite_bandwidth: true,
            ..MemConfig::default()
        });
        m.begin_cycle(0);
        for b in 0..16u64 {
            assert!(!matches!(
                m.dcache_access(T0, 0x40_0000 + b * 64, false),
                AccessResult::BankConflict
            ));
        }
    }

    #[test]
    fn mshr_merges_secondary_misses() {
        let mut m = mem();
        m.begin_cycle(0);
        let AccessResult::Miss(r1) = m.dcache_access(T0, 0x70_0000, false) else {
            panic!("expected miss")
        };
        // Same line one cycle later (same-cycle would be a bank conflict):
        // merges into the outstanding MSHR.
        m.begin_cycle(1);
        let AccessResult::Miss(r2) = m.dcache_access(T0, 0x70_0008, false) else {
            panic!("expected merged miss")
        };
        assert_eq!(m.stats().mshr_merges, 1);
        // Both complete at the same cycle.
        let mut done = Vec::new();
        for c in 1..1000 {
            m.begin_cycle(c);
            done.extend(m.take_completions());
            if done.len() == 2 {
                break;
            }
        }
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].at_cycle, done[1].at_cycle);
        assert!(done.iter().any(|d| d.req == r1));
        assert!(done.iter().any(|d| d.req == r2));
    }

    #[test]
    fn icache_separate_from_dcache() {
        let mut m = mem();
        m.begin_cycle(0);
        let AccessResult::Miss(req) = m.icache_fetch(T0, 0x1000) else {
            panic!("cold I-fetch must miss")
        };
        let done = drain_until(&mut m, req, 1000);
        m.begin_cycle(done + 1);
        assert_eq!(m.icache_fetch(T0, 0x1000), AccessResult::Hit);
        assert_eq!(m.stats().icache.misses, 1);
        assert_eq!(m.stats().dcache.accesses, 0);
    }

    #[test]
    fn icache_probe_has_no_side_effects() {
        let mut m = mem();
        assert!(!m.icache_probe(0x1000));
        let before = m.stats().icache.accesses;
        let _ = m.icache_probe(0x1000);
        assert_eq!(m.stats().icache.accesses, before);
        // After a fill, probe sees the line.
        m.begin_cycle(0);
        let AccessResult::Miss(req) = m.icache_fetch(T0, 0x1000) else {
            panic!()
        };
        let done = drain_until(&mut m, req, 1000);
        m.begin_cycle(done + 1);
        assert!(m.icache_probe(0x1000));
    }

    #[test]
    fn perfect_icache_always_hits_without_ports() {
        let mut m = MemoryHierarchy::new(MemConfig {
            perfect_icache: true,
            ..MemConfig::default()
        });
        m.begin_cycle(0);
        // Cold fetches, many in one cycle, same bank: all hit, no conflicts.
        for i in 0..16u64 {
            assert_eq!(m.icache_fetch(T0, 0x1000 + i * 8 * 64), AccessResult::Hit);
        }
        assert!(m.icache_bank_free(0x1000));
        assert_eq!(m.stats().icache.misses, 0);
        assert_eq!(m.stats().itlb.accesses, 0, "perfect I-side skips the ITLB");
        // The data side is unaffected: a cold D-access still misses.
        assert!(matches!(
            m.dcache_access(T0, 0x1000, false),
            AccessResult::Miss(_)
        ));
    }

    #[test]
    fn unarbitrated_fetch_skips_ports_and_banks() {
        let mut m = mem();
        m.begin_cycle(0);
        // Saturate the I-side: 4 ports.
        let mut started = 0;
        for b in 0..8u64 {
            if !matches!(m.icache_fetch(T0, b * 64), AccessResult::BankConflict) {
                started += 1;
            }
        }
        assert_eq!(started, 4);
        // An arbitrated access is now rejected; an unarbitrated one is not,
        // and it does not consume the budget either.
        assert_eq!(
            m.icache_fetch_with(T0, 8 * 64, true),
            AccessResult::BankConflict
        );
        assert!(matches!(
            m.icache_fetch_with(T0, 9 * 64, false),
            AccessResult::Miss(_)
        ));
        assert!(!m.icache_bank_free(4 * 64), "ports stay exhausted");
    }

    #[test]
    fn tlb_miss_charges_two_memory_accesses() {
        let mut m = mem();
        m.begin_cycle(0);
        // First access: TLB miss + cold cache miss.
        let AccessResult::Miss(r1) = m.dcache_access(T0, 0x100_0000, false) else {
            panic!()
        };
        let t1 = drain_until(&mut m, r1, 2000);
        assert!(
            t1 >= 2 * m.full_memory_latency(),
            "TLB miss must cost at least two full memory accesses, got {t1}"
        );
        assert_eq!(m.stats().dtlb.misses, 1);
        // Same page again: TLB hit; different line: ordinary cache miss.
        m.begin_cycle(t1 + 1);
        let AccessResult::Miss(r2) = m.dcache_access(T0, 0x100_0000 + 64, false) else {
            panic!()
        };
        let t2 = drain_until(&mut m, r2, 2000);
        assert!(t2 - t1 < 2 * m.full_memory_latency());
        assert_eq!(m.stats().dtlb.misses, 1, "second access must hit the TLB");
    }

    #[test]
    fn writebacks_counted_on_dirty_eviction() {
        let mut m = mem();
        // Write a line (write-allocate), then evict it with a conflicting line.
        m.begin_cycle(0);
        let AccessResult::Miss(r1) = m.dcache_access(T0, 0x30_0000, true) else {
            panic!()
        };
        let t1 = drain_until(&mut m, r1, 2000);
        m.begin_cycle(t1 + 1);
        // Dirty the line now that it is resident.
        assert_eq!(m.dcache_access(T0, 0x30_0000, true), AccessResult::Hit);
        m.begin_cycle(t1 + 2);
        let AccessResult::Miss(r2) = m.dcache_access(T0, 0x30_0000 + 32 * 1024, false) else {
            panic!()
        };
        let _ = drain_until(&mut m, r2, 3000);
        assert!(
            m.stats().writebacks >= 1,
            "dirty eviction must count a writeback"
        );
    }

    #[test]
    fn level_stats_miss_rate() {
        let s = LevelStats {
            accesses: 200,
            misses: 5,
        };
        assert_eq!(s.miss_rate(), 2.5);
        assert_eq!(LevelStats::default().miss_rate(), 0.0);
    }

    #[test]
    fn next_event_cycle_tracks_scheduled_events() {
        let mut m = mem();
        m.begin_cycle(0);
        assert_eq!(m.next_event_cycle(), None, "fresh hierarchy is idle");
        let AccessResult::Miss(req) = m.dcache_access(T0, 0x10_0000, false) else {
            panic!("cold access must miss")
        };
        let due = m
            .next_event_cycle()
            .expect("an outstanding miss schedules events");
        assert!(due > 0, "events are scheduled in the future");
        let done = drain_until(&mut m, req, 2000);
        assert!(done >= due, "completion cannot precede the earliest event");
        // Once the completion and its line fill have been consumed the
        // hierarchy is idle again.
        m.begin_cycle(done + 1);
        assert_eq!(m.next_event_cycle(), None, "all events drained");
    }

    #[test]
    fn reset_stats_preserves_contents() {
        let mut m = mem();
        m.begin_cycle(0);
        let AccessResult::Miss(req) = m.dcache_access(T0, 0x10_0000, false) else {
            panic!()
        };
        let done = drain_until(&mut m, req, 1000);
        m.reset_stats();
        assert_eq!(m.stats().dcache.accesses, 0);
        m.begin_cycle(done + 1);
        assert_eq!(m.dcache_access(T0, 0x10_0000, false), AccessResult::Hit);
    }

    #[test]
    fn bank_mapping_is_line_interleaved() {
        let p = MemConfig::default().dcache;
        assert_eq!(p.bank_of(0), 0);
        assert_eq!(p.bank_of(63), 0);
        assert_eq!(p.bank_of(64), 1);
        assert_eq!(p.bank_of(64 * 8), 0);
        assert_eq!(p.line_of(0x12345), 0x12345 & !63);
    }

    #[test]
    fn l3_bank_reservation_throttles() {
        let mut m = mem();
        // Two cold misses to different L3 lines close in time: the second
        // must queue behind the first at the single L3 bank.
        m.begin_cycle(0);
        let AccessResult::Miss(r1) = m.dcache_access(T0, 0x800_0000, false) else {
            panic!()
        };
        // Different L1 bank (line + 64) so both accesses start this cycle.
        let AccessResult::Miss(r2) = m.dcache_access(T0, 0x900_0040, false) else {
            panic!()
        };
        let t1 = drain_until(&mut m, r1, 4000);
        let t2 = drain_until(&mut m, r2, 4000);
        assert!(
            t2 > t1,
            "second miss must queue behind the first in L3/memory"
        );
    }
}

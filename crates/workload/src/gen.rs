//! Deterministic synthetic program generator.
//!
//! A [`ProfileParams`] describes one benchmark as a parameter set:
//! basic-block geometry, instruction mix, branch behaviour, dependency
//! distances, callee functions and data regions. [`ProfileParams::generate`]
//! turns it into a concrete [`Program`] image laid out in a per-slot address
//! window, so different hardware contexts running the same benchmark get
//! distinct (but statistically identical) images.
//!
//! Generation is a pure function of `(params, seed, slot)`; no global state
//! and no `std` RNG is involved, so simulations are exactly reproducible.

use crate::mix64;
use crate::program::{BranchBehavior, BranchModel, MemModel, MemPattern, Program, Region};
use smt_isa::{Opcode, Reg, StaticInst, INST_BYTES, NO_META};

/// Address-generation style of memory instructions bound to a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternSpec {
    /// Sequential streaming with the given byte stride (array walks).
    Stride(u32),
    /// Uniformly random 8-byte-aligned addresses (pointer chasing, hashing).
    Random,
}

/// One data region of a benchmark's address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionSpec {
    /// Region size in bytes (rounded up to 4 KB at layout time).
    pub size: u64,
    /// How memory instructions bound to this region generate addresses.
    pub pattern: PatternSpec,
    /// Relative probability that a memory instruction binds to this region.
    pub weight: u16,
}

/// The full parameter set describing one synthetic benchmark.
///
/// All probabilities are expressed in thousandths (`_milli`) so the whole
/// description is integral and hashable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileParams {
    /// Benchmark name, used in reports.
    pub name: &'static str,
    /// Number of basic blocks in the main body.
    pub blocks: usize,
    /// Inclusive range of non-control instructions per block (min >= 2).
    pub block_len: (usize, usize),
    /// Fraction of body instructions that are loads.
    pub load_milli: u16,
    /// Fraction of body instructions that are stores.
    pub store_milli: u16,
    /// Fraction of register-computing instructions that are floating point.
    pub fp_milli: u16,
    /// Fraction of integer ALU instructions that are multiplies.
    pub int_mul_milli: u16,
    /// Fraction of FP instructions that are divides.
    pub fp_div_milli: u16,
    /// Fraction of block terminators that are loop back-edges.
    pub loop_milli: u16,
    /// Fraction of block terminators that are subroutine calls.
    pub call_milli: u16,
    /// Fraction of block terminators that are unconditional jumps.
    pub jump_milli: u16,
    /// Fraction of block terminators that are indirect jumps.
    pub indirect_milli: u16,
    /// Inclusive range of loop trip counts.
    pub trip: (u32, u32),
    /// Taken bias of forward conditional branches, in thousandths.
    pub taken_milli: u16,
    /// Average register dependency distance (larger = more ILP).
    pub dep_window: usize,
    /// Number of small callee functions appended after the main body.
    pub functions: usize,
    /// Data regions and their access patterns.
    pub regions: Vec<RegionSpec>,
}

/// Counter-based deterministic RNG over [`mix64`].
struct Rng {
    state: u64,
    ctr: u64,
}

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng {
            state: mix64(seed),
            ctr: 0,
        }
    }

    fn next(&mut self) -> u64 {
        self.ctr = self.ctr.wrapping_add(1);
        mix64(self.state ^ self.ctr.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Uniform draw in `lo..=hi`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.next() % (hi - lo + 1)
    }

    /// Bernoulli draw with probability `p_milli / 1000`.
    fn milli(&mut self, p_milli: u16) -> bool {
        self.next() % 1000 < u64::from(p_milli)
    }
}

/// Planned terminator of one main-body block.
#[derive(Debug, Clone, Copy)]
enum Term {
    /// Loop back-edge to `back` blocks earlier, with the given trip count.
    Loop { back: usize, trip: u32 },
    /// Call to callee function `func`.
    Call { func: usize },
    /// Unconditional jump `skip` blocks forward.
    Jump { skip: usize },
    /// Indirect jump to a small set of forward blocks.
    Indirect,
    /// Forward conditional branch skipping `skip` blocks when taken.
    Fwd { skip: usize },
    /// The final block jumps back to the entry, looping the program forever.
    Restart,
}

#[derive(Debug, Clone, Copy)]
struct BlockPlan {
    body: usize,
    term: Term,
}

/// Register-sequence state used to thread dependences through the code.
struct RegSeq {
    int_seq: i64,
    fp_seq: i64,
}

impl RegSeq {
    fn new() -> RegSeq {
        // Start deep enough that "distance back" indexing never needs care.
        RegSeq {
            int_seq: 1 << 20,
            fp_seq: 1 << 20,
        }
    }

    /// Registers r1..r24 rotate as destinations; r25+ are left quiet so
    /// calls/returns can use a stable link register.
    fn int_at(&self, pos: i64) -> Reg {
        Reg::int((1 + pos.rem_euclid(24)) as u8)
    }

    fn fp_at(&self, pos: i64) -> Reg {
        Reg::fp((1 + pos.rem_euclid(24)) as u8)
    }

    fn next_int(&mut self) -> Reg {
        self.int_seq += 1;
        self.int_at(self.int_seq)
    }

    fn next_fp(&mut self) -> Reg {
        self.fp_seq += 1;
        self.fp_at(self.fp_seq)
    }

    fn int_back(&self, dist: u64) -> Reg {
        self.int_at(self.int_seq - dist as i64)
    }

    fn fp_back(&self, dist: u64) -> Reg {
        self.fp_at(self.fp_seq - dist as i64)
    }
}

/// The link register written by calls and read by returns.
const LINK_REG: u8 = 26;

impl ProfileParams {
    /// Generates the program image for hardware-context slot `slot`.
    ///
    /// The same `(seed, slot)` pair always yields the identical image;
    /// different slots get images of identical statistics at disjoint,
    /// set-decorrelated addresses.
    pub fn generate(&self, seed: u64, slot: u32) -> Program {
        assert!(self.blocks >= 2, "need at least two basic blocks");
        assert!(
            self.block_len.0 >= 2,
            "blocks need room for a compare before the branch"
        );
        assert!(!self.regions.is_empty(), "need at least one data region");
        assert!(self.dep_window >= 1, "dependency window must be at least 1");
        assert!(self.trip.0 >= 1, "loop trip counts must be at least 1");

        let mut rng = Rng::new(seed ^ (u64::from(slot) << 32) ^ hash_name(self.name));

        // Per-slot address window, jittered by a few cache lines so slots do
        // not alias into identical I/D-cache sets.
        let window = 0x0800_0000u64;
        let code_base = u64::from(slot) * window + 0x0001_0000 + (rng.next() % 256) * 64;

        // ---- Pass 1: plan block shapes so all start addresses are known. --
        let plans = self.plan_blocks(&mut rng);
        let func_plans: Vec<usize> = (0..self.functions)
            .map(|_| self.draw_body_len(&mut rng))
            .collect();

        let mut starts = Vec::with_capacity(self.blocks);
        let mut pc = code_base;
        for p in &plans {
            starts.push(pc);
            pc += (p.body as u64 + 1) * INST_BYTES;
        }
        let mut func_starts = Vec::with_capacity(self.functions);
        for body in &func_plans {
            func_starts.push(pc);
            pc += (*body as u64 + 1) * INST_BYTES;
        }

        // ---- Data regions, laid out past the code. ----------------------
        let mut regions = Vec::with_capacity(self.regions.len());
        let mut data_base = u64::from(slot) * window + 0x0400_0000 + (rng.next() % 512) * 64;
        for spec in &self.regions {
            let size = spec.size.next_multiple_of(4096);
            regions.push(Region {
                base: data_base,
                size,
            });
            data_base += size + 4096;
        }
        let weight_total: u64 = self.regions.iter().map(|r| u64::from(r.weight)).sum();
        assert!(weight_total > 0, "region weights must not all be zero");

        // ---- Pass 2: emit instructions and side tables. -----------------
        let mut code = Vec::new();
        let mut branches: Vec<BranchModel> = Vec::new();
        let mut mems: Vec<MemModel> = Vec::new();
        let mut seq = RegSeq::new();

        let emit_mem = |rng: &mut Rng, mems: &mut Vec<MemModel>, seq: &mut RegSeq| {
            let mut pick = rng.next() % weight_total;
            let mut region = 0usize;
            for (i, spec) in self.regions.iter().enumerate() {
                if pick < u64::from(spec.weight) {
                    region = i;
                    break;
                }
                pick -= u64::from(spec.weight);
            }
            let pattern = match self.regions[region].pattern {
                PatternSpec::Stride(stride) => MemPattern::Stride {
                    region: region as u16,
                    stride,
                },
                PatternSpec::Random => MemPattern::Random {
                    region: region as u16,
                },
            };
            let meta = mems.len() as u32;
            mems.push(MemModel { pattern });
            let addr_reg = seq.int_back(1 + rng.next() % self.dep_window as u64);
            (meta, addr_reg)
        };

        let emit_body = |rng: &mut Rng,
                         code: &mut Vec<StaticInst>,
                         mems: &mut Vec<MemModel>,
                         seq: &mut RegSeq,
                         n: usize,
                         cmp_last: bool|
         -> Option<Reg> {
            let plain = if cmp_last { n - 1 } else { n };
            for _ in 0..plain {
                let d1 = 1 + rng.next() % self.dep_window as u64;
                let d2 = 1 + rng.next() % self.dep_window as u64;
                let r = rng.next() % 1000;
                let is_fp = rng.milli(self.fp_milli);
                let inst = if r < u64::from(self.load_milli) {
                    let (meta, addr) = emit_mem(rng, mems, seq);
                    let op = if is_fp { Opcode::FpLoad } else { Opcode::Load };
                    let dest = if is_fp { seq.next_fp() } else { seq.next_int() };
                    StaticInst::op2(op, dest, addr).with_meta(meta)
                } else if r < u64::from(self.load_milli + self.store_milli) {
                    let (meta, addr) = emit_mem(rng, mems, seq);
                    let (op, value) = if is_fp {
                        (Opcode::FpStore, seq.fp_back(d1))
                    } else {
                        (Opcode::Store, seq.int_back(d1))
                    };
                    StaticInst {
                        op,
                        dest: None,
                        srcs: [Some(value), Some(addr)],
                        meta,
                    }
                } else if is_fp {
                    let op = if rng.milli(self.fp_div_milli) {
                        if rng.milli(500) {
                            Opcode::FpDivSingle
                        } else {
                            Opcode::FpDivDouble
                        }
                    } else {
                        Opcode::FpOp
                    };
                    let s1 = seq.fp_back(d1);
                    let s2 = seq.fp_back(d2);
                    StaticInst::op3(op, seq.next_fp(), s1, s2)
                } else {
                    let op = if rng.milli(self.int_mul_milli) {
                        if rng.milli(700) {
                            Opcode::IntMul
                        } else {
                            Opcode::IntMulLong
                        }
                    } else if rng.milli(60) {
                        Opcode::CondMove
                    } else {
                        Opcode::IntAlu
                    };
                    let s1 = seq.int_back(d1);
                    let s2 = seq.int_back(d2);
                    StaticInst::op3(op, seq.next_int(), s1, s2)
                };
                code.push(inst);
            }
            if cmp_last {
                let d = 1 + rng.next() % self.dep_window as u64;
                let src = seq.int_back(d);
                let dest = seq.next_int();
                code.push(StaticInst::op2(Opcode::Compare, dest, src));
                Some(dest)
            } else {
                None
            }
        };

        for (i, plan) in plans.iter().enumerate() {
            let cmp_last = matches!(plan.term, Term::Loop { .. } | Term::Fwd { .. });
            let cmp = emit_body(
                &mut rng, &mut code, &mut mems, &mut seq, plan.body, cmp_last,
            );
            let term = match plan.term {
                Term::Loop { back, trip } => {
                    let meta = branches.len() as u32;
                    branches.push(BranchModel {
                        behavior: BranchBehavior::Loop { trip },
                        taken_target: starts[i.saturating_sub(back)],
                        targets: vec![],
                    });
                    StaticInst {
                        op: Opcode::CondBranch,
                        dest: None,
                        srcs: [cmp, None],
                        meta,
                    }
                }
                Term::Fwd { skip } => {
                    // Real branch populations are bimodal: most static
                    // branches are strongly biased one way (and thus very
                    // predictable); only a minority behave like coin flips
                    // shaped by the profile's `taken_milli`.
                    let bias = {
                        let r = rng.next() % 1000;
                        if r < 380 {
                            20 + (rng.next() % 90) as u16
                        } else if r < 760 {
                            890 + (rng.next() % 90) as u16
                        } else {
                            self.taken_milli
                        }
                    };
                    let meta = branches.len() as u32;
                    branches.push(BranchModel {
                        behavior: BranchBehavior::Bernoulli { taken_milli: bias },
                        taken_target: starts[(i + skip).min(self.blocks - 1)],
                        targets: vec![],
                    });
                    StaticInst {
                        op: Opcode::CondBranch,
                        dest: None,
                        srcs: [cmp, None],
                        meta,
                    }
                }
                Term::Call { func } => {
                    let meta = branches.len() as u32;
                    branches.push(BranchModel {
                        behavior: BranchBehavior::Bernoulli { taken_milli: 1000 },
                        taken_target: func_starts[func],
                        targets: vec![],
                    });
                    StaticInst {
                        op: Opcode::Call,
                        dest: Some(Reg::int(LINK_REG)),
                        srcs: [None, None],
                        meta,
                    }
                }
                Term::Jump { skip } => {
                    let meta = branches.len() as u32;
                    branches.push(BranchModel {
                        behavior: BranchBehavior::Bernoulli { taken_milli: 1000 },
                        taken_target: starts[(i + skip).min(self.blocks - 1)],
                        targets: vec![],
                    });
                    StaticInst::op0(Opcode::Jump).with_meta(meta)
                }
                Term::Indirect => {
                    let mut targets: Vec<_> = (0..2 + rng.next() % 3)
                        .map(|d| starts[(i + 1 + d as usize).min(self.blocks - 1)])
                        .collect();
                    targets.dedup();
                    let meta = branches.len() as u32;
                    branches.push(BranchModel {
                        behavior: BranchBehavior::Bernoulli { taken_milli: 1000 },
                        taken_target: targets[0],
                        targets,
                    });
                    StaticInst::op0(Opcode::JumpInd).with_meta(meta)
                }
                Term::Restart => {
                    let meta = branches.len() as u32;
                    branches.push(BranchModel {
                        behavior: BranchBehavior::Bernoulli { taken_milli: 1000 },
                        taken_target: starts[0],
                        targets: vec![],
                    });
                    StaticInst::op0(Opcode::Jump).with_meta(meta)
                }
            };
            code.push(term);
        }

        for body in &func_plans {
            emit_body(&mut rng, &mut code, &mut mems, &mut seq, *body, false);
            code.push(StaticInst {
                op: Opcode::Return,
                dest: None,
                srcs: [Some(Reg::int(LINK_REG)), None],
                meta: NO_META,
            });
        }

        let program = Program {
            name: self.name.to_string(),
            code_base,
            code,
            branches,
            mems,
            regions,
            entry: code_base,
        };
        debug_assert_eq!(program.validate(), Ok(()));
        program
    }

    fn draw_body_len(&self, rng: &mut Rng) -> usize {
        rng.range(self.block_len.0 as u64, self.block_len.1 as u64) as usize
    }

    fn plan_blocks(&self, rng: &mut Rng) -> Vec<BlockPlan> {
        (0..self.blocks)
            .map(|i| {
                let body = self.draw_body_len(rng);
                let term = if i == self.blocks - 1 {
                    Term::Restart
                } else {
                    let r = rng.next() % 1000;
                    let lp = u64::from(self.loop_milli);
                    let call = lp + u64::from(self.call_milli);
                    let jmp = call + u64::from(self.jump_milli);
                    let ind = jmp + u64::from(self.indirect_milli);
                    if r < lp {
                        // Mostly tight single-block loops (the back-edge
                        // targets its own block, so the loop cannot be
                        // escaped mid-body) — these are the hot inner loops
                        // that give real programs their I-cache locality.
                        // A minority span a few blocks and behave like
                        // loosely-structured outer loops.
                        let back = if rng.milli(750) {
                            0
                        } else {
                            (1 + rng.next() as usize % 3).min(i.max(1))
                        };
                        Term::Loop {
                            back,
                            trip: rng.range(u64::from(self.trip.0), u64::from(self.trip.1)) as u32,
                        }
                    } else if r < call && self.functions > 0 {
                        Term::Call {
                            func: rng.next() as usize % self.functions,
                        }
                    } else if r < jmp {
                        Term::Jump {
                            skip: 1 + rng.next() as usize % 2,
                        }
                    } else if r < ind {
                        Term::Indirect
                    } else {
                        Term::Fwd {
                            skip: 1 + rng.next() as usize % 3,
                        }
                    }
                };
                BlockPlan { body, term }
            })
            .collect()
    }
}

fn hash_name(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> ProfileParams {
        ProfileParams {
            name: "unit",
            blocks: 40,
            block_len: (3, 8),
            load_milli: 200,
            store_milli: 100,
            fp_milli: 0,
            int_mul_milli: 20,
            fp_div_milli: 0,
            loop_milli: 250,
            call_milli: 100,
            jump_milli: 50,
            indirect_milli: 30,
            trip: (2, 16),
            taken_milli: 400,
            dep_window: 6,
            functions: 3,
            regions: vec![
                RegionSpec {
                    size: 64 * 1024,
                    pattern: PatternSpec::Stride(8),
                    weight: 3,
                },
                RegionSpec {
                    size: 256 * 1024,
                    pattern: PatternSpec::Random,
                    weight: 1,
                },
            ],
        }
    }

    #[test]
    fn generated_program_validates() {
        let p = small_params().generate(1, 0);
        assert_eq!(p.validate(), Ok(()));
        assert!(p.len() > 40 * 4);
        assert!(p.branch_count() > 0);
        assert!(p.mem_count() > 0);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_params().generate(7, 2);
        let b = small_params().generate(7, 2);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.code_base(), b.code_base());
        assert_eq!(a.inst_at(a.entry()), b.inst_at(b.entry()));
    }

    #[test]
    fn slots_get_disjoint_address_windows() {
        let a = small_params().generate(7, 0);
        let b = small_params().generate(7, 1);
        assert!(a.code_base() + a.code_bytes() <= b.code_base());
        let a_end = a.regions().iter().map(|r| r.base + r.size).max().unwrap();
        assert!(
            a_end <= b.code_base(),
            "slot 0 data must not overlap slot 1 code"
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = small_params().generate(1, 0);
        let b = small_params().generate(2, 0);
        // Same geometry parameters, but the drawn shapes should diverge.
        assert!(a.len() != b.len() || a.code_base() != b.code_base());
    }
}

//! Real-binary workload backend: loads rv32i/rv64i images (ELF or flat)
//! and functionally executes them to drive fetch with a real correct-path
//! instruction stream.
//!
//! [`RiscvImage`] is the loaded, immutable program: the pristine initial
//! memory contents, entry point and XLEN. [`RiscvSource`] is one thread's
//! mutable execution state over an image — integer register file, a flat
//! memory arena (loaded segments plus a zeroed heap/stack pad) and the
//! PC — implementing [`WorkloadSource`] so the
//! pipeline consumes it exactly like the synthetic oracle.
//!
//! # Execution model
//!
//! * Instructions are decoded by [`smt_isa::riscv`] and executed with
//!   full architectural semantics (two's-complement arithmetic, W-ops on
//!   rv64, M-extension multiply/divide including the division edge
//!   cases).
//! * The source must yield instructions forever, so program exit restarts
//!   it: `ecall`/`ebreak` (and any undecodable word the PC wanders into)
//!   are modeled as an unconditional [`Opcode::Jump`] back to the entry
//!   point, and the register file and memory arena are reset to their
//!   pristine load-time state — a deterministic loop over the whole
//!   program, with no steady-state allocation (the reset is a `memcpy`).
//! * Memory accesses wrap into the arena (`addr mod arena-size` relative
//!   to the load base), so a wild pointer can never panic the simulator;
//!   the *architectural* effective address is still what the pipeline's
//!   cache model sees.
//!
//! # Wrong-path synthesis
//!
//! Wrong-path queries decode the **pristine image**, not live memory:
//! fetch down a mispredicted path sees the real instructions at those
//! addresses, target-less taken branches resolve to their statically
//! decoded targets, and synthesized wrong-path load addresses are hashed
//! into the arena. Using the pristine bytes (rather than the current
//! memory state) keeps executed runs and trace replays byte-identical —
//! the recorded trace embeds the same image (see [`crate::trace`]).

use std::io::{Read, Write};
use std::sync::Arc;

use smt_isa::riscv::{decode, RvOp};
use smt_isa::{Addr, Opcode, Outcome, StaticInst, INST_BYTES};
use smt_stats::binio::{invalid, BinReader, BinWriter};

use crate::mix64;
use crate::source::WorkloadSource;

/// Address width of a loaded image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Xlen {
    /// rv32: 32-bit registers and addresses.
    Rv32,
    /// rv64: 64-bit registers and addresses.
    Rv64,
}

impl Xlen {
    fn pc_mask(self) -> u64 {
        match self {
            Xlen::Rv32 => 0xffff_ffff,
            Xlen::Rv64 => u64::MAX,
        }
    }
}

/// Load address of flat (non-ELF) binaries, and their entry point.
pub const FLAT_BASE: Addr = 0x1000;

/// Zeroed heap/stack pad appended after the loaded image: the stack
/// pointer starts at the top of this pad.
const ARENA_PAD: usize = 64 * 1024;

/// Hard cap on the memory arena; images whose loaded span would exceed it
/// are refused at load time (they could not be checkpointed sensibly).
const ARENA_MAX: usize = 8 * 1024 * 1024;

/// One loaded RISC-V program: immutable, shareable across threads (each
/// [`RiscvSource`] gets its own mutable arena copy).
#[derive(Debug)]
pub struct RiscvImage {
    name: String,
    xlen: Xlen,
    entry: Addr,
    /// Lowest loaded virtual address (page-aligned down); the arena maps
    /// `[base, base + image.len() + ARENA_PAD)`.
    base: Addr,
    /// Pristine initial memory: loaded segments with zero-fill (`.bss`).
    image: Vec<u8>,
}

impl RiscvImage {
    /// Loads an image from raw file bytes: ELF (little-endian rv32/rv64,
    /// `PT_LOAD` segments honored) when the magic matches, otherwise a
    /// flat binary loaded and entered at [`FLAT_BASE`] (assumed rv64).
    /// `name` labels the thread in reports.
    pub fn from_bytes(name: &str, bytes: &[u8]) -> Result<RiscvImage, String> {
        if bytes.starts_with(b"\x7fELF") {
            Self::from_elf(name, bytes)
        } else {
            Self::from_flat(name, bytes, Xlen::Rv64)
        }
    }

    /// Reads and loads an image file (see
    /// [`from_bytes`](RiscvImage::from_bytes)); the file stem becomes the
    /// report name.
    pub fn load(path: &std::path::Path) -> Result<RiscvImage, String> {
        let bytes =
            std::fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let name = path.file_stem().and_then(|s| s.to_str()).unwrap_or("riscv");
        Self::from_bytes(name, &bytes)
    }

    /// Loads a flat binary: the bytes are mapped at [`FLAT_BASE`], which
    /// is also the entry point.
    pub fn from_flat(name: &str, bytes: &[u8], xlen: Xlen) -> Result<RiscvImage, String> {
        if bytes.is_empty() {
            return Err(format!("{name}: empty image"));
        }
        if bytes.len() > ARENA_MAX {
            return Err(format!("{name}: image exceeds the {ARENA_MAX}-byte cap"));
        }
        Ok(RiscvImage {
            name: name.to_string(),
            xlen,
            entry: FLAT_BASE,
            base: FLAT_BASE,
            image: bytes.to_vec(),
        })
    }

    /// Parses a little-endian RISC-V ELF (class decides rv32/rv64) and
    /// maps its `PT_LOAD` segments.
    pub fn from_elf(name: &str, bytes: &[u8]) -> Result<RiscvImage, String> {
        let u16_at = |off: usize| -> Result<u64, String> {
            let b = bytes
                .get(off..off + 2)
                .ok_or_else(|| format!("{name}: truncated ELF header"))?;
            Ok(u64::from(u16::from_le_bytes([b[0], b[1]])))
        };
        let u32_at = |off: usize| -> Result<u64, String> {
            let b = bytes
                .get(off..off + 4)
                .ok_or_else(|| format!("{name}: truncated ELF header"))?;
            Ok(u64::from(u32::from_le_bytes([b[0], b[1], b[2], b[3]])))
        };
        let u64_at = |off: usize| -> Result<u64, String> {
            let b = bytes
                .get(off..off + 8)
                .ok_or_else(|| format!("{name}: truncated ELF header"))?;
            Ok(u64::from_le_bytes([
                b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
            ]))
        };
        if !bytes.starts_with(b"\x7fELF") {
            return Err(format!("{name}: not an ELF image"));
        }
        let xlen = match bytes.get(4) {
            Some(1) => Xlen::Rv32,
            Some(2) => Xlen::Rv64,
            _ => return Err(format!("{name}: unknown ELF class")),
        };
        if bytes.get(5) != Some(&1) {
            return Err(format!("{name}: only little-endian ELF is supported"));
        }
        let machine = u16_at(18)?;
        if machine != 243 {
            return Err(format!("{name}: ELF machine {machine} is not RISC-V (243)"));
        }
        let (entry, phoff, phentsize, phnum) = match xlen {
            Xlen::Rv64 => (u64_at(24)?, u64_at(32)?, u16_at(54)?, u16_at(56)?),
            Xlen::Rv32 => (u32_at(24)?, u32_at(28)?, u16_at(42)?, u16_at(44)?),
        };
        // Collect PT_LOAD segments.
        let mut segs: Vec<(u64, u64, u64, u64)> = Vec::new(); // (vaddr, memsz, offset, filesz)
        for i in 0..phnum {
            let ph = usize::try_from(phoff + i * phentsize)
                .map_err(|_| format!("{name}: program header offset overflow"))?;
            let p_type = u32_at(ph)?;
            if p_type != 1 {
                continue;
            }
            let (offset, vaddr, filesz, memsz) = match xlen {
                Xlen::Rv64 => (
                    u64_at(ph + 8)?,
                    u64_at(ph + 16)?,
                    u64_at(ph + 32)?,
                    u64_at(ph + 40)?,
                ),
                Xlen::Rv32 => (
                    u32_at(ph + 4)?,
                    u32_at(ph + 8)?,
                    u32_at(ph + 16)?,
                    u32_at(ph + 20)?,
                ),
            };
            if filesz > memsz {
                return Err(format!("{name}: segment filesz exceeds memsz"));
            }
            segs.push((vaddr, memsz, offset, filesz));
        }
        if segs.is_empty() {
            return Err(format!("{name}: no PT_LOAD segments"));
        }
        let base = segs.iter().map(|s| s.0).min().unwrap() & !0xfff;
        let top = segs
            .iter()
            .map(|&(vaddr, memsz, _, _)| vaddr.checked_add(memsz))
            .collect::<Option<Vec<_>>>()
            .and_then(|tops| tops.into_iter().max())
            .ok_or_else(|| format!("{name}: segment address overflow"))?;
        let span = usize::try_from(top - base).map_err(|_| format!("{name}: image too large"))?;
        if span == 0 || span > ARENA_MAX {
            return Err(format!(
                "{name}: loaded span {span} outside (0, {ARENA_MAX}]"
            ));
        }
        let mut image = vec![0u8; span];
        for (vaddr, _, offset, filesz) in segs {
            let file = usize::try_from(offset)
                .ok()
                .zip(usize::try_from(filesz).ok())
                .and_then(|(o, n)| bytes.get(o..o + n))
                .ok_or_else(|| format!("{name}: segment data outside the file"))?;
            let dst = usize::try_from(vaddr - base).map_err(|_| format!("{name}: bad vaddr"))?;
            image
                .get_mut(dst..dst + file.len())
                .ok_or_else(|| format!("{name}: segment outside the image span"))?
                .copy_from_slice(file);
        }
        if entry < base || entry >= top {
            return Err(format!("{name}: entry {entry:#x} outside the loaded image"));
        }
        Ok(RiscvImage {
            name: name.to_string(),
            xlen,
            entry,
            base,
            image,
        })
    }

    /// Report label for threads running this image.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Address width.
    pub fn xlen(&self) -> Xlen {
        self.xlen
    }

    /// Entry point.
    pub fn entry(&self) -> Addr {
        self.entry
    }

    /// Lowest mapped address.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// The pristine initial memory contents (loaded segments + `.bss`).
    pub fn image_bytes(&self) -> &[u8] {
        &self.image
    }

    /// Total arena size a source built from this image will use.
    pub fn arena_len(&self) -> usize {
        self.image.len() + ARENA_PAD
    }

    /// FNV-1a hash of the identity-shaping fields, used by the checkpoint
    /// config fingerprint to pin "same image".
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        eat(self.name.as_bytes());
        eat(&self.entry.to_le_bytes());
        eat(&self.base.to_le_bytes());
        eat(&[match self.xlen {
            Xlen::Rv32 => 32,
            Xlen::Rv64 => 64,
        }]);
        eat(&self.image);
        h
    }
}

// ---- shared wrong-path synthesis over a pristine image -----------------
//
// Used verbatim by both `RiscvSource` and `TraceSource` so an executed run
// and its trace replay synthesize identical wrong paths.

/// The wrong-path instruction at `pc`: the decoded pristine-image word
/// when `pc` lands in it, otherwise the synthetic filler convention.
pub(crate) fn wrong_inst_at(image: &[u8], base: Addr, pc: Addr) -> StaticInst {
    match image_word(image, base, pc) {
        Some(w) => decode(w).static_inst(),
        None => decode(0).static_inst(), // Illegal → IntAlu filler
    }
}

/// A synthesized wrong-path effective address, hashed into the arena.
pub(crate) fn wrong_mem_addr(base: Addr, arena_len: usize, pc: Addr, salt: u64) -> Addr {
    let h = mix64(pc ^ salt.rotate_left(17));
    base + (mix64(h) % (arena_len as u64 / 8).max(1)) * 8
}

/// The statically-known taken target for a wrong-path control transfer at
/// `pc`: the decoded PC-relative target when there is one, the entry point
/// for indirect/exit transfers, fallthrough otherwise.
pub(crate) fn wrong_taken_target(image: &[u8], base: Addr, entry: Addr, pc: Addr) -> Addr {
    let rv = match image_word(image, base, pc) {
        Some(w) => decode(w),
        None => return pc + INST_BYTES,
    };
    if let Some(t) = rv.rel_target(pc) {
        return t;
    }
    match rv.op {
        RvOp::Jalr | RvOp::Ecall | RvOp::Ebreak => entry,
        _ => pc + INST_BYTES,
    }
}

/// The 32-bit word at `pc` in the pristine image, if fully inside it.
fn image_word(image: &[u8], base: Addr, pc: Addr) -> Option<u32> {
    let off = usize::try_from(pc.checked_sub(base)?).ok()?;
    let b = image.get(off..off + 4)?;
    Some(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

/// One thread's functional execution state over a [`RiscvImage`].
pub struct RiscvSource {
    image: Arc<RiscvImage>,
    /// Integer register file (`x0` is kept zero by construction).
    regs: [u64; 32],
    pc: Addr,
    executed: u64,
    /// Mutable memory: pristine image followed by the zeroed pad.
    arena: Vec<u8>,
}

impl RiscvSource {
    /// Creates the execution state at the image's entry point: registers
    /// zero except the stack pointer (`x2`, parked near the arena top),
    /// memory equal to the pristine image plus a zeroed pad.
    pub fn new(image: Arc<RiscvImage>) -> RiscvSource {
        let mut arena = vec![0u8; image.arena_len()];
        arena[..image.image.len()].copy_from_slice(&image.image);
        let mut s = RiscvSource {
            pc: image.entry,
            executed: 0,
            regs: [0; 32],
            arena,
            image,
        };
        s.reset_regs();
        s
    }

    /// The image this source executes.
    pub fn image(&self) -> &Arc<RiscvImage> {
        &self.image
    }

    fn sp_init(&self) -> u64 {
        (self.image.base + self.arena.len() as u64 - 16) & !0xf & self.image.xlen.pc_mask()
    }

    fn reset_regs(&mut self) {
        self.regs = [0; 32];
        self.regs[2] = self.sp_init();
    }

    /// Program restart: pristine memory, fresh registers, PC at entry.
    /// A `memcpy` + fill — no allocation, so the trace-free execution
    /// path stays allocation-free in the steady state too.
    fn restart(&mut self) {
        let n = self.image.image.len();
        self.arena[..n].copy_from_slice(&self.image.image);
        self.arena[n..].fill(0);
        self.reset_regs();
        self.pc = self.image.entry;
    }

    fn rx(&self, r: u8) -> u64 {
        self.regs[r as usize]
    }

    /// Register write, truncating to XLEN (rv32 keeps values
    /// sign-extended to 64 bits, matching how rv64 W-ops behave).
    fn wr(&mut self, r: u8, val: u64) {
        if r != 0 {
            self.regs[r as usize] = match self.image.xlen {
                Xlen::Rv64 => val,
                Xlen::Rv32 => val as u32 as i32 as i64 as u64,
            };
        }
    }

    fn arena_index(&self, addr: Addr) -> usize {
        (addr.wrapping_sub(self.image.base) % self.arena.len() as u64) as usize
    }

    /// Little-endian load of `size` bytes (wrapping into the arena).
    fn load(&self, addr: Addr, size: usize) -> u64 {
        let mut v = 0u64;
        for i in 0..size {
            let b = self.arena[self.arena_index(addr.wrapping_add(i as u64))];
            v |= u64::from(b) << (8 * i);
        }
        v
    }

    fn store(&mut self, addr: Addr, size: usize, val: u64) {
        for i in 0..size {
            let at = self.arena_index(addr.wrapping_add(i as u64));
            self.arena[at] = (val >> (8 * i)) as u8;
        }
    }

    fn addr_mask(&self) -> u64 {
        self.image.xlen.pc_mask()
    }

    /// Executes one instruction; returns `(static class, outcome)` and
    /// advances the state. See the module docs for the restart model.
    fn exec(&mut self) -> (StaticInst, Outcome) {
        let pc = self.pc;
        let word =
            image_word(&self.arena, self.image.base, pc).unwrap_or_else(|| self.load(pc, 4) as u32);
        let rv = decode(word);
        if matches!(rv.op, RvOp::Ecall | RvOp::Ebreak | RvOp::Illegal) {
            // Exit (or a wild PC): restart as an unconditional jump back
            // to the entry point.
            self.restart();
            return (
                StaticInst::op0(Opcode::Jump),
                Outcome {
                    next_pc: self.image.entry,
                    taken: true,
                    mem_addr: 0,
                },
            );
        }
        let mask = self.addr_mask();
        let mut next = pc.wrapping_add(INST_BYTES) & mask;
        let mut taken = false;
        let mut mem_addr = 0u64;
        let link = pc.wrapping_add(INST_BYTES);
        let imm = rv.imm as u64;
        use RvOp::*;
        match rv.op {
            Lui => self.wr(rv.rd, imm),
            Auipc => self.wr(rv.rd, pc.wrapping_add(imm)),
            Jal => {
                self.wr(rv.rd, link);
                next = pc.wrapping_add(imm) & mask;
                taken = true;
            }
            Jalr => {
                let t = self.rx(rv.rs1).wrapping_add(imm) & !1 & mask;
                self.wr(rv.rd, link);
                next = t;
                taken = true;
            }
            Beq | Bne | Blt | Bge | Bltu | Bgeu => {
                let (a, b) = (self.rx(rv.rs1), self.rx(rv.rs2));
                taken = match rv.op {
                    Beq => a == b,
                    Bne => a != b,
                    Blt => (a as i64) < (b as i64),
                    Bge => (a as i64) >= (b as i64),
                    Bltu => a < b,
                    _ => a >= b,
                };
                if taken {
                    next = pc.wrapping_add(imm) & mask;
                }
            }
            Lb | Lh | Lw | Lbu | Lhu | Lwu | Ld => {
                let addr = self.rx(rv.rs1).wrapping_add(imm) & mask;
                mem_addr = addr;
                let v = match rv.op {
                    Lb => self.load(addr, 1) as u8 as i8 as i64 as u64,
                    Lbu => self.load(addr, 1),
                    Lh => self.load(addr, 2) as u16 as i16 as i64 as u64,
                    Lhu => self.load(addr, 2),
                    Lw => self.load(addr, 4) as u32 as i32 as i64 as u64,
                    Lwu => self.load(addr, 4),
                    _ => self.load(addr, 8),
                };
                self.wr(rv.rd, v);
            }
            Sb | Sh | Sw | Sd => {
                let addr = self.rx(rv.rs1).wrapping_add(imm) & mask;
                mem_addr = addr;
                let size = match rv.op {
                    Sb => 1,
                    Sh => 2,
                    Sw => 4,
                    _ => 8,
                };
                self.store(addr, size, self.rx(rv.rs2));
            }
            Addi => self.wr(rv.rd, self.rx(rv.rs1).wrapping_add(imm)),
            Slti => self.wr(rv.rd, u64::from((self.rx(rv.rs1) as i64) < rv.imm)),
            Sltiu => self.wr(rv.rd, u64::from(self.rx(rv.rs1) < imm)),
            Xori => self.wr(rv.rd, self.rx(rv.rs1) ^ imm),
            Ori => self.wr(rv.rd, self.rx(rv.rs1) | imm),
            Andi => self.wr(rv.rd, self.rx(rv.rs1) & imm),
            Slli | Srli | Srai => {
                let sh = (imm
                    & match self.image.xlen {
                        Xlen::Rv64 => 63,
                        Xlen::Rv32 => 31,
                    }) as u32;
                let a = self.rx(rv.rs1);
                let v = match rv.op {
                    Slli => a << sh,
                    Srli => match self.image.xlen {
                        Xlen::Rv64 => a >> sh,
                        Xlen::Rv32 => u64::from((a as u32) >> sh),
                    },
                    _ => match self.image.xlen {
                        Xlen::Rv64 => ((a as i64) >> sh) as u64,
                        Xlen::Rv32 => ((a as u32 as i32) >> sh) as u64,
                    },
                };
                self.wr(rv.rd, v);
            }
            Add => self.wr(rv.rd, self.rx(rv.rs1).wrapping_add(self.rx(rv.rs2))),
            Sub => self.wr(rv.rd, self.rx(rv.rs1).wrapping_sub(self.rx(rv.rs2))),
            Sll | Srl | Sra => {
                let sh = (self.rx(rv.rs2)
                    & match self.image.xlen {
                        Xlen::Rv64 => 63,
                        Xlen::Rv32 => 31,
                    }) as u32;
                let a = self.rx(rv.rs1);
                let v = match rv.op {
                    Sll => a << sh,
                    Srl => match self.image.xlen {
                        Xlen::Rv64 => a >> sh,
                        Xlen::Rv32 => u64::from((a as u32) >> sh),
                    },
                    _ => match self.image.xlen {
                        Xlen::Rv64 => ((a as i64) >> sh) as u64,
                        Xlen::Rv32 => ((a as u32 as i32) >> sh) as u64,
                    },
                };
                self.wr(rv.rd, v);
            }
            Slt => self.wr(
                rv.rd,
                u64::from((self.rx(rv.rs1) as i64) < (self.rx(rv.rs2) as i64)),
            ),
            Sltu => self.wr(rv.rd, u64::from(self.rx(rv.rs1) < self.rx(rv.rs2))),
            Xor => self.wr(rv.rd, self.rx(rv.rs1) ^ self.rx(rv.rs2)),
            Or => self.wr(rv.rd, self.rx(rv.rs1) | self.rx(rv.rs2)),
            And => self.wr(rv.rd, self.rx(rv.rs1) & self.rx(rv.rs2)),
            Addiw => self.wr(rv.rd, w32(self.rx(rv.rs1).wrapping_add(imm))),
            Slliw => self.wr(
                rv.rd,
                w32(u64::from((self.rx(rv.rs1) as u32) << (imm & 31))),
            ),
            Srliw => self.wr(
                rv.rd,
                w32(u64::from((self.rx(rv.rs1) as u32) >> (imm & 31))),
            ),
            Sraiw => self.wr(
                rv.rd,
                ((self.rx(rv.rs1) as u32 as i32) >> (imm & 31)) as i64 as u64,
            ),
            Addw => self.wr(rv.rd, w32(self.rx(rv.rs1).wrapping_add(self.rx(rv.rs2)))),
            Subw => self.wr(rv.rd, w32(self.rx(rv.rs1).wrapping_sub(self.rx(rv.rs2)))),
            Sllw => self.wr(
                rv.rd,
                w32(u64::from(
                    (self.rx(rv.rs1) as u32) << (self.rx(rv.rs2) & 31),
                )),
            ),
            Srlw => self.wr(
                rv.rd,
                w32(u64::from(
                    (self.rx(rv.rs1) as u32) >> (self.rx(rv.rs2) & 31),
                )),
            ),
            Sraw => self.wr(
                rv.rd,
                ((self.rx(rv.rs1) as u32 as i32) >> (self.rx(rv.rs2) & 31)) as i64 as u64,
            ),
            Mul => self.wr(rv.rd, self.rx(rv.rs1).wrapping_mul(self.rx(rv.rs2))),
            Mulh => self.wr(
                rv.rd,
                ((i128::from(self.rx(rv.rs1) as i64) * i128::from(self.rx(rv.rs2) as i64)) >> 64)
                    as u64,
            ),
            Mulhsu => self.wr(
                rv.rd,
                ((i128::from(self.rx(rv.rs1) as i64) * i128::from(self.rx(rv.rs2))) >> 64) as u64,
            ),
            Mulhu => self.wr(
                rv.rd,
                ((u128::from(self.rx(rv.rs1)) * u128::from(self.rx(rv.rs2))) >> 64) as u64,
            ),
            Div => {
                let (a, b) = (self.rx(rv.rs1) as i64, self.rx(rv.rs2) as i64);
                let v = if b == 0 {
                    -1i64
                } else if a == i64::MIN && b == -1 {
                    a
                } else {
                    a / b
                };
                self.wr(rv.rd, v as u64);
            }
            Divu => {
                let (a, b) = (self.rx(rv.rs1), self.rx(rv.rs2));
                self.wr(rv.rd, a.checked_div(b).unwrap_or(u64::MAX));
            }
            Rem => {
                let (a, b) = (self.rx(rv.rs1) as i64, self.rx(rv.rs2) as i64);
                let v = if b == 0 {
                    a
                } else if a == i64::MIN && b == -1 {
                    0
                } else {
                    a % b
                };
                self.wr(rv.rd, v as u64);
            }
            Remu => {
                let (a, b) = (self.rx(rv.rs1), self.rx(rv.rs2));
                self.wr(rv.rd, if b == 0 { a } else { a % b });
            }
            Mulw => self.wr(
                rv.rd,
                w32((self.rx(rv.rs1) as u32)
                    .wrapping_mul(self.rx(rv.rs2) as u32)
                    .into()),
            ),
            Divw => {
                let (a, b) = (self.rx(rv.rs1) as i32, self.rx(rv.rs2) as i32);
                let v = if b == 0 {
                    -1i32
                } else if a == i32::MIN && b == -1 {
                    a
                } else {
                    a / b
                };
                self.wr(rv.rd, v as i64 as u64);
            }
            Divuw => {
                let (a, b) = (self.rx(rv.rs1) as u32, self.rx(rv.rs2) as u32);
                self.wr(
                    rv.rd,
                    a.checked_div(b).unwrap_or(u32::MAX) as i32 as i64 as u64,
                );
            }
            Remw => {
                let (a, b) = (self.rx(rv.rs1) as i32, self.rx(rv.rs2) as i32);
                let v = if b == 0 {
                    a
                } else if a == i32::MIN && b == -1 {
                    0
                } else {
                    a % b
                };
                self.wr(rv.rd, v as i64 as u64);
            }
            Remuw => {
                let (a, b) = (self.rx(rv.rs1) as u32, self.rx(rv.rs2) as u32);
                self.wr(rv.rd, (if b == 0 { a } else { a % b }) as i32 as i64 as u64);
            }
            Fence => {}
            Ecall | Ebreak | Illegal => unreachable!("handled above"),
        }
        self.pc = next;
        (
            rv.static_inst(),
            Outcome {
                next_pc: next,
                taken,
                mem_addr,
            },
        )
    }
}

/// Sign-extends the low 32 bits (the rv64 W-op result rule).
fn w32(v: u64) -> u64 {
    v as u32 as i32 as i64 as u64
}

impl WorkloadSource for RiscvSource {
    fn name(&self) -> &str {
        &self.image.name
    }

    fn pc(&self) -> Addr {
        self.pc
    }

    fn executed(&self) -> u64 {
        self.executed
    }

    fn step(&mut self) -> (StaticInst, Outcome) {
        let r = self.exec();
        self.executed += 1;
        r
    }

    fn wrong_inst_at(&self, pc: Addr) -> StaticInst {
        wrong_inst_at(&self.image.image, self.image.base, pc)
    }

    fn wrong_mem_addr(&self, pc: Addr, salt: u64) -> Addr {
        wrong_mem_addr(self.image.base, self.arena.len(), pc, salt)
    }

    fn wrong_taken_target(&self, _inst: StaticInst, pc: Addr) -> Addr {
        wrong_taken_target(&self.image.image, self.image.base, self.image.entry, pc)
    }

    fn save_state(&self, w: &mut BinWriter<&mut dyn Write>) -> std::io::Result<()> {
        w.u64(self.pc)?;
        w.u64(self.executed)?;
        for &r in &self.regs {
            w.u64(r)?;
        }
        w.len(self.arena.len())?;
        w.bytes(&self.arena)
    }

    fn restore_state(&mut self, r: &mut BinReader<&mut dyn Read>) -> std::io::Result<()> {
        self.pc = r.u64()?;
        self.executed = r.u64()?;
        for reg in &mut self.regs {
            *reg = r.u64()?;
        }
        if self.regs[0] != 0 {
            return Err(invalid("checkpoint carries a non-zero x0"));
        }
        let n = r.len()?;
        if n != self.arena.len() {
            return Err(invalid(format!(
                "checkpoint arena is {n} bytes, image expects {}",
                self.arena.len()
            )));
        }
        r.bytes(&mut self.arena)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-assembled rv64i loop:
    /// ```text
    /// entry: addi x5, x0, 0        # i = 0
    ///        addi x6, x0, 10       # n = 10
    /// loop:  addi x5, x5, 1
    ///        sw   x5, 256(x0)      # spill to a fixed slot... (x0 base)
    ///        lw   x7, 256(x0)
    ///        blt  x5, x6, loop     # 10 iterations
    ///        ecall                 # restart
    /// ```
    fn loop_image() -> Arc<RiscvImage> {
        let words: [u32; 7] = [
            0x0000_0293, // addi x5, x0, 0
            0x00a0_0313, // addi x6, x0, 10
            0x0012_8293, // addi x5, x5, 1
            0x1050_2023, // sw x5, 256(x0)
            0x1000_2383, // lw x7, 256(x0)
            0xfe62_cae3, // blt x5, x6, -12
            0x0000_0073, // ecall
        ];
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        Arc::new(RiscvImage::from_flat("loop10", &bytes, Xlen::Rv64).expect("valid image"))
    }

    #[test]
    fn executes_the_loop_and_restarts_forever() {
        let mut s = RiscvSource::new(loop_image());
        let entry = s.image().entry();
        let mut restarts = 0;
        for _ in 0..500 {
            let pc = s.pc();
            let (inst, out) = s.step();
            if inst.op == Opcode::Jump && out.next_pc == entry && pc != entry {
                restarts += 1;
            }
            assert_eq!(s.pc(), out.next_pc, "source PC must track the outcome");
        }
        assert!(restarts > 5, "the program must loop through ecall restarts");
        assert_eq!(s.executed(), 500);
    }

    #[test]
    fn branch_outcomes_are_architectural() {
        let mut s = RiscvSource::new(loop_image());
        let mut taken = 0;
        let mut not_taken = 0;
        for _ in 0..200 {
            let (inst, out) = s.step();
            if inst.op == Opcode::CondBranch {
                if out.taken {
                    taken += 1;
                } else {
                    not_taken += 1;
                }
            }
        }
        // blt runs 10 times per program run: 9 taken, 1 fallthrough.
        assert!(taken > not_taken * 5, "{taken} taken vs {not_taken}");
        assert!(not_taken > 0);
    }

    #[test]
    fn execution_is_deterministic() {
        let mut a = RiscvSource::new(loop_image());
        let mut b = RiscvSource::new(loop_image());
        for _ in 0..1_000 {
            assert_eq!(a.step(), b.step());
        }
    }

    #[test]
    fn state_round_trips_through_dyn_streams() {
        let mut s = RiscvSource::new(loop_image());
        for _ in 0..137 {
            s.step();
        }
        let mut bytes = Vec::new();
        {
            let mut w = BinWriter::new(&mut bytes as &mut dyn Write);
            s.save_state(&mut w).expect("vec write");
        }
        let mut restored = RiscvSource::new(loop_image());
        let mut slice: &[u8] = &bytes;
        let mut r = BinReader::new(&mut slice as &mut dyn Read);
        restored.restore_state(&mut r).expect("restore");
        for _ in 0..300 {
            assert_eq!(restored.step(), s.step());
        }
    }

    #[test]
    fn wrong_path_synthesis_is_deterministic_and_in_arena() {
        let s = RiscvSource::new(loop_image());
        let base = s.image().base();
        let len = s.image().arena_len() as u64;
        for salt in 0..64 {
            let a = s.wrong_mem_addr(base + 8, salt);
            assert!(a >= base && a < base + len, "{a:#x} escaped the arena");
        }
        // In-image wrong-path PCs decode the real instruction.
        let inst = s.wrong_inst_at(base);
        assert_eq!(inst.op, Opcode::IntAlu); // addi
                                             // The branch's wrong-path target is its decoded target.
        let t = s.wrong_taken_target(inst, base + 20);
        assert_eq!(t, base + 8, "blt target must decode statically");
        // Off-image PCs give filler and fallthrough.
        assert_eq!(s.wrong_inst_at(0xdead_0000).op, Opcode::IntAlu);
        assert_eq!(
            s.wrong_taken_target(inst, 0xdead_0000),
            0xdead_0000 + INST_BYTES
        );
    }

    #[test]
    fn elf_loader_round_trips_a_minimal_image() {
        // Minimal ELF64: one PT_LOAD covering the loop body at 0x10000.
        let code: Vec<u8> = [0x0000_0293u32, 0x0000_0073]
            .iter()
            .flat_map(|w| w.to_le_bytes())
            .collect();
        let mut elf = Vec::new();
        elf.extend_from_slice(b"\x7fELF\x02\x01\x01\x00");
        elf.extend_from_slice(&[0u8; 8]);
        elf.extend_from_slice(&2u16.to_le_bytes()); // e_type EXEC
        elf.extend_from_slice(&243u16.to_le_bytes()); // e_machine RISC-V
        elf.extend_from_slice(&1u32.to_le_bytes()); // e_version
        elf.extend_from_slice(&0x10000u64.to_le_bytes()); // e_entry
        elf.extend_from_slice(&64u64.to_le_bytes()); // e_phoff
        elf.extend_from_slice(&0u64.to_le_bytes()); // e_shoff
        elf.extend_from_slice(&0u32.to_le_bytes()); // e_flags
        elf.extend_from_slice(&64u16.to_le_bytes()); // e_ehsize
        elf.extend_from_slice(&56u16.to_le_bytes()); // e_phentsize
        elf.extend_from_slice(&1u16.to_le_bytes()); // e_phnum
        elf.extend_from_slice(&[0u8; 6]); // shentsize/shnum/shstrndx
        assert_eq!(elf.len(), 64);
        // PT_LOAD: offset 120, vaddr 0x10000, filesz = code, memsz = code + bss.
        elf.extend_from_slice(&1u32.to_le_bytes()); // p_type
        elf.extend_from_slice(&5u32.to_le_bytes()); // p_flags R+X
        elf.extend_from_slice(&120u64.to_le_bytes()); // p_offset
        elf.extend_from_slice(&0x10000u64.to_le_bytes()); // p_vaddr
        elf.extend_from_slice(&0x10000u64.to_le_bytes()); // p_paddr
        elf.extend_from_slice(&(code.len() as u64).to_le_bytes()); // p_filesz
        elf.extend_from_slice(&(code.len() as u64 + 64).to_le_bytes()); // p_memsz
        elf.extend_from_slice(&0x1000u64.to_le_bytes()); // p_align
        assert_eq!(elf.len(), 120);
        elf.extend_from_slice(&code);
        let img = RiscvImage::from_elf("mini", &elf).expect("valid ELF");
        assert_eq!(img.entry(), 0x10000);
        assert_eq!(img.xlen(), Xlen::Rv64);
        assert_eq!(img.image_bytes().len(), code.len() + 64);
        assert_eq!(&img.image_bytes()[..8], &code[..8]);
        // And it executes.
        let mut s = RiscvSource::new(Arc::new(img));
        let (inst, _) = s.step();
        assert_eq!(inst.op, Opcode::IntAlu);
        let (inst, out) = s.step(); // ecall → restart
        assert_eq!(inst.op, Opcode::Jump);
        assert_eq!(out.next_pc, 0x10000);
    }

    #[test]
    fn loader_refuses_malformed_images() {
        assert!(RiscvImage::from_flat("e", &[], Xlen::Rv64).is_err());
        assert!(RiscvImage::from_elf("e", b"\x7fELFxx").is_err());
        // Non-RISC-V machine is refused.
        let mut elf = Vec::new();
        elf.extend_from_slice(b"\x7fELF\x02\x01\x01\x00");
        elf.extend_from_slice(&[0u8; 8]);
        elf.extend_from_slice(&2u16.to_le_bytes());
        elf.extend_from_slice(&62u16.to_le_bytes()); // x86-64
        elf.resize(64, 0);
        let err = RiscvImage::from_elf("e", &elf).unwrap_err();
        assert!(err.contains("not RISC-V"), "{err}");
    }
}

//! Synthetic multiprogrammed workload for the SMT simulator.
//!
//! The paper runs unmodified Alpha binaries of seven SPEC92 benchmarks plus
//! TeX under an emulation-based simulator. This crate substitutes a
//! *synthetic program generator*: each benchmark becomes a parameter set
//! (instruction mix, basic-block geometry, branch-bias distribution,
//! dependency-distance model, code footprint, data-region behaviour) from
//! which a deterministic program image is generated — a real control-flow
//! graph laid out in a virtual address space, with per-branch behaviour
//! models and per-memory-instruction address generators.
//!
//! Because the image is real code at real addresses, everything the paper's
//! evaluation depends on is exercised faithfully: fetch-block fragmentation
//! (branches and line boundaries end fetch blocks), BTB/PHT/RAS pressure,
//! I-cache and D-cache locality and inter-thread conflict behaviour, and
//! wrong-path fetch down mispredicted directions.
//!
//! The [`ThreadContext`] oracle executes the correct path architecturally
//! (next PC, branch outcomes, effective addresses) so the pipeline can mark
//! divergence points and synthesize wrong-path behaviour.
//!
//! # Workload backends
//!
//! The pipeline consumes instruction streams through the
//! [`WorkloadSource`] trait, so synthetic programs are one backend among
//! several rather than a baked-in assumption. Three backends ship:
//!
//! * [`SyntheticSource`] — wraps a generated [`Program`] and its
//!   [`ThreadContext`] oracle (the default, and the only path the paper's
//!   committed study goldens use).
//! * [`RiscvSource`] ([`riscv`] module) — functionally executes a real
//!   rv64i/rv32i binary loaded from an ELF (or flat) image
//!   ([`RiscvImage`]); each `step` decodes and retires one instruction
//!   architecturally.
//! * [`TraceSource`] ([`trace`] module) — replays a recorded `SMT1TRCE`
//!   trace ([`TraceImage`]) as a pure cursor walk, no decode and no
//!   allocation on the steady-state path; the format is specified in the
//!   [`trace`] module docs.
//!
//! ## Writing a new backend
//!
//! Implement [`WorkloadSource`]. The contract, in pipeline terms:
//!
//! 1. `step` retires the next correct-path instruction and returns its
//!    static form plus the architectural outcome (next PC, branch
//!    direction, effective address). It must be deterministic and
//!    endless — on program exit, emit a control-flow op that redirects to
//!    the entry point and keep going (see how [`RiscvSource`] models
//!    `ecall` as exit-and-restart).
//! 2. `pc`/`executed` expose the cursor the fetch engine and reports
//!    read.
//! 3. The `wrong_*` hooks synthesize *wrong-path* behaviour — what the
//!    machine fetches past a mispredicted branch before resolution. They
//!    must be pure functions of `(pc, salt)` so runs reproduce exactly.
//! 4. `save_state`/`restore_state` serialize the cursor for warmed-state
//!    checkpoints; keep them minimal (the image itself travels as a
//!    config fingerprint, not checkpoint payload).
//!
//! Then give the config layer a handle: `smt-core`'s `WorkloadSpec` enum
//! names each backend's image type, `SimConfig::with_workloads` installs
//! a per-thread list, and the checkpoint fingerprint must tag the new
//! kind so stale checkpoints are rejected (see `smt-core`'s checkpoint
//! module). The `riscv:`/`trace:` custom-mix entries in `smt-experiments`
//! show the last mile: a path-based spec string resolved at sweep start.
//!
//! # Examples
//!
//! ```
//! use smt_workload::{Benchmark, ThreadContext};
//! use std::sync::Arc;
//!
//! let program = Arc::new(Benchmark::Espresso.generate(42, 0));
//! let mut oracle = ThreadContext::new(program, 7);
//! for _ in 0..1000 {
//!     let (inst, outcome) = oracle.step();
//!     let _ = (inst.op, outcome.next_pc);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gen;
mod oracle;
mod profiles;
mod program;
pub mod riscv;
mod source;
pub mod trace;

pub use gen::{PatternSpec, ProfileParams, RegionSpec};
pub use oracle::{ThreadContext, WrongPath};
pub use profiles::{standard_mix, Benchmark};
pub use program::{BranchBehavior, BranchModel, MemModel, MemPattern, Program, Region};
pub use riscv::{RiscvImage, RiscvSource, Xlen};
pub use source::{SyntheticSource, WorkloadSource};
pub use trace::{TraceImage, TraceSource};

/// A fast, high-quality 64-bit mixing function (SplitMix64 finalizer).
///
/// All "random" dynamic behaviour in the workload — branch outcomes,
/// random-pattern addresses, wrong-path synthesis — is a pure function of
/// mixed counters, so simulations are exactly reproducible.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_deterministic_and_spreads() {
        assert_eq!(mix64(1), mix64(1));
        assert_ne!(mix64(1), mix64(2));
        // Low bits of sequential inputs should decorrelate.
        let a = mix64(100) & 0xffff;
        let b = mix64(101) & 0xffff;
        assert_ne!(a, b);
    }
}

//! Synthetic multiprogrammed workload for the SMT simulator.
//!
//! The paper runs unmodified Alpha binaries of seven SPEC92 benchmarks plus
//! TeX under an emulation-based simulator. This crate substitutes a
//! *synthetic program generator*: each benchmark becomes a parameter set
//! (instruction mix, basic-block geometry, branch-bias distribution,
//! dependency-distance model, code footprint, data-region behaviour) from
//! which a deterministic program image is generated — a real control-flow
//! graph laid out in a virtual address space, with per-branch behaviour
//! models and per-memory-instruction address generators.
//!
//! Because the image is real code at real addresses, everything the paper's
//! evaluation depends on is exercised faithfully: fetch-block fragmentation
//! (branches and line boundaries end fetch blocks), BTB/PHT/RAS pressure,
//! I-cache and D-cache locality and inter-thread conflict behaviour, and
//! wrong-path fetch down mispredicted directions.
//!
//! The [`ThreadContext`] oracle executes the correct path architecturally
//! (next PC, branch outcomes, effective addresses) so the pipeline can mark
//! divergence points and synthesize wrong-path behaviour.
//!
//! # Examples
//!
//! ```
//! use smt_workload::{Benchmark, ThreadContext};
//! use std::sync::Arc;
//!
//! let program = Arc::new(Benchmark::Espresso.generate(42, 0));
//! let mut oracle = ThreadContext::new(program, 7);
//! for _ in 0..1000 {
//!     let (inst, outcome) = oracle.step();
//!     let _ = (inst.op, outcome.next_pc);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gen;
mod oracle;
mod profiles;
mod program;

pub use gen::{PatternSpec, ProfileParams, RegionSpec};
pub use oracle::{ThreadContext, WrongPath};
pub use profiles::{standard_mix, Benchmark};
pub use program::{BranchBehavior, BranchModel, MemModel, MemPattern, Program, Region};

/// A fast, high-quality 64-bit mixing function (SplitMix64 finalizer).
///
/// All "random" dynamic behaviour in the workload — branch outcomes,
/// random-pattern addresses, wrong-path synthesis — is a pure function of
/// mixed counters, so simulations are exactly reproducible.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_deterministic_and_spreads() {
        assert_eq!(mix64(1), mix64(1));
        assert_ne!(mix64(1), mix64(2));
        // Low bits of sequential inputs should decorrelate.
        let a = mix64(100) & 0xffff;
        let b = mix64(101) & 0xffff;
        assert_ne!(a, b);
    }
}

//! Benchmark parameter sets modeled on the paper's workload.
//!
//! The paper (Table 3) runs seven SPEC92 benchmarks plus TeX. Each
//! [`Benchmark`] here is a [`ProfileParams`] tuned to the qualitative
//! character of the original program: `espresso`/`eqntott` are branchy
//! integer codes, `xlisp` is call/return and pointer-chasing heavy,
//! `compress` streams through a large buffer, while the FP codes
//! (`alvinn`, `tomcatv`, `su2cor`, `swm256`) stream arrays with long
//! basic blocks and `doduc`/`fpppp` mix in divides and very high ILP.

use crate::gen::{PatternSpec, ProfileParams, RegionSpec};
use crate::program::Program;

/// One synthetic benchmark (a named [`ProfileParams`] preset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Benchmark {
    /// SPEC92 `espresso`: PLA minimization; branchy integer code.
    Espresso,
    /// SPEC92 `eqntott`: boolean equation translation; predictable branches.
    Eqntott,
    /// SPEC92 `xlisp`: lisp interpreter; calls, returns, pointer chasing.
    Xlisp,
    /// SPEC92 `compress`: LZW compression; streaming plus a hot hash table.
    Compress,
    /// SPEC92 `alvinn`: neural-net training; FP array streaming.
    Alvinn,
    /// SPEC92 `doduc`: Monte-Carlo nuclear simulation; FP with divides.
    Doduc,
    /// SPEC92 `fpppp`: quantum chemistry; huge blocks, very high ILP.
    Fpppp,
    /// SPEC92 `tomcatv`: vectorized mesh generation; large-array FP streams.
    Tomcatv,
    /// SPEC92 `su2cor`: quantum physics; FP over large lattices.
    Su2cor,
    /// SPEC92 `swm256`: shallow-water model; FP stencil streams.
    Swm256,
    /// `TeX`: typesetting; large code footprint, irregular integer work.
    Tex,
}

impl Benchmark {
    /// All benchmarks, in a stable order.
    pub const ALL: [Benchmark; 11] = [
        Benchmark::Espresso,
        Benchmark::Eqntott,
        Benchmark::Xlisp,
        Benchmark::Compress,
        Benchmark::Alvinn,
        Benchmark::Doduc,
        Benchmark::Fpppp,
        Benchmark::Tomcatv,
        Benchmark::Su2cor,
        Benchmark::Swm256,
        Benchmark::Tex,
    ];

    /// The benchmark's name, as used in reports and on the command line.
    pub fn name(&self) -> &'static str {
        self.params().name
    }

    /// Looks a benchmark up by (case-insensitive) name.
    pub fn by_name(name: &str) -> Option<Benchmark> {
        Benchmark::ALL
            .iter()
            .copied()
            .find(|b| b.name().eq_ignore_ascii_case(name))
    }

    /// Generates this benchmark's program image for context slot `slot`.
    pub fn generate(&self, seed: u64, slot: u32) -> Program {
        self.params().generate(seed, slot)
    }

    /// The parameter set behind this benchmark.
    pub fn params(&self) -> ProfileParams {
        let kb = 1024u64;
        match self {
            Benchmark::Espresso => ProfileParams {
                name: "espresso",
                blocks: 100,
                block_len: (3, 9),
                load_milli: 230,
                store_milli: 80,
                fp_milli: 0,
                int_mul_milli: 10,
                fp_div_milli: 0,
                loop_milli: 360,
                call_milli: 70,
                jump_milli: 50,
                indirect_milli: 20,
                trip: (32, 384),
                taken_milli: 380,
                dep_window: 5,
                functions: 10,
                regions: vec![
                    RegionSpec {
                        size: 8 * kb,
                        pattern: PatternSpec::Random,
                        weight: 10,
                    },
                    RegionSpec {
                        size: 192 * kb,
                        pattern: PatternSpec::Random,
                        weight: 1,
                    },
                ],
            },
            Benchmark::Eqntott => ProfileParams {
                name: "eqntott",
                blocks: 90,
                block_len: (3, 7),
                load_milli: 250,
                store_milli: 50,
                fp_milli: 0,
                int_mul_milli: 5,
                fp_div_milli: 0,
                loop_milli: 420,
                call_milli: 40,
                jump_milli: 40,
                indirect_milli: 10,
                trip: (64, 768),
                taken_milli: 250,
                dep_window: 4,
                functions: 6,
                regions: vec![
                    RegionSpec {
                        size: 8 * kb,
                        pattern: PatternSpec::Stride(4),
                        weight: 10,
                    },
                    RegionSpec {
                        size: 128 * kb,
                        pattern: PatternSpec::Random,
                        weight: 1,
                    },
                ],
            },
            Benchmark::Xlisp => ProfileParams {
                name: "xlisp",
                blocks: 150,
                block_len: (2, 6),
                load_milli: 280,
                store_milli: 120,
                fp_milli: 0,
                int_mul_milli: 5,
                fp_div_milli: 0,
                loop_milli: 250,
                call_milli: 180,
                jump_milli: 60,
                indirect_milli: 60,
                trip: (16, 96),
                taken_milli: 450,
                dep_window: 3,
                functions: 24,
                regions: vec![
                    RegionSpec {
                        size: 8 * kb,
                        pattern: PatternSpec::Random,
                        weight: 10,
                    },
                    RegionSpec {
                        size: 512 * kb,
                        pattern: PatternSpec::Random,
                        weight: 1,
                    },
                    RegionSpec {
                        size: 32 * kb,
                        pattern: PatternSpec::Stride(16),
                        weight: 1,
                    },
                ],
            },
            Benchmark::Compress => ProfileParams {
                name: "compress",
                blocks: 80,
                block_len: (4, 9),
                load_milli: 260,
                store_milli: 140,
                fp_milli: 0,
                int_mul_milli: 15,
                fp_div_milli: 0,
                loop_milli: 400,
                call_milli: 30,
                jump_milli: 30,
                indirect_milli: 10,
                trip: (64, 1024),
                taken_milli: 300,
                dep_window: 4,
                functions: 4,
                regions: vec![
                    RegionSpec {
                        size: 8 * kb,
                        pattern: PatternSpec::Random,
                        weight: 10,
                    },
                    RegionSpec {
                        size: 512 * kb,
                        pattern: PatternSpec::Stride(1),
                        weight: 1,
                    },
                    RegionSpec {
                        size: 256 * kb,
                        pattern: PatternSpec::Random,
                        weight: 1,
                    },
                ],
            },
            Benchmark::Alvinn => ProfileParams {
                name: "alvinn",
                blocks: 60,
                block_len: (8, 18),
                load_milli: 240,
                store_milli: 90,
                fp_milli: 550,
                int_mul_milli: 5,
                fp_div_milli: 5,
                loop_milli: 480,
                call_milli: 30,
                jump_milli: 20,
                indirect_milli: 0,
                trip: (256, 2048),
                taken_milli: 200,
                dep_window: 9,
                functions: 3,
                regions: vec![
                    RegionSpec {
                        size: 8 * kb,
                        pattern: PatternSpec::Stride(8),
                        weight: 10,
                    },
                    RegionSpec {
                        size: 128 * kb,
                        pattern: PatternSpec::Stride(8),
                        weight: 1,
                    },
                ],
            },
            Benchmark::Doduc => ProfileParams {
                name: "doduc",
                blocks: 110,
                block_len: (5, 13),
                load_milli: 230,
                store_milli: 70,
                fp_milli: 500,
                int_mul_milli: 10,
                fp_div_milli: 60,
                loop_milli: 380,
                call_milli: 90,
                jump_milli: 40,
                indirect_milli: 10,
                trip: (64, 768),
                taken_milli: 320,
                dep_window: 6,
                functions: 12,
                regions: vec![
                    RegionSpec {
                        size: 8 * kb,
                        pattern: PatternSpec::Stride(8),
                        weight: 10,
                    },
                    RegionSpec {
                        size: 128 * kb,
                        pattern: PatternSpec::Stride(8),
                        weight: 1,
                    },
                    RegionSpec {
                        size: 128 * kb,
                        pattern: PatternSpec::Random,
                        weight: 1,
                    },
                ],
            },
            Benchmark::Fpppp => ProfileParams {
                name: "fpppp",
                blocks: 50,
                block_len: (14, 30),
                load_milli: 220,
                store_milli: 100,
                fp_milli: 650,
                int_mul_milli: 5,
                fp_div_milli: 25,
                loop_milli: 400,
                call_milli: 40,
                jump_milli: 20,
                indirect_milli: 0,
                trip: (128, 1024),
                taken_milli: 150,
                dep_window: 12,
                functions: 5,
                regions: vec![
                    RegionSpec {
                        size: 8 * kb,
                        pattern: PatternSpec::Stride(8),
                        weight: 10,
                    },
                    RegionSpec {
                        size: 96 * kb,
                        pattern: PatternSpec::Stride(8),
                        weight: 1,
                    },
                    RegionSpec {
                        size: 64 * kb,
                        pattern: PatternSpec::Stride(24),
                        weight: 1,
                    },
                ],
            },
            Benchmark::Tomcatv => ProfileParams {
                name: "tomcatv",
                blocks: 50,
                block_len: (9, 20),
                load_milli: 270,
                store_milli: 110,
                fp_milli: 600,
                int_mul_milli: 5,
                fp_div_milli: 15,
                loop_milli: 520,
                call_milli: 10,
                jump_milli: 20,
                indirect_milli: 0,
                trip: (256, 2048),
                taken_milli: 150,
                dep_window: 8,
                functions: 2,
                regions: vec![
                    RegionSpec {
                        size: 8 * kb,
                        pattern: PatternSpec::Stride(8),
                        weight: 10,
                    },
                    RegionSpec {
                        size: 128 * kb,
                        pattern: PatternSpec::Stride(8),
                        weight: 1,
                    },
                    RegionSpec {
                        size: 128 * kb,
                        pattern: PatternSpec::Stride(64),
                        weight: 1,
                    },
                ],
            },
            Benchmark::Su2cor => ProfileParams {
                name: "su2cor",
                blocks: 100,
                block_len: (7, 16),
                load_milli: 250,
                store_milli: 100,
                fp_milli: 550,
                int_mul_milli: 10,
                fp_div_milli: 20,
                loop_milli: 440,
                call_milli: 50,
                jump_milli: 30,
                indirect_milli: 0,
                trip: (128, 1536),
                taken_milli: 200,
                dep_window: 7,
                functions: 8,
                regions: vec![
                    RegionSpec {
                        size: 8 * kb,
                        pattern: PatternSpec::Stride(16),
                        weight: 10,
                    },
                    RegionSpec {
                        size: 384 * kb,
                        pattern: PatternSpec::Stride(16),
                        weight: 1,
                    },
                    RegionSpec {
                        size: 128 * kb,
                        pattern: PatternSpec::Random,
                        weight: 1,
                    },
                ],
            },
            Benchmark::Swm256 => ProfileParams {
                name: "swm256",
                blocks: 45,
                block_len: (10, 22),
                load_milli: 280,
                store_milli: 120,
                fp_milli: 620,
                int_mul_milli: 5,
                fp_div_milli: 5,
                loop_milli: 520,
                call_milli: 10,
                jump_milli: 10,
                indirect_milli: 0,
                trip: (256, 2048),
                taken_milli: 120,
                dep_window: 10,
                functions: 2,
                regions: vec![
                    RegionSpec {
                        size: 8 * kb,
                        pattern: PatternSpec::Stride(8),
                        weight: 10,
                    },
                    RegionSpec {
                        size: 256 * kb,
                        pattern: PatternSpec::Stride(8),
                        weight: 1,
                    },
                ],
            },
            Benchmark::Tex => ProfileParams {
                name: "tex",
                blocks: 250,
                block_len: (3, 8),
                load_milli: 240,
                store_milli: 110,
                fp_milli: 0,
                int_mul_milli: 10,
                fp_div_milli: 0,
                loop_milli: 320,
                call_milli: 120,
                jump_milli: 70,
                indirect_milli: 40,
                trip: (24, 192),
                taken_milli: 420,
                dep_window: 4,
                functions: 20,
                regions: vec![
                    RegionSpec {
                        size: 8 * kb,
                        pattern: PatternSpec::Random,
                        weight: 10,
                    },
                    RegionSpec {
                        size: 256 * kb,
                        pattern: PatternSpec::Random,
                        weight: 1,
                    },
                    RegionSpec {
                        size: 128 * kb,
                        pattern: PatternSpec::Stride(8),
                        weight: 1,
                    },
                ],
            },
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The standard 8-thread multiprogrammed mix used by the headline
/// experiments: four integer and four FP benchmarks, mirroring the paper's
/// practice of filling contexts with distinct programs.
pub fn standard_mix() -> Vec<Benchmark> {
    vec![
        Benchmark::Espresso,
        Benchmark::Xlisp,
        Benchmark::Eqntott,
        Benchmark::Compress,
        Benchmark::Alvinn,
        Benchmark::Tomcatv,
        Benchmark::Doduc,
        Benchmark::Fpppp,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_generate_valid_programs() {
        for b in Benchmark::ALL {
            let p = b.generate(3, 0);
            assert_eq!(p.validate(), Ok(()), "{b} generated an invalid program");
            assert_eq!(p.name(), b.name());
            assert!(p.code_bytes() > 1024, "{b} footprint suspiciously small");
        }
    }

    #[test]
    fn fp_benchmarks_contain_fp_work() {
        let p = Benchmark::Tomcatv.generate(1, 0);
        let hist = p.class_histogram();
        let fp: usize = hist
            .iter()
            .filter(|(op, _)| matches!(op.queue(), smt_isa::RegClass::Fp))
            .map(|&(_, c)| c)
            .sum();
        assert!(fp > p.len() / 10, "tomcatv must be FP-heavy");
        let int_only = Benchmark::Eqntott.generate(1, 0);
        let fp_int: usize = int_only
            .class_histogram()
            .iter()
            .filter(|(op, _)| matches!(op.queue(), smt_isa::RegClass::Fp))
            .map(|&(_, c)| c)
            .sum();
        assert_eq!(fp_int, 0, "eqntott is an integer benchmark");
    }

    #[test]
    fn standard_mix_is_eight_distinct_threads() {
        let mix = standard_mix();
        assert_eq!(mix.len(), 8);
        let mut names: Vec<_> = mix.iter().map(|b| b.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8, "mix must not repeat a benchmark");
    }

    #[test]
    fn by_name_roundtrips() {
        for b in Benchmark::ALL {
            assert_eq!(Benchmark::by_name(b.name()), Some(b));
            assert_eq!(Benchmark::by_name(&b.name().to_uppercase()), Some(b));
        }
        assert_eq!(Benchmark::by_name("nonesuch"), None);
    }
}

//! The generated program image: code, side tables, and data regions.

use smt_isa::{Addr, StaticInst, INST_BYTES};

/// A contiguous data region of the program's address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// Base address (8-byte aligned).
    pub base: Addr,
    /// Size in bytes.
    pub size: u64,
}

impl Region {
    /// Whether `addr` falls inside the region.
    pub fn contains(&self, addr: Addr) -> bool {
        addr >= self.base && addr < self.base + self.size
    }
}

/// Address-generation behaviour of one static memory instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemPattern {
    /// Sequential walk through the region with the given byte stride
    /// (array streaming); wraps at the region end.
    Stride {
        /// Region index into [`Program::regions`].
        region: u16,
        /// Stride in bytes between successive executions.
        stride: u32,
    },
    /// Uniformly random 8-byte-aligned addresses within the region
    /// (pointer chasing / hash tables).
    Random {
        /// Region index into [`Program::regions`].
        region: u16,
    },
}

/// Side-table entry for a memory instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemModel {
    /// How successive executions generate addresses.
    pub pattern: MemPattern,
}

/// Direction behaviour of one static conditional branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchBehavior {
    /// A loop back-edge: taken `trip - 1` times, then not-taken, repeating.
    Loop {
        /// Loop trip count (>= 1).
        trip: u32,
    },
    /// Taken with probability `taken_milli / 1000` on each execution,
    /// decided by a per-execution hash (uncorrelated).
    Bernoulli {
        /// Taken probability in thousandths.
        taken_milli: u16,
    },
}

/// Side-table entry for a control instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BranchModel {
    /// Direction model (meaningful for conditional branches only).
    pub behavior: BranchBehavior,
    /// Taken target (conditional branches, jumps, calls).
    pub taken_target: Addr,
    /// Candidate targets for indirect jumps (empty otherwise).
    pub targets: Vec<Addr>,
}

/// A complete generated program: code image plus behaviour side tables.
///
/// The image is immutable after generation; per-thread dynamic state
/// (branch execution counts, call stacks) lives in
/// [`ThreadContext`](crate::ThreadContext).
#[derive(Debug, Clone)]
pub struct Program {
    pub(crate) name: String,
    pub(crate) code_base: Addr,
    pub(crate) code: Vec<StaticInst>,
    pub(crate) branches: Vec<BranchModel>,
    pub(crate) mems: Vec<MemModel>,
    pub(crate) regions: Vec<Region>,
    pub(crate) entry: Addr,
}

impl Program {
    /// The benchmark name this program was generated from.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// First instruction executed.
    pub fn entry(&self) -> Addr {
        self.entry
    }

    /// Base address of the code image.
    pub fn code_base(&self) -> Addr {
        self.code_base
    }

    /// Code footprint in bytes.
    pub fn code_bytes(&self) -> u64 {
        self.code.len() as u64 * INST_BYTES
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the program has no instructions (never true for generated
    /// programs).
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Whether `pc` points into the code image.
    pub fn contains(&self, pc: Addr) -> bool {
        pc >= self.code_base
            && pc < self.code_base + self.code_bytes()
            && (pc - self.code_base).is_multiple_of(INST_BYTES)
    }

    /// The instruction at `pc`, if `pc` is a valid code address.
    #[inline]
    pub fn inst_at(&self, pc: Addr) -> Option<StaticInst> {
        if !self.contains(pc) {
            return None;
        }
        Some(self.code[((pc - self.code_base) / INST_BYTES) as usize])
    }

    /// Branch side-table entry `meta`.
    ///
    /// # Panics
    ///
    /// Panics if `meta` is out of range.
    pub fn branch_model(&self, meta: u32) -> &BranchModel {
        &self.branches[meta as usize]
    }

    /// Memory side-table entry `meta`.
    ///
    /// # Panics
    ///
    /// Panics if `meta` is out of range.
    pub fn mem_model(&self, meta: u32) -> &MemModel {
        &self.mems[meta as usize]
    }

    /// The program's data regions.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Number of branch side-table entries.
    pub fn branch_count(&self) -> usize {
        self.branches.len()
    }

    /// Number of memory side-table entries.
    pub fn mem_count(&self) -> usize {
        self.mems.len()
    }

    /// Histogram of instruction classes: `(opcode, count)` pairs sorted by
    /// descending count. Used by tests to validate generated mixes.
    pub fn class_histogram(&self) -> Vec<(smt_isa::Opcode, usize)> {
        use std::collections::HashMap;
        let mut counts: HashMap<smt_isa::Opcode, usize> = HashMap::new();
        for inst in &self.code {
            *counts.entry(inst.op).or_default() += 1;
        }
        let mut v: Vec<_> = counts.into_iter().collect();
        v.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
        v
    }

    /// Validates internal consistency; called by the generator and useful
    /// in property tests.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.code.is_empty() {
            return Err("empty code image".into());
        }
        if !self.contains(self.entry) {
            return Err("entry point outside code image".into());
        }
        for (i, inst) in self.code.iter().enumerate() {
            let pc = self.code_base + i as u64 * INST_BYTES;
            if inst.op.is_control() && !matches!(inst.op, smt_isa::Opcode::Return) {
                if inst.meta == smt_isa::NO_META {
                    return Err(format!(
                        "control instruction at {pc:#x} lacks a branch model"
                    ));
                }
                let model = self
                    .branches
                    .get(inst.meta as usize)
                    .ok_or_else(|| format!("branch meta out of range at {pc:#x}"))?;
                if matches!(model.behavior, BranchBehavior::Loop { trip: 0 }) {
                    return Err(format!("loop branch at {pc:#x} has a zero trip count"));
                }
                if matches!(inst.op, smt_isa::Opcode::JumpInd) {
                    if model.targets.is_empty() {
                        return Err(format!("indirect jump at {pc:#x} has no targets"));
                    }
                    for &t in &model.targets {
                        if !self.contains(t) {
                            return Err(format!("indirect target {t:#x} outside code"));
                        }
                    }
                } else if !self.contains(model.taken_target) {
                    return Err(format!(
                        "branch at {pc:#x} targets {:#x} outside code",
                        model.taken_target
                    ));
                }
            }
            if inst.op.is_mem() {
                if inst.meta == smt_isa::NO_META {
                    return Err(format!("memory instruction at {pc:#x} lacks a mem model"));
                }
                let model = self
                    .mems
                    .get(inst.meta as usize)
                    .ok_or_else(|| format!("mem meta out of range at {pc:#x}"))?;
                let region = match model.pattern {
                    MemPattern::Stride { region, .. } | MemPattern::Random { region } => region,
                };
                if region as usize >= self.regions.len() {
                    return Err(format!("mem region index out of range at {pc:#x}"));
                }
            }
        }
        for r in &self.regions {
            if r.size == 0 {
                return Err("zero-sized region".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_isa::{Opcode, Reg};

    fn tiny_program() -> Program {
        // entry: alu; cmp; br -4 (loop); ret-ish jump back
        let code = vec![
            StaticInst::op3(Opcode::IntAlu, Reg::int(1), Reg::int(2), Reg::int(3)),
            StaticInst::op2(Opcode::Compare, Reg::int(4), Reg::int(1)),
            StaticInst::op0(Opcode::CondBranch).with_meta(0),
            StaticInst::op0(Opcode::Jump).with_meta(1),
        ];
        Program {
            name: "tiny".into(),
            code_base: 0x1000,
            code,
            branches: vec![
                BranchModel {
                    behavior: BranchBehavior::Loop { trip: 3 },
                    taken_target: 0x1000,
                    targets: vec![],
                },
                BranchModel {
                    behavior: BranchBehavior::Bernoulli { taken_milli: 1000 },
                    taken_target: 0x1000,
                    targets: vec![],
                },
            ],
            mems: vec![],
            regions: vec![Region {
                base: 0x10_0000,
                size: 4096,
            }],
            entry: 0x1000,
        }
    }

    #[test]
    fn inst_lookup_roundtrips() {
        let p = tiny_program();
        assert!(p.contains(0x1000));
        assert!(p.contains(0x100c));
        assert!(!p.contains(0x1010));
        assert!(!p.contains(0x0ffc));
        assert!(!p.contains(0x1002), "misaligned PCs are not code");
        assert_eq!(p.inst_at(0x1008).unwrap().op, Opcode::CondBranch);
        assert_eq!(p.inst_at(0x2000), None);
        assert_eq!(p.len(), 4);
        assert_eq!(p.code_bytes(), 16);
    }

    #[test]
    fn validate_accepts_consistent_program() {
        assert_eq!(tiny_program().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_bad_target() {
        let mut p = tiny_program();
        p.branches[0].taken_target = 0x9999_0000;
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_missing_meta() {
        let mut p = tiny_program();
        p.code[2] = StaticInst::op0(Opcode::CondBranch); // meta stripped
        assert!(p.validate().is_err());
    }

    #[test]
    fn region_contains() {
        let r = Region {
            base: 0x100,
            size: 0x10,
        };
        assert!(r.contains(0x100));
        assert!(r.contains(0x10f));
        assert!(!r.contains(0x110));
        assert!(!r.contains(0xff));
    }

    #[test]
    fn class_histogram_counts() {
        let p = tiny_program();
        let h = p.class_histogram();
        let total: usize = h.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 4);
        assert!(h.iter().any(|&(op, c)| op == Opcode::CondBranch && c == 1));
    }
}

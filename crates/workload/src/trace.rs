//! Trace record/replay: capture a decoded correct-path stream once, replay
//! it allocation-free.
//!
//! Functional execution ([`crate::riscv`]) decodes and executes every
//! correct-path instruction. For sweeps that run the same workload across
//! many configurations, that work can be paid once: [`TraceImage::record`]
//! drives a fresh [`RiscvSource`] for N steps and captures the decoded
//! stream, and [`TraceSource`] replays it as a cursor over the preloaded
//! step array — zero steady-state heap allocations, no decode, no
//! architectural state.
//!
//! A trace is **self-contained**: besides the step stream it embeds the
//! pristine code image, load base, entry point and arena size of the
//! source it was recorded from, so wrong-path synthesis (which decodes the
//! pristine image — see [`crate::riscv`]) behaves *byte-identically*
//! between an executed run and its replay. The same workload under the
//! same simulator configuration therefore produces the same report either
//! way, and a CI step asserts exactly that.
//!
//! When a replay exhausts the recorded stream it synthesizes a restart:
//! an unconditional [`Opcode::Jump`] whose outcome returns to the trace's
//! start PC, after which the cursor wraps to the beginning — mirroring how
//! the executing source restarts its program on exit.
//!
//! # Trace file format (`SMT1TRCE`, version 1)
//!
//! Serialized through [`smt_stats::binio`] (little-endian, FNV-1a
//! checksum trailer; see that module for primitive encodings):
//!
//! | field | encoding |
//! |---|---|
//! | magic | 8 raw bytes `SMT1TRCE` |
//! | version | `u32` (this version: 1) |
//! | name | `len` + UTF-8 bytes (thread label in reports) |
//! | xlen | `u8`: 32 or 64 |
//! | start PC | `u64` (first recorded step's PC = image entry) |
//! | entry | `u64` (wrong-path target for indirect/exit transfers) |
//! | base | `u64` (lowest mapped address of the pristine image) |
//! | arena len | `len` (memory size of the recorded source) |
//! | image | `len` + raw bytes (pristine initial memory) |
//! | steps | `len`, then per step: |
//! | — op | `u8` ([`Opcode::code`]) |
//! | — dest, src0, src1 | `u8` each: 0 = none, else integer register index + 1 |
//! | — next PC | `u64` |
//! | — flags | `u8`: bit 0 = taken, bit 1 = has memory address |
//! | — mem addr | `u64`, present only when flag bit 1 is set |
//! | checksum | `u64` FNV-1a trailer ([`BinWriter::finish`]) |
//!
//! Register operands are integer-class only (the recording source is a
//! RISC-V integer-ISA executor); codes ≥ 33 are rejected on read.

use std::io::{self, Read, Write};
use std::sync::Arc;

use smt_isa::{Addr, Opcode, Outcome, Reg, StaticInst, NO_META};
use smt_stats::binio::{invalid, BinReader, BinWriter};

use crate::riscv::{self, RiscvImage, RiscvSource, Xlen};
use crate::source::WorkloadSource;

/// Magic bytes opening a trace file.
pub const TRACE_MAGIC: [u8; 8] = *b"SMT1TRCE";

/// Trace format version written by [`TraceImage::write_to`].
pub const TRACE_VERSION: u32 = 1;

/// One recorded correct-path step: the decoded instruction and its
/// architectural outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TraceStep {
    inst: StaticInst,
    out: Outcome,
}

/// A recorded correct-path stream plus everything wrong-path synthesis
/// needs — immutable, shareable across threads (each [`TraceSource`] is
/// just a cursor).
pub struct TraceImage {
    name: String,
    xlen: Xlen,
    start_pc: Addr,
    entry: Addr,
    base: Addr,
    arena_len: usize,
    image: Vec<u8>,
    steps: Vec<TraceStep>,
}

impl TraceImage {
    /// Records `steps` correct-path instructions from a fresh
    /// [`RiscvSource`] over `image`. The trace starts at the image's
    /// entry point, exactly where an executing source starts, so a
    /// replayed thread is indistinguishable from an executed one for the
    /// recorded window.
    pub fn record(image: &Arc<RiscvImage>, steps: usize) -> Result<TraceImage, String> {
        if steps == 0 {
            return Err(format!("{}: cannot record an empty trace", image.name()));
        }
        let mut src = RiscvSource::new(image.clone());
        let mut recorded = Vec::with_capacity(steps);
        for _ in 0..steps {
            let (inst, out) = src.step();
            recorded.push(TraceStep { inst, out });
        }
        Ok(TraceImage {
            name: image.name().to_string(),
            xlen: image.xlen(),
            start_pc: image.entry(),
            entry: image.entry(),
            base: image.base(),
            arena_len: image.arena_len(),
            image: image.image_bytes().to_vec(),
            steps: recorded,
        })
    }

    /// Report label for threads replaying this trace.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of recorded steps before the replay wraps.
    pub fn steps(&self) -> usize {
        self.steps.len()
    }

    /// Address width of the recorded source.
    pub fn xlen(&self) -> Xlen {
        self.xlen
    }

    /// Serializes the trace (see the module docs for the format).
    pub fn write_to<W: Write>(&self, out: W) -> io::Result<()> {
        let mut w = BinWriter::new(out);
        w.bytes(&TRACE_MAGIC)?;
        w.u32(TRACE_VERSION)?;
        w.len(self.name.len())?;
        w.bytes(self.name.as_bytes())?;
        w.u8(match self.xlen {
            Xlen::Rv32 => 32,
            Xlen::Rv64 => 64,
        })?;
        w.u64(self.start_pc)?;
        w.u64(self.entry)?;
        w.u64(self.base)?;
        w.len(self.arena_len)?;
        w.len(self.image.len())?;
        w.bytes(&self.image)?;
        w.len(self.steps.len())?;
        for s in &self.steps {
            w.u8(s.inst.op.code())?;
            w.u8(reg_code(s.inst.dest))?;
            w.u8(reg_code(s.inst.srcs[0]))?;
            w.u8(reg_code(s.inst.srcs[1]))?;
            w.u64(s.out.next_pc)?;
            let has_mem = s.out.mem_addr != 0;
            w.u8(u8::from(s.out.taken) | (u8::from(has_mem) << 1))?;
            if has_mem {
                w.u64(s.out.mem_addr)?;
            }
        }
        w.finish()
    }

    /// Deserializes a trace written by [`write_to`](TraceImage::write_to),
    /// verifying the magic, version, field validity and the checksum
    /// trailer.
    pub fn read_from<R: Read>(input: R) -> io::Result<TraceImage> {
        let mut r = BinReader::new(input);
        let mut magic = [0u8; 8];
        r.bytes(&mut magic)?;
        if magic != TRACE_MAGIC {
            return Err(invalid("not a trace file (bad magic)"));
        }
        let version = r.u32()?;
        if version != TRACE_VERSION {
            return Err(invalid(format!(
                "trace format version {version} is not supported (expected {TRACE_VERSION})"
            )));
        }
        let name_len = r.len()?;
        if name_len > 4096 {
            return Err(invalid("trace name is implausibly long"));
        }
        let mut name_bytes = vec![0u8; name_len];
        r.bytes(&mut name_bytes)?;
        let name = String::from_utf8(name_bytes).map_err(|_| invalid("trace name is not UTF-8"))?;
        let xlen = match r.u8()? {
            32 => Xlen::Rv32,
            64 => Xlen::Rv64,
            other => return Err(invalid(format!("unknown xlen {other}"))),
        };
        let start_pc = r.u64()?;
        let entry = r.u64()?;
        let base = r.u64()?;
        let arena_len = r.len()?;
        let image_len = r.len()?;
        if image_len > arena_len {
            return Err(invalid("trace image larger than its arena"));
        }
        let mut image = vec![0u8; image_len.min(1 << 24)];
        if image.len() != image_len {
            return Err(invalid("trace image is implausibly large"));
        }
        r.bytes(&mut image)?;
        let n = r.len()?;
        if n == 0 {
            return Err(invalid("trace has no steps"));
        }
        let mut steps = Vec::new();
        for _ in 0..n {
            let op = Opcode::from_code(r.u8()?)
                .ok_or_else(|| invalid("unknown opcode in trace step"))?;
            let dest = reg_from_code(r.u8()?)?;
            let src0 = reg_from_code(r.u8()?)?;
            let src1 = reg_from_code(r.u8()?)?;
            let next_pc = r.u64()?;
            let flags = r.u8()?;
            if flags & !0x3 != 0 {
                return Err(invalid(format!("unknown step flags {flags:#04x}")));
            }
            let mem_addr = if flags & 0x2 != 0 { r.u64()? } else { 0 };
            steps.push(TraceStep {
                inst: StaticInst {
                    op,
                    dest,
                    srcs: [src0, src1],
                    meta: NO_META,
                },
                out: Outcome {
                    next_pc,
                    taken: flags & 0x1 != 0,
                    mem_addr,
                },
            });
        }
        r.finish()?;
        Ok(TraceImage {
            name,
            xlen,
            start_pc,
            entry,
            base,
            arena_len,
            image,
            steps,
        })
    }

    /// Records a trace and writes it to `path` in one step.
    pub fn record_to_file(
        image: &Arc<RiscvImage>,
        steps: usize,
        path: &std::path::Path,
    ) -> Result<(), String> {
        let trace = Self::record(image, steps)?;
        let file = std::fs::File::create(path)
            .map_err(|e| format!("cannot create {}: {e}", path.display()))?;
        trace
            .write_to(io::BufWriter::new(file))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))
    }

    /// Loads a trace file written by
    /// [`record_to_file`](TraceImage::record_to_file).
    pub fn load(path: &std::path::Path) -> Result<TraceImage, String> {
        let file = std::fs::File::open(path)
            .map_err(|e| format!("cannot open {}: {e}", path.display()))?;
        Self::read_from(io::BufReader::new(file))
            .map_err(|e| format!("cannot parse {}: {e}", path.display()))
    }

    /// FNV-1a hash of the identity-shaping fields, used by the checkpoint
    /// config fingerprint to pin "same trace".
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        eat(self.name.as_bytes());
        eat(&self.start_pc.to_le_bytes());
        eat(&self.base.to_le_bytes());
        eat(&(self.steps.len() as u64).to_le_bytes());
        eat(&self.image);
        h
    }
}

/// Serializes an optional integer register: 0 for none, index + 1 else.
fn reg_code(r: Option<Reg>) -> u8 {
    match r {
        None => 0,
        Some(reg) => reg.index() as u8 + 1,
    }
}

fn reg_from_code(code: u8) -> io::Result<Option<Reg>> {
    match code {
        0 => Ok(None),
        1..=32 => Ok(Some(Reg::int(code - 1))),
        other => Err(invalid(format!("register code {other} out of range"))),
    }
}

/// One thread's replay cursor over a [`TraceImage`].
///
/// `step` is an array read plus a cursor bump — no decode, no memory
/// arena, no allocation — which is what makes trace replay the cheap way
/// to drive many-configuration sweeps over a real workload.
pub struct TraceSource {
    trace: Arc<TraceImage>,
    cursor: usize,
    pc: Addr,
    executed: u64,
}

impl TraceSource {
    /// Creates a replay cursor at the start of the trace.
    pub fn new(trace: Arc<TraceImage>) -> TraceSource {
        TraceSource {
            pc: trace.start_pc,
            cursor: 0,
            executed: 0,
            trace,
        }
    }

    /// The trace this source replays.
    pub fn trace(&self) -> &Arc<TraceImage> {
        &self.trace
    }
}

impl WorkloadSource for TraceSource {
    fn name(&self) -> &str {
        &self.trace.name
    }

    fn pc(&self) -> Addr {
        self.pc
    }

    fn executed(&self) -> u64 {
        self.executed
    }

    fn step(&mut self) -> (StaticInst, Outcome) {
        let (inst, out) = if self.cursor < self.trace.steps.len() {
            let s = self.trace.steps[self.cursor];
            self.cursor += 1;
            (s.inst, s.out)
        } else {
            // Recorded stream exhausted: synthesize the same restart jump
            // an executing source would take on program exit, and wrap.
            self.cursor = 0;
            (
                StaticInst::op0(Opcode::Jump),
                Outcome {
                    next_pc: self.trace.start_pc,
                    taken: true,
                    mem_addr: 0,
                },
            )
        };
        self.pc = out.next_pc;
        self.executed += 1;
        (inst, out)
    }

    fn wrong_inst_at(&self, pc: Addr) -> StaticInst {
        riscv::wrong_inst_at(&self.trace.image, self.trace.base, pc)
    }

    fn wrong_mem_addr(&self, pc: Addr, salt: u64) -> Addr {
        riscv::wrong_mem_addr(self.trace.base, self.trace.arena_len, pc, salt)
    }

    fn wrong_taken_target(&self, _inst: StaticInst, pc: Addr) -> Addr {
        riscv::wrong_taken_target(&self.trace.image, self.trace.base, self.trace.entry, pc)
    }

    fn save_state(&self, w: &mut BinWriter<&mut dyn Write>) -> io::Result<()> {
        w.u64(self.pc)?;
        w.u64(self.executed)?;
        w.len(self.cursor)
    }

    fn restore_state(&mut self, r: &mut BinReader<&mut dyn Read>) -> io::Result<()> {
        let pc = r.u64()?;
        let executed = r.u64()?;
        let cursor = r.len()?;
        if cursor > self.trace.steps.len() {
            return Err(invalid(format!(
                "checkpoint cursor {cursor} beyond the trace's {} steps",
                self.trace.steps.len()
            )));
        }
        self.pc = pc;
        self.executed = executed;
        self.cursor = cursor;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loop_image() -> Arc<RiscvImage> {
        // Same loop program the riscv module tests use.
        let words: [u32; 7] = [
            0x0000_0293, // addi x5, x0, 0
            0x00a0_0313, // addi x6, x0, 10
            0x0012_8293, // addi x5, x5, 1
            0x1050_2023, // sw x5, 256(x0)
            0x1000_2383, // lw x7, 256(x0)
            0xfe62_cae3, // blt x5, x6, -12
            0x0000_0073, // ecall
        ];
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        Arc::new(RiscvImage::from_flat("loop10", &bytes, Xlen::Rv64).expect("valid image"))
    }

    #[test]
    fn replay_matches_execution_step_for_step() {
        let image = loop_image();
        let trace = Arc::new(TraceImage::record(&image, 400).expect("record"));
        let mut executed = RiscvSource::new(image);
        let mut replayed = TraceSource::new(trace);
        for i in 0..400 {
            assert_eq!(replayed.step(), executed.step(), "step {i}");
            assert_eq!(replayed.pc(), executed.pc(), "pc after step {i}");
        }
    }

    #[test]
    fn wrong_path_synthesis_matches_the_executing_source() {
        let image = loop_image();
        let trace = Arc::new(TraceImage::record(&image, 100).expect("record"));
        let executed = RiscvSource::new(image.clone());
        let replayed = TraceSource::new(trace);
        let base = image.base();
        for off in (0..64).step_by(4) {
            let pc = base + off;
            assert_eq!(replayed.wrong_inst_at(pc), executed.wrong_inst_at(pc));
            assert_eq!(
                replayed.wrong_mem_addr(pc, off ^ 0x5a),
                executed.wrong_mem_addr(pc, off ^ 0x5a)
            );
            let filler = executed.wrong_inst_at(pc);
            assert_eq!(
                replayed.wrong_taken_target(filler, pc),
                executed.wrong_taken_target(filler, pc)
            );
        }
    }

    #[test]
    fn exhausted_replay_wraps_with_a_restart_jump() {
        let image = loop_image();
        let trace = Arc::new(TraceImage::record(&image, 10).expect("record"));
        let mut s = TraceSource::new(trace.clone());
        for _ in 0..10 {
            s.step();
        }
        let (inst, out) = s.step();
        assert_eq!(inst.op, Opcode::Jump);
        assert!(out.taken);
        assert_eq!(out.next_pc, image.entry());
        // The cursor wrapped: the next steps replay the trace from the top.
        let mut fresh = TraceSource::new(trace);
        for i in 0..10 {
            assert_eq!(s.step(), fresh.step(), "wrapped step {i}");
        }
    }

    #[test]
    fn trace_files_round_trip() {
        let image = loop_image();
        let trace = TraceImage::record(&image, 256).expect("record");
        let mut bytes = Vec::new();
        trace.write_to(&mut bytes).expect("vec write");
        let loaded = TraceImage::read_from(&bytes[..]).expect("read back");
        assert_eq!(loaded.name(), trace.name());
        assert_eq!(loaded.steps(), trace.steps());
        assert_eq!(loaded.xlen(), trace.xlen());
        assert_eq!(loaded.fingerprint(), trace.fingerprint());
        let mut a = TraceSource::new(Arc::new(trace));
        let mut b = TraceSource::new(Arc::new(loaded));
        for _ in 0..300 {
            assert_eq!(a.step(), b.step());
        }
    }

    #[test]
    fn corrupt_trace_files_are_rejected() {
        let image = loop_image();
        let trace = TraceImage::record(&image, 16).expect("record");
        let mut bytes = Vec::new();
        trace.write_to(&mut bytes).expect("vec write");
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert!(TraceImage::read_from(&bad[..]).is_err());
        // Any payload bit flip fails the checksum (or an earlier check).
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x10;
        assert!(TraceImage::read_from(&flipped[..]).is_err());
        // Truncation is an error.
        assert!(TraceImage::read_from(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn replay_state_round_trips_through_dyn_streams() {
        let image = loop_image();
        let trace = Arc::new(TraceImage::record(&image, 200).expect("record"));
        let mut s = TraceSource::new(trace.clone());
        for _ in 0..73 {
            s.step();
        }
        let mut bytes = Vec::new();
        {
            let mut w = BinWriter::new(&mut bytes as &mut dyn Write);
            s.save_state(&mut w).expect("vec write");
        }
        let mut restored = TraceSource::new(trace);
        let mut slice: &[u8] = &bytes;
        let mut r = BinReader::new(&mut slice as &mut dyn Read);
        restored.restore_state(&mut r).expect("restore");
        for _ in 0..200 {
            assert_eq!(restored.step(), s.step());
        }
    }
}

//! Correct-path architectural oracle and wrong-path synthesis.
//!
//! [`ThreadContext`] executes one thread's program architecturally: it walks
//! the correct path, resolving every branch direction, indirect target,
//! return address and effective address from the program's side tables. The
//! pipeline consumes this stream at fetch time, compares it against its own
//! predictions, and uses the divergence to drive wrong-path fetch and
//! squash.
//!
//! [`WrongPath`] supplies the pipeline with plausible instructions and
//! addresses once fetch has left the correct path: real image bytes when the
//! wrong-path PC still lands in code, harmless filler otherwise.

use std::sync::Arc;

use crate::mix64;
use crate::program::{BranchBehavior, MemPattern, Program};
use smt_isa::{Addr, Opcode, Outcome, Reg, StaticInst, INST_BYTES};

/// Maximum modeled call depth; deeper calls recycle the oldest frame, which
/// matches what a bounded synthetic CFG can produce anyway.
const MAX_CALL_DEPTH: usize = 64;

/// Architectural executor for one hardware context.
///
/// `step` yields `(instruction, outcome)` pairs forever — generated programs
/// restart from their entry when the last block is reached, so the oracle
/// never runs dry.
#[derive(Debug, Clone)]
pub struct ThreadContext {
    program: Arc<Program>,
    seed: u64,
    pc: Addr,
    executed: u64,
    branch_execs: Vec<u32>,
    /// Per-branch loop phase (`execs % trip`, maintained incrementally):
    /// loop back-edges resolve with a compare instead of a variable-divisor
    /// `%`, which costs tens of host cycles on every executed branch.
    loop_phase: Vec<u32>,
    mem_execs: Vec<u64>,
    /// Per-memory-model stride state `(offset, step)` with
    /// `offset == (n · stride) % span` maintained incrementally (`step` is
    /// `stride % span`, precomputed): strided address generation needs no
    /// division either.
    stride_state: Vec<(u64, u64)>,
    ret_stack: Vec<Addr>,
}

impl ThreadContext {
    /// Creates an oracle at the program's entry point. `seed` drives all
    /// probabilistic behaviour (Bernoulli branches, random address
    /// patterns), so equal seeds replay identical dynamic streams.
    pub fn new(program: Arc<Program>, seed: u64) -> ThreadContext {
        let branch_execs = vec![0; program.branch_count()];
        let loop_phase = vec![0; program.branch_count()];
        let mem_execs = vec![0; program.mem_count()];
        let stride_state = (0..program.mem_count() as u32)
            .map(|meta| match program.mem_model(meta).pattern {
                MemPattern::Stride { region, stride } => {
                    let span = (program.regions()[region as usize].size & !7).max(8);
                    (0, u64::from(stride) % span)
                }
                MemPattern::Random { .. } => (0, 0),
            })
            .collect();
        let pc = program.entry();
        ThreadContext {
            program,
            seed,
            pc,
            executed: 0,
            branch_execs,
            loop_phase,
            mem_execs,
            stride_state,
            ret_stack: Vec::with_capacity(MAX_CALL_DEPTH),
        }
    }

    /// The program this context executes.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// The PC of the next correct-path instruction.
    pub fn pc(&self) -> Addr {
        self.pc
    }

    /// Number of correct-path instructions executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Serializes the oracle's complete deterministic state — PC, executed
    /// count, per-branch and per-memory-model execution counters, stride
    /// state and the modeled return stack — through `w`, as one thread's
    /// `smt-workload` section of a simulator checkpoint. The program and
    /// seed are not written: they are regenerated from the configuration
    /// (covered by the checkpoint header's fingerprint) and
    /// [`restore_state`](ThreadContext::restore_state) targets a context
    /// freshly built from them.
    pub fn save_state<W: std::io::Write>(
        &self,
        w: &mut smt_stats::binio::BinWriter<W>,
    ) -> std::io::Result<()> {
        w.u64(self.pc)?;
        w.u64(self.executed)?;
        w.len(self.branch_execs.len())?;
        for &x in &self.branch_execs {
            w.u32(x)?;
        }
        w.len(self.loop_phase.len())?;
        for &x in &self.loop_phase {
            w.u32(x)?;
        }
        w.len(self.mem_execs.len())?;
        for &x in &self.mem_execs {
            w.u64(x)?;
        }
        w.len(self.stride_state.len())?;
        for &(off, step) in &self.stride_state {
            w.u64(off)?;
            w.u64(step)?;
        }
        w.len(self.ret_stack.len())?;
        for &a in &self.ret_stack {
            w.u64(a)?;
        }
        Ok(())
    }

    /// Restores state written by [`save_state`](ThreadContext::save_state)
    /// into this context, which must have been built from the same program
    /// and seed. Malformed data yields
    /// [`std::io::ErrorKind::InvalidData`] / `UnexpectedEof` errors, never
    /// a panic; on error the context is left partially written and must be
    /// discarded.
    pub fn restore_state<R: std::io::Read>(
        &mut self,
        r: &mut smt_stats::binio::BinReader<R>,
    ) -> std::io::Result<()> {
        use smt_stats::binio::invalid;
        let pc = r.u64()?;
        if self.program.inst_at(pc).is_none() {
            return Err(invalid(format!(
                "oracle PC {pc:#x} points outside the program image"
            )));
        }
        self.pc = pc;
        self.executed = r.u64()?;
        let n = r.len()?;
        if n != self.branch_execs.len() {
            return Err(invalid(format!(
                "checkpoint has {n} branch counters, program expects {}",
                self.branch_execs.len()
            )));
        }
        for x in &mut self.branch_execs {
            *x = r.u32()?;
        }
        let n = r.len()?;
        if n != self.loop_phase.len() {
            return Err(invalid(format!(
                "checkpoint has {n} loop phases, program expects {}",
                self.loop_phase.len()
            )));
        }
        for x in &mut self.loop_phase {
            *x = r.u32()?;
        }
        let n = r.len()?;
        if n != self.mem_execs.len() {
            return Err(invalid(format!(
                "checkpoint has {n} memory counters, program expects {}",
                self.mem_execs.len()
            )));
        }
        for x in &mut self.mem_execs {
            *x = r.u64()?;
        }
        let n = r.len()?;
        if n != self.stride_state.len() {
            return Err(invalid(format!(
                "checkpoint has {n} stride records, program expects {}",
                self.stride_state.len()
            )));
        }
        for s in &mut self.stride_state {
            *s = (r.u64()?, r.u64()?);
        }
        let n = r.len()?;
        if n > MAX_CALL_DEPTH {
            return Err(invalid(format!(
                "return stack depth {n} exceeds the modeled maximum of {MAX_CALL_DEPTH}"
            )));
        }
        self.ret_stack.clear();
        for _ in 0..n {
            self.ret_stack.push(r.u64()?);
        }
        Ok(())
    }

    /// Executes the next correct-path instruction and returns it together
    /// with its architectural outcome.
    pub fn step(&mut self) -> (StaticInst, Outcome) {
        let pc = self.pc;
        let inst = self
            .program
            .inst_at(pc)
            .expect("oracle PC always points into the code image");
        let outcome = if inst.op.is_control() {
            self.control_outcome(pc, &inst)
        } else if inst.op.is_mem() {
            Outcome {
                next_pc: pc + INST_BYTES,
                taken: false,
                mem_addr: self.mem_addr(&inst),
            }
        } else {
            Outcome::fallthrough(pc)
        };
        self.pc = outcome.next_pc;
        self.executed += 1;
        (inst, outcome)
    }

    fn control_outcome(&mut self, pc: Addr, inst: &StaticInst) -> Outcome {
        if inst.op == Opcode::Return {
            let next_pc = self.ret_stack.pop().unwrap_or_else(|| self.program.entry());
            return Outcome {
                next_pc,
                taken: true,
                mem_addr: 0,
            };
        }
        let model = self.program.branch_model(inst.meta);
        let execs = &mut self.branch_execs[inst.meta as usize];
        let n = *execs;
        *execs = execs.wrapping_add(1);
        match inst.op {
            Opcode::CondBranch => {
                let taken = match model.behavior {
                    BranchBehavior::Loop { trip } => {
                        // `phase == n % trip`, maintained without dividing.
                        let phase = &mut self.loop_phase[inst.meta as usize];
                        debug_assert_eq!(*phase, n % trip);
                        let taken = *phase != trip - 1;
                        *phase += 1;
                        if *phase == trip {
                            *phase = 0;
                        }
                        taken
                    }
                    BranchBehavior::Bernoulli { taken_milli } => {
                        let h = mix64(self.seed ^ (u64::from(inst.meta) << 32) ^ u64::from(n));
                        h % 1000 < u64::from(taken_milli)
                    }
                };
                let next_pc = if taken {
                    model.taken_target
                } else {
                    pc + INST_BYTES
                };
                Outcome {
                    next_pc,
                    taken,
                    mem_addr: 0,
                }
            }
            Opcode::Jump => Outcome {
                next_pc: model.taken_target,
                taken: true,
                mem_addr: 0,
            },
            Opcode::Call => {
                if self.ret_stack.len() == MAX_CALL_DEPTH {
                    self.ret_stack.remove(0);
                }
                self.ret_stack.push(pc + INST_BYTES);
                Outcome {
                    next_pc: model.taken_target,
                    taken: true,
                    mem_addr: 0,
                }
            }
            Opcode::JumpInd => {
                let h = mix64(self.seed ^ (u64::from(inst.meta) << 24) ^ u64::from(n) ^ 0x1d);
                let next_pc = model.targets[(h % model.targets.len() as u64) as usize];
                Outcome {
                    next_pc,
                    taken: true,
                    mem_addr: 0,
                }
            }
            other => unreachable!("{other} is not a control opcode"),
        }
    }

    fn mem_addr(&mut self, inst: &StaticInst) -> Addr {
        let model = self.program.mem_model(inst.meta);
        let n = self.mem_execs[inst.meta as usize];
        self.mem_execs[inst.meta as usize] = n.wrapping_add(1);
        match model.pattern {
            MemPattern::Stride { region, stride: _ } => {
                let r = self.program.regions()[region as usize];
                let span = (r.size & !7).max(8);
                // `offset == (n · stride) % span` without the division:
                // `step < span`, so one conditional subtraction per
                // execution keeps the running offset exact.
                let (offset, step) = &mut self.stride_state[inst.meta as usize];
                let addr = (r.base + *offset) & !7;
                *offset += *step;
                if *offset >= span {
                    *offset -= span;
                }
                addr
            }
            MemPattern::Random { region } => {
                let r = self.program.regions()[region as usize];
                let slots = (r.size / 8).max(1);
                let h = mix64(self.seed ^ (u64::from(inst.meta) << 16) ^ n);
                r.base + (h % slots) * 8
            }
        }
    }
}

/// Wrong-path instruction and address synthesis.
///
/// Once the pipeline's fetch PC leaves the correct path it can no longer ask
/// the oracle what comes next; it reads the image directly and, when fetch
/// runs off the code entirely, receives harmless filler instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WrongPath;

impl WrongPath {
    /// The instruction fetched from `pc` on the wrong path: the real image
    /// instruction when `pc` is in code, otherwise an integer ALU filler.
    pub fn inst_at(program: &Program, pc: Addr) -> StaticInst {
        program.inst_at(pc).unwrap_or_else(|| {
            StaticInst::op3(Opcode::IntAlu, Reg::int(1), Reg::int(2), Reg::int(3))
        })
    }

    /// A synthesized effective address for a wrong-path memory instruction:
    /// pseudo-random within one of the program's regions, so wrong-path
    /// loads pollute the cache plausibly.
    pub fn mem_addr(program: &Program, pc: Addr, salt: u64) -> Addr {
        let regions = program.regions();
        let h = mix64(pc ^ salt.rotate_left(17));
        let r = regions[(h % regions.len() as u64) as usize];
        r.base + (mix64(h) % (r.size / 8).max(1)) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::Benchmark;

    fn oracle() -> ThreadContext {
        ThreadContext::new(Arc::new(Benchmark::Espresso.generate(42, 0)), 7)
    }

    #[test]
    fn oracle_runs_forever_and_stays_in_code() {
        let mut o = oracle();
        let program = o.program().clone();
        for _ in 0..20_000 {
            let (inst, out) = o.step();
            assert!(program.contains(out.next_pc), "next PC must stay in code");
            if inst.op.is_mem() {
                assert!(
                    program.regions().iter().any(|r| r.contains(out.mem_addr)),
                    "effective addresses must land in a data region"
                );
            }
        }
        assert_eq!(o.executed(), 20_000);
    }

    #[test]
    fn oracle_is_deterministic() {
        let mut a = oracle();
        let mut b = oracle();
        for _ in 0..5_000 {
            let (ia, oa) = a.step();
            let (ib, ob) = b.step();
            assert_eq!(ia, ib);
            assert_eq!(oa, ob);
        }
    }

    #[test]
    fn loop_branches_follow_trip_counts() {
        use crate::program::{BranchModel, Region};
        // Hand-built two-instruction loop: body; branch back (trip 3).
        let program = Program {
            name: "loop".into(),
            code_base: 0x1000,
            code: vec![
                StaticInst::op3(Opcode::IntAlu, Reg::int(1), Reg::int(2), Reg::int(3)),
                StaticInst {
                    op: Opcode::CondBranch,
                    dest: None,
                    srcs: [None, None],
                    meta: 0,
                },
                StaticInst::op0(Opcode::Jump).with_meta(1),
            ],
            branches: vec![
                BranchModel {
                    behavior: BranchBehavior::Loop { trip: 3 },
                    taken_target: 0x1000,
                    targets: vec![],
                },
                BranchModel {
                    behavior: BranchBehavior::Bernoulli { taken_milli: 1000 },
                    taken_target: 0x1000,
                    targets: vec![],
                },
            ],
            mems: vec![],
            regions: vec![Region {
                base: 0x10_0000,
                size: 4096,
            }],
            entry: 0x1000,
        };
        assert_eq!(program.validate(), Ok(()));
        let mut o = ThreadContext::new(Arc::new(program), 0);
        let mut directions = Vec::new();
        for _ in 0..20 {
            let (inst, out) = o.step();
            if inst.op == Opcode::CondBranch {
                directions.push(out.taken);
            }
        }
        // Trip 3: taken, taken, not-taken, repeating.
        assert_eq!(&directions[..6], &[true, true, false, true, true, false]);
    }

    #[test]
    fn call_return_pairs_balance() {
        let mut o = oracle();
        let mut depth = 0i64;
        for _ in 0..50_000 {
            let (inst, out) = o.step();
            match inst.op {
                Opcode::Call => depth += 1,
                Opcode::Return => {
                    depth -= 1;
                    assert!(o.program().contains(out.next_pc));
                }
                _ => {}
            }
        }
        assert!(depth >= 0, "returns must never outnumber calls");
        assert!(depth < MAX_CALL_DEPTH as i64);
    }

    #[test]
    fn wrong_path_synthesis_is_safe() {
        let o = oracle();
        let program = o.program();
        // Off-image PC yields filler.
        let filler = WrongPath::inst_at(program, 0xdead_0000);
        assert_eq!(filler.op, Opcode::IntAlu);
        // In-image PC yields the real instruction.
        let real = WrongPath::inst_at(program, program.entry());
        assert_eq!(Some(real), program.inst_at(program.entry()));
        // Synthesized addresses land in a region.
        for salt in 0..64 {
            let a = WrongPath::mem_addr(program, program.entry(), salt);
            assert!(program.regions().iter().any(|r| r.contains(a)));
        }
    }
}

//! The pluggable instruction-source abstraction: [`WorkloadSource`].
//!
//! The pipeline's front end consumes one *correct-path* instruction stream
//! per hardware context and, once fetch has diverged down a mispredicted
//! path, synthesizes plausible *wrong-path* instructions and addresses
//! until the offending branch resolves. Both halves — stepping the correct
//! path and synthesizing the wrong one — plus the checkpoint hooks are
//! what a workload backend owes the simulator, and this trait is exactly
//! that contract. `smt-core` holds a `Box<dyn WorkloadSource>` per thread
//! and never names a concrete backend.
//!
//! Three backends ship with the crate:
//!
//! * [`SyntheticSource`] — the synthetic-CFG oracle
//!   ([`ThreadContext`](crate::ThreadContext) over a generated
//!   [`Program`](crate::Program)), bit-identical to the pre-trait coupling,
//! * [`RiscvSource`](crate::riscv::RiscvSource) — functional execution of a
//!   real rv32i/rv64i binary image,
//! * [`TraceSource`](crate::trace::TraceSource) — allocation-free replay of
//!   a recorded instruction stream.
//!
//! See the crate docs for the "writing a workload backend" how-to.

use std::io::{Read, Write};
use std::sync::Arc;

use smt_isa::{Addr, Opcode, Outcome, StaticInst, INST_BYTES};
use smt_stats::binio::{BinReader, BinWriter};

use crate::oracle::{ThreadContext, WrongPath};
use crate::program::Program;

/// One hardware context's instruction source: the correct-path stream, the
/// wrong-path synthesis rules, and the checkpoint hooks.
///
/// # Contract
///
/// * [`step`](WorkloadSource::step) must yield `(instruction, outcome)`
///   pairs **forever** (finite programs restart), and the outcome's
///   `next_pc` must equal [`pc`](WorkloadSource::pc) before the next
///   `step` call — fetch debug-asserts that it never leaves the source's
///   path.
/// * Every method must be **deterministic**: a pure function of the
///   source's construction parameters and the calls made so far. Two
///   identically-built sources receiving identical call sequences must
///   return identical values — simulator determinism, golden tests and
///   checkpoint bit-equivalence all rest on this.
/// * The `wrong_*` methods are consulted only while fetch is off the
///   correct path; they must not disturb the correct-path state.
/// * [`save_state`](WorkloadSource::save_state) /
///   [`restore_state`](WorkloadSource::restore_state) serialize the
///   source's complete mutable state (construction-derived state is
///   rebuilt from the configuration, which the checkpoint header
///   fingerprints). Restore targets a freshly built source and must
///   validate every decoded length and address, returning
///   [`std::io::ErrorKind::InvalidData`] errors rather than panicking.
///
/// The streams are `&mut dyn` so the trait stays object-safe while the
/// per-crate sections of one checkpoint share a single running checksum.
pub trait WorkloadSource: Send {
    /// Thread label shown in reports (the `benchmark` field).
    fn name(&self) -> &str;

    /// The PC of the next correct-path instruction.
    fn pc(&self) -> Addr;

    /// Number of correct-path instructions executed so far.
    fn executed(&self) -> u64;

    /// Executes the next correct-path instruction and returns it together
    /// with its architectural outcome.
    fn step(&mut self) -> (StaticInst, Outcome);

    /// The instruction fetched from `pc` on the wrong path: the real image
    /// instruction when `pc` lands in code, otherwise harmless filler.
    fn wrong_inst_at(&self, pc: Addr) -> StaticInst;

    /// A synthesized effective address for a wrong-path memory instruction
    /// at `pc` (`salt` decorrelates repeated fetches of the same PC), so
    /// wrong-path loads pollute the cache plausibly.
    fn wrong_mem_addr(&self, pc: Addr, salt: u64) -> Addr;

    /// The statically-known taken target used when decode must compute a
    /// target on the wrong path (no architectural outcome exists to
    /// consult) for the control instruction `inst` fetched at `pc`.
    fn wrong_taken_target(&self, inst: StaticInst, pc: Addr) -> Addr;

    /// Serializes the source's complete mutable state as this thread's
    /// `smt-workload` section of a simulator checkpoint.
    fn save_state(&self, w: &mut BinWriter<&mut dyn Write>) -> std::io::Result<()>;

    /// Restores state written by [`save_state`](WorkloadSource::save_state)
    /// into this source, which must have been freshly built from the same
    /// configuration. Malformed data yields
    /// [`std::io::ErrorKind::InvalidData`] / `UnexpectedEof` errors, never
    /// a panic; on error the source must be discarded.
    fn restore_state(&mut self, r: &mut BinReader<&mut dyn Read>) -> std::io::Result<()>;
}

/// The synthetic-CFG backend: a [`ThreadContext`] oracle walking a
/// generated [`Program`], plus the [`WrongPath`] synthesis rules.
///
/// This is the pre-trait instruction source, verbatim: every method
/// reproduces the exact bytes/addresses the old direct coupling produced,
/// which is what keeps the checked-in goldens and checkpoint streams
/// byte-identical across the refactor.
pub struct SyntheticSource {
    oracle: ThreadContext,
    program: Arc<Program>,
}

impl SyntheticSource {
    /// Creates the source at the program's entry point; `seed` drives all
    /// stochastic oracle behaviour (see [`ThreadContext::new`]).
    pub fn new(program: Arc<Program>, seed: u64) -> SyntheticSource {
        SyntheticSource {
            oracle: ThreadContext::new(program.clone(), seed),
            program,
        }
    }

    /// The synthetic program image this source executes.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }
}

impl WorkloadSource for SyntheticSource {
    fn name(&self) -> &str {
        self.program.name()
    }

    fn pc(&self) -> Addr {
        self.oracle.pc()
    }

    fn executed(&self) -> u64 {
        self.oracle.executed()
    }

    fn step(&mut self) -> (StaticInst, Outcome) {
        self.oracle.step()
    }

    fn wrong_inst_at(&self, pc: Addr) -> StaticInst {
        WrongPath::inst_at(&self.program, pc)
    }

    fn wrong_mem_addr(&self, pc: Addr, salt: u64) -> Addr {
        WrongPath::mem_addr(&self.program, pc, salt)
    }

    fn wrong_taken_target(&self, inst: StaticInst, pc: Addr) -> Addr {
        // Control instructions with a branch model have a statically-known
        // taken target (indirect jumps use their first modeled target);
        // returns and modelless instructions fall through.
        if inst.op.is_control() && inst.op != Opcode::Return && inst.meta != smt_isa::NO_META {
            let model = self.program.branch_model(inst.meta);
            if let Some(&t) = model.targets.first() {
                if inst.op == Opcode::JumpInd {
                    return t;
                }
            }
            model.taken_target
        } else {
            pc + INST_BYTES
        }
    }

    fn save_state(&self, w: &mut BinWriter<&mut dyn Write>) -> std::io::Result<()> {
        self.oracle.save_state(w)
    }

    fn restore_state(&mut self, r: &mut BinReader<&mut dyn Read>) -> std::io::Result<()> {
        self.oracle.restore_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::Benchmark;

    fn source() -> SyntheticSource {
        SyntheticSource::new(Arc::new(Benchmark::Espresso.generate(42, 0)), 7)
    }

    #[test]
    fn synthetic_source_matches_the_raw_oracle() {
        // The trait adapter must be a zero-cost rename: identical stream,
        // identical wrong-path synthesis.
        let mut s = source();
        let mut o = ThreadContext::new(Arc::new(Benchmark::Espresso.generate(42, 0)), 7);
        for _ in 0..5_000 {
            assert_eq!(s.pc(), o.pc());
            let (si, so) = s.step();
            let (oi, oo) = o.step();
            assert_eq!((si, so), (oi, oo));
        }
        assert_eq!(s.executed(), o.executed());
        let program = s.program().clone();
        for salt in 0..32 {
            let pc = program.entry() + salt * 4;
            assert_eq!(s.wrong_inst_at(pc), WrongPath::inst_at(&program, pc));
            assert_eq!(
                s.wrong_mem_addr(pc, salt),
                WrongPath::mem_addr(&program, pc, salt)
            );
        }
    }

    #[test]
    fn synthetic_state_round_trips_through_dyn_streams() {
        let mut s = source();
        for _ in 0..1_234 {
            s.step();
        }
        let mut bytes = Vec::new();
        {
            let mut w = BinWriter::new(&mut bytes as &mut dyn std::io::Write);
            s.save_state(&mut w).expect("vec write");
        }
        let mut restored = source();
        let mut slice: &[u8] = &bytes;
        let mut r = BinReader::new(&mut slice as &mut dyn std::io::Read);
        restored.restore_state(&mut r).expect("restore");
        assert_eq!(restored.pc(), s.pc());
        assert_eq!(restored.executed(), s.executed());
        for _ in 0..1_000 {
            assert_eq!(restored.step(), s.step());
        }
    }
}

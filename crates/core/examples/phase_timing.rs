//! Where does a simulated cycle's wall-clock go? Runs the reference
//! ICOUNT.2.8 machine and prints the per-phase breakdown.
//!
//! ```text
//! cargo run --release -p smt-core --features phase-timing --example phase_timing
//! ```

fn main() {
    let mut sim = smt_core::SimConfig::new().build();
    sim.run(200_000);
    let names = [
        "mem.begin",
        "completions",
        "writeback",
        "commit",
        "issue",
        "rename",
        "fetch",
    ];
    let ns = smt_core::pipeline_phase_ns();
    let total: u64 = ns.iter().sum();
    for (n, v) in names.iter().zip(&ns) {
        println!(
            "{n:12} {:8.1} ms  {:5.1}%",
            *v as f64 / 1e6,
            *v as f64 / total as f64 * 100.0
        );
    }
    println!("total        {:8.1} ms", total as f64 / 1e6);
}

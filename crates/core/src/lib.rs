pub fn placeholder() {}

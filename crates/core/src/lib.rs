//! The policy-driven SMT simulator core — the public API of the system.
//!
//! This crate reproduces the machine of Tullsen, Eggers, Emer, Levy, Lo and
//! Stamm, *"Exploiting Choice: Instruction Fetch and Issue on an
//! Implementable Simultaneous Multithreading Processor"* (ISCA 1996). The
//! paper's contribution is *choice*: each cycle the processor chooses which
//! threads to fetch from and which instructions to issue. Both choices are
//! first-class objects here:
//!
//! * [`FetchPolicy`] ranks hardware contexts for fetch each cycle. Shipped:
//!   [`RoundRobin`], [`ICount`], [`BrCount`], [`MissCount`].
//! * [`IssuePolicy`] orders ready instructions for issue. Shipped:
//!   [`OldestFirst`], [`OptLast`], [`SpecLast`], [`BranchFirst`].
//! * [`FetchPartition`] is the `T.I` partitioning scheme (1.8, 2.4, 2.8,
//!   4.2) dividing the 8-instruction fetch bandwidth among threads.
//!
//! [`SimConfig`] bundles policies with the machine description (Table-2
//! caches via `smt-mem`, the Section-2 predictor via `smt-branch`,
//! per-class register files and queues) and a workload (`smt-workload`
//! benchmarks), and builds a [`Simulator`] whose [`run`](Simulator::run)
//! returns a [`SimReport`] built on `smt-stats`.
//!
//! Adding a policy requires implementing one trait — no simulator internals:
//!
//! ```
//! use smt_core::{FetchPolicy, SimConfig, ThreadFetchView};
//! use smt_workload::Benchmark;
//!
//! /// Fetch from whichever thread has the fewest outstanding D-misses,
//! /// breaking ties toward fewer in-flight instructions.
//! struct MissThenICount;
//!
//! impl FetchPolicy for MissThenICount {
//!     fn name(&self) -> &str {
//!         "MISS_THEN_ICOUNT"
//!     }
//!     fn priority(&self, _cycle: u64, view: &ThreadFetchView) -> i64 {
//!         i64::from(view.outstanding_misses) * 1000 + i64::from(view.in_flight)
//!     }
//! }
//!
//! let report = SimConfig::new()
//!     .with_benchmarks(vec![Benchmark::Espresso, Benchmark::Alvinn], 42)
//!     .with_fetch(Box::new(MissThenICount))
//!     .build()
//!     .run(1_000);
//! assert_eq!(report.fetch_policy, "MISS_THEN_ICOUNT");
//! assert!(report.total_committed() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod pipeline;
mod policy;
mod regfile;
mod report;

pub use config::{SimConfig, MAX_THREADS};
pub use pipeline::Simulator;
pub use policy::{
    fetch_policy_by_name, issue_policy_by_name, rotating_rank, BrCount, BranchFirst,
    FetchPartition, FetchPolicy, ICount, IssueCandidate, IssuePolicy, MissCount, OldestFirst,
    OptLast, RoundRobin, SpecLast, ThreadFetchView,
};
pub use report::{FetchBreakdown, IssueBreakdown, SimReport, ThreadReport};

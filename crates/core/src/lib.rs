//! The policy-driven SMT simulator core — the public API of the system.
//!
//! This crate reproduces the machine of Tullsen, Eggers, Emer, Levy, Lo and
//! Stamm, *"Exploiting Choice: Instruction Fetch and Issue on an
//! Implementable Simultaneous Multithreading Processor"* (ISCA 1996). The
//! paper's contribution is *choice*: each cycle the processor chooses which
//! threads to fetch from and which instructions to issue. Both choices are
//! first-class objects here:
//!
//! * [`FetchPolicy`] ranks hardware contexts for fetch each cycle. Shipped:
//!   [`RoundRobin`], [`ICount`], [`BrCount`], [`MissCount`].
//! * [`IssuePolicy`] orders ready instructions for issue. Shipped:
//!   [`OldestFirst`], [`OptLast`], [`SpecLast`], [`BranchFirst`].
//! * [`FetchPartition`] is the `T.I` partitioning scheme (1.8, 2.4, 2.8,
//!   4.2) dividing the 8-instruction fetch bandwidth among threads.
//!
//! [`SimConfig`] bundles policies with the machine description (Table-2
//! caches via `smt-mem`, the Section-2 predictor via `smt-branch`,
//! per-class register files and queues) and a workload (`smt-workload`
//! benchmarks), and builds a [`Simulator`] whose [`run`](Simulator::run)
//! returns a [`SimReport`] built on `smt-stats`.
//!
//! Adding a policy requires implementing one trait — no simulator internals:
//!
//! ```
//! use smt_core::{FetchPolicy, SimConfig, ThreadFetchView};
//! use smt_workload::Benchmark;
//!
//! /// Fetch from whichever thread has the fewest outstanding D-misses,
//! /// breaking ties toward fewer in-flight instructions.
//! struct MissThenICount;
//!
//! impl FetchPolicy for MissThenICount {
//!     fn name(&self) -> &str {
//!         "MISS_THEN_ICOUNT"
//!     }
//!     fn priority(&self, _cycle: u64, view: &ThreadFetchView) -> i64 {
//!         i64::from(view.outstanding_misses) * 1000 + i64::from(view.in_flight)
//!     }
//! }
//!
//! let report = SimConfig::new()
//!     .with_benchmarks(vec![Benchmark::Espresso, Benchmark::Alvinn], 42)
//!     .with_fetch(Box::new(MissThenICount))
//!     .build()
//!     .run(1_000);
//! assert_eq!(report.fetch_policy, "MISS_THEN_ICOUNT");
//! assert!(report.total_committed() > 0);
//! ```
//!
//! # The event-driven scheduler
//!
//! The simulator's hot loop is event-driven, not scan-based: no phase of
//! [`Simulator::step_cycle`] walks the reorder buffers. Three structures
//! carry scheduling state forward between cycles:
//!
//! * **Register wakeup lists** — every physical register carries the list
//!   of dispatched instructions waiting on it; the writeback that produces
//!   the value drains the list and decrements each consumer's
//!   outstanding-operand count.
//! * **The ready set** — an instruction enters exactly once (at dispatch
//!   when its operands are all available, or when its last operand's
//!   writeback wakes it) and leaves when issued, so an [`IssuePolicy`]
//!   ranks only genuinely-ready instructions. The set is kept in age
//!   order, which makes the default OLDEST_FIRST ranking a no-op sort.
//! * **Writeback events** — issue schedules each instruction's completion
//!   into a calendar ring; the writeback phase drains one bucket per
//!   cycle. Cache-miss completions arrive from `smt-mem` the same way, as
//!   events scheduled when the miss began.
//!
//! The per-thread ICOUNT/BRCOUNT/MISSCOUNT counters the fetch policies
//! read are maintained incrementally at the same state transitions.
//! Policies are consulted in one batched call per cycle
//! ([`FetchPolicy::priority_batch`], [`IssuePolicy::priority_batch`]), so
//! boxed policies cost one dynamic dispatch per cycle, not per candidate.
//! The pipeline stages live in dedicated modules under `pipeline/`
//! (`fetch`, `rename`, `issue`, `commit`, `scheduler`), with the wakeup
//! machinery in `scheduler` and the cycle driver in `pipeline` itself.
//! A golden-equivalence suite (`tests/golden.rs` at the workspace root)
//! pins the scheduler's output byte-for-byte to the scan-based
//! implementation it replaced.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ablation;
pub mod checkpoint;
mod config;
pub mod fleet;
mod pipeline;
mod policy;
mod regfile;
mod report;

pub use ablation::{Ablation, Ablations};
pub use checkpoint::CheckpointError;
pub use config::{SimConfig, WorkloadSpec, MAX_THREADS};
pub use fleet::{FleetCell, SimFleet};
pub use pipeline::Simulator;
pub use policy::{
    fetch_policy_by_name, issue_policy_by_name, rotating_rank, BrCount, BranchFirst,
    FetchPartition, FetchPolicy, ICount, IssueCandidate, IssuePolicy, MissCount, OldestFirst,
    OptLast, RoundRobin, SpecLast, ThreadFetchView,
};
pub use report::{FetchBreakdown, IssueBreakdown, SimReport, ThreadReport};

/// Per-phase wall-clock nanoseconds accumulated by the cycle driver since
/// process start, in phase order: memory begin-cycle, miss completions,
/// writeback, commit, issue, rename, fetch. Only available with the
/// `phase-timing` feature (see "Profiling the hot loop" in the `smt-bench`
/// crate docs); the probes cost ~15% of throughput, so they are compiled
/// out by default.
#[cfg(feature = "phase-timing")]
pub fn pipeline_phase_ns() -> [u64; 7] {
    let mut out = [0; 7];
    for (o, a) in out.iter_mut().zip(pipeline::PHASE_NS.iter()) {
        *o = a.load(std::sync::atomic::Ordering::Relaxed);
    }
    out
}

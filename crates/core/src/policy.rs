//! Pluggable fetch and issue policies — the paper's "choice".
//!
//! The simulator consults a [`FetchPolicy`] every cycle to rank hardware
//! contexts for fetch, and an [`IssuePolicy`] to order ready instructions
//! for issue. Both are plain trait objects: adding a policy means
//! implementing one trait and handing it to
//! [`SimConfig`](crate::SimConfig) — no simulator internals are involved.
//!
//! The shipped fetch policies are the paper's Section 4 heuristics
//! ([`RoundRobin`], [`ICount`], [`BrCount`], [`MissCount`]); the shipped
//! issue policies are the Section 5 heuristics ([`OldestFirst`],
//! [`OptLast`], [`SpecLast`], [`BranchFirst`]).

use std::fmt;

use smt_isa::{RegClass, ThreadId};

/// A fetch partitioning scheme `T.I`: up to `threads_per_cycle` threads
/// fetch per cycle, up to `insts_per_thread` instructions each, subject to
/// the global 8-instruction fetch bandwidth (the paper's `alg.2.8` etc.).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FetchPartition {
    /// Number of threads that may fetch in one cycle (`T`).
    pub threads_per_cycle: u8,
    /// Maximum instructions fetched from each of those threads (`I`).
    pub insts_per_thread: u8,
}

impl FetchPartition {
    /// Total fetch bandwidth of the machine, in instructions per cycle.
    pub const TOTAL_WIDTH: u32 = 8;

    /// Creates a `T.I` partition.
    ///
    /// # Panics
    ///
    /// Panics if either component is zero.
    pub fn new(threads_per_cycle: u8, insts_per_thread: u8) -> FetchPartition {
        assert!(
            threads_per_cycle > 0 && insts_per_thread > 0,
            "partition components must be > 0"
        );
        FetchPartition {
            threads_per_cycle,
            insts_per_thread,
        }
    }

    /// Parses a `"T.I"` string such as `"2.8"`.
    pub fn parse(s: &str) -> Option<FetchPartition> {
        let (t, i) = s.split_once('.')?;
        let t: u8 = t.trim().parse().ok()?;
        let i: u8 = i.trim().parse().ok()?;
        if t == 0 || i == 0 {
            return None;
        }
        Some(FetchPartition::new(t, i))
    }

    /// The paper's four partitioning schemes, in ascending thread count.
    pub fn all_schemes() -> [FetchPartition; 4] {
        [
            FetchPartition::new(1, 8),
            FetchPartition::new(2, 4),
            FetchPartition::new(2, 8),
            FetchPartition::new(4, 2),
        ]
    }
}

impl fmt::Display for FetchPartition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.threads_per_cycle, self.insts_per_thread)
    }
}

/// Per-thread state visible to a [`FetchPolicy`] when ranking threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadFetchView {
    /// The hardware context being ranked.
    pub thread: ThreadId,
    /// Total number of hardware contexts in the machine.
    pub thread_count: u8,
    /// Instructions fetched but not yet issued (decode, rename and the
    /// instruction queues) — the ICOUNT counter.
    pub in_flight: u32,
    /// Conditional and indirect branches fetched but not yet resolved —
    /// the BRCOUNT counter.
    pub unresolved_branches: u32,
    /// Outstanding D-cache misses — the MISSCOUNT counter.
    pub outstanding_misses: u32,
}

/// The live per-thread counter a shipped fetch policy ranks by — the fast
/// path behind [`FetchPolicy::ranking_counter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchCounter {
    /// The rotating thread order itself ([`RoundRobin`]).
    Rotation,
    /// [`ThreadFetchView::in_flight`] ([`ICount`]).
    InFlight,
    /// [`ThreadFetchView::unresolved_branches`] ([`BrCount`]).
    UnresolvedBranches,
    /// [`ThreadFetchView::outstanding_misses`] ([`MissCount`]).
    OutstandingMisses,
}

/// Ranks hardware contexts for fetch each cycle.
///
/// Lower keys fetch first. The simulator computes a key for every thread
/// that *can* fetch this cycle (not blocked on an I-cache miss and with
/// front-end room), sorts ascending, and gives fetch slots to the first
/// `T` threads of the active [`FetchPartition`]. Ties are broken by a
/// rotating thread order so no context starves.
pub trait FetchPolicy: Send {
    /// Policy name as it appears in reports, e.g. `"ICOUNT"`.
    fn name(&self) -> &str;

    /// Priority key for one thread this cycle; lower fetches first.
    fn priority(&self, cycle: u64, view: &ThreadFetchView) -> i64;

    /// Appends the priority key of every view to `keys`, in order.
    ///
    /// The simulator ranks all fetchable threads once per cycle through
    /// this entry point, so a boxed policy pays one dynamic dispatch per
    /// cycle instead of one per thread — the default body is compiled
    /// against the concrete policy type, where
    /// [`priority`](FetchPolicy::priority) inlines. Must be equivalent to
    /// calling `priority` on each view.
    fn priority_batch(&self, cycle: u64, views: &[ThreadFetchView], keys: &mut Vec<i64>) {
        keys.extend(views.iter().map(|v| self.priority(cycle, v)));
    }

    /// The single live counter this policy's key equals, if any — e.g.
    /// `Some(FetchCounter::InFlight)` for ICOUNT. When set, the simulator
    /// reads that counter directly while scanning for fetchable threads
    /// instead of materializing [`ThreadFetchView`]s and paying the
    /// ranking round-trip; the resulting order is identical by definition.
    /// Policies whose key is any other function of the view (or of the
    /// cycle) must keep the default `None` and rely on
    /// [`priority_batch`](FetchPolicy::priority_batch).
    fn ranking_counter(&self) -> Option<FetchCounter> {
        None
    }
}

/// The rotating thread order: at cycle `c`, thread `c mod n` ranks first,
/// the next thread second, and so on. [`RoundRobin`] uses this as its
/// entire ranking; the simulator uses it as the tie-break for every policy,
/// so no context starves under a constant-key policy.
pub fn rotating_rank(cycle: u64, thread: ThreadId, thread_count: u8) -> u64 {
    let n = u64::from(thread_count.max(1));
    (u64::from(thread.0) + n - cycle % n) % n
}

/// Fetch threads in strict rotation, ignoring all feedback (`RR`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundRobin;

impl FetchPolicy for RoundRobin {
    fn name(&self) -> &str {
        "RR"
    }

    fn priority(&self, cycle: u64, view: &ThreadFetchView) -> i64 {
        rotating_rank(cycle, view.thread, view.thread_count) as i64
    }

    fn ranking_counter(&self) -> Option<FetchCounter> {
        Some(FetchCounter::Rotation)
    }
}

/// Favor threads with the fewest instructions in decode, rename and the
/// instruction queues (`ICOUNT`) — the paper's winning policy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ICount;

impl FetchPolicy for ICount {
    fn name(&self) -> &str {
        "ICOUNT"
    }

    fn priority(&self, _cycle: u64, view: &ThreadFetchView) -> i64 {
        i64::from(view.in_flight)
    }

    fn ranking_counter(&self) -> Option<FetchCounter> {
        Some(FetchCounter::InFlight)
    }
}

/// Favor threads with the fewest unresolved branches in flight (`BRCOUNT`),
/// biasing fetch away from likely wrong paths.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BrCount;

impl FetchPolicy for BrCount {
    fn name(&self) -> &str {
        "BRCOUNT"
    }

    fn priority(&self, _cycle: u64, view: &ThreadFetchView) -> i64 {
        i64::from(view.unresolved_branches)
    }

    fn ranking_counter(&self) -> Option<FetchCounter> {
        Some(FetchCounter::UnresolvedBranches)
    }
}

/// Favor threads with the fewest outstanding D-cache misses (`MISSCOUNT`),
/// biasing fetch away from threads about to clog the queues.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MissCount;

impl FetchPolicy for MissCount {
    fn name(&self) -> &str {
        "MISSCOUNT"
    }

    fn priority(&self, _cycle: u64, view: &ThreadFetchView) -> i64 {
        i64::from(view.outstanding_misses)
    }

    fn ranking_counter(&self) -> Option<FetchCounter> {
        Some(FetchCounter::OutstandingMisses)
    }
}

/// Looks a shipped fetch policy up by (case-insensitive) name or alias.
pub fn fetch_policy_by_name(name: &str) -> Option<Box<dyn FetchPolicy>> {
    match name.to_ascii_lowercase().as_str() {
        "rr" | "roundrobin" | "round-robin" => Some(Box::new(RoundRobin)),
        "icount" => Some(Box::new(ICount)),
        "brcount" => Some(Box::new(BrCount)),
        "misscount" => Some(Box::new(MissCount)),
        _ => None,
    }
}

/// One ready instruction, as seen by an [`IssuePolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssueCandidate {
    /// Global fetch order (smaller = older).
    pub age: u64,
    /// Owning hardware context.
    pub thread: ThreadId,
    /// The instruction queue this candidate waits in.
    pub queue: RegClass,
    /// Whether this is a control instruction.
    pub is_branch: bool,
    /// Whether an older branch of the same thread is still unresolved
    /// (the instruction is control-speculative).
    pub speculative: bool,
    /// Whether the instruction was woken by a load in the current or
    /// previous cycle (it issues on a load-hit assumption).
    pub optimistic: bool,
}

/// Orders ready instructions for issue each cycle. Lower keys issue first.
pub trait IssuePolicy: Send {
    /// Policy name as it appears in reports, e.g. `"OLDEST_FIRST"`.
    fn name(&self) -> &str;

    /// Priority key for one ready instruction; lower issues first.
    fn priority(&self, candidate: &IssueCandidate) -> i64;

    /// Appends the priority key of every candidate to `keys`, in order.
    ///
    /// The simulator ranks the whole ready set once per cycle through this
    /// entry point, so a boxed policy pays one dynamic dispatch per cycle
    /// instead of one per candidate — the default body is compiled against
    /// the concrete policy type, where [`priority`](IssuePolicy::priority)
    /// inlines. Implementations normally keep the default; override only
    /// to vectorize a custom policy further. Must be equivalent to calling
    /// `priority` on each candidate.
    fn priority_batch(&self, candidates: &[IssueCandidate], keys: &mut Vec<i64>) {
        keys.extend(candidates.iter().map(|c| self.priority(c)));
    }

    /// Whether this policy's key is exactly the candidate's age
    /// (`priority(c) == c.age as i64` for **every** possible candidate).
    ///
    /// The simulator keeps its ready set age-sorted, so a `true` here lets
    /// it skip building and ranking the candidate batch entirely and issue
    /// straight off the ready set — the shipped [`OldestFirst`] policy's
    /// fast path, worth ~10% of total simulator throughput. The result is
    /// identical by construction (ranking by age reproduces the ready
    /// set's order); policies whose key depends on anything besides age
    /// must keep the default `false`.
    fn age_is_priority(&self) -> bool {
        false
    }
}

/// Key offset used by the deferring issue policies: anything deferred still
/// issues in age order, but after every non-deferred candidate.
const DEFER: i64 = 1 << 42;

/// Issue strictly oldest-first (the paper's default and near-optimal choice).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OldestFirst;

impl IssuePolicy for OldestFirst {
    fn name(&self) -> &str {
        "OLDEST_FIRST"
    }

    fn priority(&self, c: &IssueCandidate) -> i64 {
        c.age as i64
    }

    fn age_is_priority(&self) -> bool {
        true
    }
}

/// Defer optimistically-woken instructions (`OPT_LAST`): candidates issued
/// on a load-hit assumption go behind all safe candidates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptLast;

impl IssuePolicy for OptLast {
    fn name(&self) -> &str {
        "OPT_LAST"
    }

    fn priority(&self, c: &IssueCandidate) -> i64 {
        c.age as i64 + if c.optimistic { DEFER } else { 0 }
    }
}

/// Defer control-speculative instructions (`SPEC_LAST`): candidates behind
/// an unresolved branch go after every non-speculative candidate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpecLast;

impl IssuePolicy for SpecLast {
    fn name(&self) -> &str {
        "SPEC_LAST"
    }

    fn priority(&self, c: &IssueCandidate) -> i64 {
        c.age as i64 + if c.speculative { DEFER } else { 0 }
    }
}

/// Issue branches before everything else (`BRANCH_FIRST`), resolving
/// mispredictions as early as possible.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchFirst;

impl IssuePolicy for BranchFirst {
    fn name(&self) -> &str {
        "BRANCH_FIRST"
    }

    fn priority(&self, c: &IssueCandidate) -> i64 {
        c.age as i64 + if c.is_branch { 0 } else { DEFER }
    }
}

/// Looks a shipped issue policy up by (case-insensitive) name or alias.
pub fn issue_policy_by_name(name: &str) -> Option<Box<dyn IssuePolicy>> {
    match name.to_ascii_lowercase().as_str() {
        "oldest" | "oldest_first" | "oldest-first" => Some(Box::new(OldestFirst)),
        "opt_last" | "opt-last" | "optlast" => Some(Box::new(OptLast)),
        "spec_last" | "spec-last" | "speclast" => Some(Box::new(SpecLast)),
        "branch_first" | "branch-first" | "branchfirst" => Some(Box::new(BranchFirst)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(thread: u8, in_flight: u32, branches: u32, misses: u32) -> ThreadFetchView {
        ThreadFetchView {
            thread: ThreadId(thread),
            thread_count: 8,
            in_flight,
            unresolved_branches: branches,
            outstanding_misses: misses,
        }
    }

    #[test]
    fn partition_parse_and_display() {
        let p = FetchPartition::parse("2.8").unwrap();
        assert_eq!(p, FetchPartition::new(2, 8));
        assert_eq!(p.to_string(), "2.8");
        assert!(FetchPartition::parse("0.8").is_none());
        assert!(FetchPartition::parse("nope").is_none());
        assert_eq!(FetchPartition::all_schemes().len(), 4);
    }

    #[test]
    fn round_robin_rotates_priority() {
        let rr = RoundRobin;
        // At cycle 0, thread 0 leads; at cycle 1, thread 1 leads.
        assert!(rr.priority(0, &view(0, 0, 0, 0)) < rr.priority(0, &view(1, 0, 0, 0)));
        assert!(rr.priority(1, &view(1, 0, 0, 0)) < rr.priority(1, &view(0, 0, 0, 0)));
        // A full rotation returns to the start.
        assert_eq!(
            rr.priority(0, &view(3, 0, 0, 0)),
            rr.priority(8, &view(3, 0, 0, 0))
        );
    }

    #[test]
    fn feedback_policies_rank_by_their_counter() {
        assert!(ICount.priority(0, &view(0, 2, 9, 9)) < ICount.priority(0, &view(1, 5, 0, 0)));
        assert!(BrCount.priority(0, &view(0, 9, 1, 9)) < BrCount.priority(0, &view(1, 0, 3, 0)));
        assert!(
            MissCount.priority(0, &view(0, 9, 9, 0)) < MissCount.priority(0, &view(1, 0, 0, 2))
        );
    }

    #[test]
    fn issue_policies_defer_their_class() {
        let plain = IssueCandidate {
            age: 10,
            thread: ThreadId(0),
            queue: RegClass::Int,
            is_branch: false,
            speculative: false,
            optimistic: false,
        };
        let spec = IssueCandidate {
            age: 5,
            speculative: true,
            ..plain
        };
        let opt = IssueCandidate {
            age: 5,
            optimistic: true,
            ..plain
        };
        let branch = IssueCandidate {
            age: 20,
            is_branch: true,
            ..plain
        };

        assert!(OldestFirst.priority(&spec) < OldestFirst.priority(&plain));
        assert!(SpecLast.priority(&plain) < SpecLast.priority(&spec));
        assert!(OptLast.priority(&plain) < OptLast.priority(&opt));
        assert!(BranchFirst.priority(&branch) < BranchFirst.priority(&plain));
    }

    #[test]
    fn policy_lookup_by_name() {
        for name in ["rr", "icount", "brcount", "misscount"] {
            assert!(
                fetch_policy_by_name(name).is_some(),
                "missing fetch policy {name}"
            );
        }
        assert!(fetch_policy_by_name("ICOUNT").is_some());
        assert!(fetch_policy_by_name("unknown").is_none());
        for name in ["oldest", "opt_last", "spec_last", "branch_first"] {
            assert!(
                issue_policy_by_name(name).is_some(),
                "missing issue policy {name}"
            );
        }
        assert!(issue_policy_by_name("unknown").is_none());
    }
}

//! Per-class physical register files and per-thread rename maps.
//!
//! The machine renames each [`RegClass`] into its own physical register
//! file, sized `32 × contexts + extra` exactly as in the paper (Section 2:
//! 356 physical registers for 8 contexts and 100 renaming registers).
//! Running out of renaming registers stalls rename — one of the structural
//! bottlenecks the ICOUNT fetch policy exists to relieve.
//!
//! Beyond the free list and scoreboard, every physical register carries a
//! **consumer wakeup list**: the event-driven scheduler registers each
//! dispatched instruction on the registers it still waits for, and
//! [`set_ready`](PhysRegFile::set_ready) hands the drained list back to the
//! pipeline so consumers are woken exactly once — no per-cycle readiness
//! polling anywhere.

use smt_isa::{Reg, RegClass, LOGICAL_REGS};

/// A dispatched instruction waiting on a register, identified by
/// `(thread index, sequence number, stable ROB position)`. Entries may go
/// stale when the instruction is squashed; the pipeline skips them on
/// wakeup (sequence numbers are never reused, so the lookup fails).
pub(crate) type Consumer = (usize, u64, u64);

/// Scoreboard state of one physical register, packed so the issue loop's
/// readiness and load-speculation queries touch a single cache line.
#[derive(Debug, Clone, Copy)]
struct RegState {
    ready: bool,
    /// Whether the last writer was a load (drives OPT_LAST tagging).
    by_load: bool,
    /// Cycle at which the register last became ready.
    ready_at: u64,
}

/// One class's physical register file: a free list, per-register
/// scoreboard state, and the consumer wakeup lists.
#[derive(Debug, Clone)]
pub(crate) struct PhysRegFile {
    free: Vec<u16>,
    state: Vec<RegState>,
    /// Consumers waiting for each register; non-empty only while not ready.
    waiters: Vec<Vec<Consumer>>,
    /// Recycled wakeup-list buffers ([`recycle`](PhysRegFile::recycle)),
    /// so the steady state allocates nothing per producer-consumer chain.
    pool: Vec<Vec<Consumer>>,
}

impl PhysRegFile {
    pub(crate) fn new(total: usize) -> PhysRegFile {
        assert!(
            total >= LOGICAL_REGS,
            "physical file smaller than one context's logical file"
        );
        PhysRegFile {
            // Allocate low indices first: pop from the back for O(1).
            free: (0..total as u16).rev().collect(),
            state: vec![
                RegState {
                    ready: true,
                    by_load: false,
                    ready_at: 0,
                };
                total
            ],
            waiters: vec![Vec::new(); total],
            pool: Vec::new(),
        }
    }

    pub(crate) fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Allocates a not-ready register, or `None` when the file is exhausted.
    pub(crate) fn alloc(&mut self) -> Option<u16> {
        let p = self.free.pop()?;
        self.state[p as usize].ready = false;
        self.state[p as usize].by_load = false;
        debug_assert!(
            self.waiters[p as usize].is_empty(),
            "freed register {p} carried stale waiters"
        );
        Some(p)
    }

    /// Returns a register to the free list (commit of the previous mapping,
    /// or squash of the instruction that allocated it). Any waiters still
    /// listed belong to squashed consumers and are dropped, not woken.
    pub(crate) fn release(&mut self, p: u16) {
        debug_assert!(
            !self.free.contains(&p),
            "double free of physical register {p}"
        );
        self.state[p as usize].ready = true;
        self.waiters[p as usize].clear();
        self.free.push(p);
    }

    /// Registers a consumer to be woken when `p` becomes ready. Only legal
    /// while the register is not ready (a ready register never un-readies
    /// while referenced, so consumers of ready registers never wait).
    pub(crate) fn add_waiter(&mut self, p: u16, consumer: Consumer) {
        debug_assert!(
            !self.state[p as usize].ready,
            "waiting on already-ready register {p}"
        );
        let list = &mut self.waiters[p as usize];
        if list.capacity() == 0 {
            if let Some(recycled) = self.pool.pop() {
                *list = recycled;
            }
        }
        list.push(consumer);
    }

    /// Marks a register's value available as of `cycle` and returns the
    /// consumers waiting on it, in registration (dispatch) order. The
    /// caller decrements each consumer's outstanding-operand count and
    /// moves newly-complete ones to a ready queue.
    pub(crate) fn set_ready(&mut self, p: u16, cycle: u64, by_load: bool) -> Vec<Consumer> {
        self.state[p as usize] = RegState {
            ready: true,
            by_load,
            ready_at: cycle,
        };
        std::mem::take(&mut self.waiters[p as usize])
    }

    pub(crate) fn is_ready(&self, p: u16) -> bool {
        self.state[p as usize].ready
    }

    /// Returns a drained wakeup list's buffer for reuse by later
    /// [`add_waiter`](PhysRegFile::add_waiter) calls.
    pub(crate) fn recycle(&mut self, mut buffer: Vec<Consumer>) {
        if buffer.capacity() > 0 {
            buffer.clear();
            self.pool.push(buffer);
        }
    }

    /// The last cycle at which a consumer of `p` still counts as
    /// optimistically issued (`0` when `p` was not written by a load): a
    /// consumer issuing at `cycle` rides the load-hit-speculation window
    /// exactly when `cycle <= opt_window_end(p)`. A register's
    /// `(by_load, ready_at)` pair is immutable from the moment it becomes
    /// ready until it is released — and no live consumer outlives the
    /// release — so ready instructions can cache this bound instead of
    /// re-reading the scoreboard every cycle.
    pub(crate) fn opt_window_end(&self, p: u16) -> u64 {
        let s = &self.state[p as usize];
        if s.by_load && s.ready {
            s.ready_at + 1
        } else {
            0
        }
    }
}

/// One thread's rename maps, one per register class.
#[derive(Debug, Clone)]
pub(crate) struct RenameMap {
    map: [[u16; LOGICAL_REGS]; 2],
}

impl RenameMap {
    /// Builds the identity-free initial map by allocating one physical
    /// register per logical register from each class's file. The initial
    /// mappings are ready (architectural state exists at start).
    pub(crate) fn new(files: &mut [PhysRegFile; 2]) -> RenameMap {
        let mut map = [[0u16; LOGICAL_REGS]; 2];
        for class in RegClass::ALL {
            for slot in map[class.index()].iter_mut() {
                let p = files[class.index()]
                    .alloc()
                    .expect("physical file must cover the architectural state");
                let woken = files[class.index()].set_ready(p, 0, false);
                debug_assert!(woken.is_empty(), "no consumers exist before rename");
                *slot = p;
            }
        }
        RenameMap { map }
    }

    /// Current physical register holding logical register `r`.
    pub(crate) fn lookup(&self, r: Reg) -> u16 {
        self.map[r.class().index()][r.index()]
    }

    /// Points logical register `r` at physical register `p`, returning the
    /// previous mapping (freed when the renaming instruction commits, or
    /// restored if it squashes).
    pub(crate) fn redefine(&mut self, r: Reg, p: u16) -> u16 {
        std::mem::replace(&mut self.map[r.class().index()][r.index()], p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_release_roundtrip() {
        let mut f = PhysRegFile::new(40);
        assert_eq!(f.free_count(), 40);
        let p = f.alloc().unwrap();
        assert!(!f.is_ready(p));
        assert_eq!(f.free_count(), 39);
        let woken = f.set_ready(p, 5, true);
        assert!(woken.is_empty());
        assert!(f.is_ready(p));
        // Written by a load at cycle 5: consumers issuing at cycle <= 6
        // still ride the load-hit-speculation window.
        assert_eq!(f.opt_window_end(p), 6);
        f.release(p);
        assert_eq!(f.free_count(), 40);
        let q = f.alloc().unwrap();
        f.set_ready(q, 9, false);
        assert_eq!(f.opt_window_end(q), 0, "non-load writers open no window");
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut f = PhysRegFile::new(LOGICAL_REGS);
        for _ in 0..LOGICAL_REGS {
            assert!(f.alloc().is_some());
        }
        assert!(f.alloc().is_none());
    }

    #[test]
    fn waiters_drain_once_in_dispatch_order() {
        let mut f = PhysRegFile::new(40);
        let p = f.alloc().unwrap();
        f.add_waiter(p, (0, 7, 2));
        f.add_waiter(p, (1, 9, 0));
        let woken = f.set_ready(p, 3, false);
        assert_eq!(woken, vec![(0, 7, 2), (1, 9, 0)]);
        // Drained: a second query sees nothing.
        assert!(f.set_ready(p, 3, false).is_empty());
    }

    #[test]
    fn release_drops_stale_waiters_without_waking() {
        let mut f = PhysRegFile::new(40);
        let p = f.alloc().unwrap();
        f.add_waiter(p, (0, 11, 0));
        // Squash path: the register dies with its (also-dead) consumers.
        f.release(p);
        let q = f.alloc().unwrap();
        assert_eq!(q, p, "free list is LIFO");
        assert!(f.set_ready(q, 1, false).is_empty(), "stale waiters leaked");
    }

    #[test]
    fn rename_map_tracks_redefinitions() {
        let mut files = [PhysRegFile::new(64), PhysRegFile::new(64)];
        let mut m = RenameMap::new(&mut files);
        let r3 = Reg::int(3);
        let old = m.lookup(r3);
        let fresh = files[0].alloc().unwrap();
        let prev = m.redefine(r3, fresh);
        assert_eq!(prev, old);
        assert_eq!(m.lookup(r3), fresh);
        // FP namespace is independent.
        assert_ne!(m.lookup(Reg::fp(3)), fresh);
    }
}

//! Per-class physical register files and per-thread rename maps.
//!
//! The machine renames each [`RegClass`] into its own physical register
//! file, sized `32 × contexts + extra` exactly as in the paper (Section 2:
//! 356 physical registers for 8 contexts and 100 renaming registers).
//! Running out of renaming registers stalls rename — one of the structural
//! bottlenecks the ICOUNT fetch policy exists to relieve.
//!
//! Beyond the free list and scoreboard, every physical register carries a
//! **consumer wakeup list**: the event-driven scheduler registers each
//! dispatched instruction on the registers it still waits for, and
//! [`set_ready`](PhysRegFile::set_ready) hands the drained list back to the
//! pipeline so consumers are woken exactly once — no per-cycle readiness
//! polling anywhere.

use smt_isa::{Reg, RegClass, LOGICAL_REGS};
use smt_stats::binio::{invalid, BinReader, BinWriter};

/// A dispatched instruction waiting on a register: an 8-byte
/// generation-authenticated slab handle
/// ([`GenRef`](crate::pipeline::slab::GenRef)). Entries may go stale when
/// the instruction is squashed; the pipeline skips them on wakeup (freeing
/// a slab slot bumps its generation, so the lookup fails).
pub(crate) type Consumer = crate::pipeline::slab::GenRef;

/// How many consumers one register's record stores inline. Dependence
/// chains in a renamed window rarely hang more than a couple of readers
/// off one physical register; the rare overflow spills to a shared
/// side list.
const INLINE_WAITERS: usize = 3;

/// One physical register's complete record — scoreboard state plus the
/// wakeup list — packed into 40 bytes so the rename path's
/// readiness-check-then-register sequence and the writeback path's
/// set-ready-then-drain sequence each touch one cache line.
#[derive(Debug, Clone, Copy)]
struct RegState {
    /// Cycle at which the register last became ready.
    ready_at: u64,
    /// The first [`INLINE_WAITERS`] waiting consumers, in registration
    /// order.
    inline: [Consumer; INLINE_WAITERS],
    /// Number of waiting consumers (inline plus spilled).
    waiting: u16,
    ready: bool,
    /// Whether the last writer was a load (drives OPT_LAST tagging).
    by_load: bool,
}

/// One class's physical register file: a free list and the per-register
/// records. Wakeup lists live inline in the records; the rare register
/// with more than [`INLINE_WAITERS`] consumers spills the excess to
/// `spill`, keyed by register, in registration order.
#[derive(Debug, Clone)]
pub(crate) struct PhysRegFile {
    free: Vec<u16>,
    state: Vec<RegState>,
    /// Overflow consumers as `(register, consumer)` pairs in registration
    /// order. Kept tiny (usually empty): scanned only when a register's
    /// `waiting` exceeds its inline capacity.
    spill: Vec<(u16, Consumer)>,
}

impl PhysRegFile {
    pub(crate) fn new(total: usize) -> PhysRegFile {
        assert!(
            total >= LOGICAL_REGS,
            "physical file smaller than one context's logical file"
        );
        PhysRegFile {
            // Allocate low indices first: pop from the back for O(1).
            free: (0..total as u16).rev().collect(),
            state: vec![
                RegState {
                    ready_at: 0,
                    inline: [Consumer::NULL; INLINE_WAITERS],
                    waiting: 0,
                    ready: true,
                    by_load: false,
                };
                total
            ],
            spill: Vec::new(),
        }
    }

    pub(crate) fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Preallocates the spill list for `n` waiter registrations. The
    /// pipeline reserves its hard bound (two source operands per
    /// in-flight instruction, so `2 × slab capacity`) once at
    /// construction, making the steady-state cycle path allocation-free
    /// even when dependence chains overflow the inline slots; checkpoint
    /// restore only `clear()`s the vector, so forked machines keep the
    /// capacity.
    pub(crate) fn reserve_waiters(&mut self, n: usize) {
        self.spill.reserve(n);
    }

    /// Allocates a not-ready register, or `None` when the file is exhausted.
    pub(crate) fn alloc(&mut self) -> Option<u16> {
        let p = self.free.pop()?;
        let s = &mut self.state[p as usize];
        s.ready = false;
        s.by_load = false;
        debug_assert_eq!(s.waiting, 0, "freed register {p} carried stale waiters");
        Some(p)
    }

    /// Returns a register to the free list (commit of the previous mapping,
    /// or squash of the instruction that allocated it). Any waiters still
    /// listed belong to squashed consumers and are dropped, not woken.
    pub(crate) fn release(&mut self, p: u16) {
        debug_assert!(
            !self.free.contains(&p),
            "double free of physical register {p}"
        );
        let s = &mut self.state[p as usize];
        s.ready = true;
        if usize::from(s.waiting) > INLINE_WAITERS {
            self.spill.retain(|&(r, _)| r != p);
        }
        s.waiting = 0;
        self.free.push(p);
    }

    /// Registers a consumer to be woken when `p` becomes ready — the
    /// registration half of a dispatch-time source check, used by the
    /// block-granular rename path when its scratch map already answered
    /// the probe half (the register was seen not-ready earlier in the same
    /// block, by [`check_or_wait`](PhysRegFile::check_or_wait) or an
    /// in-block destination rename). Only legal while the register is not
    /// ready (a ready register never un-readies while referenced, so
    /// consumers of ready registers never wait), and readiness is monotone
    /// during rename — a cached not-ready answer cannot go stale before
    /// this registration.
    pub(crate) fn add_waiter(&mut self, p: u16, consumer: Consumer) {
        let s = &mut self.state[p as usize];
        debug_assert!(!s.ready, "waiting on already-ready register {p}");
        let n = usize::from(s.waiting);
        if n < INLINE_WAITERS {
            s.inline[n] = consumer;
        } else {
            self.spill.push((p, consumer));
        }
        s.waiting += 1;
    }

    /// The fused dispatch-time source check: if `p` is ready, returns its
    /// load-speculation window end
    /// ([`opt_window_end`](PhysRegFile::opt_window_end)); otherwise
    /// registers `consumer` on `p`'s wakeup list — exactly as
    /// [`add_waiter`](PhysRegFile::add_waiter) would — and returns `None`.
    /// One record lookup serves both halves, and the block-granular rename
    /// path caches the answer per logical register per block (valid
    /// because readiness and the `(by_load, ready_at)` pair are immutable
    /// for the whole rename phase).
    #[inline]
    pub(crate) fn check_or_wait(&mut self, p: u16, consumer: Consumer) -> Option<u64> {
        let s = &mut self.state[p as usize];
        if s.ready {
            return Some(if s.by_load { s.ready_at + 1 } else { 0 });
        }
        let n = usize::from(s.waiting);
        if n < INLINE_WAITERS {
            s.inline[n] = consumer;
        } else {
            self.spill.push((p, consumer));
        }
        s.waiting += 1;
        None
    }

    /// Marks a register's value available as of `cycle` and appends the
    /// consumers waiting on it to `out`, in registration (dispatch) order.
    /// The caller decrements each consumer's outstanding-operand count and
    /// moves newly-complete ones to a ready queue.
    pub(crate) fn set_ready(&mut self, p: u16, cycle: u64, by_load: bool, out: &mut Vec<Consumer>) {
        let s = &mut self.state[p as usize];
        s.ready = true;
        s.by_load = by_load;
        s.ready_at = cycle;
        let n = usize::from(s.waiting);
        if n > 0 {
            out.extend_from_slice(&s.inline[..n.min(INLINE_WAITERS)]);
            s.waiting = 0;
            if n > INLINE_WAITERS {
                // Spilled tail, still in registration order (`retain`
                // preserves order for the remaining registers).
                out.extend(
                    self.spill
                        .iter()
                        .filter(|&&(r, _)| r == p)
                        .map(|&(_, consumer)| consumer),
                );
                self.spill.retain(|&(r, _)| r != p);
            }
        }
    }

    pub(crate) fn is_ready(&self, p: u16) -> bool {
        self.state[p as usize].ready
    }

    /// The last cycle at which a consumer of `p` still counts as
    /// optimistically issued (`0` when `p` was not written by a load): a
    /// consumer issuing at `cycle` rides the load-hit-speculation window
    /// exactly when `cycle <= opt_window_end(p)`. A register's
    /// `(by_load, ready_at)` pair is immutable from the moment it becomes
    /// ready until it is released — and no live consumer outlives the
    /// release — so ready instructions can cache this bound instead of
    /// re-reading the scoreboard every cycle.
    pub(crate) fn opt_window_end(&self, p: u16) -> u64 {
        let s = &self.state[p as usize];
        if s.by_load && s.ready {
            s.ready_at + 1
        } else {
            0
        }
    }

    /// Serializes the free list, every register record (including its
    /// inline wakeup list) and the spill list through `w` (checkpoint
    /// save).
    pub(crate) fn save_state<W: std::io::Write>(
        &self,
        w: &mut BinWriter<W>,
    ) -> std::io::Result<()> {
        w.len(self.free.len())?;
        for &p in &self.free {
            w.u16(p)?;
        }
        w.len(self.state.len())?;
        for s in &self.state {
            w.u64(s.ready_at)?;
            for c in &s.inline {
                w.u32(c.slot().raw())?;
                w.u32(c.generation())?;
            }
            w.u16(s.waiting)?;
            w.bool(s.ready)?;
            w.bool(s.by_load)?;
        }
        w.len(self.spill.len())?;
        for &(p, c) in &self.spill {
            w.u16(p)?;
            w.u32(c.slot().raw())?;
            w.u32(c.generation())?;
        }
        Ok(())
    }

    /// Restores state written by [`save_state`](PhysRegFile::save_state)
    /// into this file, which must have been built with the same register
    /// count. Malformed data yields
    /// [`std::io::ErrorKind::InvalidData`] errors, never a panic.
    pub(crate) fn restore_state<R: std::io::Read>(
        &mut self,
        r: &mut BinReader<R>,
        slab_len: usize,
    ) -> std::io::Result<()> {
        let read_consumer = |r: &mut BinReader<R>| -> std::io::Result<Consumer> {
            let slot = r.u32()?;
            // NULL placeholders (unused inline slots) carry slot 0, so only
            // reject slots beyond the slab when a slab exists.
            if slot as usize >= slab_len.max(1) {
                return Err(invalid(format!("consumer slot {slot} outside the slab")));
            }
            let gen = r.u32()?;
            Ok(Consumer::from_parts(
                crate::pipeline::slab::InstRef::from_raw(slot),
                gen,
            ))
        };
        let n_free = r.len()?;
        if n_free > self.state.len() {
            return Err(invalid(format!(
                "free list has {n_free} registers for a {}-register file",
                self.state.len()
            )));
        }
        self.free.clear();
        let mut seen = vec![false; self.state.len()];
        for _ in 0..n_free {
            let p = r.u16()?;
            let idx = usize::from(p);
            if idx >= self.state.len() || std::mem::replace(&mut seen[idx], true) {
                return Err(invalid(format!("invalid free-list register {p}")));
            }
            self.free.push(p);
        }
        let n = r.len()?;
        if n != self.state.len() {
            return Err(invalid(format!(
                "checkpoint has {n} register records, configuration expects {}",
                self.state.len()
            )));
        }
        for s in &mut self.state {
            s.ready_at = r.u64()?;
            for c in &mut s.inline {
                *c = read_consumer(r)?;
            }
            s.waiting = r.u16()?;
            s.ready = r.bool()?;
            s.by_load = r.bool()?;
        }
        let n_spill = r.len()?;
        self.spill.clear();
        for _ in 0..n_spill {
            let p = r.u16()?;
            if usize::from(p) >= self.state.len() {
                return Err(invalid(format!("spilled waiter names register {p}")));
            }
            let c = read_consumer(r)?;
            self.spill.push((p, c));
        }
        Ok(())
    }
}

/// One thread's rename maps, one per register class.
#[derive(Debug, Clone)]
pub(crate) struct RenameMap {
    map: [[u16; LOGICAL_REGS]; 2],
}

impl RenameMap {
    /// Builds the identity-free initial map by allocating one physical
    /// register per logical register from each class's file. The initial
    /// mappings are ready (architectural state exists at start).
    pub(crate) fn new(files: &mut [PhysRegFile; 2]) -> RenameMap {
        let mut map = [[0u16; LOGICAL_REGS]; 2];
        let mut woken = Vec::new();
        for class in RegClass::ALL {
            for slot in map[class.index()].iter_mut() {
                let p = files[class.index()]
                    .alloc()
                    .expect("physical file must cover the architectural state");
                files[class.index()].set_ready(p, 0, false, &mut woken);
                debug_assert!(woken.is_empty(), "no consumers exist before rename");
                *slot = p;
            }
        }
        RenameMap { map }
    }

    /// Current physical register holding logical register `r`.
    pub(crate) fn lookup(&self, r: Reg) -> u16 {
        self.map[r.class().index()][r.index()]
    }

    /// Points logical register `r` at physical register `p`, returning the
    /// previous mapping (freed when the renaming instruction commits, or
    /// restored if it squashes).
    pub(crate) fn redefine(&mut self, r: Reg, p: u16) -> u16 {
        std::mem::replace(&mut self.map[r.class().index()][r.index()], p)
    }

    /// Serializes both classes' maps through `w` (checkpoint save).
    pub(crate) fn save_state<W: std::io::Write>(
        &self,
        w: &mut BinWriter<W>,
    ) -> std::io::Result<()> {
        for class in &self.map {
            for &p in class {
                w.u16(p)?;
            }
        }
        Ok(())
    }

    /// Restores a serialized map ([`save_state`](RenameMap::save_state)),
    /// validating every mapping against the per-class register counts in
    /// `file_sizes`.
    pub(crate) fn restore_state<R: std::io::Read>(
        &mut self,
        r: &mut BinReader<R>,
        file_sizes: [usize; 2],
    ) -> std::io::Result<()> {
        for (class, &size) in self.map.iter_mut().zip(&file_sizes) {
            for slot in class.iter_mut() {
                let p = r.u16()?;
                if usize::from(p) >= size {
                    return Err(invalid(format!(
                        "rename map names physical register {p} of a {size}-register file"
                    )));
                }
                *slot = p;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_release_roundtrip() {
        let mut f = PhysRegFile::new(40);
        assert_eq!(f.free_count(), 40);
        let p = f.alloc().unwrap();
        assert!(!f.is_ready(p));
        assert_eq!(f.free_count(), 39);
        let mut woken = Vec::new();
        f.set_ready(p, 5, true, &mut woken);
        assert!(woken.is_empty());
        assert!(f.is_ready(p));
        // Written by a load at cycle 5: consumers issuing at cycle <= 6
        // still ride the load-hit-speculation window.
        assert_eq!(f.opt_window_end(p), 6);
        f.release(p);
        assert_eq!(f.free_count(), 40);
        let q = f.alloc().unwrap();
        f.set_ready(q, 9, false, &mut woken);
        assert_eq!(f.opt_window_end(q), 0, "non-load writers open no window");
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut f = PhysRegFile::new(LOGICAL_REGS);
        for _ in 0..LOGICAL_REGS {
            assert!(f.alloc().is_some());
        }
        assert!(f.alloc().is_none());
    }

    #[test]
    fn waiters_drain_once_in_dispatch_order() {
        let mut f = PhysRegFile::new(40);
        let p = f.alloc().unwrap();
        let (a, b) = (Consumer::synthetic(7, 2), Consumer::synthetic(9, 0));
        f.add_waiter(p, a);
        f.add_waiter(p, b);
        let mut woken = Vec::new();
        f.set_ready(p, 3, false, &mut woken);
        assert_eq!(woken, vec![a, b]);
        // Drained: a second query sees nothing (and appends after what the
        // caller's scratch already holds).
        f.set_ready(p, 3, false, &mut woken);
        assert_eq!(woken.len(), 2);
    }

    #[test]
    fn release_drops_stale_waiters_without_waking() {
        let mut f = PhysRegFile::new(40);
        let p = f.alloc().unwrap();
        f.add_waiter(p, Consumer::synthetic(11, 0));
        // Squash path: the register dies with its (also-dead) consumers.
        f.release(p);
        let q = f.alloc().unwrap();
        assert_eq!(q, p, "free list is LIFO");
        let mut woken = Vec::new();
        f.set_ready(q, 1, false, &mut woken);
        assert!(woken.is_empty(), "stale waiters leaked");
    }

    #[test]
    fn rename_map_tracks_redefinitions() {
        let mut files = [PhysRegFile::new(64), PhysRegFile::new(64)];
        let mut m = RenameMap::new(&mut files);
        let r3 = Reg::int(3);
        let old = m.lookup(r3);
        let fresh = files[0].alloc().unwrap();
        let prev = m.redefine(r3, fresh);
        assert_eq!(prev, old);
        assert_eq!(m.lookup(r3), fresh);
        // FP namespace is independent.
        assert_ne!(m.lookup(Reg::fp(3)), fresh);
    }
}

//! Per-class physical register files and per-thread rename maps.
//!
//! The machine renames each [`RegClass`] into its own physical register
//! file, sized `32 × contexts + extra` exactly as in the paper (Section 2:
//! 356 physical registers for 8 contexts and 100 renaming registers).
//! Running out of renaming registers stalls rename — one of the structural
//! bottlenecks the ICOUNT fetch policy exists to relieve.

use smt_isa::{Reg, RegClass, LOGICAL_REGS};

/// One class's physical register file: a free list plus per-register
/// scoreboard state.
#[derive(Debug, Clone)]
pub(crate) struct PhysRegFile {
    free: Vec<u16>,
    ready: Vec<bool>,
    /// Cycle at which the register last became ready.
    ready_at: Vec<u64>,
    /// Whether the last writer was a load (drives OPT_LAST tagging).
    by_load: Vec<bool>,
}

impl PhysRegFile {
    pub(crate) fn new(total: usize) -> PhysRegFile {
        assert!(
            total >= LOGICAL_REGS,
            "physical file smaller than one context's logical file"
        );
        PhysRegFile {
            // Allocate low indices first: pop from the back for O(1).
            free: (0..total as u16).rev().collect(),
            ready: vec![true; total],
            ready_at: vec![0; total],
            by_load: vec![false; total],
        }
    }

    pub(crate) fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Allocates a not-ready register, or `None` when the file is exhausted.
    pub(crate) fn alloc(&mut self) -> Option<u16> {
        let p = self.free.pop()?;
        self.ready[p as usize] = false;
        self.by_load[p as usize] = false;
        Some(p)
    }

    /// Returns a register to the free list (commit of the previous mapping,
    /// or squash of the instruction that allocated it).
    pub(crate) fn release(&mut self, p: u16) {
        debug_assert!(
            !self.free.contains(&p),
            "double free of physical register {p}"
        );
        self.ready[p as usize] = true;
        self.free.push(p);
    }

    /// Marks a register's value available as of `cycle`.
    pub(crate) fn set_ready(&mut self, p: u16, cycle: u64, by_load: bool) {
        self.ready[p as usize] = true;
        self.ready_at[p as usize] = cycle;
        self.by_load[p as usize] = by_load;
    }

    pub(crate) fn is_ready(&self, p: u16) -> bool {
        self.ready[p as usize]
    }

    /// Whether the register was written by a load that completed at or
    /// after `cycle` — i.e. a consumer issuing now still rides the
    /// load-hit-speculation window.
    pub(crate) fn woken_by_load_since(&self, p: u16, cycle: u64) -> bool {
        self.by_load[p as usize] && self.ready[p as usize] && self.ready_at[p as usize] >= cycle
    }
}

/// One thread's rename maps, one per register class.
#[derive(Debug, Clone)]
pub(crate) struct RenameMap {
    map: [[u16; LOGICAL_REGS]; 2],
}

impl RenameMap {
    /// Builds the identity-free initial map by allocating one physical
    /// register per logical register from each class's file. The initial
    /// mappings are ready (architectural state exists at start).
    pub(crate) fn new(files: &mut [PhysRegFile; 2]) -> RenameMap {
        let mut map = [[0u16; LOGICAL_REGS]; 2];
        for class in RegClass::ALL {
            for slot in map[class.index()].iter_mut() {
                let p = files[class.index()]
                    .alloc()
                    .expect("physical file must cover the architectural state");
                files[class.index()].set_ready(p, 0, false);
                *slot = p;
            }
        }
        RenameMap { map }
    }

    /// Current physical register holding logical register `r`.
    pub(crate) fn lookup(&self, r: Reg) -> u16 {
        self.map[r.class().index()][r.index()]
    }

    /// Points logical register `r` at physical register `p`, returning the
    /// previous mapping (freed when the renaming instruction commits, or
    /// restored if it squashes).
    pub(crate) fn redefine(&mut self, r: Reg, p: u16) -> u16 {
        std::mem::replace(&mut self.map[r.class().index()][r.index()], p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_release_roundtrip() {
        let mut f = PhysRegFile::new(40);
        assert_eq!(f.free_count(), 40);
        let p = f.alloc().unwrap();
        assert!(!f.is_ready(p));
        assert_eq!(f.free_count(), 39);
        f.set_ready(p, 5, true);
        assert!(f.is_ready(p));
        assert!(f.woken_by_load_since(p, 5));
        assert!(!f.woken_by_load_since(p, 6));
        f.release(p);
        assert_eq!(f.free_count(), 40);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut f = PhysRegFile::new(LOGICAL_REGS);
        for _ in 0..LOGICAL_REGS {
            assert!(f.alloc().is_some());
        }
        assert!(f.alloc().is_none());
    }

    #[test]
    fn rename_map_tracks_redefinitions() {
        let mut files = [PhysRegFile::new(64), PhysRegFile::new(64)];
        let mut m = RenameMap::new(&mut files);
        let r3 = Reg::int(3);
        let old = m.lookup(r3);
        let fresh = files[0].alloc().unwrap();
        let prev = m.redefine(r3, fresh);
        assert_eq!(prev, old);
        assert_eq!(m.lookup(r3), fresh);
        // FP namespace is independent.
        assert_ne!(m.lookup(Reg::fp(3)), fresh);
    }
}

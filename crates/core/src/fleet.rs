//! Batched fleet simulation: N independent simulators in one process,
//! interleaved in cycle batches.
//!
//! Single-instance simulator throughput is bounded by cache traffic over
//! one machine's pipeline state, but the experiments the paper's
//! methodology demands are *sweeps* — many independent configurations of
//! the same engine. [`SimFleet`] batches those configurations the way
//! C-slow retiming batches hardware contexts: each worker thread claims a
//! batch of cells and advances them round-robin in fixed cycle batches,
//! so the simulator's own code and per-cell hot state stay warm while the
//! fleet as a whole scales across cores. Cells may fork from a shared
//! warmed checkpoint (the PR-6 format), so one warmup simulation can seed
//! many measured cells.
//!
//! **Interleaving is result-neutral by construction.** Cells share no
//! state — each owns its simulator, and a cell's cycle sequence is
//! exactly the sequence [`Simulator::run`] (for cold cells) or a
//! checkpoint fork (restore → [`Simulator::mark_restored_from_checkpoint`]
//! → [`Simulator::reset_stats`] → run) would execute sequentially. The
//! order those sequences interleave in wall-clock time is invisible to
//! every statistic, so each [`SimReport`] is byte-identical to the
//! sequential run's; the root `tests/fleet.rs` suite pins this against
//! both freshly-run sequential simulators and the checked-in goldens.
//!
//! # Examples
//!
//! ```
//! use smt_core::{FleetCell, SimConfig, SimFleet};
//! use smt_workload::Benchmark;
//!
//! let cell = |seed| {
//!     let cfg = SimConfig::new()
//!         .with_benchmarks(vec![Benchmark::Espresso, Benchmark::Alvinn], seed)
//!         .with_warmup(100);
//!     FleetCell::cold(cfg, 300)
//! };
//! let mut fleet = SimFleet::new().with_jobs(2);
//! fleet.push(cell(42));
//! fleet.push(cell(7));
//! let reports = fleet.run();
//! assert_eq!(reports.len(), 2);
//! assert!(reports.iter().all(|r| r.total_committed() > 0));
//! ```

use std::sync::{Arc, Mutex};

use smt_stats::sched::{resolve_workers, WorkQueue};

use crate::config::SimConfig;
use crate::pipeline::Simulator;
use crate::report::SimReport;

/// Default cycle-batch granularity: how many cycles a worker advances one
/// cell before rotating to the next cell in its batch. Large enough that
/// per-rotation overhead vanishes, small enough that a batch of cells
/// genuinely interleaves.
pub const DEFAULT_BATCH_CYCLES: u64 = 1024;

/// One cell of a fleet: a configuration, how many measured cycles to run,
/// and optionally a warmed checkpoint to fork from.
#[derive(Debug)]
pub struct FleetCell {
    config: SimConfig,
    checkpoint: Option<Arc<Vec<u8>>>,
    cycles: u64,
}

impl FleetCell {
    /// A cell that builds its simulator cold and runs exactly like
    /// `config.build().run(cycles)` — including the configured warmup
    /// window, which the fleet interleaves like any other cycles.
    pub fn cold(config: SimConfig, cycles: u64) -> FleetCell {
        FleetCell {
            config,
            checkpoint: None,
            cycles,
        }
    }

    /// A cell that forks from a warmed checkpoint: restore under `config`,
    /// mark the report's provenance flag, open a fresh measurement window
    /// and run `cycles` — the exact sequence the experiment sweeps use to
    /// fork a warm cell, so one checkpoint (shared via `Arc`) can seed
    /// every cell of its (mix, seed, partition) key.
    pub fn forked(config: SimConfig, checkpoint: Arc<Vec<u8>>, cycles: u64) -> FleetCell {
        FleetCell {
            config,
            checkpoint: Some(checkpoint),
            cycles,
        }
    }

    /// Builds the cell's simulator and the cycle counts still to run,
    /// exactly as the sequential equivalents would.
    fn start(self) -> Lane {
        let (sim, measured) = match self.checkpoint {
            None => (self.config.build(), self.cycles),
            Some(ckpt) => {
                let mut sim = Simulator::restore_checkpoint(self.config, &mut ckpt.as_slice())
                    .expect("fleet checkpoints share the cell's machine fingerprint");
                sim.mark_restored_from_checkpoint();
                sim.reset_stats();
                (sim, self.cycles)
            }
        };
        let warmup_left = sim.pending_warmup_cycles();
        Lane {
            sim,
            warmup_left,
            measured_left: measured,
        }
    }
}

/// One in-flight cell on a worker: its simulator plus how much of the
/// warmup and measured windows remain.
struct Lane {
    sim: Simulator,
    warmup_left: u64,
    measured_left: u64,
}

impl Lane {
    /// Advances the lane by up to `batch` cycles, crossing the
    /// warmup→measured boundary exactly where [`Simulator::run`] would
    /// (statistics reset at the boundary). Returns `true` when the lane
    /// has finished its measured window.
    fn advance(&mut self, batch: u64) -> bool {
        let mut budget = batch.max(1);
        if self.warmup_left > 0 {
            let n = budget.min(self.warmup_left);
            for _ in 0..n {
                self.sim.step_cycle();
            }
            self.warmup_left -= n;
            budget -= n;
            if self.warmup_left > 0 {
                return false;
            }
            self.sim.reset_stats();
        }
        let n = budget.min(self.measured_left);
        for _ in 0..n {
            self.sim.step_cycle();
        }
        self.measured_left -= n;
        self.measured_left == 0
    }
}

/// A batch of independent simulations run in one process: workers claim
/// cells from a work-stealing queue and advance their claimed cells
/// round-robin in cycle batches. See the module docs for the equivalence
/// argument; [`SimFleet::run`] returns one [`SimReport`] per cell, in push
/// order, each byte-identical to its sequential equivalent.
#[derive(Debug, Default)]
pub struct SimFleet {
    cells: Vec<FleetCell>,
    jobs: usize,
    batch_cycles: u64,
}

impl SimFleet {
    /// An empty fleet with default worker count (one per available core)
    /// and batch granularity ([`DEFAULT_BATCH_CYCLES`]).
    pub fn new() -> SimFleet {
        SimFleet {
            cells: Vec::new(),
            jobs: 0,
            batch_cycles: DEFAULT_BATCH_CYCLES,
        }
    }

    /// Sets the worker thread count; `0` (the default) uses one worker per
    /// available core. The pool never exceeds the cell count.
    pub fn with_jobs(mut self, jobs: usize) -> SimFleet {
        self.jobs = jobs;
        self
    }

    /// Sets how many cycles a worker advances one cell before rotating to
    /// the next cell in its claimed batch. Values are clamped to at least
    /// one cycle. Results are independent of this knob — it trades
    /// rotation overhead against interleaving granularity only.
    pub fn with_batch_cycles(mut self, cycles: u64) -> SimFleet {
        self.batch_cycles = cycles.max(1);
        self
    }

    /// Appends one cell; [`run`](SimFleet::run) reports in push order.
    pub fn push(&mut self, cell: FleetCell) {
        self.cells.push(cell);
    }

    /// Number of cells pushed so far.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the fleet holds no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Runs every cell to completion and returns the reports in push
    /// order. Workers claim batches of cell indices from a shared
    /// work-stealing queue ([`WorkQueue`]) and advance each claimed batch
    /// round-robin in [`batch_cycles`](SimFleet::with_batch_cycles)-sized
    /// steps until all its cells finish, then claim again.
    ///
    /// # Panics
    ///
    /// Panics if a [`FleetCell::forked`] checkpoint does not match its
    /// cell's machine — fleets are built from checkpoints written for the
    /// same key, so a mismatch is a caller bug, not an input error.
    pub fn run(self) -> Vec<SimReport> {
        let SimFleet {
            cells,
            jobs,
            batch_cycles,
        } = self;
        let count = cells.len();
        let workers = resolve_workers(jobs, count);
        // Cells move to whichever worker claims their index; each slot is
        // locked exactly once, by the claimant.
        let slots: Vec<Mutex<Option<FleetCell>>> =
            cells.into_iter().map(|c| Mutex::new(Some(c))).collect();
        let queue = WorkQueue::new(count, workers);
        let done: Mutex<Vec<(usize, SimReport)>> = Mutex::new(Vec::with_capacity(count));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut local: Vec<(usize, SimReport)> = Vec::new();
                    while let Some(batch) = queue.claim() {
                        let mut lanes: Vec<(usize, Lane)> = batch
                            .map(|i| {
                                let cell = slots[i]
                                    .lock()
                                    .expect("no panics while claiming")
                                    .take()
                                    .expect("each cell index is claimed exactly once");
                                (i, cell.start())
                            })
                            .collect();
                        while !lanes.is_empty() {
                            lanes.retain_mut(|(i, lane)| {
                                if lane.advance(batch_cycles) {
                                    local.push((*i, lane.sim.report()));
                                    false
                                } else {
                                    true
                                }
                            });
                        }
                    }
                    if !local.is_empty() {
                        done.lock().expect("no panics while merging").extend(local);
                    }
                });
            }
        });
        let mut done = done.into_inner().expect("workers joined");
        done.sort_unstable_by_key(|&(i, _)| i);
        assert_eq!(
            done.len(),
            count,
            "every fleet cell must report exactly once"
        );
        done.into_iter().map(|(_, report)| report).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_workload::Benchmark;

    fn cfg(seed: u64, warmup: u64) -> SimConfig {
        SimConfig::new()
            .with_benchmarks(vec![Benchmark::Espresso, Benchmark::Alvinn], seed)
            .with_warmup(warmup)
    }

    #[test]
    fn empty_fleet_returns_no_reports() {
        assert!(SimFleet::new().run().is_empty());
        assert!(SimFleet::new().is_empty());
    }

    #[test]
    fn cold_cells_match_sequential_runs_across_batch_sizes() {
        let sequential: Vec<String> = (0..3)
            .map(|i| cfg(40 + i, 120).build().run(350).to_json().render())
            .collect();
        // Batch granularity must be result-neutral, including batches
        // that split the warmup window and batches larger than the run.
        for batch in [1, 7, 128, 10_000] {
            let mut fleet = SimFleet::new().with_jobs(2).with_batch_cycles(batch);
            for i in 0..3 {
                fleet.push(FleetCell::cold(cfg(40 + i, 120), 350));
            }
            let reports = fleet.run();
            for (report, expect) in reports.iter().zip(&sequential) {
                assert_eq!(
                    &report.to_json().render(),
                    expect,
                    "fleet diverged at batch_cycles={batch}"
                );
            }
        }
    }

    #[test]
    fn forked_cells_match_the_sequential_fork_sequence() {
        // Warm one machine, fork it twice in the fleet, and compare to
        // the sequential restore → mark → reset → run sequence.
        let mut warm = cfg(42, 0).build();
        for _ in 0..200 {
            warm.step_cycle();
        }
        let mut bytes = Vec::new();
        warm.save_checkpoint(&mut bytes).unwrap();
        let ckpt = Arc::new(bytes);

        let sequential = {
            let mut sim = Simulator::restore_checkpoint(cfg(42, 0), &mut ckpt.as_slice()).unwrap();
            sim.mark_restored_from_checkpoint();
            sim.reset_stats();
            sim.run(300).to_json().render()
        };

        let mut fleet = SimFleet::new().with_jobs(2).with_batch_cycles(64);
        fleet.push(FleetCell::forked(cfg(42, 0), ckpt.clone(), 300));
        fleet.push(FleetCell::forked(cfg(42, 0), ckpt, 300));
        let reports = fleet.run();
        assert_eq!(reports.len(), 2);
        for report in &reports {
            assert!(report.restored_from_checkpoint);
            assert_eq!(report.to_json().render(), sequential);
        }
    }

    #[test]
    fn reports_come_back_in_push_order() {
        let mut fleet = SimFleet::new().with_jobs(4).with_batch_cycles(32);
        let seeds = [9u64, 1, 5, 3, 7];
        for &seed in &seeds {
            fleet.push(FleetCell::cold(cfg(seed, 0), 200));
        }
        assert_eq!(fleet.len(), seeds.len());
        let reports = fleet.run();
        let expect: Vec<String> = seeds
            .iter()
            .map(|&seed| cfg(seed, 0).build().run(200).to_json().render())
            .collect();
        for (report, expect) in reports.iter().zip(&expect) {
            assert_eq!(&report.to_json().render(), expect);
        }
    }
}

//! Warmed-state checkpoints: the versioned binary format behind
//! [`Simulator::save_checkpoint`] / [`Simulator::restore_checkpoint`].
//!
//! A checkpoint captures the *complete deterministic state* of a
//! simulator — everything that influences future cycles — so that a
//! restored machine is bit-equivalent to one that simulated straight
//! through. The paper's methodology wants every (fetch policy × issue
//! policy × ablation) cell measured from the same warmed machine;
//! checkpoints let a study pay for each warmup once and fork it across
//! the whole cross-product (see the `smt-experiments` crate).
//!
//! # Format specification (version 1)
//!
//! All integers are little-endian. The whole stream (header included) is
//! covered by a running FNV-1a checksum whose 8-byte value trails the
//! payload (`smt_stats::binio`); a reader verifies it before trusting
//! anything it decoded.
//!
//! **Header** (20 bytes):
//!
//! | bytes | field                                                      |
//! |-------|------------------------------------------------------------|
//! | 8     | magic `b"SMT1CKPT"`                                        |
//! | 4     | format version (`u32`, currently [`FORMAT_VERSION`])       |
//! | 8     | config fingerprint (`u64`, [`config_fingerprint`])         |
//!
//! **Per-crate sections**, in fixed order, each written by the owning
//! crate's `save_state` hook so layout knowledge stays where the state
//! lives:
//!
//! 1. `smt-core` machine: cycle / measurement-window base / sequence
//!    counter, the instruction slab (hot + cold records and the free
//!    list), both physical register files (free lists, scoreboard records
//!    with inline wakeup lists, spill lists), the age-sorted ready set,
//!    instruction-queue occupancy, the writeback calendar ring, the
//!    pending-load table, fetch/issue/prediction/squash statistics.
//! 2. Per-thread state: fetch PC, stall/miss gates, live
//!    ICOUNT/BRCOUNT/MISSCOUNT counters, front-end queue, unresolved
//!    control list, ROB, wrong-path salt, commit counters, rename map,
//!    and the thread's `smt-workload` oracle section (PC, executed count,
//!    per-branch/per-memory counters, stride state, return stack).
//! 3. `smt-mem`: statistics, cache tag/LRU/dirty arrays, TLBs (including
//!    the last-translation filters), bank/bus reservations, MSHRs with
//!    waiter lists, scheduled completions/fills/TLB walks, request-id
//!    counter.
//! 4. `smt-branch`: BTB entries, PHT counters, return address stacks,
//!    per-thread global histories, predictor statistics.
//!
//! **Trailer** (8 bytes): the FNV-1a checksum of every preceding byte.
//!
//! Variable-length lists are length-prefixed; readers re-validate every
//! length, index and enum discriminant against the configuration, so a
//! corrupt or adversarial stream produces a typed [`CheckpointError`],
//! never a panic.
//!
//! # Versioning rules
//!
//! The format version is bumped whenever any section's byte layout
//! changes — including a change to [`smt_isa::Opcode::code`] numbering or
//! to a crate's internal structure that feeds a section. Readers accept
//! exactly their own version ([`CheckpointError::UnsupportedVersion`]
//! otherwise); checkpoints are warm-start caches, cheap to regenerate, so
//! no cross-version migration is attempted.
//!
//! # The config fingerprint
//!
//! [`config_fingerprint`] hashes the *state-shaping* configuration: the
//! workload (program identities and seed), fetch partition, memory and
//! predictor geometry, queue/register/unit sizing and front-end timing.
//! It deliberately **excludes the fork axes** — fetch policy, issue
//! policy, ablation set and warmup length — so one warmed checkpoint can
//! be restored under any policy/ablation combination of the same machine.
//! A mismatch means the checkpoint describes a different machine and
//! restoration is refused ([`CheckpointError::ConfigMismatch`]).
//!
//! [`Simulator::save_checkpoint`]: crate::Simulator::save_checkpoint
//! [`Simulator::restore_checkpoint`]: crate::Simulator::restore_checkpoint

use std::fmt;
use std::io;

use smt_stats::binio::BinWriter;

use crate::config::SimConfig;

/// Magic bytes opening every checkpoint stream.
pub const MAGIC: [u8; 8] = *b"SMT1CKPT";

/// Current checkpoint format version (see the module docs for the
/// versioning rules).
pub const FORMAT_VERSION: u32 = 1;

/// Why a checkpoint could not be written or restored.
///
/// Restoration never panics on bad input: every malformed stream —
/// truncated, bit-flipped, wrong-machine or future-versioned — maps to
/// one of these variants, and callers (e.g. `smt_exp --checkpoint-dir`)
/// can fall back to a cold warmup.
#[derive(Debug)]
pub enum CheckpointError {
    /// An underlying I/O failure (reading or writing the stream).
    Io(io::Error),
    /// The stream does not start with [`MAGIC`] — not a checkpoint.
    BadMagic,
    /// The stream's format version is not [`FORMAT_VERSION`].
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
    },
    /// The header fingerprint does not match the restoring configuration:
    /// the checkpoint was taken on a differently-shaped machine.
    ConfigMismatch {
        /// Fingerprint of the restoring configuration.
        expected: u64,
        /// Fingerprint found in the header.
        found: u64,
    },
    /// The stream decoded inconsistently (invalid lengths, indices, enum
    /// codes, or a checksum mismatch) — corrupt data.
    Corrupt(String),
    /// The stream ended before the format said it should.
    Truncated,
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::BadMagic => write!(f, "not a checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion { found } => write!(
                f,
                "unsupported checkpoint format version {found} (this build reads {FORMAT_VERSION})"
            ),
            CheckpointError::ConfigMismatch { expected, found } => write!(
                f,
                "checkpoint was taken on a different machine \
                 (config fingerprint {found:#018x}, expected {expected:#018x})"
            ),
            CheckpointError::Corrupt(msg) => write!(f, "corrupt checkpoint: {msg}"),
            CheckpointError::Truncated => write!(f, "truncated checkpoint"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    /// Classifies low-level read errors: an unexpected end of stream is a
    /// truncation, decode-layer `InvalidData` is corruption, anything
    /// else stays an I/O error.
    fn from(e: io::Error) -> CheckpointError {
        match e.kind() {
            io::ErrorKind::UnexpectedEof => CheckpointError::Truncated,
            io::ErrorKind::InvalidData => CheckpointError::Corrupt(e.to_string()),
            _ => CheckpointError::Io(e),
        }
    }
}

/// Fingerprint of the state-shaping configuration (see the module docs
/// for exactly what is covered and why the fork axes — fetch/issue
/// policies, ablations, warmup length — are excluded).
pub fn config_fingerprint(cfg: &SimConfig) -> u64 {
    let mut w = BinWriter::new(Vec::new());
    let r: io::Result<()> = (|| {
        let write_str = |w: &mut BinWriter<Vec<u8>>, s: &str| -> io::Result<()> {
            w.len(s.len())?;
            w.bytes(s.as_bytes())
        };
        // Workload identity: explicit program images when supplied,
        // benchmark names otherwise (images are regenerated from the
        // benchmark + seed at build time, so the name pins them). The
        // mixed `workloads` list gets its own kind-tagged encoding; it is
        // empty for every synthetic-only configuration, so those
        // fingerprints are byte-identical to what they were before the
        // pluggable-backend refactor.
        w.len(cfg.threads())?;
        if !cfg.workloads.is_empty() {
            for spec in &cfg.workloads {
                match spec {
                    crate::WorkloadSpec::Benchmark(b) => {
                        w.u8(0)?;
                        write_str(&mut w, b.name())?;
                    }
                    crate::WorkloadSpec::Program(p) => {
                        w.u8(1)?;
                        write_str(&mut w, p.name())?;
                        w.u64(p.entry())?;
                        w.len(p.len())?;
                        w.len(p.branch_count())?;
                        w.len(p.mem_count())?;
                    }
                    crate::WorkloadSpec::Elf(img) => {
                        w.u8(2)?;
                        write_str(&mut w, img.name())?;
                        w.u64(img.fingerprint())?;
                    }
                    crate::WorkloadSpec::Trace(t) => {
                        w.u8(3)?;
                        write_str(&mut w, t.name())?;
                        w.u64(t.fingerprint())?;
                    }
                }
            }
        } else if cfg.programs.is_empty() {
            for b in &cfg.benchmarks {
                write_str(&mut w, b.name())?;
            }
        } else {
            for p in &cfg.programs {
                write_str(&mut w, p.name())?;
                w.u64(p.entry())?;
                w.len(p.len())?;
                w.len(p.branch_count())?;
                w.len(p.mem_count())?;
            }
        }
        w.u64(cfg.seed)?;
        w.u8(cfg.partition.threads_per_cycle)?;
        w.u8(cfg.partition.insts_per_thread)?;
        for c in [&cfg.mem.icache, &cfg.mem.dcache, &cfg.mem.l2, &cfg.mem.l3] {
            w.len(c.size_bytes)?;
            w.len(c.assoc)?;
            w.len(c.line_bytes)?;
            w.len(c.banks)?;
            w.u32(c.accesses_per_cycle)?;
            w.u64(c.cycles_per_access)?;
            w.u64(c.transfer_cycles)?;
            w.u64(c.fill_cycles)?;
            w.u64(c.latency_to_next)?;
        }
        w.len(cfg.mem.itlb_entries)?;
        w.len(cfg.mem.dtlb_entries)?;
        w.u64(cfg.mem.page_bytes)?;
        w.len(cfg.mem.mshrs)?;
        w.bool(cfg.mem.infinite_bandwidth)?;
        w.bool(cfg.mem.perfect_icache)?;
        w.len(cfg.predictor.btb_entries)?;
        w.len(cfg.predictor.btb_assoc)?;
        w.len(cfg.predictor.pht_entries)?;
        w.len(cfg.predictor.ras_entries)?;
        w.bool(cfg.predictor.thread_tagged_btb)?;
        w.bool(cfg.predictor.per_thread_ras)?;
        w.len(cfg.iq_entries)?;
        w.len(cfg.extra_phys_regs)?;
        w.len(cfg.int_units)?;
        w.len(cfg.ldst_units)?;
        w.len(cfg.fp_units)?;
        w.len(cfg.decode_width)?;
        w.len(cfg.commit_width)?;
        w.len(cfg.frontend_depth)?;
        w.u64(cfg.decode_cycles)?;
        w.u64(cfg.misfetch_penalty)
    })();
    r.expect("writing to a Vec cannot fail");
    w.checksum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{FetchPartition, RoundRobin, SpecLast};
    use smt_workload::Benchmark;

    fn base() -> SimConfig {
        SimConfig::new().with_benchmarks(vec![Benchmark::Espresso, Benchmark::Eqntott], 11)
    }

    #[test]
    fn fingerprint_ignores_fork_axes() {
        let fp = config_fingerprint(&base());
        assert_eq!(
            fp,
            config_fingerprint(
                &base()
                    .with_fetch(Box::new(RoundRobin))
                    .with_issue(Box::new(SpecLast))
                    .with_warmup(10_000)
                    .with_ablations(crate::Ablations::all())
            ),
            "policies, warmup and ablations are fork axes"
        );
    }

    #[test]
    fn fingerprint_covers_state_shaping_config() {
        let fp = config_fingerprint(&base());
        assert_ne!(fp, config_fingerprint(&base().with_seed(12)));
        assert_ne!(
            fp,
            config_fingerprint(&base().with_partition(FetchPartition::new(4, 4)))
        );
        assert_ne!(
            fp,
            config_fingerprint(
                &base().with_benchmarks(vec![Benchmark::Espresso, Benchmark::Alvinn], 11)
            )
        );
        let mut small_iq = base();
        small_iq.iq_entries = 8;
        assert_ne!(fp, config_fingerprint(&small_iq));
        let mut tiny_btb = base();
        tiny_btb.predictor.btb_entries = 16;
        assert_ne!(fp, config_fingerprint(&tiny_btb));
        let mut slow_mem = base();
        slow_mem.mem.l3.latency_to_next = 200;
        assert_ne!(fp, config_fingerprint(&slow_mem));
    }

    #[test]
    fn io_errors_classify_into_typed_variants() {
        let eof = io::Error::new(io::ErrorKind::UnexpectedEof, "eof");
        assert!(matches!(
            CheckpointError::from(eof),
            CheckpointError::Truncated
        ));
        let bad = smt_stats::binio::invalid("bad byte");
        assert!(matches!(
            CheckpointError::from(bad),
            CheckpointError::Corrupt(_)
        ));
        let other = io::Error::new(io::ErrorKind::PermissionDenied, "nope");
        assert!(matches!(
            CheckpointError::from(other),
            CheckpointError::Io(_)
        ));
        // Display strings are stable enough to grep in logs.
        assert!(CheckpointError::BadMagic.to_string().contains("magic"));
        assert!(CheckpointError::UnsupportedVersion { found: 99 }
            .to_string()
            .contains("99"));
    }
}

//! Simulation results: per-thread and machine-wide metrics.
//!
//! [`SimReport`] is what [`Simulator::run`](crate::Simulator::run) returns:
//! IPC per thread and in total, the fetch slot-loss breakdown that the
//! paper's Section 4 figures are built from, branch-prediction and memory
//! statistics, all rendered through `smt-stats` so experiment binaries can
//! print paper-style tables.

use std::fmt;
use std::io::{self, Read, Write};

use smt_branch::PredictorStats;
use smt_mem::{LevelStats, MemStats};
use smt_stats::binio::{invalid, BinReader, BinWriter};
use smt_stats::json::Json;
use smt_stats::{Ratio, TextTable};

use crate::policy::FetchPartition;

/// Results for one hardware context.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadReport {
    /// Context index.
    pub thread: usize,
    /// Benchmark the context ran.
    pub benchmark: String,
    /// Correct-path instructions committed.
    pub committed: u64,
    /// Per-thread IPC over the simulated window.
    pub ipc: f64,
}

/// Where fetch bandwidth went: slots used, plus the loss breakdown the
/// paper charts. All fields are in fetch slots; whenever the partition's
/// `T × I` covers the 8-wide fetch bandwidth (true of all four paper
/// schemes), `fetched + wrong_path + Σ lost_* == 8 × cycles` exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FetchBreakdown {
    /// Correct-path instructions fetched.
    pub fetched: u64,
    /// Wrong-path instructions fetched (lost bandwidth discovered later).
    pub wrong_path: u64,
    /// Slots lost because a selected thread's fetch block missed in the
    /// I-cache (or the thread was already waiting on an I-miss).
    pub lost_icache: u64,
    /// Slots lost to I-cache bank/port conflicts between threads.
    pub lost_bank_conflict: u64,
    /// Slots lost because the fetch block ended early (taken branch or
    /// cache-line boundary fragmentation).
    pub lost_fragmentation: u64,
    /// Slots lost because the thread's front-end/queues were full (IQ-full
    /// and register-exhaustion back-pressure).
    pub lost_frontend_full: u64,
    /// Slots lost because fewer than `T` threads were fetchable.
    pub lost_no_thread: u64,
    /// Misfetches: predicted-taken control without a target; fetch stalled
    /// until decode produced one.
    pub misfetches: u64,
    /// Fetch opportunities a *wrong-path* thread lost to I-cache bank/port
    /// contention: wrong-path fetch streams compete for the same banks as
    /// correct-path work, and this counts how often they were turned away
    /// (toward quantifying the paper's ~2% wrong-path overhead claim).
    pub wrong_path_fetch_conflicts: u64,
}

/// Issue-side counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IssueBreakdown {
    /// Correct-path instructions issued.
    pub issued: u64,
    /// Wrong-path instructions issued (the paper's wasted issue slots).
    pub wrong_path: u64,
    /// Issue attempts bounced by D-cache bank/port conflicts.
    pub bank_conflicts: u64,
}

/// Complete results of one simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Cycles in the measurement window (excludes any warmup).
    pub cycles: u64,
    /// Cycles simulated before the measurement window opened (warmup plus
    /// any earlier measured runs discarded by
    /// [`reset_stats`](crate::Simulator::reset_stats)); `0` for a
    /// cold-start measurement.
    pub warmup_cycles: u64,
    /// Whether this simulator's warmed state was restored from a
    /// checkpoint ([`Simulator::restore_checkpoint`]) rather than
    /// simulated in-process — provenance only, set by the experiment
    /// layer via [`Simulator::mark_restored_from_checkpoint`]; a restored
    /// run's numbers are bit-identical to a straight-through run's.
    ///
    /// [`Simulator::restore_checkpoint`]: crate::Simulator::restore_checkpoint
    /// [`Simulator::mark_restored_from_checkpoint`]: crate::Simulator::mark_restored_from_checkpoint
    pub restored_from_checkpoint: bool,
    /// Fetch policy name (e.g. `"ICOUNT"`).
    pub fetch_policy: String,
    /// Issue policy name (e.g. `"OLDEST_FIRST"`).
    pub issue_policy: String,
    /// Active mechanism ablations, by canonical name (see
    /// `smt_core::Ablation::name`); empty for the baseline machine.
    pub ablations: Vec<String>,
    /// Fetch partition used.
    pub partition: FetchPartition,
    /// Per-thread results.
    pub threads: Vec<ThreadReport>,
    /// Fetch bandwidth accounting.
    pub fetch: FetchBreakdown,
    /// Issue accounting.
    pub issue: IssueBreakdown,
    /// Conditional-branch direction prediction accuracy.
    pub cond_prediction: Ratio,
    /// Prediction-unit activity (BTB/RAS counters).
    pub pred: PredictorStats,
    /// Mispredictions that triggered a squash (any control kind).
    pub squashes: u64,
    /// Instructions flushed by squashes.
    pub squashed_insts: u64,
    /// Memory system statistics.
    pub mem: MemStats,
}

impl SimReport {
    /// The scheme label, e.g. `"ICOUNT.2.8"`.
    pub fn scheme(&self) -> String {
        format!("{}.{}", self.fetch_policy, self.partition)
    }

    /// Total correct-path instructions committed across all threads.
    pub fn total_committed(&self) -> u64 {
        self.threads.iter().map(|t| t.committed).sum()
    }

    /// Machine throughput: committed instructions per cycle.
    pub fn total_ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.total_committed() as f64 / self.cycles as f64
        }
    }

    /// Fraction of fetched instructions that were wrong-path.
    pub fn wrong_path_fetch_fraction(&self) -> f64 {
        let total = self.fetch.fetched + self.fetch.wrong_path;
        if total == 0 {
            0.0
        } else {
            self.fetch.wrong_path as f64 / total as f64
        }
    }

    /// The report as a JSON object (the `report` sub-object of the
    /// machine-readable schema emitted by `smt_exp --json`; see the
    /// `smt-experiments` crate docs for the full schema).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("scheme", Json::from(self.scheme())),
            ("fetch_policy", Json::from(self.fetch_policy.clone())),
            ("issue_policy", Json::from(self.issue_policy.clone())),
            ("partition", Json::from(self.partition.to_string())),
        ];
        // Emitted only when non-empty: baseline documents (and the
        // pre-ablation goldens) carry no `ablations` key at all.
        if !self.ablations.is_empty() {
            fields.push((
                "ablations",
                Json::array(self.ablations.iter().map(String::as_str)),
            ));
        }
        fields.push(("cycles", Json::from(self.cycles)));
        fields.push(("warmup_cycles", Json::from(self.warmup_cycles)));
        // Like `ablations`: emitted only when non-default, so documents
        // from in-process warmups (and the pre-checkpoint goldens) carry
        // no key at all.
        if self.restored_from_checkpoint {
            fields.push(("restored_from_checkpoint", Json::from(true)));
        }
        fields.extend([
            ("total_ipc", Json::from(self.total_ipc())),
            ("total_committed", Json::from(self.total_committed())),
            (
                "threads",
                Json::array(self.threads.iter().map(|t| {
                    Json::object([
                        ("thread", Json::from(t.thread)),
                        ("benchmark", Json::from(t.benchmark.clone())),
                        ("committed", Json::from(t.committed)),
                        ("ipc", Json::from(t.ipc)),
                    ])
                })),
            ),
            (
                "fetch",
                Json::object([
                    ("fetched", Json::from(self.fetch.fetched)),
                    ("wrong_path", Json::from(self.fetch.wrong_path)),
                    ("lost_icache", Json::from(self.fetch.lost_icache)),
                    (
                        "lost_bank_conflict",
                        Json::from(self.fetch.lost_bank_conflict),
                    ),
                    (
                        "lost_fragmentation",
                        Json::from(self.fetch.lost_fragmentation),
                    ),
                    (
                        "lost_frontend_full",
                        Json::from(self.fetch.lost_frontend_full),
                    ),
                    ("lost_no_thread", Json::from(self.fetch.lost_no_thread)),
                    ("misfetches", Json::from(self.fetch.misfetches)),
                    (
                        "wrong_path_fetch_conflicts",
                        Json::from(self.fetch.wrong_path_fetch_conflicts),
                    ),
                ]),
            ),
            (
                "issue",
                Json::object([
                    ("issued", Json::from(self.issue.issued)),
                    ("wrong_path", Json::from(self.issue.wrong_path)),
                    ("bank_conflicts", Json::from(self.issue.bank_conflicts)),
                ]),
            ),
            (
                "branch",
                Json::object([
                    ("cond_hit_pct", Json::from(self.cond_prediction.percent())),
                    ("cond_predictions", Json::from(self.cond_prediction.total)),
                    ("btb_hit_pct", Json::from(self.pred.btb_hit_rate() * 100.0)),
                    ("ras_underflows", Json::from(self.pred.ras_underflows)),
                    ("squashes", Json::from(self.squashes)),
                    ("squashed_insts", Json::from(self.squashed_insts)),
                ]),
            ),
            (
                "mem",
                Json::object([
                    ("icache_miss_pct", Json::from(self.mem.icache.miss_rate())),
                    ("dcache_miss_pct", Json::from(self.mem.dcache.miss_rate())),
                    ("l2_miss_pct", Json::from(self.mem.l2.miss_rate())),
                    ("l3_miss_pct", Json::from(self.mem.l3.miss_rate())),
                    ("writebacks", Json::from(self.mem.writebacks)),
                    ("bank_conflicts", Json::from(self.mem.bank_conflicts)),
                    ("mshr_merges", Json::from(self.mem.mshr_merges)),
                ]),
            ),
        ]);
        Json::object(fields)
    }

    /// Serializes every field of the report into `w`, losslessly.
    ///
    /// [`to_json`](SimReport::to_json) is a *rendering* — it emits derived
    /// percentages and drops the raw counters behind them — so JSON cannot
    /// round-trip a report. This binary form exists for consumers that
    /// must reproduce a report bit-for-bit later, most importantly the
    /// sweep journal in `smt-experiments`: a journaled cell re-rendered to
    /// JSON must be byte-identical to the original run's rendering, which
    /// requires the exact counters (and exact `f64` bits, stored via
    /// [`f64::to_bits`]).
    ///
    /// The caller owns the framing: write any header before, and call
    /// [`BinWriter::finish`] after, so the checksum covers header and
    /// report together.
    pub fn write_bin<W: Write>(&self, w: &mut BinWriter<W>) -> io::Result<()> {
        w.u64(self.cycles)?;
        w.u64(self.warmup_cycles)?;
        w.bool(self.restored_from_checkpoint)?;
        write_str(w, &self.fetch_policy)?;
        write_str(w, &self.issue_policy)?;
        w.len(self.ablations.len())?;
        for a in &self.ablations {
            write_str(w, a)?;
        }
        w.u8(self.partition.threads_per_cycle)?;
        w.u8(self.partition.insts_per_thread)?;
        w.len(self.threads.len())?;
        for t in &self.threads {
            w.u64(t.thread as u64)?;
            write_str(w, &t.benchmark)?;
            w.u64(t.committed)?;
            w.u64(t.ipc.to_bits())?;
        }
        for v in [
            self.fetch.fetched,
            self.fetch.wrong_path,
            self.fetch.lost_icache,
            self.fetch.lost_bank_conflict,
            self.fetch.lost_fragmentation,
            self.fetch.lost_frontend_full,
            self.fetch.lost_no_thread,
            self.fetch.misfetches,
            self.fetch.wrong_path_fetch_conflicts,
            self.issue.issued,
            self.issue.wrong_path,
            self.issue.bank_conflicts,
            self.cond_prediction.hits,
            self.cond_prediction.total,
            self.pred.predictions,
            self.pred.btb_lookups,
            self.pred.btb_hits,
            self.pred.ras_predictions,
            self.pred.ras_underflows,
            self.squashes,
            self.squashed_insts,
        ] {
            w.u64(v)?;
        }
        for level in [
            self.mem.icache,
            self.mem.dcache,
            self.mem.l2,
            self.mem.l3,
            self.mem.itlb,
            self.mem.dtlb,
        ] {
            w.u64(level.accesses)?;
            w.u64(level.misses)?;
        }
        w.u64(self.mem.writebacks)?;
        w.u64(self.mem.bank_conflicts)?;
        w.u64(self.mem.mshr_merges)
    }

    /// Reads a report written by [`write_bin`](SimReport::write_bin).
    ///
    /// The stream is untrusted: lengths are capped, strings must be
    /// UTF-8, and the partition components must be non-zero, so corrupt
    /// or truncated input surfaces as a typed [`io::Error`]
    /// ([`io::ErrorKind::InvalidData`] / [`io::ErrorKind::UnexpectedEof`])
    /// rather than a panic or an absurd allocation. The caller verifies
    /// the checksum via [`BinReader::finish`] after reading its framing.
    pub fn read_bin<R: Read>(r: &mut BinReader<R>) -> io::Result<SimReport> {
        let cycles = r.u64()?;
        let warmup_cycles = r.u64()?;
        let restored_from_checkpoint = r.bool()?;
        let fetch_policy = read_str(r, "fetch policy")?;
        let issue_policy = read_str(r, "issue policy")?;
        let n_ablations = r.len()?;
        if n_ablations > 64 {
            return Err(invalid(format!("{n_ablations} ablations exceeds cap")));
        }
        let mut ablations = Vec::with_capacity(n_ablations);
        for _ in 0..n_ablations {
            ablations.push(read_str(r, "ablation name")?);
        }
        let t = r.u8()?;
        let i = r.u8()?;
        if t == 0 || i == 0 {
            return Err(invalid(format!("invalid fetch partition {t}.{i}")));
        }
        let partition = FetchPartition::new(t, i);
        let n_threads = r.len()?;
        if n_threads > 1024 {
            return Err(invalid(format!("{n_threads} threads exceeds cap")));
        }
        let mut threads = Vec::with_capacity(n_threads);
        for _ in 0..n_threads {
            let thread = usize::try_from(r.u64()?)
                .map_err(|_| invalid("thread index exceeds address space"))?;
            let benchmark = read_str(r, "benchmark name")?;
            let committed = r.u64()?;
            let ipc = f64::from_bits(r.u64()?);
            threads.push(ThreadReport {
                thread,
                benchmark,
                committed,
                ipc,
            });
        }
        let fetch = FetchBreakdown {
            fetched: r.u64()?,
            wrong_path: r.u64()?,
            lost_icache: r.u64()?,
            lost_bank_conflict: r.u64()?,
            lost_fragmentation: r.u64()?,
            lost_frontend_full: r.u64()?,
            lost_no_thread: r.u64()?,
            misfetches: r.u64()?,
            wrong_path_fetch_conflicts: r.u64()?,
        };
        let issue = IssueBreakdown {
            issued: r.u64()?,
            wrong_path: r.u64()?,
            bank_conflicts: r.u64()?,
        };
        let cond_prediction = Ratio {
            hits: r.u64()?,
            total: r.u64()?,
        };
        let pred = PredictorStats {
            predictions: r.u64()?,
            btb_lookups: r.u64()?,
            btb_hits: r.u64()?,
            ras_predictions: r.u64()?,
            ras_underflows: r.u64()?,
        };
        let squashes = r.u64()?;
        let squashed_insts = r.u64()?;
        let mut read_level = || -> io::Result<LevelStats> {
            Ok(LevelStats {
                accesses: r.u64()?,
                misses: r.u64()?,
            })
        };
        let icache = read_level()?;
        let dcache = read_level()?;
        let l2 = read_level()?;
        let l3 = read_level()?;
        let itlb = read_level()?;
        let dtlb = read_level()?;
        let mem = MemStats {
            icache,
            dcache,
            l2,
            l3,
            itlb,
            dtlb,
            writebacks: r.u64()?,
            bank_conflicts: r.u64()?,
            mshr_merges: r.u64()?,
        };
        Ok(SimReport {
            cycles,
            warmup_cycles,
            restored_from_checkpoint,
            fetch_policy,
            issue_policy,
            ablations,
            partition,
            threads,
            fetch,
            issue,
            cond_prediction,
            pred,
            squashes,
            squashed_insts,
            mem,
        })
    }

    /// Per-thread results as a text table.
    pub fn thread_table(&self) -> TextTable {
        let mut t = TextTable::new();
        t.header(vec![
            "thread".into(),
            "benchmark".into(),
            "committed".into(),
            "ipc".into(),
        ]);
        for tr in &self.threads {
            t.row(vec![
                format!("t{}", tr.thread),
                tr.benchmark.clone(),
                tr.committed.to_string(),
                format!("{:.2}", tr.ipc),
            ]);
        }
        t
    }
}

/// Longest string [`read_str`] accepts; far above any real policy,
/// benchmark, or ablation name, far below anything allocation-hostile.
const MAX_BIN_STR: usize = 4096;

/// Writes a length-prefixed UTF-8 string.
fn write_str<W: Write>(w: &mut BinWriter<W>, s: &str) -> io::Result<()> {
    w.len(s.len())?;
    w.bytes(s.as_bytes())
}

/// Reads a length-prefixed UTF-8 string with a sanity cap; `what` labels
/// the field in error messages.
fn read_str<R: Read>(r: &mut BinReader<R>, what: &str) -> io::Result<String> {
    let n = r.len()?;
    if n > MAX_BIN_STR {
        return Err(invalid(format!("{what} length {n} exceeds cap")));
    }
    let mut buf = vec![0u8; n];
    r.bytes(&mut buf)?;
    String::from_utf8(buf).map_err(|_| invalid(format!("{what} is not UTF-8")))
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} ({} issue){}, {} threads, {} cycles{}: {:.2} IPC",
            self.scheme(),
            self.issue_policy,
            if self.ablations.is_empty() {
                String::new()
            } else {
                format!(" [ablations: {}]", self.ablations.join(","))
            },
            self.threads.len(),
            self.cycles,
            if self.warmup_cycles > 0 {
                format!(" (+{} warmup)", self.warmup_cycles)
            } else {
                String::new()
            },
            self.total_ipc()
        )?;
        writeln!(f, "{}", self.thread_table())?;
        writeln!(
            f,
            "fetch: {} useful, {} wrong-path ({:.1}%), lost: icache {}, bank {}, frag {}, \
             queue-full {}, no-thread {}, misfetches {}, wrong-path bank bounces {}",
            self.fetch.fetched,
            self.fetch.wrong_path,
            self.wrong_path_fetch_fraction() * 100.0,
            self.fetch.lost_icache,
            self.fetch.lost_bank_conflict,
            self.fetch.lost_fragmentation,
            self.fetch.lost_frontend_full,
            self.fetch.lost_no_thread,
            self.fetch.misfetches,
            self.fetch.wrong_path_fetch_conflicts,
        )?;
        writeln!(
            f,
            "issue: {} useful, {} wrong-path, {} D-bank bounces; cond-branch pred {}; \
             {} squashes ({} insts)",
            self.issue.issued,
            self.issue.wrong_path,
            self.issue.bank_conflicts,
            self.cond_prediction,
            self.squashes,
            self.squashed_insts,
        )?;
        write!(
            f,
            "memory: I$ {:.1}% miss, D$ {:.1}% miss, L2 {:.1}% miss, L3 {:.1}% miss",
            self.mem.icache.miss_rate(),
            self.mem.dcache.miss_rate(),
            self.mem.l2.miss_rate(),
            self.mem.l3.miss_rate(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport {
            cycles: 1000,
            warmup_cycles: 0,
            restored_from_checkpoint: false,
            fetch_policy: "ICOUNT".into(),
            issue_policy: "OLDEST_FIRST".into(),
            ablations: Vec::new(),
            partition: FetchPartition::new(2, 8),
            threads: vec![
                ThreadReport {
                    thread: 0,
                    benchmark: "espresso".into(),
                    committed: 3000,
                    ipc: 3.0,
                },
                ThreadReport {
                    thread: 1,
                    benchmark: "tomcatv".into(),
                    committed: 2000,
                    ipc: 2.0,
                },
            ],
            fetch: FetchBreakdown {
                fetched: 6000,
                wrong_path: 600,
                ..Default::default()
            },
            issue: IssueBreakdown {
                issued: 5200,
                wrong_path: 300,
                bank_conflicts: 10,
            },
            cond_prediction: Ratio {
                hits: 900,
                total: 1000,
            },
            pred: PredictorStats::default(),
            squashes: 100,
            squashed_insts: 700,
            mem: MemStats::default(),
        }
    }

    #[test]
    fn totals_and_scheme_label() {
        let r = report();
        assert_eq!(r.total_committed(), 5000);
        assert_eq!(r.total_ipc(), 5.0);
        assert_eq!(r.scheme(), "ICOUNT.2.8");
        assert!((r.wrong_path_fetch_fraction() - 600.0 / 6600.0).abs() < 1e-12);
    }

    #[test]
    fn json_round_trips_with_key_fields() {
        let doc = report().to_json();
        let text = doc.render();
        let back = Json::parse(&text).expect("report JSON must parse");
        assert_eq!(
            back.get("scheme").and_then(Json::as_str),
            Some("ICOUNT.2.8")
        );
        assert_eq!(back.get("total_ipc").and_then(Json::as_f64), Some(5.0));
        assert_eq!(
            back.get("threads").and_then(Json::as_array).map(<[_]>::len),
            Some(2)
        );
        assert_eq!(
            back.get("fetch")
                .and_then(|f| f.get("fetched"))
                .and_then(Json::as_u64),
            Some(6000)
        );
    }

    #[test]
    fn ablations_field_emitted_only_when_active() {
        let mut r = report();
        assert!(
            !r.to_json().render().contains("ablations"),
            "baseline reports must not carry an ablations key"
        );
        r.ablations = vec!["perfect_icache".into()];
        let back = Json::parse(&r.to_json().render()).unwrap();
        let names = back.get("ablations").and_then(Json::as_array).unwrap();
        assert_eq!(names.len(), 1);
        assert_eq!(names[0].as_str(), Some("perfect_icache"));
        assert!(r.to_string().contains("[ablations: perfect_icache]"));
    }

    #[test]
    fn restored_flag_emitted_only_when_set() {
        let mut r = report();
        assert!(
            !r.to_json().render().contains("restored_from_checkpoint"),
            "in-process warmups must not carry a restored_from_checkpoint key"
        );
        r.restored_from_checkpoint = true;
        let back = Json::parse(&r.to_json().render()).unwrap();
        assert_eq!(
            back.get("restored_from_checkpoint").and_then(Json::as_bool),
            Some(true)
        );
    }

    /// A report exercising every field with non-default, "awkward"
    /// values: odd f64 bit patterns, ablations, the restored flag,
    /// non-empty predictor and memory counters.
    fn busy_report() -> SimReport {
        let mut r = report();
        r.warmup_cycles = 123_456;
        r.restored_from_checkpoint = true;
        r.ablations = vec!["perfect_icache".into(), "no_ras".into()];
        r.threads[0].ipc = 0.1 + 0.2; // not exactly 0.3 in binary
        r.fetch.lost_icache = 17;
        r.fetch.misfetches = u64::MAX;
        r.pred = PredictorStats {
            predictions: 1,
            btb_lookups: 2,
            btb_hits: 3,
            ras_predictions: 4,
            ras_underflows: 5,
        };
        r.mem.dcache = LevelStats {
            accesses: 1000,
            misses: 37,
        };
        r.mem.mshr_merges = 99;
        r
    }

    fn to_bytes(r: &SimReport) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut w = BinWriter::new(&mut buf);
        r.write_bin(&mut w).unwrap();
        w.finish().unwrap();
        buf
    }

    fn from_bytes(bytes: &[u8]) -> io::Result<SimReport> {
        let mut r = BinReader::new(bytes);
        let report = SimReport::read_bin(&mut r)?;
        r.finish()?;
        Ok(report)
    }

    #[test]
    fn binary_round_trip_is_lossless() {
        for r in [report(), busy_report()] {
            let back = from_bytes(&to_bytes(&r)).unwrap();
            assert_eq!(back, r);
            // The property the journal depends on: a round-tripped report
            // renders to byte-identical JSON.
            assert_eq!(back.to_json().render(), r.to_json().render());
            // PartialEq on f64 would accept -0.0 == 0.0; pin exact bits.
            for (a, b) in back.threads.iter().zip(&r.threads) {
                assert_eq!(a.ipc.to_bits(), b.ipc.to_bits());
            }
        }
    }

    #[test]
    fn binary_truncation_and_corruption_are_typed_errors() {
        let bytes = to_bytes(&busy_report());
        for cut in (0..bytes.len()).step_by(7).chain([bytes.len() - 1]) {
            let err = from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err.kind(),
                    io::ErrorKind::UnexpectedEof | io::ErrorKind::InvalidData
                ),
                "cut at {cut}: unexpected kind {:?}",
                err.kind()
            );
        }
        for pos in (0..bytes.len()).step_by(11) {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x20;
            // Every flip must either fail the checksum or surface as
            // typed invalid data earlier — never panic, never pass both
            // the parse and the checksum.
            assert!(from_bytes(&bad).is_err(), "flip at {pos} undetected");
        }
    }

    #[test]
    fn binary_rejects_zero_partition_components() {
        let mut buf = Vec::new();
        let mut w = BinWriter::new(&mut buf);
        let r = report();
        w.u64(r.cycles).unwrap();
        w.u64(r.warmup_cycles).unwrap();
        w.bool(false).unwrap();
        for s in ["ICOUNT", "OLDEST_FIRST"] {
            w.len(s.len()).unwrap();
            w.bytes(s.as_bytes()).unwrap();
        }
        w.len(0).unwrap(); // ablations
        w.u8(0).unwrap(); // zero threads_per_cycle: must not panic
        w.u8(8).unwrap();
        w.finish().unwrap();
        let err = from_bytes(&buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn display_mentions_key_numbers() {
        let s = report().to_string();
        assert!(s.contains("ICOUNT.2.8"));
        assert!(s.contains("5.00 IPC"));
        assert!(s.contains("espresso"));
        assert!(s.contains("misfetches"));
    }
}

//! Simulation results: per-thread and machine-wide metrics.
//!
//! [`SimReport`] is what [`Simulator::run`](crate::Simulator::run) returns:
//! IPC per thread and in total, the fetch slot-loss breakdown that the
//! paper's Section 4 figures are built from, branch-prediction and memory
//! statistics, all rendered through `smt-stats` so experiment binaries can
//! print paper-style tables.

use std::fmt;

use smt_branch::PredictorStats;
use smt_mem::MemStats;
use smt_stats::json::Json;
use smt_stats::{Ratio, TextTable};

use crate::policy::FetchPartition;

/// Results for one hardware context.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadReport {
    /// Context index.
    pub thread: usize,
    /// Benchmark the context ran.
    pub benchmark: String,
    /// Correct-path instructions committed.
    pub committed: u64,
    /// Per-thread IPC over the simulated window.
    pub ipc: f64,
}

/// Where fetch bandwidth went: slots used, plus the loss breakdown the
/// paper charts. All fields are in fetch slots; whenever the partition's
/// `T × I` covers the 8-wide fetch bandwidth (true of all four paper
/// schemes), `fetched + wrong_path + Σ lost_* == 8 × cycles` exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FetchBreakdown {
    /// Correct-path instructions fetched.
    pub fetched: u64,
    /// Wrong-path instructions fetched (lost bandwidth discovered later).
    pub wrong_path: u64,
    /// Slots lost because a selected thread's fetch block missed in the
    /// I-cache (or the thread was already waiting on an I-miss).
    pub lost_icache: u64,
    /// Slots lost to I-cache bank/port conflicts between threads.
    pub lost_bank_conflict: u64,
    /// Slots lost because the fetch block ended early (taken branch or
    /// cache-line boundary fragmentation).
    pub lost_fragmentation: u64,
    /// Slots lost because the thread's front-end/queues were full (IQ-full
    /// and register-exhaustion back-pressure).
    pub lost_frontend_full: u64,
    /// Slots lost because fewer than `T` threads were fetchable.
    pub lost_no_thread: u64,
    /// Misfetches: predicted-taken control without a target; fetch stalled
    /// until decode produced one.
    pub misfetches: u64,
    /// Fetch opportunities a *wrong-path* thread lost to I-cache bank/port
    /// contention: wrong-path fetch streams compete for the same banks as
    /// correct-path work, and this counts how often they were turned away
    /// (toward quantifying the paper's ~2% wrong-path overhead claim).
    pub wrong_path_fetch_conflicts: u64,
}

/// Issue-side counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IssueBreakdown {
    /// Correct-path instructions issued.
    pub issued: u64,
    /// Wrong-path instructions issued (the paper's wasted issue slots).
    pub wrong_path: u64,
    /// Issue attempts bounced by D-cache bank/port conflicts.
    pub bank_conflicts: u64,
}

/// Complete results of one simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Cycles in the measurement window (excludes any warmup).
    pub cycles: u64,
    /// Cycles simulated before the measurement window opened (warmup plus
    /// any earlier measured runs discarded by
    /// [`reset_stats`](crate::Simulator::reset_stats)); `0` for a
    /// cold-start measurement.
    pub warmup_cycles: u64,
    /// Whether this simulator's warmed state was restored from a
    /// checkpoint ([`Simulator::restore_checkpoint`]) rather than
    /// simulated in-process — provenance only, set by the experiment
    /// layer via [`Simulator::mark_restored_from_checkpoint`]; a restored
    /// run's numbers are bit-identical to a straight-through run's.
    ///
    /// [`Simulator::restore_checkpoint`]: crate::Simulator::restore_checkpoint
    /// [`Simulator::mark_restored_from_checkpoint`]: crate::Simulator::mark_restored_from_checkpoint
    pub restored_from_checkpoint: bool,
    /// Fetch policy name (e.g. `"ICOUNT"`).
    pub fetch_policy: String,
    /// Issue policy name (e.g. `"OLDEST_FIRST"`).
    pub issue_policy: String,
    /// Active mechanism ablations, by canonical name (see
    /// `smt_core::Ablation::name`); empty for the baseline machine.
    pub ablations: Vec<String>,
    /// Fetch partition used.
    pub partition: FetchPartition,
    /// Per-thread results.
    pub threads: Vec<ThreadReport>,
    /// Fetch bandwidth accounting.
    pub fetch: FetchBreakdown,
    /// Issue accounting.
    pub issue: IssueBreakdown,
    /// Conditional-branch direction prediction accuracy.
    pub cond_prediction: Ratio,
    /// Prediction-unit activity (BTB/RAS counters).
    pub pred: PredictorStats,
    /// Mispredictions that triggered a squash (any control kind).
    pub squashes: u64,
    /// Instructions flushed by squashes.
    pub squashed_insts: u64,
    /// Memory system statistics.
    pub mem: MemStats,
}

impl SimReport {
    /// The scheme label, e.g. `"ICOUNT.2.8"`.
    pub fn scheme(&self) -> String {
        format!("{}.{}", self.fetch_policy, self.partition)
    }

    /// Total correct-path instructions committed across all threads.
    pub fn total_committed(&self) -> u64 {
        self.threads.iter().map(|t| t.committed).sum()
    }

    /// Machine throughput: committed instructions per cycle.
    pub fn total_ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.total_committed() as f64 / self.cycles as f64
        }
    }

    /// Fraction of fetched instructions that were wrong-path.
    pub fn wrong_path_fetch_fraction(&self) -> f64 {
        let total = self.fetch.fetched + self.fetch.wrong_path;
        if total == 0 {
            0.0
        } else {
            self.fetch.wrong_path as f64 / total as f64
        }
    }

    /// The report as a JSON object (the `report` sub-object of the
    /// machine-readable schema emitted by `smt_exp --json`; see the
    /// `smt-experiments` crate docs for the full schema).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("scheme", Json::from(self.scheme())),
            ("fetch_policy", Json::from(self.fetch_policy.clone())),
            ("issue_policy", Json::from(self.issue_policy.clone())),
            ("partition", Json::from(self.partition.to_string())),
        ];
        // Emitted only when non-empty: baseline documents (and the
        // pre-ablation goldens) carry no `ablations` key at all.
        if !self.ablations.is_empty() {
            fields.push((
                "ablations",
                Json::array(self.ablations.iter().map(String::as_str)),
            ));
        }
        fields.push(("cycles", Json::from(self.cycles)));
        fields.push(("warmup_cycles", Json::from(self.warmup_cycles)));
        // Like `ablations`: emitted only when non-default, so documents
        // from in-process warmups (and the pre-checkpoint goldens) carry
        // no key at all.
        if self.restored_from_checkpoint {
            fields.push(("restored_from_checkpoint", Json::from(true)));
        }
        fields.extend([
            ("total_ipc", Json::from(self.total_ipc())),
            ("total_committed", Json::from(self.total_committed())),
            (
                "threads",
                Json::array(self.threads.iter().map(|t| {
                    Json::object([
                        ("thread", Json::from(t.thread)),
                        ("benchmark", Json::from(t.benchmark.clone())),
                        ("committed", Json::from(t.committed)),
                        ("ipc", Json::from(t.ipc)),
                    ])
                })),
            ),
            (
                "fetch",
                Json::object([
                    ("fetched", Json::from(self.fetch.fetched)),
                    ("wrong_path", Json::from(self.fetch.wrong_path)),
                    ("lost_icache", Json::from(self.fetch.lost_icache)),
                    (
                        "lost_bank_conflict",
                        Json::from(self.fetch.lost_bank_conflict),
                    ),
                    (
                        "lost_fragmentation",
                        Json::from(self.fetch.lost_fragmentation),
                    ),
                    (
                        "lost_frontend_full",
                        Json::from(self.fetch.lost_frontend_full),
                    ),
                    ("lost_no_thread", Json::from(self.fetch.lost_no_thread)),
                    ("misfetches", Json::from(self.fetch.misfetches)),
                    (
                        "wrong_path_fetch_conflicts",
                        Json::from(self.fetch.wrong_path_fetch_conflicts),
                    ),
                ]),
            ),
            (
                "issue",
                Json::object([
                    ("issued", Json::from(self.issue.issued)),
                    ("wrong_path", Json::from(self.issue.wrong_path)),
                    ("bank_conflicts", Json::from(self.issue.bank_conflicts)),
                ]),
            ),
            (
                "branch",
                Json::object([
                    ("cond_hit_pct", Json::from(self.cond_prediction.percent())),
                    ("cond_predictions", Json::from(self.cond_prediction.total)),
                    ("btb_hit_pct", Json::from(self.pred.btb_hit_rate() * 100.0)),
                    ("ras_underflows", Json::from(self.pred.ras_underflows)),
                    ("squashes", Json::from(self.squashes)),
                    ("squashed_insts", Json::from(self.squashed_insts)),
                ]),
            ),
            (
                "mem",
                Json::object([
                    ("icache_miss_pct", Json::from(self.mem.icache.miss_rate())),
                    ("dcache_miss_pct", Json::from(self.mem.dcache.miss_rate())),
                    ("l2_miss_pct", Json::from(self.mem.l2.miss_rate())),
                    ("l3_miss_pct", Json::from(self.mem.l3.miss_rate())),
                    ("writebacks", Json::from(self.mem.writebacks)),
                    ("bank_conflicts", Json::from(self.mem.bank_conflicts)),
                    ("mshr_merges", Json::from(self.mem.mshr_merges)),
                ]),
            ),
        ]);
        Json::object(fields)
    }

    /// Per-thread results as a text table.
    pub fn thread_table(&self) -> TextTable {
        let mut t = TextTable::new();
        t.header(vec![
            "thread".into(),
            "benchmark".into(),
            "committed".into(),
            "ipc".into(),
        ]);
        for tr in &self.threads {
            t.row(vec![
                format!("t{}", tr.thread),
                tr.benchmark.clone(),
                tr.committed.to_string(),
                format!("{:.2}", tr.ipc),
            ]);
        }
        t
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} ({} issue){}, {} threads, {} cycles{}: {:.2} IPC",
            self.scheme(),
            self.issue_policy,
            if self.ablations.is_empty() {
                String::new()
            } else {
                format!(" [ablations: {}]", self.ablations.join(","))
            },
            self.threads.len(),
            self.cycles,
            if self.warmup_cycles > 0 {
                format!(" (+{} warmup)", self.warmup_cycles)
            } else {
                String::new()
            },
            self.total_ipc()
        )?;
        writeln!(f, "{}", self.thread_table())?;
        writeln!(
            f,
            "fetch: {} useful, {} wrong-path ({:.1}%), lost: icache {}, bank {}, frag {}, \
             queue-full {}, no-thread {}, misfetches {}, wrong-path bank bounces {}",
            self.fetch.fetched,
            self.fetch.wrong_path,
            self.wrong_path_fetch_fraction() * 100.0,
            self.fetch.lost_icache,
            self.fetch.lost_bank_conflict,
            self.fetch.lost_fragmentation,
            self.fetch.lost_frontend_full,
            self.fetch.lost_no_thread,
            self.fetch.misfetches,
            self.fetch.wrong_path_fetch_conflicts,
        )?;
        writeln!(
            f,
            "issue: {} useful, {} wrong-path, {} D-bank bounces; cond-branch pred {}; \
             {} squashes ({} insts)",
            self.issue.issued,
            self.issue.wrong_path,
            self.issue.bank_conflicts,
            self.cond_prediction,
            self.squashes,
            self.squashed_insts,
        )?;
        write!(
            f,
            "memory: I$ {:.1}% miss, D$ {:.1}% miss, L2 {:.1}% miss, L3 {:.1}% miss",
            self.mem.icache.miss_rate(),
            self.mem.dcache.miss_rate(),
            self.mem.l2.miss_rate(),
            self.mem.l3.miss_rate(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport {
            cycles: 1000,
            warmup_cycles: 0,
            restored_from_checkpoint: false,
            fetch_policy: "ICOUNT".into(),
            issue_policy: "OLDEST_FIRST".into(),
            ablations: Vec::new(),
            partition: FetchPartition::new(2, 8),
            threads: vec![
                ThreadReport {
                    thread: 0,
                    benchmark: "espresso".into(),
                    committed: 3000,
                    ipc: 3.0,
                },
                ThreadReport {
                    thread: 1,
                    benchmark: "tomcatv".into(),
                    committed: 2000,
                    ipc: 2.0,
                },
            ],
            fetch: FetchBreakdown {
                fetched: 6000,
                wrong_path: 600,
                ..Default::default()
            },
            issue: IssueBreakdown {
                issued: 5200,
                wrong_path: 300,
                bank_conflicts: 10,
            },
            cond_prediction: Ratio {
                hits: 900,
                total: 1000,
            },
            pred: PredictorStats::default(),
            squashes: 100,
            squashed_insts: 700,
            mem: MemStats::default(),
        }
    }

    #[test]
    fn totals_and_scheme_label() {
        let r = report();
        assert_eq!(r.total_committed(), 5000);
        assert_eq!(r.total_ipc(), 5.0);
        assert_eq!(r.scheme(), "ICOUNT.2.8");
        assert!((r.wrong_path_fetch_fraction() - 600.0 / 6600.0).abs() < 1e-12);
    }

    #[test]
    fn json_round_trips_with_key_fields() {
        let doc = report().to_json();
        let text = doc.render();
        let back = Json::parse(&text).expect("report JSON must parse");
        assert_eq!(
            back.get("scheme").and_then(Json::as_str),
            Some("ICOUNT.2.8")
        );
        assert_eq!(back.get("total_ipc").and_then(Json::as_f64), Some(5.0));
        assert_eq!(
            back.get("threads").and_then(Json::as_array).map(<[_]>::len),
            Some(2)
        );
        assert_eq!(
            back.get("fetch")
                .and_then(|f| f.get("fetched"))
                .and_then(Json::as_u64),
            Some(6000)
        );
    }

    #[test]
    fn ablations_field_emitted_only_when_active() {
        let mut r = report();
        assert!(
            !r.to_json().render().contains("ablations"),
            "baseline reports must not carry an ablations key"
        );
        r.ablations = vec!["perfect_icache".into()];
        let back = Json::parse(&r.to_json().render()).unwrap();
        let names = back.get("ablations").and_then(Json::as_array).unwrap();
        assert_eq!(names.len(), 1);
        assert_eq!(names[0].as_str(), Some("perfect_icache"));
        assert!(r.to_string().contains("[ablations: perfect_icache]"));
    }

    #[test]
    fn restored_flag_emitted_only_when_set() {
        let mut r = report();
        assert!(
            !r.to_json().render().contains("restored_from_checkpoint"),
            "in-process warmups must not carry a restored_from_checkpoint key"
        );
        r.restored_from_checkpoint = true;
        let back = Json::parse(&r.to_json().render()).unwrap();
        assert_eq!(
            back.get("restored_from_checkpoint").and_then(Json::as_bool),
            Some(true)
        );
    }

    #[test]
    fn display_mentions_key_numbers() {
        let s = report().to_string();
        assert!(s.contains("ICOUNT.2.8"));
        assert!(s.contains("5.00 IPC"));
        assert!(s.contains("espresso"));
        assert!(s.contains("misfetches"));
    }
}

//! The cycle-level SMT pipeline.
//!
//! Eight logical stages on the paper's machine collapse here into five
//! simulated phases per cycle, processed oldest-work-first so data flows
//! one cycle per stage without double-stepping:
//!
//! 1. **completions** — drain finished cache misses (I-side unblocks fetch,
//!    D-side wakes waiting loads),
//! 2. **writeback** — finished instructions make their results available;
//!    correct-path branches resolve, train the predictor, and squash on a
//!    mispredict,
//! 3. **commit** — per-thread in-order retirement, freeing renaming
//!    registers,
//! 4. **issue** — the [`IssuePolicy`](crate::IssuePolicy) orders ready
//!    instructions onto the 6 integer (4 load/store-capable) and 3 FP
//!    units; loads/stores arbitrate for D-cache banks,
//! 5. **rename/dispatch** then **fetch** — the front end: decoded
//!    instructions claim renaming registers and queue slots, and the
//!    [`FetchPolicy`](crate::FetchPolicy) picks which threads fill the
//!    8-wide fetch bandwidth under the active
//!    [`FetchPartition`](crate::FetchPartition).
//!
//! Fetch follows *predicted* paths: the per-thread oracle supplies the
//! correct path, the predictor supplies choices, and any disagreement sends
//! the thread down a synthesized wrong path until the offending branch
//! resolves and squashes it — so wrong-path instructions consume fetch
//! slots, rename registers, queue entries and functional units exactly as
//! the paper requires.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use smt_branch::{BranchPredictor, Prediction};
use smt_isa::{Addr, FuKind, Opcode, Outcome, RegClass, StaticInst, ThreadId, INST_BYTES};
use smt_mem::{AccessResult, MemoryHierarchy, ReqId};
use smt_stats::Ratio;
use smt_workload::{Program, ThreadContext, WrongPath};

use crate::config::SimConfig;
use crate::policy::{FetchPartition, IssueCandidate, ThreadFetchView};
use crate::regfile::{PhysRegFile, RenameMap};
use crate::report::{FetchBreakdown, IssueBreakdown, SimReport, ThreadReport};

/// Why a fetch slot could not be filled this cycle (candidate loss causes,
/// settled against the actually-unused slots at end of cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LossCause {
    Icache,
    Bank,
    Fragmentation,
    FrontendFull,
    NoThread,
}

/// Lifecycle of one in-flight instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InstState {
    /// In the front end (decode/rename pipe); eligible to enter a queue at
    /// `ready_at`.
    Decoding {
        /// Cycle at which decode finishes.
        ready_at: u64,
    },
    /// In an instruction queue, waiting for operands and a functional unit.
    Queued,
    /// Issued; result available at `done_at`.
    Executing {
        /// Cycle at which the result is written back.
        done_at: u64,
    },
    /// A load waiting on an outstanding D-cache miss.
    WaitingMem,
    /// Executed; awaiting in-order retirement.
    Done,
}

/// One dynamic (in-flight) instruction.
#[derive(Debug, Clone)]
struct DynInst {
    seq: u64,
    pc: Addr,
    inst: StaticInst,
    /// Architectural outcome; `None` on the wrong path.
    outcome: Option<Outcome>,
    wrong_path: bool,
    pred: Option<Prediction>,
    /// Correct-path control instruction whose prediction was wrong; resolves
    /// with a squash and redirect.
    mispredict: bool,
    /// Effective address for memory instructions (synthesized on the wrong
    /// path).
    mem_addr: Addr,
    dest_phys: Option<(RegClass, u16)>,
    prev_phys: Option<(RegClass, u16)>,
    srcs_phys: [Option<(RegClass, u16)>; 2],
    state: InstState,
}

/// One hardware context.
struct Thread {
    id: ThreadId,
    oracle: ThreadContext,
    program: Arc<Program>,
    map: RenameMap,
    /// All in-flight instructions in fetch order (the per-thread ROB).
    rob: VecDeque<DynInst>,
    /// Sequence numbers of instructions still in the front end, in order.
    frontend: VecDeque<u64>,
    fetch_pc: Addr,
    /// Fetch has diverged from the correct path.
    wrong_path: bool,
    /// Fetch suppressed until this cycle (misfetch/redirect penalties).
    stall_until: u64,
    /// Outstanding I-cache miss blocking fetch.
    icache_req: Option<ReqId>,
    /// Salt for wrong-path address synthesis.
    wp_salt: u64,
    committed: u64,
    /// `committed` snapshot at the last `reset_stats` (reports measure the
    /// window since then).
    committed_base: u64,
    // Per-cycle policy counters, refreshed before fetch.
    in_flight: u32,
    unresolved_branches: u32,
    outstanding_misses: u32,
}

impl Thread {
    fn find(&self, seq: u64) -> Option<usize> {
        self.rob.binary_search_by_key(&seq, |i| i.seq).ok()
    }

    /// Recomputes the counters the fetch policies read. `in_flight` is the
    /// paper's ICOUNT counter: instructions in decode, rename and the
    /// queues (fetched but not yet issued).
    fn refresh_counters(&mut self) {
        let mut in_flight = 0;
        let mut unresolved = 0;
        let mut misses = 0;
        for i in &self.rob {
            match i.state {
                InstState::Decoding { .. } | InstState::Queued => in_flight += 1,
                InstState::WaitingMem => misses += 1,
                _ => {}
            }
            if i.inst.op.is_control() && i.state != InstState::Done {
                unresolved += 1;
            }
        }
        self.in_flight = in_flight;
        self.unresolved_branches = unresolved;
        self.outstanding_misses = misses;
    }
}

/// The simulator: a configured machine plus its architectural state.
///
/// Built by [`SimConfig::build`]; driven by [`Simulator::run`].
pub struct Simulator {
    cfg: SimConfig,
    cycle: u64,
    /// Cycle at which the current measurement window opened (the last
    /// `reset_stats`; 0 if statistics were never reset).
    stats_base_cycle: u64,
    next_seq: u64,
    threads: Vec<Thread>,
    regs: [PhysRegFile; 2],
    /// Instruction queues, one per register class, holding
    /// `(thread index, seq)`.
    iq: [Vec<(usize, u64)>; 2],
    mem: MemoryHierarchy,
    bp: BranchPredictor,
    pending_loads: HashMap<ReqId, (usize, u64)>,
    f_stats: FetchBreakdown,
    i_stats: IssueBreakdown,
    cond_pred: Ratio,
    squashes: u64,
    squashed_insts: u64,
}

impl Simulator {
    /// Builds the machine described by `cfg`. Prefer [`SimConfig::build`].
    pub(crate) fn new(cfg: SimConfig) -> Simulator {
        let threads = cfg.threads();
        let programs: Vec<Arc<Program>> = if cfg.programs.is_empty() {
            cfg.benchmarks
                .iter()
                .enumerate()
                .map(|(i, b)| Arc::new(b.generate(cfg.seed, i as u32)))
                .collect()
        } else {
            cfg.programs.clone()
        };
        let phys = smt_isa::LOGICAL_REGS * threads + cfg.extra_phys_regs;
        let mut regs = [PhysRegFile::new(phys), PhysRegFile::new(phys)];
        let bp = BranchPredictor::new(cfg.predictor.clone(), threads);
        let mem = MemoryHierarchy::new(cfg.mem.clone());
        let thread_state = programs
            .iter()
            .enumerate()
            .map(|(i, program)| Thread {
                id: ThreadId(i as u8),
                oracle: ThreadContext::new(
                    program.clone(),
                    cfg.seed ^ (i as u64).wrapping_mul(0x9e37),
                ),
                program: program.clone(),
                map: RenameMap::new(&mut regs),
                rob: VecDeque::new(),
                frontend: VecDeque::new(),
                fetch_pc: program.entry(),
                wrong_path: false,
                stall_until: 0,
                icache_req: None,
                wp_salt: 0,
                committed: 0,
                committed_base: 0,
                in_flight: 0,
                unresolved_branches: 0,
                outstanding_misses: 0,
            })
            .collect();
        Simulator {
            cfg,
            cycle: 0,
            stats_base_cycle: 0,
            next_seq: 0,
            threads: thread_state,
            regs,
            iq: [Vec::new(), Vec::new()],
            mem,
            bp,
            pending_loads: HashMap::new(),
            f_stats: FetchBreakdown::default(),
            i_stats: IssueBreakdown::default(),
            cond_pred: Ratio::new(),
            squashes: 0,
            squashed_insts: 0,
        }
    }

    /// Number of hardware contexts.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Cycles simulated so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Simulates `cycles` further cycles and returns the report for the
    /// current measurement window.
    ///
    /// If the configuration carries a warmup window
    /// ([`SimConfig::with_warmup`]) and nothing has been simulated yet, the
    /// warmup cycles are simulated first and [`reset_stats`] is called
    /// before the measured cycles begin, so the report covers exactly
    /// `cycles` warmed-up cycles.
    ///
    /// [`reset_stats`]: Simulator::reset_stats
    pub fn run(&mut self, cycles: u64) -> SimReport {
        if self.cycle == 0 && self.cfg.warmup_cycles > 0 {
            for _ in 0..self.cfg.warmup_cycles {
                self.step_cycle();
            }
            self.reset_stats();
        }
        for _ in 0..cycles {
            self.step_cycle();
        }
        self.report()
    }

    /// Opens a fresh measurement window: zeroes every statistic — fetch
    /// slot-loss accounting, issue counters, branch-prediction ratios and
    /// predictor activity, squash counts, and the memory-hierarchy stats —
    /// while leaving all architectural and microarchitectural state (ROBs,
    /// rename maps, in-flight misses, cache/TLB contents, BTB/PHT/RAS,
    /// oracle positions) untouched. Subsequent [`report`](Simulator::report)
    /// calls cover only the window since this call.
    pub fn reset_stats(&mut self) {
        self.stats_base_cycle = self.cycle;
        for t in &mut self.threads {
            t.committed_base = t.committed;
        }
        self.f_stats = FetchBreakdown::default();
        self.i_stats = IssueBreakdown::default();
        self.cond_pred = Ratio::new();
        self.squashes = 0;
        self.squashed_insts = 0;
        self.mem.reset_stats();
        self.bp.reset_stats();
    }

    /// Correct-path instructions committed since construction, across all
    /// threads — unaffected by [`reset_stats`](Simulator::reset_stats)
    /// (which only re-bases what reports show). Lets tests verify that
    /// statistics resets leave architectural progress untouched.
    pub fn lifetime_committed(&self) -> u64 {
        self.threads.iter().map(|t| t.committed).sum()
    }

    /// Advances the machine by one cycle.
    pub fn step_cycle(&mut self) {
        self.cycle += 1;
        self.mem.begin_cycle(self.cycle);
        self.drain_completions();
        self.writeback();
        self.commit();
        self.issue();
        self.rename();
        self.fetch();
    }

    /// The report for the current measurement window (everything since the
    /// last [`reset_stats`](Simulator::reset_stats), or since construction).
    pub fn report(&self) -> SimReport {
        let window = self.cycle - self.stats_base_cycle;
        SimReport {
            cycles: window,
            warmup_cycles: self.stats_base_cycle,
            fetch_policy: self.cfg.fetch.name().to_string(),
            issue_policy: self.cfg.issue.name().to_string(),
            partition: self.cfg.partition,
            threads: self
                .threads
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    let committed = t.committed - t.committed_base;
                    ThreadReport {
                        thread: i,
                        benchmark: t.program.name().to_string(),
                        committed,
                        ipc: if window == 0 {
                            0.0
                        } else {
                            committed as f64 / window as f64
                        },
                    }
                })
                .collect(),
            fetch: self.f_stats,
            issue: self.i_stats,
            cond_prediction: self.cond_pred,
            pred: *self.bp.stats(),
            squashes: self.squashes,
            squashed_insts: self.squashed_insts,
            mem: *self.mem.stats(),
        }
    }

    // ---- phase 1: miss completions -----------------------------------

    fn drain_completions(&mut self) {
        let cycle = self.cycle;
        for done in self.mem.take_completions() {
            if let Some((ti, seq)) = self.pending_loads.remove(&done.req) {
                let t = &mut self.threads[ti];
                if let Some(idx) = t.find(seq) {
                    if t.rob[idx].state == InstState::WaitingMem {
                        t.rob[idx].state = InstState::Executing { done_at: cycle };
                    }
                }
            } else {
                for t in &mut self.threads {
                    if t.icache_req == Some(done.req) {
                        t.icache_req = None;
                    }
                }
            }
        }
    }

    // ---- phase 2: writeback / branch resolution ----------------------

    fn writeback(&mut self) {
        let cycle = self.cycle;
        let mut finished: Vec<(usize, u64)> = Vec::new();
        for (ti, t) in self.threads.iter().enumerate() {
            for i in &t.rob {
                if let InstState::Executing { done_at } = i.state {
                    if done_at <= cycle {
                        finished.push((ti, i.seq));
                    }
                }
            }
        }
        // Resolve oldest-first so an older mispredict squashes younger work
        // before that work can act.
        finished.sort_unstable_by_key(|&(_, seq)| seq);
        for (ti, seq) in finished {
            let Some(idx) = self.threads[ti].find(seq) else {
                continue; // squashed earlier this cycle
            };
            let t = &mut self.threads[ti];
            t.rob[idx].state = InstState::Done;
            if let Some((class, p)) = t.rob[idx].dest_phys {
                let by_load = t.rob[idx].inst.op.is_load();
                self.regs[class.index()].set_ready(p, cycle, by_load);
            }
            if t.rob[idx].inst.op.is_control() && !t.rob[idx].wrong_path {
                self.resolve_branch(ti, idx);
            }
        }
    }

    fn resolve_branch(&mut self, ti: usize, idx: usize) {
        let (seq, pc, op, pred, outcome, mispredict) = {
            let i = &self.threads[ti].rob[idx];
            (i.seq, i.pc, i.inst.op, i.pred, i.outcome, i.mispredict)
        };
        let id = self.threads[ti].id;
        let outcome = outcome.expect("correct-path control instruction carries its outcome");
        let pred = pred.expect("control instruction carries its prediction");
        match op {
            Opcode::CondBranch => {
                self.cond_pred.record(pred.taken == outcome.taken);
                self.bp
                    .resolve_cond(id, pc, pred.pht_index, outcome.taken, outcome.next_pc);
            }
            Opcode::Jump | Opcode::JumpInd | Opcode::Call => {
                self.bp.resolve_uncond(id, pc, op, outcome.next_pc);
            }
            Opcode::Return => {}
            other => unreachable!("{other} is not control"),
        }
        if mispredict {
            self.squashes += 1;
            self.squash_after(ti, seq);
            if op == Opcode::CondBranch {
                self.bp
                    .repair_history(id, pred.history_before, outcome.taken);
            } else {
                self.bp.restore_history(id, pred.history_before);
            }
            let t = &mut self.threads[ti];
            t.wrong_path = false;
            t.fetch_pc = outcome.next_pc;
            t.stall_until = self.cycle + 1;
            t.icache_req = None;
        }
    }

    /// Removes every instruction of thread `ti` younger than `seq`, undoing
    /// their renames youngest-first and releasing their registers.
    fn squash_after(&mut self, ti: usize, seq: u64) {
        let t = &mut self.threads[ti];
        while let Some(back) = t.rob.back() {
            if back.seq <= seq {
                break;
            }
            let dead = t.rob.pop_back().expect("just observed");
            if let Some((class, p)) = dead.dest_phys {
                if let (Some(d), Some((_, prev))) = (dead.inst.dest, dead.prev_phys) {
                    t.map.redefine(d, prev);
                }
                self.regs[class.index()].release(p);
            }
            self.squashed_insts += 1;
        }
        // Everything still in the front end is younger than any resolvable
        // branch (rename is in order), so the whole buffer dies.
        t.frontend.clear();
        for q in &mut self.iq {
            q.retain(|&(qti, qseq)| qti != ti || qseq <= seq);
        }
        // Stale pending-load and I-miss completions are ignored on arrival:
        // the load lookup fails and the request id no longer matches.
    }

    // ---- phase 3: in-order commit ------------------------------------

    fn commit(&mut self) {
        let mut budget = self.cfg.commit_width;
        let n = self.threads.len();
        let start = self.cycle as usize % n;
        for k in 0..n {
            let ti = (start + k) % n;
            while budget > 0 {
                let t = &mut self.threads[ti];
                match t.rob.front() {
                    Some(head) if head.state == InstState::Done => {
                        debug_assert!(
                            !head.wrong_path,
                            "wrong-path instruction survived to the ROB head"
                        );
                        let head = t.rob.pop_front().expect("just observed");
                        if let Some((class, prev)) = head.prev_phys {
                            self.regs[class.index()].release(prev);
                        }
                        t.committed += 1;
                        budget -= 1;
                    }
                    _ => break,
                }
            }
        }
    }

    // ---- phase 4: issue ----------------------------------------------

    fn issue(&mut self) {
        let cycle = self.cycle;
        // Oldest unresolved branch per thread marks younger work speculative.
        let oldest_branch: Vec<Option<u64>> = self
            .threads
            .iter()
            .map(|t| {
                t.rob
                    .iter()
                    .find(|i| i.inst.op.is_control() && i.state != InstState::Done)
                    .map(|i| i.seq)
            })
            .collect();

        let mut ranked: Vec<(i64, u64, usize)> = Vec::new();
        for class in RegClass::ALL {
            for &(ti, seq) in &self.iq[class.index()] {
                let t = &self.threads[ti];
                let idx = t.find(seq).expect("queue entries track live instructions");
                let i = &t.rob[idx];
                debug_assert_eq!(i.state, InstState::Queued);
                let ready = i
                    .srcs_phys
                    .iter()
                    .flatten()
                    .all(|&(c, p)| self.regs[c.index()].is_ready(p));
                if !ready {
                    continue;
                }
                let optimistic = i.srcs_phys.iter().flatten().any(|&(c, p)| {
                    self.regs[c.index()].woken_by_load_since(p, cycle.saturating_sub(1))
                });
                let cand = IssueCandidate {
                    age: seq,
                    thread: t.id,
                    queue: class,
                    is_branch: i.inst.op.is_control(),
                    speculative: oldest_branch[ti].is_some_and(|b| seq > b),
                    optimistic,
                };
                ranked.push((self.cfg.issue.priority(&cand), seq, ti));
            }
        }
        ranked.sort_unstable();

        let mut int_used = 0usize;
        let mut ldst_used = 0usize;
        let mut fp_used = 0usize;
        let mut issued: Vec<(usize, u64)> = Vec::new();
        for (_, seq, ti) in ranked {
            if int_used == self.cfg.int_units && fp_used == self.cfg.fp_units {
                break;
            }
            let id = self.threads[ti].id;
            let idx = self.threads[ti].find(seq).expect("candidate is live");
            let op = self.threads[ti].rob[idx].inst.op;
            match op.fu_kind() {
                FuKind::IntAlu if int_used < self.cfg.int_units => int_used += 1,
                FuKind::LdSt
                    if int_used < self.cfg.int_units && ldst_used < self.cfg.ldst_units =>
                {
                    int_used += 1;
                    ldst_used += 1;
                }
                FuKind::Fp if fp_used < self.cfg.fp_units => fp_used += 1,
                _ => continue, // no unit of the right kind left this cycle
            }
            let state = if op.is_mem() {
                let addr = self.threads[ti].rob[idx].mem_addr;
                match self.mem.dcache_access(id, addr, op.is_store()) {
                    AccessResult::Hit => InstState::Executing { done_at: cycle + 1 },
                    AccessResult::Miss(req) => {
                        if op.is_load() {
                            self.pending_loads.insert(req, (ti, seq));
                            InstState::WaitingMem
                        } else {
                            // Stores retire into the write buffer; the miss
                            // traffic still occupies the hierarchy.
                            InstState::Executing { done_at: cycle + 1 }
                        }
                    }
                    AccessResult::BankConflict => {
                        // The issue slot is spent but the access must retry.
                        self.i_stats.bank_conflicts += 1;
                        continue;
                    }
                }
            } else {
                InstState::Executing {
                    done_at: cycle + u64::from(op.latency().max(1)),
                }
            };
            let i = &mut self.threads[ti].rob[idx];
            i.state = state;
            if i.wrong_path {
                self.i_stats.wrong_path += 1;
            } else {
                self.i_stats.issued += 1;
            }
            issued.push((ti, seq));
        }
        for q in &mut self.iq {
            q.retain(|e| !issued.contains(e));
        }
    }

    // ---- phase 5a: rename / dispatch ---------------------------------

    fn rename(&mut self) {
        let cycle = self.cycle;
        let mut budget = self.cfg.decode_width;
        let n = self.threads.len();
        let start = self.cycle as usize % n;
        'threads: for k in 0..n {
            let ti = (start + k) % n;
            loop {
                if budget == 0 {
                    break 'threads;
                }
                let t = &mut self.threads[ti];
                let Some(&seq) = t.frontend.front() else {
                    break;
                };
                let idx = t
                    .find(seq)
                    .expect("front-end entries track live instructions");
                let InstState::Decoding { ready_at } = t.rob[idx].state else {
                    unreachable!("front-end instruction must be decoding")
                };
                if ready_at > cycle {
                    break;
                }
                let class = t.rob[idx].inst.op.queue();
                if self.iq[class.index()].len() >= self.cfg.iq_entries {
                    break; // IQ full: dispatch stalls, fetch feels back-pressure
                }
                if let Some(d) = t.rob[idx].inst.dest {
                    if self.regs[d.class().index()].free_count() == 0 {
                        break; // out of renaming registers
                    }
                }
                // Sources read the map before the destination redefines it.
                let srcs = t.rob[idx].inst.srcs;
                for (si, s) in srcs.iter().enumerate() {
                    if let Some(r) = s {
                        t.rob[idx].srcs_phys[si] = Some((r.class(), t.map.lookup(*r)));
                    }
                }
                if let Some(d) = t.rob[idx].inst.dest {
                    let p = self.regs[d.class().index()]
                        .alloc()
                        .expect("free count checked above");
                    let prev = t.map.redefine(d, p);
                    t.rob[idx].dest_phys = Some((d.class(), p));
                    t.rob[idx].prev_phys = Some((d.class(), prev));
                }
                t.rob[idx].state = InstState::Queued;
                t.frontend.pop_front();
                self.iq[class.index()].push((ti, seq));
                budget -= 1;
            }
        }
    }

    // ---- phase 5b: fetch ---------------------------------------------

    fn fetch(&mut self) {
        let cycle = self.cycle;
        let n = self.threads.len();
        for t in &mut self.threads {
            t.refresh_counters();
        }
        let tpc = usize::from(self.cfg.partition.threads_per_cycle);
        let ipt = u32::from(self.cfg.partition.insts_per_thread);
        let fetchable: Vec<usize> = (0..n)
            .filter(|&ti| {
                let t = &self.threads[ti];
                t.icache_req.is_none()
                    && t.stall_until <= cycle
                    && t.frontend.len() < self.cfg.frontend_depth
            })
            .collect();
        let mut ranked: Vec<(i64, u64, usize)> = fetchable
            .into_iter()
            .map(|ti| {
                let t = &self.threads[ti];
                let view = ThreadFetchView {
                    thread: t.id,
                    thread_count: n as u8,
                    in_flight: t.in_flight,
                    unresolved_branches: t.unresolved_branches,
                    outstanding_misses: t.outstanding_misses,
                };
                let rotation = crate::policy::rotating_rank(cycle, t.id, n as u8);
                (self.cfg.fetch.priority(cycle, &view), rotation, ti)
            })
            .collect();
        ranked.sort_unstable();

        // As in the paper, the fetch unit takes the highest-priority
        // threads whose fetch blocks sit in distinct, currently-available
        // I-cache banks: a thread whose bank is busy is passed over in
        // favour of the next-ranked thread rather than wasting the slot.
        //
        // Loss accounting: blockages only *candidate* slots for loss while
        // fetching, because a slot one thread could not fill may still be
        // filled by the next selected thread. At the end of the cycle the
        // genuinely unused slots are attributed to the recorded causes in
        // order of occurrence, so fetched + wrong-path + losses always sums
        // to the 8-slot budget.
        let mut total_left = FetchPartition::TOTAL_WIDTH;
        let mut selected = 0usize;
        let mut losses: Vec<(LossCause, u32)> = Vec::new();
        for &(_, _, ti) in &ranked {
            if selected == tpc || total_left == 0 {
                break;
            }
            if !self.mem.icache_bank_free(self.threads[ti].fetch_pc) {
                continue;
            }
            selected += 1;
            let cap = ipt.min(total_left);
            total_left -= self.fetch_block(ti, cap, &mut losses);
        }
        if selected < tpc {
            losses.push((LossCause::NoThread, ipt * (tpc - selected) as u32));
        }
        let mut unused = total_left;
        for (cause, amount) in losses {
            if unused == 0 {
                break;
            }
            let charged = u64::from(amount.min(unused));
            unused -= amount.min(unused);
            match cause {
                LossCause::Icache => self.f_stats.lost_icache += charged,
                LossCause::Bank => self.f_stats.lost_bank_conflict += charged,
                LossCause::Fragmentation => self.f_stats.lost_fragmentation += charged,
                LossCause::FrontendFull => self.f_stats.lost_frontend_full += charged,
                LossCause::NoThread => self.f_stats.lost_no_thread += charged,
            }
        }
    }

    /// Fetches one thread's block of up to `cap` instructions; returns how
    /// many were fetched, recording candidate slot losses in `losses`.
    fn fetch_block(&mut self, ti: usize, cap: u32, losses: &mut Vec<(LossCause, u32)>) -> u32 {
        let line_bytes = self.cfg.mem.icache.line_bytes as u64;
        let block_pc = self.threads[ti].fetch_pc;
        let id = self.threads[ti].id;
        match self.mem.icache_fetch(id, block_pc) {
            AccessResult::BankConflict => {
                // Port or MSHR pressure: yield the fetch slot for a cycle so
                // thread selection rotates instead of re-picking a thread
                // that cannot start its access.
                self.threads[ti].stall_until = self.cycle + 1;
                losses.push((LossCause::Bank, cap));
                return 0;
            }
            AccessResult::Miss(req) => {
                self.threads[ti].icache_req = Some(req);
                losses.push((LossCause::Icache, cap));
                return 0;
            }
            AccessResult::Hit => {}
        }
        let line = block_pc / line_bytes;
        let mut fetched = 0u32;
        while fetched < cap {
            if self.threads[ti].frontend.len() >= self.cfg.frontend_depth {
                losses.push((LossCause::FrontendFull, cap - fetched));
                break;
            }
            let pc = self.threads[ti].fetch_pc;
            if pc / line_bytes != line {
                losses.push((LossCause::Fragmentation, cap - fetched));
                break;
            }
            let end_block = self.fetch_one(ti, pc);
            fetched += 1;
            if end_block {
                if fetched < cap {
                    losses.push((LossCause::Fragmentation, cap - fetched));
                }
                break;
            }
        }
        fetched
    }

    /// Fetches the single instruction at `pc` for thread `ti`; returns
    /// whether the fetch block ends here (taken control or misfetch stall).
    fn fetch_one(&mut self, ti: usize, pc: Addr) -> bool {
        let cycle = self.cycle;
        let wrong_path = self.threads[ti].wrong_path;
        let (inst, outcome) = if wrong_path {
            (WrongPath::inst_at(&self.threads[ti].program, pc), None)
        } else {
            debug_assert_eq!(
                self.threads[ti].oracle.pc(),
                pc,
                "fetch left the oracle's path"
            );
            let (inst, outcome) = self.threads[ti].oracle.step();
            (inst, Some(outcome))
        };

        let mut mem_addr = 0;
        if inst.op.is_mem() {
            mem_addr = match outcome {
                Some(o) => o.mem_addr,
                None => {
                    let t = &mut self.threads[ti];
                    t.wp_salt = t.wp_salt.wrapping_add(1);
                    WrongPath::mem_addr(&t.program, pc, t.wp_salt ^ cycle)
                }
            };
        }

        let mut pred = None;
        let mut mispredict = false;
        let mut end_block = false;
        let mut misfetch = false;
        let mut next_fetch = pc + INST_BYTES;

        if inst.op.is_control() {
            let id = self.threads[ti].id;
            let p = self.bp.predict(id, pc, inst.op);
            pred = Some(p);
            match outcome {
                Some(actual) => {
                    let (goes_wrong, nf, ends, misses) = classify_prediction(
                        &p,
                        &actual,
                        inst.op,
                        pc,
                        &self.threads[ti].program,
                        inst,
                    );
                    mispredict = goes_wrong;
                    next_fetch = nf;
                    end_block = ends;
                    misfetch = misses;
                    if goes_wrong {
                        self.threads[ti].wrong_path = true;
                    }
                }
                None => {
                    // Wrong path: simply follow the prediction.
                    if p.taken {
                        match p.target {
                            Some(tgt) => {
                                next_fetch = tgt;
                                end_block = true;
                            }
                            None => {
                                misfetch = true;
                                next_fetch =
                                    wrong_path_taken_target(&self.threads[ti].program, inst, pc);
                            }
                        }
                    }
                }
            }
        }

        if misfetch {
            self.f_stats.misfetches += 1;
            self.threads[ti].stall_until = cycle + 1 + self.cfg.misfetch_penalty;
            end_block = true;
        }

        if wrong_path {
            self.f_stats.wrong_path += 1;
        } else {
            self.f_stats.fetched += 1;
        }

        let seq = self.next_seq;
        self.next_seq += 1;
        let t = &mut self.threads[ti];
        t.rob.push_back(DynInst {
            seq,
            pc,
            inst,
            outcome,
            wrong_path,
            pred,
            mispredict,
            mem_addr,
            dest_phys: None,
            prev_phys: None,
            srcs_phys: [None, None],
            state: InstState::Decoding {
                ready_at: cycle + self.cfg.decode_cycles,
            },
        });
        t.frontend.push_back(seq);
        t.fetch_pc = next_fetch;
        end_block
    }
}

/// Compares one correct-path control prediction against its architectural
/// outcome. Returns `(mispredict, next_fetch_pc, end_block, misfetch)`.
fn classify_prediction(
    p: &Prediction,
    actual: &Outcome,
    op: Opcode,
    pc: Addr,
    program: &Program,
    inst: StaticInst,
) -> (bool, Addr, bool, bool) {
    let fallthrough = pc + INST_BYTES;
    if op.is_cond_branch() {
        if p.taken != actual.taken {
            // Wrong direction: fetch follows the predicted (wrong) path.
            if p.taken {
                match p.target {
                    Some(tgt) => (true, tgt, true, false),
                    // Misfetch on the wrong path: decode computes the
                    // (wrong-path) taken target.
                    None => (true, wrong_path_taken_target(program, inst, pc), true, true),
                }
            } else {
                (true, fallthrough, false, false)
            }
        } else if actual.taken {
            match p.target {
                Some(tgt) if tgt == actual.next_pc => (false, tgt, true, false),
                // Stale BTB target: fetch goes to the wrong place.
                Some(tgt) => (true, tgt, true, false),
                // Direction right, no target: stall until decode computes it.
                None => (false, actual.next_pc, true, true),
            }
        } else {
            (false, fallthrough, false, false)
        }
    } else {
        // Unconditional control: always taken; only the target can be wrong.
        match p.target {
            Some(tgt) if tgt == actual.next_pc => (false, tgt, true, false),
            Some(tgt) => (true, tgt, true, false),
            None => (false, actual.next_pc, true, true),
        }
    }
}

/// The statically-known taken target used when decode must compute a target
/// on the wrong path (no architectural outcome exists to consult).
fn wrong_path_taken_target(program: &Program, inst: StaticInst, pc: Addr) -> Addr {
    if inst.op.is_control() && inst.op != Opcode::Return && inst.meta != smt_isa::NO_META {
        let model = program.branch_model(inst.meta);
        if let Some(&t) = model.targets.first() {
            if inst.op == Opcode::JumpInd {
                return t;
            }
        }
        model.taken_target
    } else {
        pc + INST_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{FetchPartition, RoundRobin};
    use smt_workload::Benchmark;

    fn tiny_config() -> SimConfig {
        SimConfig::new().with_benchmarks(vec![Benchmark::Espresso, Benchmark::Eqntott], 11)
    }

    #[test]
    fn simulator_makes_forward_progress() {
        let mut sim = tiny_config().build();
        let report = sim.run(3_000);
        assert_eq!(report.cycles, 3_000);
        assert!(report.total_committed() > 1_000, "IPC collapsed: {report}");
        for t in &report.threads {
            assert!(t.committed > 0, "thread {} starved: {report}", t.thread);
        }
    }

    #[test]
    fn committed_stream_matches_oracle_prefix() {
        // Every committed instruction must be a correct-path instruction:
        // replaying the oracle must yield exactly the committed count.
        let mut sim = tiny_config().build();
        let report = sim.run(2_000);
        // The oracle inside the simulator has stepped exactly
        // committed + in-flight correct-path instructions.
        for (ti, t) in sim.threads.iter().enumerate() {
            let in_flight_correct = t.rob.iter().filter(|i| !i.wrong_path).count() as u64;
            assert_eq!(
                t.oracle.executed(),
                report.threads[ti].committed + in_flight_correct,
                "oracle/commit divergence on thread {ti}"
            );
        }
    }

    #[test]
    fn squashes_happen_and_recover() {
        let mut sim = tiny_config().build();
        let report = sim.run(4_000);
        assert!(
            report.squashes > 0,
            "branchy workloads must mispredict sometimes"
        );
        assert!(report.cond_prediction.total > 0);
        // Prediction accuracy should be sane (predictor learns loops).
        assert!(
            report.cond_prediction.percent() > 55.0,
            "suspiciously poor prediction: {}",
            report.cond_prediction
        );
    }

    #[test]
    fn wrong_path_work_is_fetched_but_never_committed() {
        let mut sim = tiny_config().build();
        let report = sim.run(4_000);
        assert!(
            report.fetch.wrong_path > 0,
            "mispredicts must fetch wrong-path work"
        );
        // Total commits never exceed correct-path fetches.
        assert!(report.total_committed() <= report.fetch.fetched);
    }

    #[test]
    fn physical_registers_are_conserved() {
        let mut sim = tiny_config().build();
        let _ = sim.run(2_500);
        for (ci, rf) in sim.regs.iter().enumerate() {
            let live_dests: usize = sim
                .threads
                .iter()
                .flat_map(|t| t.rob.iter())
                .filter(|i| i.dest_phys.map(|(c, _)| c.index()) == Some(ci))
                .count();
            let mapped = smt_isa::LOGICAL_REGS * sim.threads.len();
            let total = mapped + sim.cfg.extra_phys_regs;
            assert_eq!(
                rf.free_count() + live_dests + mapped,
                total,
                "register leak in class {ci}"
            );
        }
    }

    #[test]
    fn round_robin_partitions_run_too() {
        for partition in FetchPartition::all_schemes() {
            let mut sim = tiny_config()
                .with_fetch(Box::new(RoundRobin))
                .with_partition(partition)
                .build();
            let report = sim.run(1_500);
            assert!(
                report.total_committed() > 300,
                "{partition} stalled: {report}"
            );
        }
    }

    #[test]
    fn fetch_slot_accounting_sums_to_budget() {
        let mut sim = tiny_config().build();
        let r = sim.run(2_000);
        let lost = r.fetch.lost_icache
            + r.fetch.lost_bank_conflict
            + r.fetch.lost_fragmentation
            + r.fetch.lost_frontend_full
            + r.fetch.lost_no_thread;
        assert_eq!(
            r.fetch.fetched + r.fetch.wrong_path + lost,
            u64::from(FetchPartition::TOTAL_WIDTH) * r.cycles,
            "fetch slots must be fully accounted for: {r}"
        );
    }

    #[test]
    fn reset_stats_preserves_architectural_state() {
        // Simulating W+M cycles straight through and simulating W cycles of
        // warmup (stats discarded) followed by M measured cycles must leave
        // the machine in the identical architectural state: same lifetime
        // commit counts, because reset_stats only re-bases the counters.
        const WARM: u64 = 1_000;
        const MEASURE: u64 = 2_000;
        let mut cold = tiny_config().build();
        let cold_report = cold.run(WARM + MEASURE);
        let mut warm = tiny_config().with_warmup(WARM).build();
        let warm_report = warm.run(MEASURE);

        assert_eq!(
            cold.lifetime_committed(),
            warm.lifetime_committed(),
            "reset_stats disturbed architectural state"
        );
        assert_eq!(cold_report.total_committed(), cold.lifetime_committed());
        assert_eq!(warm_report.warmup_cycles, WARM);
        assert_eq!(warm_report.cycles, MEASURE);
        assert_eq!(cold_report.warmup_cycles, 0);
        // The measured window reports only post-warmup commits.
        assert!(warm_report.total_committed() < warm.lifetime_committed());

        // Slot accounting still balances over the measured window alone.
        let lost = warm_report.fetch.lost_icache
            + warm_report.fetch.lost_bank_conflict
            + warm_report.fetch.lost_fragmentation
            + warm_report.fetch.lost_frontend_full
            + warm_report.fetch.lost_no_thread;
        assert_eq!(
            warm_report.fetch.fetched + warm_report.fetch.wrong_path + lost,
            u64::from(FetchPartition::TOTAL_WIDTH) * warm_report.cycles,
            "post-reset slot accounting must balance: {warm_report}"
        );
    }

    #[test]
    fn mid_run_reset_stats_rebase_reports() {
        let mut sim = tiny_config().build();
        let _ = sim.run(1_500);
        sim.reset_stats();
        let r = sim.report();
        assert_eq!(r.cycles, 0);
        assert_eq!(r.total_committed(), 0);
        assert_eq!(r.fetch, FetchBreakdown::default());
        assert_eq!(r.squashes, 0);
        let r = sim.run(500);
        assert_eq!(r.cycles, 500);
        assert_eq!(r.warmup_cycles, 1_500);
        assert!(r.total_committed() > 0);
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let run = || tiny_config().build().run(2_000);
        let a = run();
        let b = run();
        assert_eq!(a.total_committed(), b.total_committed());
        assert_eq!(a.fetch, b.fetch);
        assert_eq!(a.squashes, b.squashes);
    }
}

//! The event-driven wakeup scheduler: miss-completion delivery, writeback,
//! branch resolution and squash.
//!
//! This module is why the hot loop does no per-cycle ROB scans:
//!
//! * **Miss completions** arrive from `smt-mem` as [`Completion`] events
//!   (scheduled when the miss started, delivered the cycle the data
//!   returns) and are matched to waiting loads through the
//!   [`PendingLoads`](super::slab::PendingLoads) table — one array index
//!   per completion — or to blocked fetch units.
//! * **Writeback** drains one bucket of the `exec_done` calendar ring per
//!   cycle — every instruction scheduled its own writeback into its
//!   completion cycle's bucket when it issued (so events must land within
//!   `EXEC_RING - 1` cycles, comfortably above the longest functional-unit
//!   latency) — processing the bucket in `seq` order, which is exactly the
//!   oldest-first order the scan-based simulator produced by sorting, so
//!   mispredict squashes observe the identical resolution order.
//! * **Wakeup** drains each completing destination register's consumer
//!   list ([`PhysRegFile::set_ready`]): every waiting consumer decrements
//!   its outstanding-operand count and enters its class's ready queue the
//!   moment the count reaches zero — entering exactly once, never polled.
//!
//! Events for squashed instructions go stale rather than being hunted down:
//! freeing a slab slot bumps its generation, so a stale completion,
//! writeback event, or wakeup-list entry simply fails its
//! [`InstSlab::live`](super::slab::InstSlab::live) check and is dropped.
//!
//! [`PhysRegFile::set_ready`]: crate::regfile::PhysRegFile::set_ready
//! [`Completion`]: smt_mem::Completion

use smt_isa::Opcode;

use crate::regfile::Consumer;

use super::slab::{preg_class, preg_index, InstState, PREG_NONE};
use super::{ExecEvent, GenRef, ReadyEntry, Simulator};

impl Simulator {
    // ---- phase 1: miss completions -----------------------------------

    /// Consumes the memory hierarchy's scheduled completion events:
    /// D-side completions move their load from [`InstState::WaitingMem`] to
    /// executing (writing back this very cycle); I-side completions unblock
    /// the fetch unit that was waiting on the line.
    pub(super) fn drain_completions(&mut self) {
        let cycle = self.cycle;
        let mut comps = std::mem::take(&mut self.completion_scratch);
        comps.clear();
        self.mem.drain_completions_into(&mut comps);
        for done in &comps {
            if let Some(tag) = self.pending_loads.remove(done.req) {
                if let Some(iref) = self.insts.live(tag) {
                    let h = &mut self.insts.hot[iref.index()];
                    if h.state() == InstState::WaitingMem {
                        h.set_state(InstState::Executing);
                        h.when = cycle;
                        let seq = h.seq;
                        self.threads[usize::from(h.ti)].outstanding_misses -= 1;
                        // Completions drain before writeback, so scheduling
                        // into the current cycle's bucket is still in time.
                        self.schedule_writeback(cycle, seq, tag);
                    }
                }
            } else {
                for t in &mut self.threads {
                    if t.icache_req == Some(done.req) {
                        t.icache_req = None;
                    }
                }
            }
        }
        self.completion_scratch = comps;
    }

    // ---- phase 2: writeback / branch resolution ----------------------

    /// Schedules instruction `(seq, inst)`'s writeback for `done_at` by
    /// dropping it into the calendar ring bucket for that cycle.
    pub(super) fn schedule_writeback(&mut self, done_at: u64, seq: u64, inst: GenRef) {
        // Hard assert: a latency past the ring horizon would wrap into a
        // nearer bucket and silently write back (and commit) early in
        // release builds. Latencies come from `smt-isa`, which this module
        // cannot see change, so fail loudly rather than corrupt results.
        assert!(
            done_at.saturating_sub(self.cycle) < super::EXEC_RING as u64,
            "writeback at {done_at} scheduled beyond the calendar horizon \
             (cycle {}, ring {})",
            self.cycle,
            super::EXEC_RING
        );
        self.exec_done[done_at as usize % super::EXEC_RING].push(ExecEvent { seq, inst });
    }

    /// Drains the writeback events due this cycle. The bucket is processed
    /// in `seq` order (global age order, exactly the order the scan-based
    /// simulator produced by sorting finished instructions) — an older
    /// mispredict squashes younger work before that work can act, and the
    /// younger instructions' events then fail their slab lookup here.
    /// Wakeups are batched bucket-wide: every completing destination's
    /// drained consumer list accumulates into one pooled scratch array and
    /// is delivered in a single [`wake_consumers`](Simulator::wake_consumers)
    /// pass after the event loop. This is result-neutral against the
    /// per-event drain:
    ///
    /// * a consumer's last outstanding operand decides its wake in both
    ///   schemes, and all of its sources' `(by_load, ready_at)` records are
    ///   final before any wake runs, so `opt_until` comes out identical;
    /// * a consumer squashed by a later (younger-seq-resolved) event in the
    ///   same bucket dies on its generation check here instead of being
    ///   inserted-then-retained out of the ready queue — same end state;
    /// * the ready queue is kept sorted by unique `seq`, so insertion
    ///   order cannot be observed.
    pub(super) fn writeback(&mut self) {
        let cycle = self.cycle;
        let slot = cycle as usize % super::EXEC_RING;
        let mut bucket = std::mem::take(&mut self.exec_done[slot]);
        if bucket.len() > 1 {
            bucket.sort_unstable_by_key(|e| e.seq);
        }
        let mut woken = std::mem::take(&mut self.woken_scratch);
        woken.clear();
        for &ExecEvent { seq, inst } in &bucket {
            let Some(iref) = self.insts.live(inst) else {
                continue; // squashed after scheduling this writeback
            };
            let h = &mut self.insts.hot[iref.index()];
            debug_assert_eq!(h.seq, seq);
            debug_assert_eq!(
                (h.state(), h.when),
                (InstState::Executing, cycle),
                "stale writeback event for a live instruction"
            );
            h.set_state(InstState::Done);
            let ti = usize::from(h.ti);
            let op = h.op;
            let dest = h.dest_phys;
            let wrong_path = h.wrong_path();
            let is_ctrl = op.is_control();
            if is_ctrl {
                self.threads[ti].resolve_ctrl(seq);
            }
            if dest != PREG_NONE {
                self.regs[preg_class(dest)].set_ready(
                    preg_index(dest),
                    cycle,
                    op.is_load(),
                    &mut woken,
                );
            }
            if is_ctrl && !wrong_path {
                self.resolve_branch(ti, iref);
            }
        }
        self.wake_consumers(&woken);
        woken.clear();
        self.woken_scratch = woken;
        // Hand the (drained) bucket's allocation back to the ring.
        bucket.clear();
        self.exec_done[slot] = bucket;
    }

    /// Delivers one register's drained wakeup list: each live consumer
    /// loses one outstanding operand and joins its class's ready queue when
    /// none remain. Stale entries (squashed consumers) fail the slab lookup
    /// and are dropped.
    fn wake_consumers(&mut self, woken: &[Consumer]) {
        for &tag in woken {
            let Some(iref) = self.insts.live(tag) else {
                continue; // consumer was squashed while waiting
            };
            let inst = &mut self.insts.hot[iref.index()];
            debug_assert_eq!(
                inst.state(),
                InstState::Queued,
                "a waiting consumer can only be in a queue"
            );
            debug_assert!(inst.pending_srcs > 0, "woken with no outstanding operands");
            inst.pending_srcs -= 1;
            if inst.pending_srcs == 0 {
                let e = ReadyEntry {
                    seq: inst.seq,
                    opt_until: super::opt_until_of(&self.regs, &inst.srcs_phys),
                    iref,
                    op: inst.op,
                    ti: inst.ti,
                };
                super::insert_ready(&mut self.ready_q, e);
            }
        }
    }

    fn resolve_branch(&mut self, ti: usize, iref: super::InstRef) {
        let (seq, op, mispredict) = {
            let h = &self.insts.hot[iref.index()];
            (h.seq, h.op, h.mispredict())
        };
        // The packed resolution payload, written at fetch for every
        // correct-path control instruction (the only callers here).
        let c = self.insts.cold[iref.index()];
        let id = self.threads[ti].id;
        // Under the perfect-branch-prediction ablation the predictor was
        // never consulted, so it is not trained either (the synthesized
        // predictions carry placeholder PHT/history fields); the
        // direction-accuracy ratio still records the (always correct)
        // resolution so reports stay meaningful.
        let train = !self
            .cfg
            .ablations
            .contains(crate::Ablation::PerfectBranchPrediction);
        match op {
            Opcode::CondBranch => {
                self.cond_pred.record(c.pred_taken() == c.outcome_taken());
                if train {
                    self.bp
                        .resolve_cond(id, c.pc, c.pht_index, c.outcome_taken(), c.next_pc);
                }
            }
            Opcode::Jump | Opcode::JumpInd | Opcode::Call => {
                if train {
                    self.bp.resolve_uncond(id, c.pc, op, c.next_pc);
                }
            }
            Opcode::Return => {}
            other => unreachable!("{other} is not control"),
        }
        if mispredict {
            self.squashes += 1;
            self.squash_after(ti, seq);
            if op == Opcode::CondBranch {
                self.bp
                    .repair_history(id, c.history_before, c.outcome_taken());
            } else {
                self.bp.restore_history(id, c.history_before);
            }
            let t = &mut self.threads[ti];
            t.wrong_path = false;
            t.fetch_pc = c.next_pc;
            t.stall_until = self.cycle + 1;
            t.icache_req = None;
        }
    }

    /// Removes every instruction of thread `ti` younger than `seq`, undoing
    /// their renames youngest-first, releasing their registers, and rolling
    /// the scheduler state back: live counters, queue occupancy and ready
    /// queues. Stale wakeup-list entries, writeback events and pending-load
    /// completions are left to die on lookup (freeing the slab slot bumps
    /// its generation).
    fn squash_after(&mut self, ti: usize, seq: u64) {
        let t = &mut self.threads[ti];
        while let Some(&back) = t.rob.back() {
            let h = self.insts.hot[back.index()];
            if h.seq <= seq {
                break;
            }
            t.rob.pop_back();
            if h.dest_phys != PREG_NONE {
                if h.prev_phys != PREG_NONE {
                    t.map.redefine(
                        super::slab::lreg_unpack(h.dest_log),
                        preg_index(h.prev_phys),
                    );
                }
                // Releasing also drops the register's wakeup list: every
                // listed consumer is younger and dying in this same squash.
                self.regs[preg_class(h.dest_phys)].release(preg_index(h.dest_phys));
            }
            match h.state() {
                InstState::Decoding => t.in_flight -= 1,
                InstState::Queued => {
                    t.in_flight -= 1;
                    self.iq_len[h.op.queue().index()] -= 1;
                }
                InstState::WaitingMem => t.outstanding_misses -= 1,
                InstState::Executing | InstState::Done => {}
            }
            self.squashed_insts += 1;
            self.insts.free(back);
        }
        // The squashed tail takes all younger unresolved branches with it.
        t.squash_ctrl_after(seq);
        // Everything still in the front end is younger than any resolvable
        // branch (rename is in order), so the whole buffer dies.
        t.frontend.clear();
        let ti8 = ti as u8;
        self.ready_q.retain(|e| e.ti != ti8 || e.seq <= seq);
    }
}

//! The event-driven wakeup scheduler: miss-completion delivery, writeback,
//! branch resolution and squash.
//!
//! This module is why the hot loop does no per-cycle ROB scans:
//!
//! * **Miss completions** arrive from `smt-mem` as [`Completion`] events
//!   (scheduled when the miss started, delivered the cycle the data
//!   returns) and are matched to waiting loads / blocked fetch units.
//! * **Writeback** drains one bucket of the `exec_done` calendar ring per
//!   cycle — every instruction scheduled its own writeback into its
//!   completion cycle's bucket when it issued (so events must land within
//!   `EXEC_RING - 1` cycles, comfortably above the longest functional-unit
//!   latency) — processing the bucket in `seq` order, which is exactly the
//!   oldest-first order the scan-based simulator produced by sorting, so
//!   mispredict squashes observe the identical resolution order.
//! * **Wakeup** drains each completing destination register's consumer
//!   list ([`PhysRegFile::set_ready`]): every waiting consumer decrements
//!   its outstanding-operand count and enters its class's ready queue the
//!   moment the count reaches zero — entering exactly once, never polled.
//!
//! Events for squashed instructions go stale rather than being hunted down:
//! sequence numbers are never reused, so a stale completion, writeback
//! event, or wakeup-list entry simply fails its ROB lookup and is dropped.
//!
//! [`PhysRegFile::set_ready`]: crate::regfile::PhysRegFile::set_ready
//! [`Completion`]: smt_mem::Completion

use smt_isa::Opcode;

use crate::regfile::Consumer;

use super::{InstState, ReadyEntry, Simulator};

impl Simulator {
    // ---- phase 1: miss completions -----------------------------------

    /// Consumes the memory hierarchy's scheduled completion events:
    /// D-side completions move their load from [`InstState::WaitingMem`] to
    /// executing (writing back this very cycle); I-side completions unblock
    /// the fetch unit that was waiting on the line.
    pub(super) fn drain_completions(&mut self) {
        let cycle = self.cycle;
        let mut comps = std::mem::take(&mut self.completion_scratch);
        comps.clear();
        self.mem.drain_completions_into(&mut comps);
        for done in &comps {
            if let Some((ti, seq, pos)) = self.pending_loads.remove(&done.req) {
                let t = &mut self.threads[ti];
                if let Some(idx) = t.locate(seq, pos) {
                    if t.rob[idx].state == InstState::WaitingMem {
                        t.rob[idx].state = InstState::Executing { done_at: cycle };
                        t.outstanding_misses -= 1;
                        // Completions drain before writeback, so scheduling
                        // into the current cycle's bucket is still in time.
                        self.schedule_writeback(cycle, seq, ti, pos);
                    }
                }
            } else {
                for t in &mut self.threads {
                    if t.icache_req == Some(done.req) {
                        t.icache_req = None;
                    }
                }
            }
        }
        self.completion_scratch = comps;
    }

    // ---- phase 2: writeback / branch resolution ----------------------

    /// Schedules instruction `(seq, ti, pos)`'s writeback for `done_at`
    /// by dropping it into the calendar ring bucket for that cycle.
    pub(super) fn schedule_writeback(&mut self, done_at: u64, seq: u64, ti: usize, pos: u64) {
        // Hard assert: a latency past the ring horizon would wrap into a
        // nearer bucket and silently write back (and commit) early in
        // release builds. Latencies come from `smt-isa`, which this module
        // cannot see change, so fail loudly rather than corrupt results.
        assert!(
            done_at.saturating_sub(self.cycle) < super::EXEC_RING as u64,
            "writeback at {done_at} scheduled beyond the calendar horizon \
             (cycle {}, ring {})",
            self.cycle,
            super::EXEC_RING
        );
        self.exec_done[done_at as usize % super::EXEC_RING].push((done_at, seq, ti, pos));
    }

    /// Drains the writeback events due this cycle. The bucket is processed
    /// in `seq` order (global age order, exactly the order the scan-based
    /// simulator produced by sorting finished instructions) — an older
    /// mispredict squashes younger work before that work can act, and the
    /// younger instructions' events then fail their ROB lookup here.
    pub(super) fn writeback(&mut self) {
        let cycle = self.cycle;
        let slot = cycle as usize % super::EXEC_RING;
        let mut bucket = std::mem::take(&mut self.exec_done[slot]);
        bucket.sort_unstable();
        for &(done_at, seq, ti, pos) in &bucket {
            debug_assert_eq!(done_at, cycle, "event drained outside its cycle");
            let Some(idx) = self.threads[ti].locate(seq, pos) else {
                continue; // squashed after scheduling this writeback
            };
            let t = &mut self.threads[ti];
            debug_assert_eq!(
                t.rob[idx].state,
                InstState::Executing { done_at },
                "stale writeback event for a live instruction"
            );
            t.rob[idx].state = InstState::Done;
            let is_ctrl = t.rob[idx].inst.op.is_control();
            if is_ctrl {
                t.resolve_ctrl(seq);
            }
            if let Some((class, p)) = t.rob[idx].dest_phys {
                let by_load = t.rob[idx].inst.op.is_load();
                let woken = self.regs[class.index()].set_ready(p, cycle, by_load);
                self.wake_consumers(&woken);
                self.regs[class.index()].recycle(woken);
            }
            if is_ctrl && !self.threads[ti].rob[idx].wrong_path {
                self.resolve_branch(ti, idx);
            }
        }
        // Hand the (drained) bucket's allocation back to the ring.
        bucket.clear();
        self.exec_done[slot] = bucket;
    }

    /// Delivers one register's drained wakeup list: each live consumer
    /// loses one outstanding operand and joins its class's ready queue when
    /// none remain. Stale entries (squashed consumers) fail the ROB lookup
    /// and are dropped.
    fn wake_consumers(&mut self, woken: &[Consumer]) {
        for &(wti, wseq, wpos) in woken {
            let t = &mut self.threads[wti];
            let Some(widx) = t.locate(wseq, wpos) else {
                continue; // consumer was squashed while waiting
            };
            let inst = &mut t.rob[widx];
            debug_assert_eq!(
                inst.state,
                InstState::Queued,
                "a waiting consumer can only be in a queue"
            );
            debug_assert!(inst.pending_srcs > 0, "woken with no outstanding operands");
            inst.pending_srcs -= 1;
            if inst.pending_srcs == 0 {
                let e = ReadyEntry {
                    ti: wti,
                    seq: wseq,
                    pos: wpos,
                    op: inst.inst.op,
                    opt_until: super::opt_until_of(&self.regs, &inst.srcs_phys),
                };
                super::insert_ready(&mut self.ready_q, e);
            }
        }
    }

    fn resolve_branch(&mut self, ti: usize, idx: usize) {
        let (seq, pc, op, pred, outcome, mispredict) = {
            let i = &self.threads[ti].rob[idx];
            (i.seq, i.pc, i.inst.op, i.pred, i.outcome, i.mispredict)
        };
        let id = self.threads[ti].id;
        let outcome = outcome.expect("correct-path control instruction carries its outcome");
        let pred = pred.expect("control instruction carries its prediction");
        // Under the perfect-branch-prediction ablation the predictor was
        // never consulted, so it is not trained either (the synthesized
        // predictions carry placeholder PHT/history fields); the
        // direction-accuracy ratio still records the (always correct)
        // resolution so reports stay meaningful.
        let train = !self
            .cfg
            .ablations
            .contains(crate::Ablation::PerfectBranchPrediction);
        match op {
            Opcode::CondBranch => {
                self.cond_pred.record(pred.taken == outcome.taken);
                if train {
                    self.bp
                        .resolve_cond(id, pc, pred.pht_index, outcome.taken, outcome.next_pc);
                }
            }
            Opcode::Jump | Opcode::JumpInd | Opcode::Call => {
                if train {
                    self.bp.resolve_uncond(id, pc, op, outcome.next_pc);
                }
            }
            Opcode::Return => {}
            other => unreachable!("{other} is not control"),
        }
        if mispredict {
            self.squashes += 1;
            self.squash_after(ti, seq);
            if op == Opcode::CondBranch {
                self.bp
                    .repair_history(id, pred.history_before, outcome.taken);
            } else {
                self.bp.restore_history(id, pred.history_before);
            }
            let t = &mut self.threads[ti];
            t.wrong_path = false;
            t.fetch_pc = outcome.next_pc;
            t.stall_until = self.cycle + 1;
            t.icache_req = None;
        }
    }

    /// Removes every instruction of thread `ti` younger than `seq`, undoing
    /// their renames youngest-first, releasing their registers, and rolling
    /// the scheduler state back: live counters, queue occupancy and ready
    /// queues. Stale wakeup-list entries, writeback events and pending-load
    /// completions are left to die on lookup (sequence numbers are unique).
    fn squash_after(&mut self, ti: usize, seq: u64) {
        let t = &mut self.threads[ti];
        while let Some(back) = t.rob.back() {
            if back.seq <= seq {
                break;
            }
            let dead = t.rob.pop_back().expect("just observed");
            if let Some((class, p)) = dead.dest_phys {
                if let (Some(d), Some((_, prev))) = (dead.inst.dest, dead.prev_phys) {
                    t.map.redefine(d, prev);
                }
                // Releasing also drops the register's wakeup list: every
                // listed consumer is younger and dying in this same squash.
                self.regs[class.index()].release(p);
            }
            match dead.state {
                InstState::Decoding { .. } => t.in_flight -= 1,
                InstState::Queued => {
                    t.in_flight -= 1;
                    self.iq_len[dead.inst.op.queue().index()] -= 1;
                }
                InstState::WaitingMem => t.outstanding_misses -= 1,
                InstState::Executing { .. } | InstState::Done => {}
            }
            self.squashed_insts += 1;
        }
        // The squashed tail takes all younger unresolved branches with it.
        t.squash_ctrl_after(seq);
        // Everything still in the front end is younger than any resolvable
        // branch (rename is in order), so the whole buffer dies.
        t.frontend.clear();
        self.ready_q.retain(|e| e.ti != ti || e.seq <= seq);
    }
}

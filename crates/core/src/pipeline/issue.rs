//! Issue: the [`IssuePolicy`](crate::IssuePolicy) ranks the ready set onto
//! the functional units.
//!
//! The candidates come straight off the age-sorted ready set — every
//! entry is a live, Queued instruction whose operands are all available
//! (the wakeup scheduler put it there exactly once), so no readiness is
//! re-checked here. Each [`ReadyEntry`] caches the opcode and the
//! load-speculation bound, so ranking and functional-unit matching touch
//! no instruction record at all; only instructions that actually win a
//! unit are looked up (one slab index through their cached
//! [`InstRef`](super::slab::InstRef)) to take their state transition.
//!
//! Ranking sorts on `(policy key, seq, …)`; sequence numbers are globally
//! unique, so the order — and therefore every downstream counter — is
//! identical to the scan-based simulator's, which built the same set by
//! polling the instruction queues. Pure-age policies
//! ([`IssuePolicy::age_is_priority`](crate::IssuePolicy::age_is_priority),
//! i.e. the default OLDEST_FIRST) take a fast path that issues straight
//! off the ready set: ranking by age would reproduce its order exactly,
//! so no candidate batch is built at all.
//!
//! [`ReadyEntry`]: super::ReadyEntry

use smt_isa::FuKind;
use smt_mem::AccessResult;

use crate::config::MAX_THREADS;
use crate::policy::IssueCandidate;

use super::slab::InstState;
use super::Simulator;

/// Ready-set tombstone for issued entries (sequence numbers never reach
/// `u64::MAX`), swept after the winner loop — no allocation.
const ISSUED: u64 = u64::MAX;

/// Functional units still available this cycle.
struct UnitBudget {
    int_left: usize,
    ldst_left: usize,
    fp_left: usize,
}

impl UnitBudget {
    fn exhausted(&self) -> bool {
        self.int_left == 0 && self.fp_left == 0
    }
}

impl Simulator {
    // ---- phase 4: issue ----------------------------------------------

    pub(super) fn issue(&mut self) {
        let mut budget = UnitBudget {
            int_left: self.cfg.int_units,
            ldst_left: self.cfg.ldst_units,
            fp_left: self.cfg.fp_units,
        };

        if self.cfg.issue.age_is_priority() {
            // Fast path: the ready set is already in issue order.
            let mut issued_any = false;
            for qi in 0..self.ready_q.len() {
                if budget.exhausted() {
                    break;
                }
                issued_any |= self.issue_slot(qi, &mut budget);
            }
            if issued_any {
                self.ready_q.retain(|e| e.seq != ISSUED);
            }
            return;
        }

        let cycle = self.cycle;
        // Oldest unresolved branch per thread marks younger work
        // speculative (maintained incrementally; the sorted list's front
        // is its minimum).
        let mut oldest_branch = [None; MAX_THREADS];
        for (ti, t) in self.threads.iter().enumerate() {
            oldest_branch[ti] = t.unresolved_ctrl.first().copied();
        }

        // Build the candidate batch off the age-sorted ready set, rank it
        // in ONE policy call (see `IssuePolicy::priority_batch`), then
        // sort. Because candidates arrive in ascending `seq`, age-keyed
        // policies produce an already-sorted array and the sort below is a
        // single O(n) ascending-run check.
        let mut cands = std::mem::take(&mut self.issue_cand_scratch);
        cands.clear();
        for e in &self.ready_q {
            debug_assert!(
                {
                    let i = &self.insts.hot[e.iref.index()];
                    i.seq == e.seq
                        && i.state() == InstState::Queued
                        && i.srcs_phys.iter().all(|&s| {
                            s == super::PREG_NONE
                                || self.regs[super::slab::preg_class(s)]
                                    .is_ready(super::slab::preg_index(s))
                        })
                        && e.opt_until == super::opt_until_of(&self.regs, &i.srcs_phys)
                },
                "ready set holds a stale or not-ready instruction"
            );
            // One compare replaces the per-cycle scoreboard probes: the
            // entry cached its load-speculation window bound on creation.
            let optimistic = cycle <= e.opt_until;
            cands.push(IssueCandidate {
                age: e.seq,
                // Thread ids are the thread indexes by construction.
                thread: smt_isa::ThreadId(e.ti),
                queue: e.op.queue(),
                is_branch: e.op.is_control(),
                speculative: oldest_branch[usize::from(e.ti)].is_some_and(|b| e.seq > b),
                optimistic,
            });
        }
        let mut keys = std::mem::take(&mut self.issue_key_scratch);
        keys.clear();
        self.cfg.issue.priority_batch(&cands, &mut keys);
        let mut ranked = std::mem::take(&mut self.issue_rank_scratch);
        ranked.clear();
        for (qi, (&key, cand)) in keys.iter().zip(&cands).enumerate() {
            ranked.push((key, cand.age, qi as u32));
        }
        self.issue_cand_scratch = cands;
        self.issue_key_scratch = keys;
        ranked.sort_unstable();

        let mut issued_any = false;
        for &(_, _, qi) in &ranked {
            if budget.exhausted() {
                break;
            }
            issued_any |= self.issue_slot(qi as usize, &mut budget);
        }
        self.issue_rank_scratch = ranked;
        // Sweep issued entries out of the ready set; bank-conflict bounces
        // were never tombstoned and stay ready for next cycle. (Retain
        // preserves order, so the set stays age-sorted.)
        if issued_any {
            self.ready_q.retain(|e| e.seq != ISSUED);
        }
    }

    /// Tries to issue the ready-set entry at `qi`: claims a functional
    /// unit of the right kind, performs the D-cache access for memory
    /// operations, schedules the writeback event and tombstones the entry.
    /// Returns whether the entry was tombstoned (issued or sent to wait on
    /// a miss); bank-conflict bounces spend their unit but stay ready.
    #[inline]
    fn issue_slot(&mut self, qi: usize, budget: &mut UnitBudget) -> bool {
        let e = self.ready_q[qi];
        let op = e.op;
        match op.fu_kind() {
            FuKind::IntAlu if budget.int_left > 0 => budget.int_left -= 1,
            FuKind::LdSt if budget.int_left > 0 && budget.ldst_left > 0 => {
                budget.int_left -= 1;
                budget.ldst_left -= 1;
            }
            FuKind::Fp if budget.fp_left > 0 => budget.fp_left -= 1,
            _ => return false, // no unit of the right kind left this cycle
        }
        let cycle = self.cycle;
        let ti = usize::from(e.ti);
        let iref = e.iref;
        debug_assert_eq!(self.insts.hot[iref.index()].seq, e.seq);
        debug_assert_eq!(self.insts.hot[iref.index()].state(), InstState::Queued);
        debug_assert_eq!(self.insts.hot[iref.index()].pending_srcs, 0);
        let (state, when) = if op.is_mem() {
            let id = self.threads[ti].id;
            let addr = self.insts.hot[iref.index()].mem_addr;
            match self.mem.dcache_access(id, addr, op.is_store()) {
                AccessResult::Hit => (InstState::Executing, cycle + 1),
                AccessResult::Miss(req) => {
                    if op.is_load() {
                        self.pending_loads.insert(req, self.insts.tag(iref));
                        (InstState::WaitingMem, 0)
                    } else {
                        // Stores retire into the write buffer; the miss
                        // traffic still occupies the hierarchy.
                        (InstState::Executing, cycle + 1)
                    }
                }
                AccessResult::BankConflict => {
                    // The issue slot is spent but the access must retry:
                    // the instruction stays Queued and therefore stays
                    // in its ready queue for next cycle.
                    self.i_stats.bank_conflicts += 1;
                    return false;
                }
            }
        } else {
            (InstState::Executing, cycle + u64::from(op.latency().max(1)))
        };
        // Leaving the instruction queue: schedule the writeback event
        // (a WaitingMem load schedules it on miss completion instead).
        if state == InstState::Executing {
            self.schedule_writeback(when, e.seq, self.insts.tag(iref));
        } else {
            self.threads[ti].outstanding_misses += 1;
        }
        self.iq_len[op.queue().index()] -= 1;
        self.ready_q[qi].seq = ISSUED;
        self.threads[ti].in_flight -= 1;
        let i = &mut self.insts.hot[iref.index()];
        i.set_state(state);
        i.when = when;
        if i.wrong_path() {
            self.i_stats.wrong_path += 1;
        } else {
            self.i_stats.issued += 1;
        }
        true
    }
}

//! Issue: the [`IssuePolicy`](crate::IssuePolicy) ranks the ready set onto
//! the functional units.
//!
//! The candidates come straight off the per-class ready queues — every
//! entry is a live, Queued instruction whose operands are all available
//! (the wakeup scheduler put it there exactly once), so no readiness is
//! re-checked here. Each [`ReadyEntry`] caches the opcode and renamed
//! sources, so ranking and functional-unit matching touch no ROB at all;
//! only instructions that actually win a unit are looked up (O(1) via
//! their stable position) to take their state transition.
//!
//! Ranking sorts on `(policy key, seq, …)`; sequence numbers are globally
//! unique, so the order — and therefore every downstream counter — is
//! identical to the scan-based simulator's, which built the same set by
//! polling the instruction queues.

use smt_isa::FuKind;
use smt_mem::AccessResult;

use crate::config::MAX_THREADS;
use crate::policy::IssueCandidate;

use super::{InstState, Simulator};

impl Simulator {
    // ---- phase 4: issue ----------------------------------------------

    pub(super) fn issue(&mut self) {
        let cycle = self.cycle;
        // Oldest unresolved branch per thread marks younger work
        // speculative (maintained incrementally; the sorted list's front
        // is its minimum).
        let mut oldest_branch = [None; MAX_THREADS];
        for (ti, t) in self.threads.iter().enumerate() {
            oldest_branch[ti] = t.unresolved_ctrl.first().copied();
        }

        // Build the candidate batch off the age-sorted ready set, rank it
        // in ONE policy call (see `IssuePolicy::priority_batch`), then
        // sort. Because candidates arrive in ascending `seq`, age-keyed
        // policies (OLDEST_FIRST) produce an already-sorted array and the
        // sort below is a single O(n) ascending-run check.
        let mut cands = std::mem::take(&mut self.issue_cand_scratch);
        cands.clear();
        for e in &self.ready_q {
            debug_assert!(
                self.threads[e.ti]
                    .locate(e.seq, e.pos)
                    .map(|idx| &self.threads[e.ti].rob[idx])
                    .is_some_and(|i| {
                        i.state == InstState::Queued
                            && i.srcs_phys
                                .iter()
                                .flatten()
                                .all(|&(c, p)| self.regs[c.index()].is_ready(p))
                            && e.opt_until == super::opt_until_of(&self.regs, &i.srcs_phys)
                    }),
                "ready set holds a stale or not-ready instruction"
            );
            // One compare replaces the per-cycle scoreboard probes: the
            // entry cached its load-speculation window bound on creation.
            let optimistic = cycle <= e.opt_until;
            cands.push(IssueCandidate {
                age: e.seq,
                // Thread ids are the thread indexes by construction.
                thread: smt_isa::ThreadId(e.ti as u8),
                queue: e.op.queue(),
                is_branch: e.op.is_control(),
                speculative: oldest_branch[e.ti].is_some_and(|b| e.seq > b),
                optimistic,
            });
        }
        let mut keys = std::mem::take(&mut self.issue_key_scratch);
        keys.clear();
        self.cfg.issue.priority_batch(&cands, &mut keys);
        let mut ranked = std::mem::take(&mut self.issue_rank_scratch);
        ranked.clear();
        for (qi, (&key, cand)) in keys.iter().zip(&cands).enumerate() {
            ranked.push((key, cand.age, qi as u32));
        }
        self.issue_cand_scratch = cands;
        self.issue_key_scratch = keys;
        ranked.sort_unstable();

        // Issued entries are tombstoned in place (sequence numbers never
        // reach `u64::MAX`) and swept after the loop — no allocation.
        const ISSUED: u64 = u64::MAX;
        let mut int_used = 0usize;
        let mut ldst_used = 0usize;
        let mut fp_used = 0usize;
        for &(_, seq, qi) in &ranked {
            if int_used == self.cfg.int_units && fp_used == self.cfg.fp_units {
                break;
            }
            let e = self.ready_q[qi as usize];
            let op = e.op;
            match op.fu_kind() {
                FuKind::IntAlu if int_used < self.cfg.int_units => int_used += 1,
                FuKind::LdSt
                    if int_used < self.cfg.int_units && ldst_used < self.cfg.ldst_units =>
                {
                    int_used += 1;
                    ldst_used += 1;
                }
                FuKind::Fp if fp_used < self.cfg.fp_units => fp_used += 1,
                _ => continue, // no unit of the right kind left this cycle
            }
            let ti = e.ti;
            let id = self.threads[ti].id;
            let idx = self.threads[ti]
                .locate(seq, e.pos)
                .expect("candidate is live");
            debug_assert_eq!(self.threads[ti].rob[idx].state, InstState::Queued);
            debug_assert_eq!(self.threads[ti].rob[idx].pending_srcs, 0);
            let state = if op.is_mem() {
                let addr = self.threads[ti].rob[idx].mem_addr;
                match self.mem.dcache_access(id, addr, op.is_store()) {
                    AccessResult::Hit => InstState::Executing { done_at: cycle + 1 },
                    AccessResult::Miss(req) => {
                        if op.is_load() {
                            self.pending_loads.insert(req, (ti, seq, e.pos));
                            InstState::WaitingMem
                        } else {
                            // Stores retire into the write buffer; the miss
                            // traffic still occupies the hierarchy.
                            InstState::Executing { done_at: cycle + 1 }
                        }
                    }
                    AccessResult::BankConflict => {
                        // The issue slot is spent but the access must retry:
                        // the instruction stays Queued and therefore stays
                        // in its ready queue for next cycle.
                        self.i_stats.bank_conflicts += 1;
                        continue;
                    }
                }
            } else {
                InstState::Executing {
                    done_at: cycle + u64::from(op.latency().max(1)),
                }
            };
            // Leaving the instruction queue: schedule the writeback event
            // (a WaitingMem load schedules it on miss completion instead).
            if let InstState::Executing { done_at } = state {
                self.schedule_writeback(done_at, seq, ti, e.pos);
            } else {
                self.threads[ti].outstanding_misses += 1;
            }
            self.iq_len[op.queue().index()] -= 1;
            self.ready_q[qi as usize].seq = ISSUED;
            let t = &mut self.threads[ti];
            t.in_flight -= 1;
            let i = &mut t.rob[idx];
            i.state = state;
            if i.wrong_path {
                self.i_stats.wrong_path += 1;
            } else {
                self.i_stats.issued += 1;
            }
        }
        self.issue_rank_scratch = ranked;
        // Sweep issued entries out of the ready set; bank-conflict bounces
        // were never tombstoned and stay ready for next cycle. (Retain
        // preserves order, so the set stays age-sorted.)
        self.ready_q.retain(|e| e.seq != ISSUED);
    }
}

//! Rename/dispatch: decoded instructions claim renaming registers and
//! instruction-queue slots, and register themselves with the wakeup
//! scheduler.
//!
//! Dispatch is where an instruction's scheduling fate is decided exactly
//! once: each source operand is looked up in the rename map; sources whose
//! physical register is not yet ready add the instruction to that
//! register's wakeup list, and an instruction with no outstanding sources
//! goes straight onto its class's ready queue. Either way it is never
//! polled again.
//!
//! The whole stage works off the packed hot record: logical registers were
//! re-encoded into single bytes at fetch ([`slab::lreg_pack`]), so rename
//! never touches the cold array.
//!
//! [`slab::lreg_pack`]: super::slab::lreg_pack

use super::slab::{lreg_unpack, preg_pack, InstState, LREG_NONE};
use super::{ReadyEntry, Simulator};

impl Simulator {
    // ---- phase 5a: rename / dispatch ---------------------------------

    pub(super) fn rename(&mut self) {
        let cycle = self.cycle;
        let mut budget = self.cfg.decode_width;
        let n = self.threads.len();
        let start = self.cycle as usize % n;
        'threads: for k in 0..n {
            let ti = (start + k) % n;
            loop {
                if budget == 0 {
                    break 'threads;
                }
                let t = &mut self.threads[ti];
                // The head's decode-ready cycle rides in the queue entry,
                // so a not-yet-decoded head costs no slab touch.
                let Some(&(iref, ready_at)) = t.frontend.front() else {
                    break;
                };
                if ready_at > cycle {
                    break;
                }
                let hot = &self.insts.hot[iref.index()];
                debug_assert_eq!(
                    hot.state(),
                    InstState::Decoding,
                    "front-end instruction must be decoding"
                );
                debug_assert_eq!(hot.when, ready_at);
                let class = hot.op.queue();
                if self.iq_len[class.index()] >= self.iq_limit {
                    break; // IQ full: dispatch stalls, fetch feels back-pressure
                }
                let dest_log = hot.dest_log;
                if dest_log != LREG_NONE {
                    let d = lreg_unpack(dest_log);
                    if self.regs[d.class().index()].free_count() == 0 {
                        break; // out of renaming registers
                    }
                }
                // Sources read the map before the destination redefines it.
                // A source that is not ready registers this instruction on
                // the producer's wakeup list; readiness is monotone for live
                // instructions, so the count can only fall from here.
                let srcs_log = hot.srcs_log;
                let seq = hot.seq;
                let tag = self.insts.tag(iref);
                let mut srcs_phys = [super::PREG_NONE; 2];
                let mut pending: u8 = 0;
                let mut opt_until = 0u64;
                for (si, &s) in srcs_log.iter().enumerate() {
                    if s != LREG_NONE {
                        let r = lreg_unpack(s);
                        let ci = r.class().index();
                        let p = t.map.lookup(r);
                        srcs_phys[si] = preg_pack(r.class(), p);
                        // One record touch decides ready/opt-window or
                        // registers the wakeup, instead of an is-ready
                        // probe plus a second opt-window pass.
                        match self.regs[ci].check_or_wait(p, tag) {
                            Some(end) => opt_until = opt_until.max(end),
                            None => pending += 1,
                        }
                    }
                }
                let hot = &mut self.insts.hot[iref.index()];
                hot.srcs_phys = srcs_phys;
                if dest_log != LREG_NONE {
                    let d = lreg_unpack(dest_log);
                    let p = self.regs[d.class().index()]
                        .alloc()
                        .expect("free count checked above");
                    let prev = t.map.redefine(d, p);
                    hot.dest_phys = preg_pack(d.class(), p);
                    hot.prev_phys = preg_pack(d.class(), prev);
                }
                hot.pending_srcs = pending;
                hot.set_state(InstState::Queued);
                let op = hot.op;
                t.frontend.pop_front();
                self.iq_len[class.index()] += 1;
                if pending == 0 {
                    // All operands already available: ready from dispatch.
                    debug_assert_eq!(opt_until, super::opt_until_of(&self.regs, &srcs_phys));
                    let e = ReadyEntry {
                        seq,
                        opt_until,
                        iref,
                        op,
                        ti: ti as u8,
                    };
                    super::insert_ready(&mut self.ready_q, e);
                }
                budget -= 1;
            }
        }
    }
}

//! Rename/dispatch: decoded instructions claim renaming registers and
//! instruction-queue slots, and register themselves with the wakeup
//! scheduler.
//!
//! Dispatch is where an instruction's scheduling fate is decided exactly
//! once: each source operand is looked up in the rename map; sources whose
//! physical register is not yet ready add the instruction to that
//! register's wakeup list, and an instruction with no outstanding sources
//! goes straight onto its class's ready queue. Either way it is never
//! polled again.
//!
//! The whole stage works off the packed hot record: logical registers were
//! re-encoded into single bytes at fetch ([`slab::lreg_pack`]), so rename
//! never touches the cold array.
//!
//! [`slab::lreg_pack`]: super::slab::lreg_pack

use super::slab::{lreg_unpack, preg_pack, InstState, LREG_NONE};
use super::{ReadyEntry, Simulator};

impl Simulator {
    // ---- phase 5a: rename / dispatch ---------------------------------

    /// Block-granular rename: each thread's run of decode-ready front-end
    /// heads is processed as one block against the local
    /// [`RenameScratch`](super::RenameScratch) map — the shared regfile
    /// record behind a logical register is probed at most once per block
    /// (with the wakeup-list registration fused into the probe,
    /// [`check_or_wait`](crate::regfile::PhysRegFile::check_or_wait)),
    /// intra-block producer→consumer dependencies resolve against the
    /// scratch map without touching the shared scoreboard, and IQ
    /// occupancy is updated once per block with the net delta. Readiness
    /// is monotone during rename (nothing becomes ready mid-phase), so
    /// every answer the scratch map serves is bit-identical to a fresh
    /// per-instruction probe — and a cached not-ready answer never goes
    /// stale before the follow-up registration.
    pub(super) fn rename(&mut self) {
        let cycle = self.cycle;
        let mut budget = self.cfg.decode_width;
        let n = self.threads.len();
        let start = self.cycle as usize % n;
        let iq_limit = self.iq_limit;
        // Split every field the block loop touches once, so the inner loop
        // works entirely off locals the compiler can keep in registers.
        let threads = &mut self.threads;
        let insts = &mut self.insts;
        let regs = &mut self.regs;
        let loc = &mut self.rename_loc;
        let ready_q = &mut self.ready_q;
        let iq_len = &mut self.iq_len;
        let mut done = false;
        for k in 0..n {
            if done || budget == 0 {
                break;
            }
            let ti = (start + k) % n;
            let t = &mut threads[ti];
            // A fresh stamp invalidates the whole scratch map in O(1).
            loc.next_block();
            let mut iq_delta = [0usize; 2];
            loop {
                if budget == 0 {
                    done = true;
                    break;
                }
                // The head's decode-ready cycle rides in the queue entry,
                // so a not-yet-decoded head costs no slab touch.
                let Some(&(iref, ready_at)) = t.frontend.front() else {
                    break;
                };
                if ready_at > cycle {
                    break;
                }
                let hot = &insts.hot[iref.index()];
                debug_assert_eq!(
                    hot.state(),
                    InstState::Decoding,
                    "front-end instruction must be decoding"
                );
                debug_assert_eq!(hot.when, ready_at);
                let class = hot.op.queue();
                if iq_len[class.index()] + iq_delta[class.index()] >= iq_limit {
                    break; // IQ full: dispatch stalls, fetch feels back-pressure
                }
                let dest_log = hot.dest_log;
                if dest_log != LREG_NONE {
                    let d = lreg_unpack(dest_log);
                    if regs[d.class().index()].free_count() == 0 {
                        break; // out of renaming registers
                    }
                }
                // Sources read the map before the destination redefines it.
                // A source that is not ready registers this instruction on
                // the producer's wakeup list on the spot; readiness is
                // monotone for live instructions, so the count can only
                // fall from here.
                let srcs_log = hot.srcs_log;
                let seq = hot.seq;
                let tag = insts.tag(iref);
                let mut srcs_phys = [super::PREG_NONE; 2];
                let mut pending: u8 = 0;
                let mut opt_until = 0u64;
                for (si, &s) in srcs_log.iter().enumerate() {
                    if s != LREG_NONE {
                        // Indexing by the packed byte skips both the
                        // unpack and the bounds check (u8 < 256).
                        let e = &mut loc.map[usize::from(s)];
                        let (packed, opt) = if e.stamp == loc.stamp {
                            // Block-local hit: an intra-block producer's
                            // fresh register, or a source this block
                            // already probed. Not ready — register on the
                            // producer's wakeup list (probe already paid).
                            if e.opt == u64::MAX {
                                regs[super::slab::preg_class(e.phys)]
                                    .add_waiter(super::slab::preg_index(e.phys), tag);
                            }
                            (e.phys, e.opt)
                        } else {
                            let r = lreg_unpack(s);
                            let ci = r.class().index();
                            let p = t.map.lookup(r);
                            let opt = regs[ci].check_or_wait(p, tag).unwrap_or(u64::MAX);
                            let packed = preg_pack(r.class(), p);
                            *e = super::RenameEntry {
                                opt,
                                stamp: loc.stamp,
                                phys: packed,
                            };
                            (packed, opt)
                        };
                        srcs_phys[si] = packed;
                        if opt == u64::MAX {
                            pending += 1;
                        } else {
                            opt_until = opt_until.max(opt);
                        }
                    }
                }
                let hot = &mut insts.hot[iref.index()];
                hot.srcs_phys = srcs_phys;
                if dest_log != LREG_NONE {
                    let d = lreg_unpack(dest_log);
                    let ci = d.class().index();
                    let p = regs[ci].alloc().expect("free count checked above");
                    let prev = t.map.redefine(d, p);
                    hot.dest_phys = preg_pack(d.class(), p);
                    hot.prev_phys = preg_pack(d.class(), prev);
                    // Later consumers in this block resolve against the
                    // fresh (not-ready) register locally.
                    loc.map[usize::from(dest_log)] = super::RenameEntry {
                        opt: u64::MAX,
                        stamp: loc.stamp,
                        phys: hot.dest_phys,
                    };
                }
                hot.pending_srcs = pending;
                hot.set_state(InstState::Queued);
                let op = hot.op;
                t.frontend.pop_front();
                iq_delta[class.index()] += 1;
                if pending == 0 {
                    // All operands already available: ready from dispatch.
                    debug_assert_eq!(opt_until, super::opt_until_of(regs, &srcs_phys));
                    let e = ReadyEntry {
                        seq,
                        opt_until,
                        iref,
                        op,
                        ti: ti as u8,
                    };
                    super::insert_ready(ready_q, e);
                }
                budget -= 1;
            }
            iq_len[0] += iq_delta[0];
            iq_len[1] += iq_delta[1];
        }
    }
}

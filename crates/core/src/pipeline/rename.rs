//! Rename/dispatch: decoded instructions claim renaming registers and
//! instruction-queue slots, and register themselves with the wakeup
//! scheduler.
//!
//! Dispatch is where an instruction's scheduling fate is decided exactly
//! once: each source operand is looked up in the rename map; sources whose
//! physical register is not yet ready add the instruction to that
//! register's wakeup list, and an instruction with no outstanding sources
//! goes straight onto its class's ready queue. Either way it is never
//! polled again.

use super::{InstState, ReadyEntry, Simulator};

impl Simulator {
    // ---- phase 5a: rename / dispatch ---------------------------------

    pub(super) fn rename(&mut self) {
        let cycle = self.cycle;
        let mut budget = self.cfg.decode_width;
        let n = self.threads.len();
        let start = self.cycle as usize % n;
        'threads: for k in 0..n {
            let ti = (start + k) % n;
            loop {
                if budget == 0 {
                    break 'threads;
                }
                let t = &mut self.threads[ti];
                let Some(&(seq, pos)) = t.frontend.front() else {
                    break;
                };
                let idx = t
                    .locate(seq, pos)
                    .expect("front-end entries track live instructions");
                let InstState::Decoding { ready_at } = t.rob[idx].state else {
                    unreachable!("front-end instruction must be decoding")
                };
                if ready_at > cycle {
                    break;
                }
                let class = t.rob[idx].inst.op.queue();
                if self.iq_len[class.index()] >= self.iq_limit {
                    break; // IQ full: dispatch stalls, fetch feels back-pressure
                }
                if let Some(d) = t.rob[idx].inst.dest {
                    if self.regs[d.class().index()].free_count() == 0 {
                        break; // out of renaming registers
                    }
                }
                // Sources read the map before the destination redefines it.
                // A source that is not ready registers this instruction on
                // the producer's wakeup list; readiness is monotone for live
                // instructions, so the count can only fall from here.
                let srcs = t.rob[idx].inst.srcs;
                let mut pending: u8 = 0;
                for (si, s) in srcs.iter().enumerate() {
                    if let Some(r) = s {
                        let p = t.map.lookup(*r);
                        t.rob[idx].srcs_phys[si] = Some((r.class(), p));
                        if !self.regs[r.class().index()].is_ready(p) {
                            self.regs[r.class().index()].add_waiter(p, (ti, seq, pos));
                            pending += 1;
                        }
                    }
                }
                if let Some(d) = t.rob[idx].inst.dest {
                    let p = self.regs[d.class().index()]
                        .alloc()
                        .expect("free count checked above");
                    let prev = t.map.redefine(d, p);
                    t.rob[idx].dest_phys = Some((d.class(), p));
                    t.rob[idx].prev_phys = Some((d.class(), prev));
                }
                t.rob[idx].pending_srcs = pending;
                t.rob[idx].state = InstState::Queued;
                t.frontend.pop_front();
                self.iq_len[class.index()] += 1;
                if pending == 0 {
                    // All operands already available: ready from dispatch.
                    let e = ReadyEntry {
                        ti,
                        seq,
                        pos,
                        op: t.rob[idx].inst.op,
                        opt_until: super::opt_until_of(&self.regs, &t.rob[idx].srcs_phys),
                    };
                    super::insert_ready(&mut self.ready_q, e);
                }
                budget -= 1;
            }
        }
    }
}

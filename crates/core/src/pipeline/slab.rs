//! Data-oriented storage for in-flight instructions: a generation-indexed
//! slab of packed records, split hot/cold.
//!
//! The PR-3 scheduler removed the per-cycle ROB *scans*; this module
//! removes the per-instruction *cache misses* that remained. Three ideas:
//!
//! * **One slab, 4-byte handles.** Every in-flight instruction lives in a
//!   single [`InstSlab`] shared by all threads, addressed by a 4-byte
//!   [`InstRef`]. Per-thread ROB order, the front-end queue, the ready set
//!   and every scheduler artifact store these refs instead of re-deriving
//!   `(thread, seq, stable position)` triples: commit and squash move
//!   4-byte handles, not ~100-byte structs, and a lookup is one array
//!   index. Freed slots go on a free list and are reused, so the slab's
//!   footprint is the in-flight high-water mark, not the instruction
//!   count.
//! * **Generation authentication.** Scheduler artifacts (wakeup-list
//!   entries, calendar events, pending-load completions) can outlive a
//!   squashed instruction. Each slot carries a generation counter, bumped
//!   on free; artifacts carry a [`GenRef`] — ref plus the generation
//!   observed at creation — and [`InstSlab::live`] refuses a stale pair.
//!   This replaces the PR-3 scheme (u64 sequence number + stable-position
//!   arithmetic, 24–32 bytes per artifact) with an 8-byte token and one
//!   compare.
//! * **Hot/cold split.** [`HotInst`] packs everything the steady-state
//!   rename/issue/wakeup/commit path touches into 48 bytes (slot
//!   generation included) — physical registers as sentinel-encoded
//!   `u16`s, state and path flags folded into one byte, logical registers
//!   re-encoded into single bytes — so one instruction is one cache-line
//!   fraction, not two lines. [`ColdInst`] keeps the 24-byte
//!   branch-resolution payload, written only for correct-path control
//!   instructions and touched only when one resolves.
//!
//! The module also houses [`PendingLoads`], the `ReqId`-indexed
//! open-addressed table that replaces the old `FastHashMap` for
//! outstanding D-cache misses: request ids are dense and monotonic, so a
//! miss completion resolves with one masked array index and one compare
//! instead of a hash probe.

use smt_branch::Prediction;
use smt_isa::{Addr, Opcode, Outcome, Reg, RegClass};
use smt_mem::ReqId;
use smt_stats::binio::{invalid, BinReader, BinWriter};

const COLD_PRED_TAKEN: u8 = 1 << 0;
const COLD_OUTCOME_TAKEN: u8 = 1 << 1;

/// A 4-byte handle to one slab slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct InstRef(u32);

impl InstRef {
    /// The slot index this handle names.
    #[inline]
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw slot index (checkpoint serialization).
    #[inline]
    pub(crate) fn raw(self) -> u32 {
        self.0
    }

    /// Reassembles a handle from a serialized slot index (checkpoint
    /// restore; the caller validates the index against the slab).
    #[inline]
    pub(crate) fn from_raw(i: u32) -> InstRef {
        InstRef(i)
    }
}

/// An authenticated handle: the slot plus the generation observed when the
/// artifact was created. Stale artifacts (their instruction squashed, the
/// slot possibly reused) fail [`InstSlab::live`] and are dropped, exactly
/// as stale sequence numbers failed `Thread::locate` before.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct GenRef {
    iref: InstRef,
    gen: u32,
}

impl GenRef {
    /// A placeholder handle for empty storage slots (never dereferenced:
    /// slot 0's generation-0 tag is only ever compared after a length
    /// check).
    pub(crate) const NULL: GenRef = GenRef {
        iref: InstRef(0),
        gen: 0,
    };

    /// A synthetic handle for unit tests outside this module (e.g. the
    /// register-file wakeup-list tests, which never resolve their
    /// consumers against a slab).
    #[cfg(test)]
    pub(crate) fn synthetic(slot: u32, gen: u32) -> GenRef {
        GenRef {
            iref: InstRef(slot),
            gen,
        }
    }

    /// The slot handle (checkpoint serialization).
    #[inline]
    pub(crate) fn slot(self) -> InstRef {
        self.iref
    }

    /// The observed generation (checkpoint serialization).
    #[inline]
    pub(crate) fn generation(self) -> u32 {
        self.gen
    }

    /// Reassembles a handle from its serialized parts (checkpoint restore).
    #[inline]
    pub(crate) fn from_parts(iref: InstRef, gen: u32) -> GenRef {
        GenRef { iref, gen }
    }
}

/// Sentinel for "no physical register" in the packed `u16` encoding.
pub(crate) const PREG_NONE: u16 = u16::MAX;

/// Packs a `(RegClass, phys)` pair into one `u16`: bit 15 is the class,
/// the low 15 bits the register index. [`PREG_NONE`] is reserved (the
/// physical files are far smaller than 2^15 − 1 registers).
#[inline]
pub(crate) fn preg_pack(class: RegClass, p: u16) -> u16 {
    debug_assert!(p < 0x7fff, "physical register index overflows packing");
    ((class.index() as u16) << 15) | p
}

/// The class index (0 = int, 1 = fp) of a packed physical register.
#[inline]
pub(crate) fn preg_class(v: u16) -> usize {
    (v >> 15) as usize
}

/// The register index of a packed physical register.
#[inline]
pub(crate) fn preg_index(v: u16) -> u16 {
    v & 0x7fff
}

/// Sentinel for "no logical register" in the packed `u8` encoding.
pub(crate) const LREG_NONE: u8 = u8::MAX;

/// Packs a logical register into one byte: bit 7 is the class, the low
/// bits the index (0..32).
#[inline]
pub(crate) fn lreg_pack(r: Option<Reg>) -> u8 {
    match r {
        None => LREG_NONE,
        Some(r) => ((r.class().index() as u8) << 7) | r.index() as u8,
    }
}

/// Decodes a packed logical register ([`lreg_pack`]); must not be
/// [`LREG_NONE`].
#[inline]
pub(crate) fn lreg_unpack(v: u8) -> Reg {
    debug_assert_ne!(v, LREG_NONE);
    if v & 0x80 == 0 {
        Reg::int(v)
    } else {
        Reg::fp(v & 0x7f)
    }
}

/// Lifecycle of one in-flight instruction (3 bits of [`HotInst::flags`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum InstState {
    /// In the front end (decode/rename pipe); enters a queue once
    /// [`HotInst::when`] (decode-done cycle) has passed.
    Decoding = 0,
    /// In an instruction queue, waiting for operands and a functional unit.
    Queued = 1,
    /// Issued; result written back at [`HotInst::when`].
    Executing = 2,
    /// A load waiting on an outstanding D-cache miss.
    WaitingMem = 3,
    /// Executed; awaiting in-order retirement.
    Done = 4,
}

const STATE_MASK: u8 = 0b0000_0111;
const FLAG_WRONG_PATH: u8 = 0b0000_1000;
const FLAG_MISPREDICT: u8 = 0b0001_0000;

/// The packed hot record: everything the steady-state cycle path touches,
/// in 48 bytes (including the slot's generation, so artifact
/// authentication and the subsequent field reads share one cache line).
/// Cold payload lives in the parallel [`ColdInst`] array.
#[derive(Debug, Clone, Copy)]
pub(crate) struct HotInst {
    /// The slot's generation, owned by the slab (callers never write it):
    /// bumped on free so outstanding [`GenRef`]s go stale.
    pub(crate) gen: u32,
    /// Global fetch order; never reused (the issue policies' age key).
    pub(crate) seq: u64,
    /// Decode-done cycle while `Decoding`; writeback cycle while
    /// `Executing`; meaningless otherwise.
    pub(crate) when: u64,
    /// Effective address for memory instructions (synthesized on the wrong
    /// path).
    pub(crate) mem_addr: Addr,
    /// Packed destination physical register ([`preg_pack`] / [`PREG_NONE`]).
    pub(crate) dest_phys: u16,
    /// Packed previous mapping of the destination (freed at commit,
    /// restored at squash).
    pub(crate) prev_phys: u16,
    /// Packed renamed sources.
    pub(crate) srcs_phys: [u16; 2],
    /// State (bits 0–2), wrong-path (bit 3) and mispredict (bit 4) flags.
    pub(crate) flags: u8,
    /// Instruction class (functional unit, queue, latency).
    pub(crate) op: Opcode,
    /// Owning thread index.
    pub(crate) ti: u8,
    /// Source operands still outstanding; while non-zero the instruction
    /// sits only in wakeup lists.
    pub(crate) pending_srcs: u8,
    /// Packed logical destination ([`lreg_pack`]): rename and squash never
    /// touch the cold record.
    pub(crate) dest_log: u8,
    /// Packed logical sources.
    pub(crate) srcs_log: [u8; 2],
}

impl HotInst {
    #[inline]
    pub(crate) fn state(&self) -> InstState {
        match self.flags & STATE_MASK {
            0 => InstState::Decoding,
            1 => InstState::Queued,
            2 => InstState::Executing,
            3 => InstState::WaitingMem,
            _ => InstState::Done,
        }
    }

    #[inline]
    pub(crate) fn set_state(&mut self, s: InstState) {
        self.flags = (self.flags & !STATE_MASK) | s as u8;
    }

    #[inline]
    pub(crate) fn wrong_path(&self) -> bool {
        self.flags & FLAG_WRONG_PATH != 0
    }

    #[inline]
    pub(crate) fn mispredict(&self) -> bool {
        self.flags & FLAG_MISPREDICT != 0
    }

    /// The initial flag byte for a freshly fetched (Decoding) instruction.
    #[inline]
    pub(crate) fn initial_flags(wrong_path: bool, mispredict: bool) -> u8 {
        InstState::Decoding as u8
            | if wrong_path { FLAG_WRONG_PATH } else { 0 }
            | if mispredict { FLAG_MISPREDICT } else { 0 }
    }
}

/// The cold record: the branch-resolution payload, packed to 24 bytes and
/// written **only for correct-path control instructions** — the only ones
/// ever resolved against it. Everything else the pipeline needs after
/// fetch lives in the hot record, so ~85% of fetched instructions never
/// touch this array at all.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ColdInst {
    /// Fetch PC.
    pub(crate) pc: Addr,
    /// The architectural next PC (`Outcome::next_pc`).
    pub(crate) next_pc: Addr,
    /// PHT index snapshot for predictor training.
    pub(crate) pht_index: u32,
    /// Global-history snapshot for mispredict repair.
    pub(crate) history_before: u16,
    /// Direction bits: predicted taken, target present, outcome taken.
    cflags: u8,
}

impl ColdInst {
    /// Packs the resolution payload of a correct-path control instruction.
    #[inline]
    pub(crate) fn for_control(pc: Addr, pred: &Prediction, outcome: &Outcome) -> ColdInst {
        ColdInst {
            pc,
            next_pc: outcome.next_pc,
            pht_index: pred.pht_index,
            history_before: pred.history_before,
            cflags: (pred.taken as u8 * COLD_PRED_TAKEN)
                | (outcome.taken as u8 * COLD_OUTCOME_TAKEN),
        }
    }

    /// The predicted direction.
    #[inline]
    pub(crate) fn pred_taken(&self) -> bool {
        self.cflags & COLD_PRED_TAKEN != 0
    }

    /// The architectural direction.
    #[inline]
    pub(crate) fn outcome_taken(&self) -> bool {
        self.cflags & COLD_OUTCOME_TAKEN != 0
    }
}

/// An open block allocation transaction on the [`InstSlab`]: counts the
/// slots staged from the back of the free list so
/// [`commit_block`](InstSlab::commit_block) can settle them in one
/// truncate. See [`begin_block`](InstSlab::begin_block).
#[derive(Debug)]
pub(crate) struct BlockCursor {
    /// Free-list slots staged (from the back, LIFO) since the last commit.
    taken: usize,
}

/// The generation-indexed slab holding every in-flight instruction.
#[derive(Debug)]
pub(crate) struct InstSlab {
    /// Packed hot records, indexed by [`InstRef`]; each record carries its
    /// slot's generation.
    pub(crate) hot: Vec<HotInst>,
    /// Parallel cold records (branch-resolution payload; written only for
    /// correct-path control instructions).
    pub(crate) cold: Vec<ColdInst>,
    /// Reusable slots (LIFO, so the hottest lines are reused first).
    free: Vec<u32>,
}

impl InstSlab {
    /// An empty slab with room for `capacity` in-flight instructions
    /// before the first growth.
    pub(crate) fn with_capacity(capacity: usize) -> InstSlab {
        InstSlab {
            hot: Vec::with_capacity(capacity),
            cold: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity),
        }
    }

    /// Number of live (allocated) instructions (test observability; the
    /// pipeline itself never needs a census).
    #[cfg(test)]
    pub(crate) fn live_count(&self) -> usize {
        self.hot.len() - self.free.len()
    }

    /// Allocates a slot for `hot` (its `gen` field is overwritten with the
    /// slot's), reusing the most recently freed slot if any. The cold
    /// record is **not** written — callers that need one (correct-path
    /// control instructions) store it through
    /// [`cold`](InstSlab::cold) afterwards; everyone else skips the array
    /// entirely.
    ///
    /// The pipeline itself allocates through the block transaction
    /// ([`begin_block`](InstSlab::begin_block) /
    /// [`stage`](InstSlab::stage) /
    /// [`commit_block`](InstSlab::commit_block), the block-granular front
    /// end); this single-record form remains as the semantic reference the
    /// block-equivalence tests compare against.
    #[cfg(test)]
    pub(crate) fn alloc(&mut self, mut hot: HotInst) -> InstRef {
        match self.free.pop() {
            Some(i) => {
                hot.gen = self.hot[i as usize].gen;
                self.hot[i as usize] = hot;
                InstRef(i)
            }
            None => {
                let i = self.hot.len() as u32;
                hot.gen = 0;
                self.hot.push(hot);
                self.cold.push(ColdInst::default());
                InstRef(i)
            }
        }
    }

    /// Opens a block allocation transaction (the block-granular front
    /// end's bulk path): [`stage`](InstSlab::stage) writes each record
    /// straight into its final slot — no staging copy — and
    /// [`commit_block`](InstSlab::commit_block) settles the free list in
    /// **one transaction per block** instead of one pop per instruction.
    ///
    /// Slot assignment is bit-identical to successive single-record
    /// `alloc` calls: record `i` takes the `i`-th slot from the back of
    /// the free list (LIFO, hottest lines first), and once the list runs
    /// dry the remainder extends the slab in order. Staged slots remain
    /// on the free list until the commit; that intermediate state is
    /// never observable because the slab has a single owner and fetch
    /// stages whole blocks atomically within a cycle phase.
    pub(crate) fn begin_block(&mut self) -> BlockCursor {
        BlockCursor { taken: 0 }
    }

    /// Stages `hot` into the next slot of the open block transaction
    /// (its `gen` field is overwritten with the slot's, exactly as in
    /// `alloc`; the cold record is untouched).
    #[inline]
    pub(crate) fn stage(&mut self, cur: &mut BlockCursor, mut hot: HotInst) -> InstRef {
        let top = self.free.len();
        if cur.taken < top {
            let slot = self.free[top - 1 - cur.taken] as usize;
            cur.taken += 1;
            hot.gen = self.hot[slot].gen;
            self.hot[slot] = hot;
            InstRef(slot as u32)
        } else {
            let slot = self.hot.len() as u32;
            hot.gen = 0;
            self.hot.push(hot);
            self.cold.push(ColdInst::default());
            InstRef(slot)
        }
    }

    /// Commits the open block transaction: removes every staged slot from
    /// the free list in one truncate (growth slots are already permanent)
    /// and resets the cursor for the next block.
    #[inline]
    pub(crate) fn commit_block(&mut self, cur: &mut BlockCursor) {
        let top = self.free.len();
        self.free.truncate(top - cur.taken);
        cur.taken = 0;
    }

    /// Frees a slot (commit or squash): bumps its generation so every
    /// outstanding [`GenRef`] to it goes stale, and recycles the index.
    pub(crate) fn free(&mut self, r: InstRef) {
        let h = &mut self.hot[r.index()];
        h.gen = h.gen.wrapping_add(1);
        self.free.push(r.0);
    }

    /// Frees a whole retired block as one free-list transaction: each
    /// slot's generation is bumped and the indices are pushed in order —
    /// bit-identical to successive [`free`](InstSlab::free) calls, so
    /// subsequent (block) allocation reuses the same slots in the same
    /// LIFO order.
    pub(crate) fn free_block(&mut self, refs: &[InstRef]) {
        self.free.reserve(refs.len());
        for &r in refs {
            let h = &mut self.hot[r.index()];
            h.gen = h.gen.wrapping_add(1);
            self.free.push(r.0);
        }
    }

    /// An authenticated handle to a currently-live slot.
    #[inline]
    pub(crate) fn tag(&self, r: InstRef) -> GenRef {
        GenRef {
            iref: r,
            gen: self.hot[r.index()].gen,
        }
    }

    /// Resolves an authenticated handle, or `None` when the instruction is
    /// gone (committed or squashed; the slot's generation moved on).
    #[inline]
    pub(crate) fn live(&self, t: GenRef) -> Option<InstRef> {
        (self.hot[t.iref.index()].gen == t.gen).then_some(t.iref)
    }

    /// Serializes every slot (hot and cold records, field by field) and the
    /// free list through `w` (checkpoint save).
    pub(crate) fn save_state<W: std::io::Write>(
        &self,
        w: &mut BinWriter<W>,
    ) -> std::io::Result<()> {
        w.len(self.hot.len())?;
        for h in &self.hot {
            w.u32(h.gen)?;
            w.u64(h.seq)?;
            w.u64(h.when)?;
            w.u64(h.mem_addr)?;
            w.u16(h.dest_phys)?;
            w.u16(h.prev_phys)?;
            w.u16(h.srcs_phys[0])?;
            w.u16(h.srcs_phys[1])?;
            w.u8(h.flags)?;
            w.u8(h.op.code())?;
            w.u8(h.ti)?;
            w.u8(h.pending_srcs)?;
            w.u8(h.dest_log)?;
            w.u8(h.srcs_log[0])?;
            w.u8(h.srcs_log[1])?;
        }
        for c in &self.cold {
            w.u64(c.pc)?;
            w.u64(c.next_pc)?;
            w.u32(c.pht_index)?;
            w.u16(c.history_before)?;
            w.u8(c.cflags)?;
        }
        w.len(self.free.len())?;
        for &i in &self.free {
            w.u32(i)?;
        }
        Ok(())
    }

    /// Rebuilds a slab from its serialized form (checkpoint restore).
    /// Every slot index, opcode, flag byte and free-list entry is
    /// validated; malformed data yields
    /// [`std::io::ErrorKind::InvalidData`] errors, never a panic.
    pub(crate) fn restore_state<R: std::io::Read>(
        r: &mut BinReader<R>,
    ) -> std::io::Result<InstSlab> {
        let n = r.len()?;
        let mut slab = InstSlab::with_capacity(n);
        for _ in 0..n {
            let gen = r.u32()?;
            let seq = r.u64()?;
            let when = r.u64()?;
            let mem_addr = r.u64()?;
            let dest_phys = r.u16()?;
            let prev_phys = r.u16()?;
            let srcs_phys = [r.u16()?, r.u16()?];
            let flags = r.u8()?;
            if flags & STATE_MASK > InstState::Done as u8
                || flags & !(STATE_MASK | FLAG_WRONG_PATH | FLAG_MISPREDICT) != 0
            {
                return Err(invalid(format!(
                    "invalid instruction flag byte {flags:#04x}"
                )));
            }
            let op_code = r.u8()?;
            let op = Opcode::from_code(op_code)
                .ok_or_else(|| invalid(format!("invalid opcode code {op_code}")))?;
            let ti = r.u8()?;
            let pending_srcs = r.u8()?;
            let dest_log = r.u8()?;
            let srcs_log = [r.u8()?, r.u8()?];
            slab.hot.push(HotInst {
                gen,
                seq,
                when,
                mem_addr,
                dest_phys,
                prev_phys,
                srcs_phys,
                flags,
                op,
                ti,
                pending_srcs,
                dest_log,
                srcs_log,
            });
        }
        for _ in 0..n {
            let pc = r.u64()?;
            let next_pc = r.u64()?;
            let pht_index = r.u32()?;
            let history_before = r.u16()?;
            let cflags = r.u8()?;
            if cflags & !(COLD_PRED_TAKEN | COLD_OUTCOME_TAKEN) != 0 {
                return Err(invalid(format!("invalid cold flag byte {cflags:#04x}")));
            }
            slab.cold.push(ColdInst {
                pc,
                next_pc,
                pht_index,
                history_before,
                cflags,
            });
        }
        let n_free = r.len()?;
        if n_free > n {
            return Err(invalid(format!(
                "free list has {n_free} entries for a {n}-slot slab"
            )));
        }
        let mut seen = vec![false; n];
        for _ in 0..n_free {
            let i = r.u32()?;
            let idx = i as usize;
            if idx >= n || std::mem::replace(&mut seen[idx], true) {
                return Err(invalid(format!("invalid free-list slot {i}")));
            }
            slab.free.push(i);
        }
        Ok(slab)
    }
}

/// Outstanding D-cache-miss loads, keyed by [`ReqId`] in an open-addressed
/// power-of-two table: request ids are issued densely and monotonically by
/// `smt-mem`, and the live window (oldest outstanding to newest) is small,
/// so `req & mask` almost never collides — a completion lookup is one
/// array index plus one compare. On the rare collision (the live window
/// outgrew the table) the table doubles and re-places its live entries.
#[derive(Debug)]
pub(crate) struct PendingLoads {
    slots: Vec<PendingSlot>,
    mask: u64,
    len: usize,
}

#[derive(Debug, Clone, Copy)]
struct PendingSlot {
    /// The raw request id, or `EMPTY`.
    req: u64,
    /// The waiting load.
    load: GenRef,
}

const EMPTY: u64 = u64::MAX;

impl PendingLoads {
    /// An empty table with `capacity` (rounded up to a power of two) slots.
    pub(crate) fn with_capacity(capacity: usize) -> PendingLoads {
        let cap = capacity.next_power_of_two().max(8);
        PendingLoads {
            slots: vec![
                PendingSlot {
                    req: EMPTY,
                    load: GenRef {
                        iref: InstRef(0),
                        gen: 0,
                    },
                };
                cap
            ],
            mask: cap as u64 - 1,
            len: 0,
        }
    }

    /// Number of outstanding entries (test observability).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Records the load waiting on `req`. Request ids are unique, so `req`
    /// is never already present.
    pub(crate) fn insert(&mut self, req: ReqId, load: GenRef) {
        loop {
            let idx = (req.0 & self.mask) as usize;
            if self.slots[idx].req == EMPTY {
                self.slots[idx] = PendingSlot { req: req.0, load };
                self.len += 1;
                return;
            }
            debug_assert_ne!(self.slots[idx].req, req.0, "request ids are unique");
            self.grow();
        }
    }

    /// Removes and returns the load waiting on `req`, if one is recorded.
    #[inline]
    pub(crate) fn remove(&mut self, req: ReqId) -> Option<GenRef> {
        let idx = (req.0 & self.mask) as usize;
        let slot = self.slots[idx];
        if slot.req != req.0 {
            return None; // not a pending load (e.g. an I-side completion)
        }
        self.slots[idx].req = EMPTY;
        self.len -= 1;
        Some(slot.load)
    }

    /// Serializes the table capacity and the live entries in slot order
    /// (checkpoint save). Slot order is deterministic for a given logical
    /// content and capacity, so identical state produces identical bytes.
    pub(crate) fn save_state<W: std::io::Write>(
        &self,
        w: &mut BinWriter<W>,
    ) -> std::io::Result<()> {
        w.len(self.slots.len())?;
        w.len(self.len)?;
        for s in &self.slots {
            if s.req != EMPTY {
                w.u64(s.req)?;
                w.u32(s.load.slot().raw())?;
                w.u32(s.load.generation())?;
            }
        }
        Ok(())
    }

    /// Rebuilds a table from its serialized form (checkpoint restore),
    /// re-inserting each live entry into a table of the saved capacity so
    /// the slot layout — and thus any subsequent checkpoint — reproduces
    /// exactly. `slab_len` bounds the load handles.
    pub(crate) fn restore_state<R: std::io::Read>(
        r: &mut BinReader<R>,
        slab_len: usize,
    ) -> std::io::Result<PendingLoads> {
        let cap = r.len()?;
        if !cap.is_power_of_two() || cap > 1 << 24 {
            return Err(invalid(format!(
                "invalid pending-load table capacity {cap}"
            )));
        }
        let n = r.len()?;
        if n > cap {
            return Err(invalid(format!(
                "{n} pending loads exceed table capacity {cap}"
            )));
        }
        let mut table = PendingLoads::with_capacity(cap);
        for _ in 0..n {
            let req = r.u64()?;
            if req == EMPTY {
                return Err(invalid(
                    "pending-load request id collides with the empty sentinel",
                ));
            }
            let slot = r.u32()?;
            if slot as usize >= slab_len {
                return Err(invalid(format!(
                    "pending-load slot {slot} outside the slab"
                )));
            }
            let gen = r.u32()?;
            table.insert(ReqId(req), GenRef::from_parts(InstRef::from_raw(slot), gen));
        }
        Ok(table)
    }

    /// Doubles the table and re-places the live entries (their home slot
    /// depends on the mask).
    fn grow(&mut self) {
        let old = std::mem::replace(
            &mut self.slots,
            vec![
                PendingSlot {
                    req: EMPTY,
                    load: GenRef {
                        iref: InstRef(0),
                        gen: 0,
                    },
                };
                (self.mask as usize + 1) * 2
            ],
        );
        self.mask = self.slots.len() as u64 - 1;
        for s in old {
            if s.req != EMPTY {
                let idx = (s.req & self.mask) as usize;
                debug_assert_eq!(self.slots[idx].req, EMPTY, "doubling separates the window");
                self.slots[idx] = s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hot(seq: u64) -> HotInst {
        HotInst {
            gen: 0,
            seq,
            when: 0,
            mem_addr: 0,
            dest_phys: PREG_NONE,
            prev_phys: PREG_NONE,
            srcs_phys: [PREG_NONE, PREG_NONE],
            flags: HotInst::initial_flags(false, false),
            op: Opcode::IntAlu,
            ti: 0,
            pending_srcs: 0,
            dest_log: LREG_NONE,
            srcs_log: [LREG_NONE, LREG_NONE],
        }
    }

    #[test]
    fn hot_record_is_one_packed_line_fraction() {
        assert_eq!(std::mem::size_of::<HotInst>(), 48, "hot record grew");
        assert_eq!(std::mem::size_of::<ColdInst>(), 24, "cold record grew");
        assert_eq!(std::mem::size_of::<InstRef>(), 4);
        assert_eq!(std::mem::size_of::<GenRef>(), 8);
    }

    #[test]
    fn state_and_flags_pack_into_one_byte() {
        let mut h = hot(1);
        assert_eq!(h.state(), InstState::Decoding);
        assert!(!h.wrong_path() && !h.mispredict());
        for s in [
            InstState::Queued,
            InstState::Executing,
            InstState::WaitingMem,
            InstState::Done,
            InstState::Decoding,
        ] {
            h.set_state(s);
            assert_eq!(h.state(), s);
        }
        let h2 = HotInst {
            flags: HotInst::initial_flags(true, true),
            ..h
        };
        assert!(h2.wrong_path() && h2.mispredict());
        assert_eq!(h2.state(), InstState::Decoding);
    }

    #[test]
    fn preg_packing_roundtrips() {
        for (class, p) in [
            (RegClass::Int, 0u16),
            (RegClass::Fp, 355),
            (RegClass::Int, 0x7ffe),
        ] {
            let v = preg_pack(class, p);
            assert_ne!(v, PREG_NONE);
            assert_eq!(preg_class(v), class.index());
            assert_eq!(preg_index(v), p);
        }
    }

    #[test]
    fn lreg_packing_roundtrips() {
        assert_eq!(lreg_pack(None), LREG_NONE);
        for i in 0..32 {
            for r in [Reg::int(i), Reg::fp(i)] {
                let v = lreg_pack(Some(r));
                assert_ne!(v, LREG_NONE);
                assert_eq!(lreg_unpack(v), r);
            }
        }
    }

    #[test]
    fn slab_reuses_slots_and_stales_old_refs() {
        let mut slab = InstSlab::with_capacity(4);
        let a = slab.alloc(hot(1));
        let tag_a = slab.tag(a);
        assert_eq!(slab.live(tag_a), Some(a));
        assert_eq!(slab.live_count(), 1);

        slab.free(a);
        assert_eq!(slab.live(tag_a), None, "freed slot must stale its refs");
        assert_eq!(slab.live_count(), 0);

        // LIFO reuse: the same slot comes back with a new generation.
        let b = slab.alloc(hot(2));
        assert_eq!(b.index(), a.index());
        assert_eq!(slab.live(tag_a), None, "old tag stays stale after reuse");
        assert_eq!(slab.live(slab.tag(b)), Some(b));
        assert_eq!(slab.hot[b.index()].seq, 2);
    }

    #[test]
    fn block_transactions_match_instruction_granular_order() {
        // The same alloc/free sequence driven per-instruction and as block
        // transactions must produce identical slot assignment, generations
        // and free-list order — the invariant the block-granular front end
        // (and the forced block-size-1 equivalence test) rests on.
        let mut single = InstSlab::with_capacity(4);
        let mut block = InstSlab::with_capacity(4);
        // Pre-populate and free in a scrambled order so the free lists are
        // non-trivial and partially cover the next block.
        let mut pre_s = Vec::new();
        let mut pre_b = Vec::new();
        let mut cur = block.begin_block();
        for seq in 0..5 {
            pre_s.push(single.alloc(hot(seq)));
            pre_b.push(block.stage(&mut cur, hot(seq)));
        }
        block.commit_block(&mut cur);
        assert_eq!(pre_s, pre_b);
        for &i in &[1usize, 3, 4] {
            single.free(pre_s[i]);
        }
        block.free_block(&[pre_b[1], pre_b[3], pre_b[4]]);
        // A 5-record block over a 3-entry free list: 3 reuses + 2 grows.
        let hots: Vec<HotInst> = (10..15).map(hot).collect();
        let mut cur = block.begin_block();
        let out_b: Vec<InstRef> = hots.iter().map(|&h| block.stage(&mut cur, h)).collect();
        block.commit_block(&mut cur);
        let out_s: Vec<InstRef> = hots.iter().map(|&h| single.alloc(h)).collect();
        assert_eq!(out_s, out_b, "slot assignment diverged");
        assert_eq!(single.hot.len(), block.hot.len());
        assert_eq!(single.free.len(), block.free.len());
        for (a, b) in single.hot.iter().zip(&block.hot) {
            assert_eq!((a.gen, a.seq), (b.gen, b.seq), "record state diverged");
        }
        // Tags authenticate identically after the mixed transaction.
        for (&a, &b) in out_s.iter().zip(&out_b) {
            assert_eq!(single.tag(a), block.tag(b));
        }
    }

    #[test]
    fn slab_generation_wraparound_is_safe() {
        // Drive one slot's generation across the u32 wrap boundary: tags
        // taken on the generations adjacent to the wrap must stay stale
        // through it, and fresh tags must keep authenticating. (A tag only
        // ever collides again after exactly 2^32 reuses of its slot, which
        // would take over 4 billion simulated cycles while an artifact's
        // lifetime is bounded by the calendar ring and register lifetimes.)
        let mut slab = InstSlab::with_capacity(1);
        let r = slab.alloc(hot(0));
        slab.free(r);
        // Fast-forward the generation to just before the wrap.
        slab.hot[r.index()].gen = u32::MAX - 1;
        let r2 = slab.alloc(hot(1));
        assert_eq!(r2.index(), r.index());
        let pre_wrap = slab.tag(r2); // gen u32::MAX - 1
        slab.free(r2); // -> u32::MAX
        let r3 = slab.alloc(hot(2));
        let at_max = slab.tag(r3); // gen u32::MAX
        assert_eq!(slab.live(pre_wrap), None, "freed tag is stale");
        assert_eq!(slab.live(at_max), Some(r3));
        slab.free(r3); // u32::MAX -> 0 (wrap)
        let r4 = slab.alloc(hot(3));
        assert_eq!(slab.hot[r4.index()].gen, 0, "generation wrapped");
        assert_eq!(slab.live(pre_wrap), None, "pre-wrap tag stays stale");
        assert_eq!(slab.live(at_max), None, "wrap-boundary tag stays stale");
        assert_eq!(slab.live(slab.tag(r4)), Some(r4));
        assert_eq!(slab.hot[r4.index()].seq, 3);
    }

    #[test]
    fn pending_loads_insert_remove_roundtrip() {
        let mut slab = InstSlab::with_capacity(2);
        let a = slab.alloc(hot(1));
        let b = slab.alloc(hot(2));
        let mut p = PendingLoads::with_capacity(8);
        p.insert(ReqId(3), slab.tag(a));
        p.insert(ReqId(11), slab.tag(b)); // 11 & 7 == 3: forces a grow
        assert_eq!(p.len(), 2);
        assert_eq!(p.remove(ReqId(3)), Some(slab.tag(a)));
        assert_eq!(p.remove(ReqId(3)), None, "removal is once-only");
        assert_eq!(p.remove(ReqId(11)), Some(slab.tag(b)));
        assert_eq!(p.len(), 0);
        // Unknown requests (e.g. I-side completions) resolve to None.
        assert_eq!(p.remove(ReqId(999)), None);
    }

    #[test]
    fn pending_loads_survive_many_colliding_windows() {
        let mut slab = InstSlab::with_capacity(1);
        let a = slab.alloc(hot(1));
        let tag = slab.tag(a);
        let mut p = PendingLoads::with_capacity(8);
        // Monotonic request ids with a sliding live window, as the memory
        // hierarchy produces them.
        for base in 0..1000u64 {
            for k in 0..4 {
                p.insert(ReqId(base * 4 + k), tag);
            }
            for k in 0..4 {
                assert_eq!(p.remove(ReqId(base * 4 + k)), Some(tag));
            }
        }
        assert_eq!(p.len(), 0);
    }
}

//! The cycle-level SMT pipeline, built around an **event-driven scheduler**
//! over **data-oriented state**.
//!
//! Eight logical stages on the paper's machine collapse here into five
//! simulated phases per cycle, processed oldest-work-first so data flows
//! one cycle per stage without double-stepping:
//!
//! 1. **completions** — drain finished cache misses (I-side unblocks fetch,
//!    D-side wakes waiting loads), delivered by `smt-mem` as scheduled
//!    events rather than discovered by polling,
//! 2. **writeback** — finished instructions make their results available;
//!    correct-path branches resolve, train the predictor, and squash on a
//!    mispredict,
//! 3. **commit** — per-thread in-order retirement, freeing renaming
//!    registers,
//! 4. **issue** — the [`IssuePolicy`](crate::IssuePolicy) orders the ready
//!    set onto the 6 integer (4 load/store-capable) and 3 FP units;
//!    loads/stores arbitrate for D-cache banks,
//! 5. **rename/dispatch** then **fetch** — the front end: decoded
//!    instructions claim renaming registers and queue slots, and the
//!    [`FetchPolicy`](crate::FetchPolicy) picks which threads fill the
//!    8-wide fetch bandwidth under the active
//!    [`FetchPartition`](crate::FetchPartition).
//!
//! # The event-driven scheduler
//!
//! Nothing in the hot loop re-scans the ROBs. Three structures carry all
//! scheduling state forward:
//!
//! * **Wakeup lists** (`smt-core::regfile`): a dispatched instruction whose
//!   operands are not all ready registers itself on each outstanding
//!   physical register; writeback drains the list and decrements the
//!   consumer's outstanding-operand count.
//! * **The ready set** (`ready_q`, kept sorted by age): an instruction
//!   enters exactly once — at dispatch when every operand is already ready,
//!   or when its last operand's writeback wakes it — and leaves when
//!   issued. The [`IssuePolicy`](crate::IssuePolicy) therefore ranks only
//!   genuinely-ready instructions, and age-keyed policies see a pre-sorted
//!   candidate array.
//! * **Writeback events** (`exec_done`, a calendar ring over the next
//!   [`EXEC_RING`] cycles): issue schedules each instruction's writeback
//!   into the bucket of its completion cycle; the writeback phase drains
//!   exactly one bucket per cycle instead of scanning for
//!   `done_at <= cycle`.
//!
//! # Data-oriented state (PR 5)
//!
//! All in-flight instructions live in one generation-indexed
//! [`InstSlab`](slab::InstSlab): packed 48-byte hot records in one array,
//! cold report/resolution payload in a parallel array, 4-byte
//! [`InstRef`](slab::InstRef) handles everywhere else. Per-thread ROBs,
//! the front-end queues, the ready set, wakeup lists, calendar events and
//! pending-load completions all store refs into the slab; stale artifacts
//! die on a generation compare ([`slab::GenRef`]). Outstanding D-miss
//! loads live in a [`PendingLoads`](slab::PendingLoads) table indexed by
//! request id, so a miss completion is an array index, not a hash probe.
//! Every per-cycle structure is pooled or reused in place — the warmed
//! steady state performs **zero heap allocations per cycle** (pinned by an
//! allocation-guard test in `smt-bench`).
//!
//! Per-thread policy counters (ICOUNT / BRCOUNT / MISSCOUNT) are maintained
//! incrementally at the same transitions, so fetch ranking reads them in
//! O(1). The stage phases live in sibling modules ([`fetch`], [`rename`],
//! [`issue`], [`commit`], [`scheduler`]); this module owns the machine
//! state and the cycle driver.
//!
//! Fetch follows *predicted* paths: the per-thread oracle supplies the
//! correct path, the predictor supplies choices, and any disagreement sends
//! the thread down a synthesized wrong path until the offending branch
//! resolves and squashes it — so wrong-path instructions consume fetch
//! slots, rename registers, queue entries and functional units exactly as
//! the paper requires.

mod checkpoint;
mod commit;
mod fetch;
mod issue;
mod rename;
mod scheduler;
pub(crate) mod slab;

use std::collections::VecDeque;
use std::sync::Arc;

use smt_branch::BranchPredictor;
use smt_isa::{Addr, ThreadId};
use smt_mem::{MemoryHierarchy, ReqId};
use smt_stats::Ratio;
use smt_workload::{Program, SyntheticSource, WorkloadSource};

use crate::config::{SimConfig, WorkloadSpec};
use crate::regfile::{PhysRegFile, RenameMap};
use crate::report::{FetchBreakdown, IssueBreakdown, SimReport, ThreadReport};

use slab::{GenRef, InstRef, InstSlab, PendingLoads, PREG_NONE};

/// One ready instruction, parked in the age-sorted ready set until issued.
///
/// Carries everything ranking needs — the slab handle, the static opcode
/// and the load-speculation window bound — so building issue candidates
/// touches neither the slab nor the register scoreboard; the slab is
/// consulted only for instructions that actually win a functional unit.
#[derive(Debug, Clone, Copy)]
struct ReadyEntry {
    /// Global age (the issue policies' `age` field).
    seq: u64,
    /// Last cycle at which this instruction still issues on a load-hit
    /// assumption (the OPT_LAST tag): the maximum
    /// [`opt_window_end`](crate::regfile::PhysRegFile::opt_window_end)
    /// over its sources, cached at entry creation — source scoreboard
    /// state is immutable while a consumer is ready (see that method).
    opt_until: u64,
    /// The instruction's slab slot. Ready entries are removed eagerly on
    /// squash, so (unlike wakeup/calendar artifacts) they never go stale
    /// and need no generation.
    iref: InstRef,
    /// The instruction's opcode (functional-unit kind, queue, latency).
    op: smt_isa::Opcode,
    /// Owning thread index.
    ti: u8,
}

/// One scheduled writeback: the completion event for an issued (or
/// miss-completed) instruction, parked in its due cycle's calendar bucket.
/// `seq` orders the bucket (global age order) and the tagged ref fails its
/// slab lookup if the instruction was squashed after scheduling.
#[derive(Debug, Clone, Copy)]
struct ExecEvent {
    seq: u64,
    inst: GenRef,
}

/// Size of the writeback calendar ring: a power of two comfortably above
/// the longest result latency (30 cycles, `FpDivDouble`), so every
/// scheduled writeback lands in an empty-or-current bucket.
const EXEC_RING: usize = 64;

/// Inserts into the age-sorted ready set. Entries usually belong at or
/// near the tail (readiness correlates with age), so the binary search
/// plus short memmove is cheap.
fn insert_ready(ready_q: &mut Vec<ReadyEntry>, e: ReadyEntry) {
    // Dispatch inserts are usually the youngest instruction in the set:
    // check the tail before paying for a binary search.
    if ready_q.last().is_none_or(|l| l.seq < e.seq) {
        ready_q.push(e);
    } else {
        let at = ready_q.partition_point(|r| r.seq < e.seq);
        ready_q.insert(at, e);
    }
}

/// The [`ReadyEntry::opt_until`] bound for an instruction with the given
/// packed (and all-ready) sources.
fn opt_until_of(regs: &[PhysRegFile; 2], srcs: &[u16; 2]) -> u64 {
    let mut end = 0;
    for &s in srcs {
        if s != PREG_NONE {
            end = end.max(regs[slab::preg_class(s)].opt_window_end(slab::preg_index(s)));
        }
    }
    end
}

/// One hardware context.
///
/// `repr(C)` pins the field order: the members the every-cycle fetch
/// ranking reads (PC, stall/miss gates, the live policy counters, and the
/// unresolved-control list whose length is BRCOUNT) lead the struct, so
/// building a [`ThreadFetchView`](crate::policy::ThreadFetchView) touches
/// the first cache line instead of sampling a ~400-byte struct at random
/// offsets.
#[repr(C)]
struct Thread {
    fetch_pc: Addr,
    /// Fetch suppressed until this cycle (misfetch/redirect penalties).
    stall_until: u64,
    /// Outstanding I-cache miss blocking fetch.
    icache_req: Option<ReqId>,
    /// Live ICOUNT counter: instructions in decode, rename and the queues
    /// (fetched but not yet issued). Incremented at fetch, decremented at
    /// issue and squash — never recomputed by scanning.
    in_flight: u32,
    /// Live MISSCOUNT counter: loads waiting on outstanding D-misses.
    outstanding_misses: u32,
    /// Fetch has diverged from the correct path.
    wrong_path: bool,
    id: ThreadId,
    /// Instructions still in the front end (fetched, not yet renamed),
    /// paired with the cycle decode finishes: rename gates on the head's
    /// ready cycle straight from this queue, touching the slab only for
    /// instructions it actually dispatches.
    frontend: VecDeque<(InstRef, u64)>,
    /// Sequence numbers of fetched control instructions not yet executed
    /// (state before [`slab::InstState::Done`]) — BRCOUNT is its size, and
    /// its front is the speculation boundary the issue policies consult.
    /// Always sorted: fetch appends monotonically increasing sequence
    /// numbers, writeback removes by binary search, and squash truncates
    /// the (youngest) tail.
    unresolved_ctrl: Vec<u64>,
    /// All in-flight instructions in fetch order (the per-thread ROB) —
    /// 4-byte slab handles; commit pops the front, squash pops the back.
    rob: VecDeque<InstRef>,
    /// Salt for wrong-path address synthesis.
    wp_salt: u64,
    committed: u64,
    /// `committed` snapshot at the last `reset_stats` (reports measure the
    /// window since then).
    committed_base: u64,
    map: RenameMap,
    /// The thread's instruction source: correct-path stream, wrong-path
    /// synthesis and checkpoint hooks, behind the pluggable
    /// [`WorkloadSource`] trait (synthetic oracle, RISC-V execution or
    /// trace replay — fetch never names a concrete backend).
    source: Box<dyn WorkloadSource>,
}

impl Thread {
    /// Removes one resolved control instruction from the unresolved list
    /// (no-op if absent, e.g. removed by an earlier squash).
    fn resolve_ctrl(&mut self, seq: u64) {
        if let Ok(i) = self.unresolved_ctrl.binary_search(&seq) {
            self.unresolved_ctrl.remove(i);
        }
    }

    /// Drops every unresolved control instruction younger than `seq`
    /// (squash: the tail, since the list is sorted by age).
    fn squash_ctrl_after(&mut self, seq: u64) {
        let keep = self.unresolved_ctrl.partition_point(|&s| s <= seq);
        self.unresolved_ctrl.truncate(keep);
    }
}

/// The simulator: a configured machine plus its architectural state.
///
/// Built by [`SimConfig::build`]; driven by [`Simulator::run`].
pub struct Simulator {
    cfg: SimConfig,
    /// Effective per-thread front-end capacity: `cfg.frontend_depth`, or
    /// `usize::MAX` under the `InfiniteFrontendQueues` ablation.
    frontend_limit: usize,
    /// Effective per-class instruction-queue capacity: `cfg.iq_entries`,
    /// or `usize::MAX` under the `InfiniteFrontendQueues` ablation.
    iq_limit: usize,
    cycle: u64,
    /// Cycle at which the current measurement window opened (the last
    /// `reset_stats`; 0 if statistics were never reset).
    stats_base_cycle: u64,
    next_seq: u64,
    threads: Vec<Thread>,
    /// Every in-flight instruction, across all threads (see [`slab`]).
    insts: InstSlab,
    regs: [PhysRegFile; 2],
    /// The ready set: Queued instructions whose operands are all
    /// available. Instructions enter exactly once (see module docs) and
    /// leave when issued. Kept sorted by age (seq): entries arrive near
    /// the tail, and an age-ordered ready set means the default
    /// OLDEST_FIRST ranking is built pre-sorted, which the sort detects
    /// in O(n).
    ready_q: Vec<ReadyEntry>,
    /// Instruction-queue occupancy per class: Queued instructions whether
    /// or not their operands are ready (dispatch back-pressure).
    iq_len: [usize; 2],
    /// Scheduled writebacks, as a calendar ring: bucket `c % EXEC_RING`
    /// holds the [`ExecEvent`]s due at cycle `c`. Every event is scheduled
    /// at most [`EXEC_RING`]` - 1` cycles ahead (the longest
    /// functional-unit latency is 30; memory misses schedule on
    /// completion), so push and drain are O(1) with no heap discipline.
    /// Events for squashed instructions go stale and are skipped when
    /// their bucket drains (the slot generation moved on).
    exec_done: Vec<Vec<ExecEvent>>,
    mem: MemoryHierarchy,
    bp: BranchPredictor,
    /// Outstanding D-miss loads, keyed by request id (see
    /// [`slab::PendingLoads`]).
    pending_loads: PendingLoads,
    f_stats: FetchBreakdown,
    i_stats: IssueBreakdown,
    cond_pred: Ratio,
    squashes: u64,
    squashed_insts: u64,
    /// Provenance marker copied into [`SimReport`]: set only by
    /// [`mark_restored_from_checkpoint`](Simulator::mark_restored_from_checkpoint),
    /// never serialized and never restored (restoring must reproduce a
    /// straight-through simulator bit for bit).
    restored_from_checkpoint: bool,
    /// Reused sort buffer for fetch ranking (allocation-free hot loop).
    fetch_rank_scratch: Vec<(i64, u64, usize)>,
    /// Reused view batch handed to `FetchPolicy::priority_batch`.
    fetch_view_scratch: Vec<crate::policy::ThreadFetchView>,
    /// Reused key buffer filled by `FetchPolicy::priority_batch`.
    fetch_key_scratch: Vec<i64>,
    /// Reused sort buffer for issue ranking:
    /// `(policy key, seq, index in the ready set)`.
    issue_rank_scratch: Vec<(i64, u64, u32)>,
    /// Reused candidate batch handed to `IssuePolicy::priority_batch`.
    issue_cand_scratch: Vec<crate::policy::IssueCandidate>,
    /// Reused key buffer filled by `IssuePolicy::priority_batch`.
    issue_key_scratch: Vec<i64>,
    /// Reused fetch slot-loss accumulator.
    loss_scratch: Vec<(fetch::LossCause, u32)>,
    /// Reused miss-completion drain buffer.
    completion_scratch: Vec<smt_mem::Completion>,
    /// Reused wakeup drain buffer (filled by `PhysRegFile::set_ready`).
    woken_scratch: Vec<crate::regfile::Consumer>,
    /// Reused commit retirement buffer: the ready-to-retire run popped
    /// off a ROB, freed as one `InstSlab::free_block` transaction.
    commit_scratch: Vec<InstRef>,
    /// The block-granular rename stage's local scratch map (see
    /// [`RenameScratch`]).
    rename_loc: RenameScratch,
}

/// One entry of the block-local rename scratch map: the cached rename
/// answer for a logical register, valid only while `stamp` matches the
/// current block's stamp.
#[derive(Clone, Copy)]
#[repr(align(16))]
struct RenameEntry {
    /// Cached opt-window end, or `u64::MAX` for a not-ready register.
    opt: u64,
    /// Owning block's stamp; the entry is stale under any other stamp.
    stamp: u32,
    /// Cached *packed* physical register ([`slab::preg_pack`]) — exactly
    /// the value a consumer stores in its `srcs_phys`, so a hit needs no
    /// re-packing.
    phys: u16,
}

/// The per-block rename scratch map (the block-granular front end's local
/// map): one entry per packed logical-register byte ([`slab::lreg_pack`]),
/// indexed by the raw byte so lookups are bounds-check-free and skip the
/// unpack entirely; entries are validated by a per-block stamp so
/// invalidation is O(1) — no clearing between blocks.
///
/// Each block's first probe of a source operand caches the packed physical
/// register plus its readiness/opt-window answer (immutable for the whole
/// rename phase, see `PhysRegFile::check_or_wait`), and each in-block
/// destination rename records the fresh (not-ready) register — so the
/// shared regfile record behind a logical register is probed at most once
/// per block, and intra-block producer→consumer dependencies are resolved
/// without touching the shared scoreboard at all. Purely a cache: results
/// are bit-identical to per-instruction probing.
struct RenameScratch {
    /// Current block's stamp; entries are valid only when theirs matches.
    /// Bumped per block; on the (once per 2^32 blocks) wrap the whole map
    /// is cleared so no stale entry can collide with a reused stamp.
    stamp: u32,
    /// The map, indexed by the packed logical-register byte.
    map: [RenameEntry; 256],
}

impl RenameScratch {
    fn new() -> RenameScratch {
        RenameScratch {
            stamp: 0,
            map: [RenameEntry {
                opt: 0,
                stamp: 0,
                phys: 0,
            }; 256],
        }
    }

    /// Opens the next block: bumps the stamp (invalidating every entry in
    /// O(1)) and handles the wrap by clearing the map outright.
    #[inline]
    fn next_block(&mut self) {
        self.stamp = self.stamp.wrapping_add(1);
        if self.stamp == 0 {
            // Stamp reuse after a wrap: scrub so entries from 2^32 blocks
            // ago cannot read as fresh.
            self.map = [RenameEntry {
                opt: 0,
                stamp: 0,
                phys: 0,
            }; 256];
            self.stamp = 1;
        }
    }
}

/// Per-phase wall-clock accumulators behind the `phase-timing` feature
/// (memory begin-cycle, completions, writeback, commit, issue, rename,
/// fetch) — see "Profiling the hot loop" in the `smt-bench` crate docs.
#[cfg(feature = "phase-timing")]
pub static PHASE_NS: [std::sync::atomic::AtomicU64; 7] = [
    std::sync::atomic::AtomicU64::new(0),
    std::sync::atomic::AtomicU64::new(0),
    std::sync::atomic::AtomicU64::new(0),
    std::sync::atomic::AtomicU64::new(0),
    std::sync::atomic::AtomicU64::new(0),
    std::sync::atomic::AtomicU64::new(0),
    std::sync::atomic::AtomicU64::new(0),
];

impl Simulator {
    /// Builds the machine described by `cfg`. Prefer [`SimConfig::build`].
    pub(crate) fn new(cfg: SimConfig) -> Simulator {
        let threads = cfg.threads();
        // Resolve each context's workload into a boxed source. The
        // explicit `workloads` list wins (it is the only way to mix
        // backends); otherwise the legacy synthetic paths apply.
        let synthetic = |program: Arc<Program>, i: usize| -> Box<dyn WorkloadSource> {
            Box::new(SyntheticSource::new(
                program,
                cfg.seed ^ (i as u64).wrapping_mul(0x9e37),
            ))
        };
        let sources: Vec<Box<dyn WorkloadSource>> = if !cfg.workloads.is_empty() {
            cfg.workloads
                .iter()
                .enumerate()
                .map(|(i, spec)| match spec {
                    WorkloadSpec::Benchmark(b) => {
                        synthetic(Arc::new(b.generate(cfg.seed, i as u32)), i)
                    }
                    WorkloadSpec::Program(p) => synthetic(p.clone(), i),
                    WorkloadSpec::Elf(img) => Box::new(smt_workload::RiscvSource::new(img.clone()))
                        as Box<dyn WorkloadSource>,
                    WorkloadSpec::Trace(t) => Box::new(smt_workload::TraceSource::new(t.clone())),
                })
                .collect()
        } else if cfg.programs.is_empty() {
            cfg.benchmarks
                .iter()
                .enumerate()
                .map(|(i, b)| synthetic(Arc::new(b.generate(cfg.seed, i as u32)), i))
                .collect()
        } else {
            cfg.programs
                .iter()
                .enumerate()
                .map(|(i, p)| synthetic(p.clone(), i))
                .collect()
        };
        let phys = smt_isa::LOGICAL_REGS * threads + cfg.extra_phys_regs;
        let mut regs = [PhysRegFile::new(phys), PhysRegFile::new(phys)];
        let bp = BranchPredictor::new(cfg.predictor.clone(), threads);
        // Ablations that live in other crates are applied here, once, so
        // the hot paths stay branch-free where possible: a perfect I-cache
        // is a memory-hierarchy property, and infinite front-end queues
        // become sentinel capacities.
        let mut mem_cfg = cfg.mem.clone();
        if cfg.ablations.contains(crate::Ablation::PerfectICache) {
            mem_cfg.perfect_icache = true;
        }
        let mem = MemoryHierarchy::new(mem_cfg);
        let (frontend_limit, iq_limit) = if cfg
            .ablations
            .contains(crate::Ablation::InfiniteFrontendQueues)
        {
            (usize::MAX, usize::MAX)
        } else {
            (cfg.frontend_depth, cfg.iq_entries)
        };
        let thread_state: Vec<Thread> = sources
            .into_iter()
            .enumerate()
            .map(|(i, source)| Thread {
                fetch_pc: source.pc(),
                stall_until: 0,
                icache_req: None,
                in_flight: 0,
                outstanding_misses: 0,
                wrong_path: false,
                id: ThreadId(i as u8),
                unresolved_ctrl: Vec::new(),
                frontend: VecDeque::new(),
                rob: VecDeque::new(),
                wp_salt: 0,
                committed: 0,
                committed_base: 0,
                map: RenameMap::new(&mut regs),
                source,
            })
            .collect();
        // Generous initial slab capacity: a bounded machine's in-flight
        // population stays well under this, so the steady state never
        // grows the slab (the allocation guard in `smt-bench` pins it).
        let slab_capacity = 64 * thread_state.len().max(8);
        // Spilled wakeup entries are bounded by two source registrations
        // per in-flight instruction; reserving that bound up front keeps
        // the cycle path allocation-free even on workloads whose
        // dependence chains overflow the inline waiter slots (the
        // trace-replay allocation guard pins this).
        for f in &mut regs {
            f.reserve_waiters(2 * slab_capacity);
        }
        Simulator {
            cfg,
            frontend_limit,
            iq_limit,
            cycle: 0,
            stats_base_cycle: 0,
            next_seq: 0,
            threads: thread_state,
            insts: InstSlab::with_capacity(slab_capacity),
            regs,
            ready_q: Vec::with_capacity(256),
            iq_len: [0, 0],
            exec_done: (0..EXEC_RING).map(|_| Vec::with_capacity(128)).collect(),
            mem,
            bp,
            pending_loads: PendingLoads::with_capacity(256),
            f_stats: FetchBreakdown::default(),
            i_stats: IssueBreakdown::default(),
            cond_pred: Ratio::new(),
            squashes: 0,
            squashed_insts: 0,
            restored_from_checkpoint: false,
            fetch_rank_scratch: Vec::new(),
            fetch_view_scratch: Vec::new(),
            fetch_key_scratch: Vec::new(),
            issue_rank_scratch: Vec::new(),
            issue_cand_scratch: Vec::new(),
            issue_key_scratch: Vec::new(),
            loss_scratch: Vec::new(),
            completion_scratch: Vec::new(),
            woken_scratch: Vec::new(),
            commit_scratch: Vec::new(),
            rename_loc: RenameScratch::new(),
        }
    }

    /// Number of hardware contexts.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Cycles simulated so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Simulates `cycles` further cycles and returns the report for the
    /// current measurement window.
    ///
    /// If the configuration carries a warmup window
    /// ([`SimConfig::with_warmup`]) and nothing has been simulated yet, the
    /// warmup cycles are simulated first and [`reset_stats`] is called
    /// before the measured cycles begin, so the report covers exactly
    /// `cycles` warmed-up cycles.
    ///
    /// [`reset_stats`]: Simulator::reset_stats
    pub fn run(&mut self, cycles: u64) -> SimReport {
        let warmup = self.pending_warmup_cycles();
        if warmup > 0 {
            for _ in 0..warmup {
                self.step_cycle();
            }
            self.reset_stats();
        }
        for _ in 0..cycles {
            self.step_cycle();
        }
        self.report()
    }

    /// The warmup cycles [`run`](Simulator::run) would still simulate
    /// before its measured window: the configured warmup
    /// ([`SimConfig::with_warmup`]) while nothing has been simulated yet,
    /// `0` once the machine has stepped (including a machine restored from
    /// a warmed checkpoint). The fleet driver uses this to interleave the
    /// warmup window with other cells while keeping the cycle sequence —
    /// and therefore the report — identical to `run`.
    pub fn pending_warmup_cycles(&self) -> u64 {
        if self.cycle == 0 {
            self.cfg.warmup_cycles
        } else {
            0
        }
    }

    /// Opens a fresh measurement window: zeroes every statistic — fetch
    /// slot-loss accounting, issue counters, branch-prediction ratios and
    /// predictor activity, squash counts, and the memory-hierarchy stats —
    /// while leaving all architectural and microarchitectural state (ROBs,
    /// rename maps, wakeup lists, scheduled events, in-flight misses,
    /// cache/TLB contents, BTB/PHT/RAS, oracle positions) untouched.
    /// Subsequent [`report`](Simulator::report) calls cover only the window
    /// since this call.
    pub fn reset_stats(&mut self) {
        self.stats_base_cycle = self.cycle;
        for t in &mut self.threads {
            t.committed_base = t.committed;
        }
        self.f_stats = FetchBreakdown::default();
        self.i_stats = IssueBreakdown::default();
        self.cond_pred = Ratio::new();
        self.squashes = 0;
        self.squashed_insts = 0;
        self.mem.reset_stats();
        self.bp.reset_stats();
    }

    /// Correct-path instructions committed since construction, across all
    /// threads — unaffected by [`reset_stats`](Simulator::reset_stats)
    /// (which only re-bases what reports show). Lets tests verify that
    /// statistics resets leave architectural progress untouched.
    pub fn lifetime_committed(&self) -> u64 {
        self.threads.iter().map(|t| t.committed).sum()
    }

    /// Advances the machine by one cycle.
    pub fn step_cycle(&mut self) {
        #[cfg(feature = "phase-timing")]
        let mut t = std::time::Instant::now();
        #[cfg(feature = "phase-timing")]
        let mut lap = |i: usize| {
            let now = std::time::Instant::now();
            PHASE_NS[i].fetch_add(
                (now - t).as_nanos() as u64,
                std::sync::atomic::Ordering::Relaxed,
            );
            t = now;
        };
        #[cfg(not(feature = "phase-timing"))]
        let lap = |_i: usize| {};
        self.cycle += 1;
        self.mem.begin_cycle(self.cycle);
        lap(0);
        self.drain_completions();
        lap(1);
        self.writeback();
        lap(2);
        self.commit();
        lap(3);
        self.issue();
        lap(4);
        self.rename();
        lap(5);
        self.fetch();
        lap(6);
    }

    /// The report for the current measurement window (everything since the
    /// last [`reset_stats`](Simulator::reset_stats), or since construction).
    pub fn report(&self) -> SimReport {
        let window = self.cycle - self.stats_base_cycle;
        SimReport {
            cycles: window,
            warmup_cycles: self.stats_base_cycle,
            restored_from_checkpoint: self.restored_from_checkpoint,
            fetch_policy: self.cfg.fetch.name().to_string(),
            issue_policy: self.cfg.issue.name().to_string(),
            ablations: self
                .cfg
                .ablations
                .iter()
                .map(|a| a.name().to_string())
                .collect(),
            partition: self.cfg.partition,
            threads: self
                .threads
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    let committed = t.committed - t.committed_base;
                    ThreadReport {
                        thread: i,
                        benchmark: t.source.name().to_string(),
                        committed,
                        ipc: if window == 0 {
                            0.0
                        } else {
                            committed as f64 / window as f64
                        },
                    }
                })
                .collect(),
            fetch: self.f_stats,
            issue: self.i_stats,
            cond_prediction: self.cond_pred,
            pred: *self.bp.stats(),
            squashes: self.squashes,
            squashed_insts: self.squashed_insts,
            mem: *self.mem.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeSet;

    use super::slab::InstState;
    use super::*;
    use crate::policy::{FetchPartition, RoundRobin};
    use smt_workload::Benchmark;

    fn tiny_config() -> SimConfig {
        SimConfig::new().with_benchmarks(vec![Benchmark::Espresso, Benchmark::Eqntott], 11)
    }

    #[test]
    fn simulator_makes_forward_progress() {
        let mut sim = tiny_config().build();
        let report = sim.run(3_000);
        assert_eq!(report.cycles, 3_000);
        assert!(report.total_committed() > 1_000, "IPC collapsed: {report}");
        for t in &report.threads {
            assert!(t.committed > 0, "thread {} starved: {report}", t.thread);
        }
    }

    #[test]
    fn committed_stream_matches_oracle_prefix() {
        // Every committed instruction must be a correct-path instruction:
        // replaying the oracle must yield exactly the committed count.
        let mut sim = tiny_config().build();
        let report = sim.run(2_000);
        // The oracle inside the simulator has stepped exactly
        // committed + in-flight correct-path instructions.
        for (ti, t) in sim.threads.iter().enumerate() {
            let in_flight_correct = t
                .rob
                .iter()
                .filter(|r| !sim.insts.hot[r.index()].wrong_path())
                .count() as u64;
            assert_eq!(
                t.source.executed(),
                report.threads[ti].committed + in_flight_correct,
                "oracle/commit divergence on thread {ti}"
            );
        }
    }

    #[test]
    fn squashes_happen_and_recover() {
        let mut sim = tiny_config().build();
        let report = sim.run(4_000);
        assert!(
            report.squashes > 0,
            "branchy workloads must mispredict sometimes"
        );
        assert!(report.cond_prediction.total > 0);
        // Prediction accuracy should be sane (predictor learns loops).
        assert!(
            report.cond_prediction.percent() > 55.0,
            "suspiciously poor prediction: {}",
            report.cond_prediction
        );
    }

    #[test]
    fn wrong_path_work_is_fetched_but_never_committed() {
        let mut sim = tiny_config().build();
        let report = sim.run(4_000);
        assert!(
            report.fetch.wrong_path > 0,
            "mispredicts must fetch wrong-path work"
        );
        // Total commits never exceed correct-path fetches.
        assert!(report.total_committed() <= report.fetch.fetched);
    }

    #[test]
    fn physical_registers_are_conserved() {
        let mut sim = tiny_config().build();
        let _ = sim.run(2_500);
        for (ci, rf) in sim.regs.iter().enumerate() {
            let live_dests: usize = sim
                .threads
                .iter()
                .flat_map(|t| t.rob.iter())
                .filter(|r| {
                    let d = sim.insts.hot[r.index()].dest_phys;
                    d != PREG_NONE && slab::preg_class(d) == ci
                })
                .count();
            let mapped = smt_isa::LOGICAL_REGS * sim.threads.len();
            let total = mapped + sim.cfg.extra_phys_regs;
            assert_eq!(
                rf.free_count() + live_dests + mapped,
                total,
                "register leak in class {ci}"
            );
        }
    }

    #[test]
    fn slab_population_matches_rob_contents() {
        // Every ROB entry is a live slab slot; the slab holds nothing else.
        let mut sim = tiny_config().build();
        let _ = sim.run(2_500);
        let rob_total: usize = sim.threads.iter().map(|t| t.rob.len()).sum();
        assert_eq!(sim.insts.live_count(), rob_total, "slab leaked slots");
        let mut seen = BTreeSet::new();
        for t in &sim.threads {
            for r in &t.rob {
                assert!(seen.insert(r.index()), "two ROB entries share a slot");
                assert_eq!(
                    sim.insts.live(sim.insts.tag(*r)),
                    Some(*r),
                    "ROB entry's slot is not live"
                );
            }
        }
    }

    #[test]
    fn round_robin_partitions_run_too() {
        for partition in FetchPartition::all_schemes() {
            let mut sim = tiny_config()
                .with_fetch(Box::new(RoundRobin))
                .with_partition(partition)
                .build();
            let report = sim.run(1_500);
            assert!(
                report.total_committed() > 300,
                "{partition} stalled: {report}"
            );
        }
    }

    // The fetched + wrong_path + Σ lost_* == 8·cycles invariant lives in
    // `tests/fetch_accounting.rs` as a property test over every partition
    // scheme × mix × seed × window × ablation set.

    /// A wrong-path thread passed over at pre-selection bank arbitration is
    /// counted exactly once — the single counting point for
    /// `wrong_path_fetch_conflicts` (the `fetch_block` bank-conflict arm
    /// used to double as a second one).
    #[test]
    fn conflicting_wrong_path_fetch_counted_exactly_once() {
        let mut sim = tiny_config().build();
        // At cycle 1 the rotation tie-break ranks thread 1 first; both
        // threads' fetch blocks sit in I-cache bank 0, and thread 0 is on
        // the wrong path.
        sim.cycle = 1;
        sim.mem.begin_cycle(1);
        sim.threads[0].fetch_pc = 0x0;
        sim.threads[1].fetch_pc = 0x200; // (0x200 >> 6) & 7 == 0: same bank
        sim.threads[0].wrong_path = true;
        sim.fetch();
        assert_eq!(
            sim.f_stats.wrong_path_fetch_conflicts, 1,
            "one wrong-path thread turned away once must count once"
        );
    }

    /// MSHR exhaustion inside `fetch_block` is a structural stall, not
    /// bank/port contention: it must not count toward
    /// `wrong_path_fetch_conflicts` (it used to, double-counting the
    /// thread-cycle relative to the pre-selection arbitration point).
    #[test]
    fn mshr_exhaustion_is_not_a_wrong_path_bank_conflict() {
        let mut cfg = tiny_config();
        cfg.mem.mshrs = 0; // every miss is rejected for MSHR pressure
        let mut sim = cfg.build();
        sim.cycle = 2; // rotation ranks thread 0 first
        sim.mem.begin_cycle(2);
        sim.threads[0].wrong_path = true;
        sim.fetch();
        assert_eq!(
            sim.f_stats.wrong_path_fetch_conflicts, 0,
            "MSHR-full rejection is not bank/port contention"
        );
        assert!(
            sim.f_stats.lost_bank_conflict > 0,
            "the lost slots are still charged to the bank bucket"
        );
    }

    /// Under the wrong-path exemption ablation the same conflicting setup
    /// records no conflict at all: the wrong-path thread is never turned
    /// away.
    #[test]
    fn exempt_wrong_path_never_records_conflicts() {
        let mut cfg = tiny_config();
        cfg.ablations = crate::Ablations::only(crate::Ablation::ExemptWrongPathFromBankArbitration);
        let mut sim = cfg.build();
        sim.cycle = 1;
        sim.mem.begin_cycle(1);
        sim.threads[0].fetch_pc = 0x0;
        sim.threads[1].fetch_pc = 0x200;
        sim.threads[0].wrong_path = true;
        sim.fetch();
        assert_eq!(sim.f_stats.wrong_path_fetch_conflicts, 0);
        // The exempt thread actually started its access (it was selected,
        // not passed over): both threads progressed to an I-cache access.
        assert_eq!(sim.mem.stats().icache.accesses, 2);
    }

    #[test]
    fn scheduler_counters_match_rob_rescan() {
        // The event-driven scheduler maintains the policy counters and
        // queue occupancy incrementally; a brute-force ROB rescan (what the
        // scan-based simulator recomputed every cycle) must agree at every
        // observation point.
        let mut sim = tiny_config().build();
        for _ in 0..60 {
            for _ in 0..25 {
                sim.step_cycle();
            }
            let mut iq_len = [0usize; 2];
            for t in &sim.threads {
                let mut in_flight = 0u32;
                let mut misses = 0u32;
                let mut unresolved = Vec::new();
                for r in &t.rob {
                    let h = &sim.insts.hot[r.index()];
                    match h.state() {
                        InstState::Decoding => in_flight += 1,
                        InstState::Queued => {
                            in_flight += 1;
                            iq_len[h.op.queue().index()] += 1;
                        }
                        InstState::WaitingMem => misses += 1,
                        _ => {}
                    }
                    if h.op.is_control() && h.state() != InstState::Done {
                        // ROB order is age order, so this stays sorted.
                        unresolved.push(h.seq);
                    }
                }
                assert_eq!(t.in_flight, in_flight, "ICOUNT drifted");
                assert_eq!(t.outstanding_misses, misses, "MISSCOUNT drifted");
                assert_eq!(t.unresolved_ctrl, unresolved, "BRCOUNT set drifted");
            }
            assert_eq!(sim.iq_len, iq_len, "IQ occupancy drifted");
            // Every ready-set entry is a live, Queued instruction with no
            // outstanding operands, appears exactly once, and the set is
            // age-sorted.
            let mut seen = BTreeSet::new();
            let mut prev_seq = None;
            for e in &sim.ready_q {
                assert!(seen.insert(e.seq), "duplicate ready entry {}", e.seq);
                assert!(prev_seq < Some(e.seq), "ready set lost its age order");
                prev_seq = Some(e.seq);
                let inst = &sim.insts.hot[e.iref.index()];
                assert_eq!(inst.seq, e.seq, "ready entry names a recycled slot");
                assert_eq!(usize::from(e.ti), usize::from(inst.ti));
                assert_eq!(inst.state(), InstState::Queued);
                assert_eq!(inst.pending_srcs, 0);
                assert_eq!(inst.op, e.op, "cached opcode drifted");
                assert_eq!(
                    e.opt_until,
                    opt_until_of(&sim.regs, &inst.srcs_phys),
                    "cached load-speculation window drifted"
                );
                for &s in &inst.srcs_phys {
                    assert!(
                        s == PREG_NONE
                            || sim.regs[slab::preg_class(s)].is_ready(slab::preg_index(s))
                    );
                }
            }
        }
    }

    #[test]
    fn reset_stats_preserves_architectural_state() {
        // Simulating W+M cycles straight through and simulating W cycles of
        // warmup (stats discarded) followed by M measured cycles must leave
        // the machine in the identical architectural state: same lifetime
        // commit counts, because reset_stats only re-bases the counters.
        const WARM: u64 = 1_000;
        const MEASURE: u64 = 2_000;
        let mut cold = tiny_config().build();
        let cold_report = cold.run(WARM + MEASURE);
        let mut warm = tiny_config().with_warmup(WARM).build();
        let warm_report = warm.run(MEASURE);

        assert_eq!(
            cold.lifetime_committed(),
            warm.lifetime_committed(),
            "reset_stats disturbed architectural state"
        );
        assert_eq!(cold_report.total_committed(), cold.lifetime_committed());
        assert_eq!(warm_report.warmup_cycles, WARM);
        assert_eq!(warm_report.cycles, MEASURE);
        assert_eq!(cold_report.warmup_cycles, 0);
        // The measured window reports only post-warmup commits.
        assert!(warm_report.total_committed() < warm.lifetime_committed());
        // (Post-reset slot-accounting balance is covered by the property
        // test in `tests/fetch_accounting.rs`.)
    }

    #[test]
    fn mid_run_reset_stats_rebase_reports() {
        let mut sim = tiny_config().build();
        let _ = sim.run(1_500);
        sim.reset_stats();
        let r = sim.report();
        assert_eq!(r.cycles, 0);
        assert_eq!(r.total_committed(), 0);
        assert_eq!(r.fetch, FetchBreakdown::default());
        assert_eq!(r.squashes, 0);
        let r = sim.run(500);
        assert_eq!(r.cycles, 500);
        assert_eq!(r.warmup_cycles, 1_500);
        assert!(r.total_committed() > 0);
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let run = || tiny_config().build().run(2_000);
        let a = run();
        let b = run();
        assert_eq!(a.total_committed(), b.total_committed());
        assert_eq!(a.fetch, b.fetch);
        assert_eq!(a.squashes, b.squashes);
    }
}

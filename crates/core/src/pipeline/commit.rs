//! In-order commit: per-thread retirement from the ROB head.

use super::{InstState, Simulator};

impl Simulator {
    // ---- phase 3: in-order commit ------------------------------------

    /// Retires up to `commit_width` completed instructions across all
    /// threads, rotating the starting thread each cycle for fairness.
    /// Committing a renaming instruction frees the physical register its
    /// destination previously mapped to — by then every consumer of that
    /// old mapping has itself committed, so no wakeup list can reference
    /// it.
    pub(super) fn commit(&mut self) {
        let mut budget = self.cfg.commit_width;
        let n = self.threads.len();
        let start = self.cycle as usize % n;
        for k in 0..n {
            let ti = (start + k) % n;
            while budget > 0 {
                let t = &mut self.threads[ti];
                match t.rob.front() {
                    Some(head) if head.state == InstState::Done => {
                        debug_assert!(
                            !head.wrong_path,
                            "wrong-path instruction survived to the ROB head"
                        );
                        let head = t.rob.pop_front().expect("just observed");
                        t.popped_front += 1;
                        if let Some((class, prev)) = head.prev_phys {
                            self.regs[class.index()].release(prev);
                        }
                        t.committed += 1;
                        budget -= 1;
                    }
                    _ => break,
                }
            }
        }
    }
}

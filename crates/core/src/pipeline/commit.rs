//! In-order commit: per-thread retirement from the ROB head.

use super::slab::{preg_class, preg_index, InstState, PREG_NONE};
use super::Simulator;

impl Simulator {
    // ---- phase 3: in-order commit ------------------------------------

    /// Retires up to `commit_width` completed instructions across all
    /// threads, rotating the starting thread each cycle for fairness.
    /// Committing a renaming instruction frees the physical register its
    /// destination previously mapped to — by then every consumer of that
    /// old mapping has itself committed, so no wakeup list can reference
    /// it. Retirement moves a 4-byte slab handle and recycles the slot;
    /// the instruction record itself is never copied.
    pub(super) fn commit(&mut self) {
        let mut budget = self.cfg.commit_width;
        let n = self.threads.len();
        let start = self.cycle as usize % n;
        for k in 0..n {
            let ti = (start + k) % n;
            while budget > 0 {
                let t = &mut self.threads[ti];
                let Some(&head) = t.rob.front() else {
                    break;
                };
                let h = &self.insts.hot[head.index()];
                if h.state() != InstState::Done {
                    break;
                }
                debug_assert!(
                    !h.wrong_path(),
                    "wrong-path instruction survived to the ROB head"
                );
                let prev = h.prev_phys;
                t.rob.pop_front();
                if prev != PREG_NONE {
                    self.regs[preg_class(prev)].release(preg_index(prev));
                }
                self.insts.free(head);
                t.committed += 1;
                budget -= 1;
            }
        }
    }
}

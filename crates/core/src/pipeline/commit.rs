//! In-order commit: per-thread retirement from the ROB head.

use super::slab::{preg_class, preg_index, InstState, PREG_NONE};
use super::Simulator;

impl Simulator {
    // ---- phase 3: in-order commit ------------------------------------

    /// Retires up to `commit_width` completed instructions across all
    /// threads, rotating the starting thread each cycle for fairness.
    /// Committing a renaming instruction frees the physical register its
    /// destination previously mapped to — by then every consumer of that
    /// old mapping has itself committed, so no wakeup list can reference
    /// it. Retirement moves a 4-byte slab handle and recycles the slot;
    /// the instruction record itself is never copied.
    /// Each thread's ready-to-retire run is popped into a pooled scratch
    /// buffer and recycled as one
    /// [`free_block`](super::slab::InstSlab::free_block) transaction —
    /// one free-list push run and one committed-counter update per thread
    /// per cycle instead of per instruction. Free order (and therefore
    /// subsequent LIFO slot reuse) is bit-identical to the per-instruction
    /// path.
    pub(super) fn commit(&mut self) {
        let mut budget = self.cfg.commit_width;
        let n = self.threads.len();
        let start = self.cycle as usize % n;
        let mut retired = std::mem::take(&mut self.commit_scratch);
        for k in 0..n {
            if budget == 0 {
                break;
            }
            let ti = (start + k) % n;
            retired.clear();
            while budget > 0 {
                let t = &mut self.threads[ti];
                let Some(&head) = t.rob.front() else {
                    break;
                };
                let h = &self.insts.hot[head.index()];
                if h.state() != InstState::Done {
                    break;
                }
                debug_assert!(
                    !h.wrong_path(),
                    "wrong-path instruction survived to the ROB head"
                );
                let prev = h.prev_phys;
                t.rob.pop_front();
                if prev != PREG_NONE {
                    self.regs[preg_class(prev)].release(preg_index(prev));
                }
                retired.push(head);
                budget -= 1;
            }
            if !retired.is_empty() {
                self.insts.free_block(&retired);
                self.threads[ti].committed += retired.len() as u64;
            }
        }
        self.commit_scratch = retired;
    }
}

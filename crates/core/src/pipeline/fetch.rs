//! Fetch: the [`FetchPolicy`](crate::FetchPolicy) picks which threads fill
//! the 8-wide fetch bandwidth under the active
//! [`FetchPartition`](crate::FetchPartition).
//!
//! The policy counters each [`ThreadFetchView`] carries (ICOUNT / BRCOUNT /
//! MISSCOUNT) are the live values the scheduler maintains at state
//! transitions — ranking reads them in O(1) instead of recounting the ROBs
//! every cycle. Wrong-path fetch streams contend for I-cache banks and
//! ports exactly like correct-path ones; the
//! `wrong_path_fetch_conflicts` counter records how often they were turned
//! away.

use smt_isa::{Addr, Opcode, Outcome, StaticInst, INST_BYTES};
use smt_mem::AccessResult;
use smt_workload::WorkloadSource;

use crate::ablation::Ablation;
use crate::policy::{FetchPartition, ThreadFetchView};
use smt_branch::Prediction;

use super::slab::{lreg_pack, ColdInst, HotInst, PREG_NONE};
use super::Simulator;

/// Why a fetch slot could not be filled this cycle (candidate loss causes,
/// settled against the actually-unused slots at end of cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum LossCause {
    Icache,
    Bank,
    Fragmentation,
    FrontendFull,
    NoThread,
}

impl Simulator {
    // ---- phase 5b: fetch ---------------------------------------------

    pub(super) fn fetch(&mut self) {
        let cycle = self.cycle;
        let n = self.threads.len();
        let tpc = usize::from(self.cfg.partition.threads_per_cycle);
        let ipt = u32::from(self.cfg.partition.insts_per_thread);
        // Collect the fetchable threads' views, rank them in ONE policy
        // call (see `FetchPolicy::priority_batch`), then sort.
        let n64 = n as u64;
        let rot_base = cycle % n64;
        let counter = self.cfg.fetch.ranking_counter();
        let mut ranked = std::mem::take(&mut self.fetch_rank_scratch);
        ranked.clear();
        let mut views = std::mem::take(&mut self.fetch_view_scratch);
        views.clear();
        // One scan decides fetchability and the rotation tie-break for
        // both ranking modes; only key derivation differs. Policies whose
        // key IS a live counter (every shipped policy, see
        // `FetchPolicy::ranking_counter`) read it right here; others get
        // a view batch and one dynamic `priority_batch` call below.
        for (ti, t) in self.threads.iter().enumerate() {
            let fetchable = t.icache_req.is_none()
                && t.stall_until <= cycle
                && t.frontend.len() < self.frontend_limit;
            if !fetchable {
                continue;
            }
            // `rotating_rank(cycle, id, n)` with the `cycle % n` hoisted
            // out of the loop (thread + n - base < 2n, so one conditional
            // subtraction replaces the second modulo).
            let mut rotation = u64::from(t.id.0) + n64 - rot_base;
            if rotation >= n64 {
                rotation -= n64;
            }
            debug_assert_eq!(rotation, crate::policy::rotating_rank(cycle, t.id, n as u8));
            use crate::policy::FetchCounter;
            let key = match counter {
                Some(FetchCounter::Rotation) => rotation as i64,
                Some(FetchCounter::InFlight) => i64::from(t.in_flight),
                Some(FetchCounter::UnresolvedBranches) => t.unresolved_ctrl.len() as i64,
                Some(FetchCounter::OutstandingMisses) => i64::from(t.outstanding_misses),
                None => {
                    views.push(ThreadFetchView {
                        thread: t.id,
                        thread_count: n as u8,
                        in_flight: t.in_flight,
                        unresolved_branches: t.unresolved_ctrl.len() as u32,
                        outstanding_misses: t.outstanding_misses,
                    });
                    0 // filled in by the batched ranking call below
                }
            };
            ranked.push((key, rotation, ti));
        }
        if counter.is_none() {
            let mut keys = std::mem::take(&mut self.fetch_key_scratch);
            keys.clear();
            self.cfg.fetch.priority_batch(cycle, &views, &mut keys);
            for (slot, &key) in ranked.iter_mut().zip(&keys) {
                slot.0 = key;
            }
            self.fetch_key_scratch = keys;
        }
        self.fetch_view_scratch = views;
        ranked.sort_unstable();

        // As in the paper, the fetch unit takes the highest-priority
        // threads whose fetch blocks sit in distinct, currently-available
        // I-cache banks: a thread whose bank is busy is passed over in
        // favour of the next-ranked thread rather than wasting the slot.
        //
        // This pre-selection arbitration is the single counting point for
        // `wrong_path_fetch_conflicts`: a wrong-path thread passed over
        // here lost its fetch opportunity to bank/port contention exactly
        // once this cycle. (The `BankConflict` arm inside `fetch_block`
        // can only be MSHR exhaustion once this check has passed, which is
        // a different resource and deliberately not counted.)
        //
        // Loss accounting: blockages only *candidate* slots for loss while
        // fetching, because a slot one thread could not fill may still be
        // filled by the next selected thread. At the end of the cycle the
        // genuinely unused slots are attributed to the recorded causes
        // proportionally (see below), so fetched + wrong-path + losses
        // always sums to the 8-slot budget.
        let exempt_wrong_path = self
            .cfg
            .ablations
            .contains(Ablation::ExemptWrongPathFromBankArbitration);
        let mut total_left = FetchPartition::TOTAL_WIDTH;
        let mut selected = 0usize;
        let mut losses = std::mem::take(&mut self.loss_scratch);
        losses.clear();
        for &(_, _, ti) in &ranked {
            if selected == tpc || total_left == 0 {
                break;
            }
            let exempt = exempt_wrong_path && self.threads[ti].wrong_path;
            if !exempt && !self.mem.icache_bank_free(self.threads[ti].fetch_pc) {
                if self.threads[ti].wrong_path {
                    self.f_stats.wrong_path_fetch_conflicts += 1;
                }
                continue;
            }
            selected += 1;
            let cap = ipt.min(total_left);
            total_left -= self.fetch_block(ti, cap, !exempt, &mut losses);
        }
        self.fetch_rank_scratch = ranked;
        if selected < tpc {
            losses.push((LossCause::NoThread, ipt * (tpc - selected) as u32));
        }
        // Attribute the genuinely unused slots to the candidate causes
        // *proportionally to their candidate amounts* (the cumulative-floor
        // scheme keeps the charged total exact). Charging strictly in order
        // of occurrence let an early overshooting candidate absorb the whole
        // budget and silently drop later genuine causes.
        let unused = u64::from(total_left);
        let total: u64 = losses.iter().map(|&(_, a)| u64::from(a)).sum();
        if unused > 0 && total > 0 {
            // Whenever T × I covers the 8-wide bandwidth (all four paper
            // schemes) the candidates cover the unused slots exactly or
            // overshoot; a narrower custom partition can undershoot, in
            // which case the uncoverable remainder stays unattributed
            // (as before) rather than inflating any bucket.
            let pool = unused.min(total);
            let mut prefix = 0u64;
            let mut charged_so_far = 0u64;
            for &(cause, amount) in &losses {
                prefix += u64::from(amount);
                let cumulative = prefix * pool / total;
                let charged = cumulative - charged_so_far;
                charged_so_far = cumulative;
                match cause {
                    LossCause::Icache => self.f_stats.lost_icache += charged,
                    LossCause::Bank => self.f_stats.lost_bank_conflict += charged,
                    LossCause::Fragmentation => self.f_stats.lost_fragmentation += charged,
                    LossCause::FrontendFull => self.f_stats.lost_frontend_full += charged,
                    LossCause::NoThread => self.f_stats.lost_no_thread += charged,
                }
            }
        }
        self.loss_scratch = losses;
    }

    /// Fetches one thread's block of up to `cap` instructions; returns how
    /// many were fetched, recording candidate slot losses in `losses`.
    /// With `arbitrate: false` (the wrong-path exemption ablation) the
    /// I-cache access neither checks nor consumes bank/port resources.
    ///
    /// The block is one **slab transaction per chunk** (chunk size =
    /// `SimConfig::fetch_block_chunk`, the full 8-wide block by default):
    /// the PC run is streamed through the oracle/predictor in one pass,
    /// each decoded [`HotInst`] is staged **directly into its final slab
    /// slot** ([`stage`](super::slab::InstSlab::stage) — no staging copy),
    /// and the free list is settled once per chunk
    /// ([`commit_block`](super::slab::InstSlab::commit_block)). The live
    /// ICOUNT (`in_flight`), sequence and fetch counters are updated once
    /// per block with the net delta.
    ///
    /// Every chunk size yields bit-identical results to the
    /// instruction-granular path (chunk size 1 — one free-list
    /// transaction per instruction, exactly the old `alloc` loop): decode
    /// order, slot assignment and loss-entry order are all preserved —
    /// the equivalence `tests/block_rename.rs` pins across the reference
    /// matrix.
    fn fetch_block(
        &mut self,
        ti: usize,
        cap: u32,
        arbitrate: bool,
        losses: &mut Vec<(LossCause, u32)>,
    ) -> u32 {
        // Power-of-two line size: line membership is a shift, not a
        // division, on this per-instruction loop.
        let line_shift = (self.cfg.mem.icache.line_bytes as u64).trailing_zeros();
        let block_pc = self.threads[ti].fetch_pc;
        let id = self.threads[ti].id;
        match self.mem.icache_fetch_with(id, block_pc, arbitrate) {
            AccessResult::BankConflict => {
                // MSHR pressure (bank/port availability was arbitrated
                // before selection): yield the fetch slot for a cycle so
                // thread selection rotates instead of re-picking a thread
                // that cannot start its access. Not a bank/port conflict,
                // so `wrong_path_fetch_conflicts` is not counted here —
                // the pre-selection check is the single counting point.
                self.threads[ti].stall_until = self.cycle + 1;
                losses.push((LossCause::Bank, cap));
                return 0;
            }
            AccessResult::Miss(req) => {
                self.threads[ti].icache_req = Some(req);
                losses.push((LossCause::Icache, cap));
                return 0;
            }
            AccessResult::Hit => {}
        }
        let line = block_pc >> line_shift;
        let cycle = self.cycle;
        let frontend_limit = self.frontend_limit;
        let decode_cycles = self.cfg.decode_cycles;
        let misfetch_penalty = self.cfg.misfetch_penalty;
        let chunk = self.cfg.fetch_block_chunk as u32;
        let perfect_bp = self
            .cfg
            .ablations
            .contains(Ablation::PerfectBranchPrediction);
        let insts = &mut self.insts;
        let bp = &mut self.bp;
        let t = &mut self.threads[ti];
        let mut seq = self.next_seq;
        let mut misfetches = 0u64;
        let mut wrong_ct = 0u64;
        let mut fetched = 0u32;
        let mut staged = 0u32;
        let mut cur = insts.begin_block();
        while fetched < cap {
            if t.frontend.len() >= frontend_limit {
                losses.push((LossCause::FrontendFull, cap - fetched));
                break;
            }
            let pc = t.fetch_pc;
            if pc >> line_shift != line {
                losses.push((LossCause::Fragmentation, cap - fetched));
                break;
            }

            // ---- fetch one instruction at `pc` -----------------------
            let wrong_path = t.wrong_path;
            let (inst, outcome) = if wrong_path {
                (t.source.wrong_inst_at(pc), None)
            } else {
                debug_assert_eq!(t.source.pc(), pc, "fetch left the source's path");
                let (inst, outcome) = t.source.step();
                (inst, Some(outcome))
            };

            let mut mem_addr = 0;
            if inst.op.is_mem() {
                mem_addr = match outcome {
                    Some(o) => o.mem_addr,
                    None => {
                        t.wp_salt = t.wp_salt.wrapping_add(1);
                        t.source.wrong_mem_addr(pc, t.wp_salt ^ cycle)
                    }
                };
            }

            let mut pred = None;
            let mut mispredict = false;
            let mut end_block = false;
            let mut misfetch = false;
            let mut next_fetch = pc + INST_BYTES;

            if inst.op.is_control() {
                // Perfect-branch-prediction ablation: synthesize an
                // oracle-perfect prediction instead of consulting the
                // predictor — `classify_prediction` then always agrees
                // with the outcome, so no mispredicts, no misfetches, and
                // the wrong-path machinery never engages. (Fetch cannot be
                // on the wrong path under this ablation, so `outcome` is
                // present.)
                let p = match outcome {
                    Some(actual) if perfect_bp => Prediction::perfect(actual.taken, actual.next_pc),
                    _ => bp.predict(id, pc, inst.op),
                };
                pred = Some(p);
                match outcome {
                    Some(actual) => {
                        let (goes_wrong, nf, ends, misses) =
                            classify_prediction(&p, &actual, inst.op, pc, t.source.as_ref(), inst);
                        mispredict = goes_wrong;
                        next_fetch = nf;
                        end_block = ends;
                        misfetch = misses;
                        if goes_wrong {
                            t.wrong_path = true;
                        }
                    }
                    None => {
                        // Wrong path: simply follow the prediction.
                        if p.taken {
                            match p.target {
                                Some(tgt) => {
                                    next_fetch = tgt;
                                    end_block = true;
                                }
                                None => {
                                    misfetch = true;
                                    next_fetch = t.source.wrong_taken_target(inst, pc);
                                }
                            }
                        }
                    }
                }
            }

            if misfetch {
                misfetches += 1;
                t.stall_until = cycle + 1 + misfetch_penalty;
                end_block = true;
            }

            if wrong_path {
                wrong_ct += 1;
            }

            // Staged straight into its final slab slot; the free list is
            // settled once per chunk below.
            let iref = insts.stage(
                &mut cur,
                HotInst {
                    gen: 0, // overwritten with the slot's generation
                    seq,
                    when: cycle + decode_cycles,
                    mem_addr,
                    dest_phys: PREG_NONE,
                    prev_phys: PREG_NONE,
                    srcs_phys: [PREG_NONE, PREG_NONE],
                    flags: HotInst::initial_flags(wrong_path, mispredict),
                    op: inst.op,
                    ti: ti as u8,
                    pending_srcs: 0,
                    dest_log: lreg_pack(inst.dest),
                    srcs_log: [lreg_pack(inst.srcs[0]), lreg_pack(inst.srcs[1])],
                },
            );
            // Only correct-path control instructions are ever resolved
            // against a cold record; everything else skips the array
            // entirely.
            if let (Some(o), Some(p)) = (&outcome, &pred) {
                insts.cold[iref.index()] = ColdInst::for_control(pc, p, o);
            }
            t.rob.push_back(iref);
            t.frontend.push_back((iref, cycle + decode_cycles));
            if inst.op.is_control() {
                // Fetch order is age order: appending keeps the list
                // sorted.
                t.unresolved_ctrl.push(seq);
            }
            seq += 1;
            t.fetch_pc = next_fetch;
            // ---- end of one instruction ------------------------------

            fetched += 1;
            staged += 1;
            if staged == chunk {
                // Forced sub-block granularity (`fetch_block_chunk` < 8):
                // settle the free list and open the next transaction.
                insts.commit_block(&mut cur);
                staged = 0;
            }
            if end_block {
                if fetched < cap {
                    losses.push((LossCause::Fragmentation, cap - fetched));
                }
                break;
            }
        }
        insts.commit_block(&mut cur);
        // Net per-block counter deltas: one update per fetch block.
        t.in_flight += fetched;
        self.next_seq = seq;
        self.f_stats.misfetches += misfetches;
        self.f_stats.wrong_path += wrong_ct;
        self.f_stats.fetched += u64::from(fetched) - wrong_ct;
        fetched
    }
}

/// Compares one correct-path control prediction against its architectural
/// outcome. Returns `(mispredict, next_fetch_pc, end_block, misfetch)`.
fn classify_prediction(
    p: &Prediction,
    actual: &Outcome,
    op: Opcode,
    pc: Addr,
    source: &dyn WorkloadSource,
    inst: StaticInst,
) -> (bool, Addr, bool, bool) {
    let fallthrough = pc + INST_BYTES;
    if op.is_cond_branch() {
        if p.taken != actual.taken {
            // Wrong direction: fetch follows the predicted (wrong) path.
            if p.taken {
                match p.target {
                    Some(tgt) => (true, tgt, true, false),
                    // Misfetch on the wrong path: decode computes the
                    // (wrong-path) taken target.
                    None => (true, source.wrong_taken_target(inst, pc), true, true),
                }
            } else {
                (true, fallthrough, false, false)
            }
        } else if actual.taken {
            match p.target {
                Some(tgt) if tgt == actual.next_pc => (false, tgt, true, false),
                // Stale BTB target: fetch goes to the wrong place.
                Some(tgt) => (true, tgt, true, false),
                // Direction right, no target: stall until decode computes it.
                None => (false, actual.next_pc, true, true),
            }
        } else {
            (false, fallthrough, false, false)
        }
    } else {
        // Unconditional control: always taken; only the target can be wrong.
        match p.target {
            Some(tgt) if tgt == actual.next_pc => (false, tgt, true, false),
            Some(tgt) => (true, tgt, true, false),
            None => (false, actual.next_pc, true, true),
        }
    }
}

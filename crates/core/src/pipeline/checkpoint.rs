//! Checkpoint save/restore for the whole machine: the `smt-core` sections
//! of the format specified in [`crate::checkpoint`], plus the calls into
//! each state-owning crate's `save_state`/`restore_state` hook.
//!
//! Save serializes from a `&Simulator`; restore builds a **fresh**
//! simulator from the configuration and only then overwrites its state,
//! so a failed restore (truncated, corrupt, wrong machine) never leaks a
//! half-written machine — the partially restored simulator is dropped
//! with the error. The checksum trailer is verified before the simulator
//! is returned.

use std::io::{Read, Write};

use smt_stats::binio::{invalid, BinReader, BinWriter};

use crate::checkpoint::{config_fingerprint, CheckpointError, FORMAT_VERSION, MAGIC};
use crate::config::SimConfig;
use crate::report::{FetchBreakdown, IssueBreakdown};

use super::slab::{GenRef, InstRef, InstSlab, PendingLoads};
use super::{ExecEvent, ReadyEntry, Simulator, EXEC_RING};

use smt_isa::Opcode;
use smt_mem::ReqId;

impl Simulator {
    /// Serializes the machine's complete deterministic state as a
    /// checkpoint (header, per-crate sections and checksum trailer; see
    /// [`crate::checkpoint`] for the format). A simulator restored from
    /// these bytes via [`restore_checkpoint`](Simulator::restore_checkpoint)
    /// is bit-equivalent to this one: running both produces byte-identical
    /// reports.
    pub fn save_checkpoint<W: Write>(&self, out: &mut W) -> std::io::Result<()> {
        // The stream is coerced to `&mut dyn Write` up front so the
        // object-safe `WorkloadSource::save_state` hook can write each
        // thread's section through the same writer — one running checksum
        // covers the whole stream, and the byte layout is unchanged.
        let mut w = BinWriter::new(out as &mut dyn Write);
        w.bytes(&MAGIC)?;
        w.u32(FORMAT_VERSION)?;
        w.u64(config_fingerprint(&self.cfg))?;

        // Section 1: core machine state.
        w.u64(self.cycle)?;
        w.u64(self.stats_base_cycle)?;
        w.u64(self.next_seq)?;
        self.insts.save_state(&mut w)?;
        self.regs[0].save_state(&mut w)?;
        self.regs[1].save_state(&mut w)?;
        w.len(self.ready_q.len())?;
        for e in &self.ready_q {
            w.u64(e.seq)?;
            w.u64(e.opt_until)?;
            w.u32(e.iref.raw())?;
            w.u8(e.op.code())?;
            w.u8(e.ti)?;
        }
        w.len(self.iq_len[0])?;
        w.len(self.iq_len[1])?;
        for bucket in &self.exec_done {
            w.len(bucket.len())?;
            for ev in bucket {
                w.u64(ev.seq)?;
                w.u32(ev.inst.slot().raw())?;
                w.u32(ev.inst.generation())?;
            }
        }
        self.pending_loads.save_state(&mut w)?;
        save_fetch_breakdown(&mut w, &self.f_stats)?;
        w.u64(self.i_stats.issued)?;
        w.u64(self.i_stats.wrong_path)?;
        w.u64(self.i_stats.bank_conflicts)?;
        w.u64(self.cond_pred.hits)?;
        w.u64(self.cond_pred.total)?;
        w.u64(self.squashes)?;
        w.u64(self.squashed_insts)?;

        // Section 2: per-thread state (including each oracle).
        w.len(self.threads.len())?;
        for t in &self.threads {
            w.u64(t.fetch_pc)?;
            w.u64(t.stall_until)?;
            match t.icache_req {
                None => w.bool(false)?,
                Some(req) => {
                    w.bool(true)?;
                    w.u64(req.0)?;
                }
            }
            w.u32(t.in_flight)?;
            w.u32(t.outstanding_misses)?;
            w.bool(t.wrong_path)?;
            w.len(t.frontend.len())?;
            for &(iref, ready_at) in &t.frontend {
                w.u32(iref.raw())?;
                w.u64(ready_at)?;
            }
            w.len(t.unresolved_ctrl.len())?;
            for &seq in &t.unresolved_ctrl {
                w.u64(seq)?;
            }
            w.len(t.rob.len())?;
            for iref in &t.rob {
                w.u32(iref.raw())?;
            }
            w.u64(t.wp_salt)?;
            w.u64(t.committed)?;
            w.u64(t.committed_base)?;
            t.map.save_state(&mut w)?;
            t.source.save_state(&mut w)?;
        }

        // Sections 3 and 4: the memory hierarchy and branch predictor
        // serialize themselves.
        self.mem.save_state(&mut w)?;
        self.bp.save_state(&mut w)?;
        w.finish()
    }

    /// Rebuilds a simulator from a checkpoint written by
    /// [`save_checkpoint`](Simulator::save_checkpoint).
    ///
    /// `cfg` may differ from the saving configuration **only in the fork
    /// axes** — fetch policy, issue policy, ablation set and warmup length
    /// (see [`crate::checkpoint::config_fingerprint`]); any other
    /// difference is refused with [`CheckpointError::ConfigMismatch`]. The
    /// restored machine is bit-equivalent to the saved one: continuing it
    /// produces byte-identical reports to a simulator that ran straight
    /// through under `cfg`. In particular the restore itself does **not**
    /// set the report's `restored_from_checkpoint` provenance flag — that
    /// is the caller's statement to make, via
    /// [`mark_restored_from_checkpoint`](Simulator::mark_restored_from_checkpoint).
    ///
    /// Malformed input — truncated, bit-flipped (the trailing checksum is
    /// verified), version-skewed or from a differently-shaped machine —
    /// yields a typed [`CheckpointError`], never a panic, and never a
    /// partially-restored simulator.
    ///
    /// # Panics
    ///
    /// Panics only where [`SimConfig::build`] does: on a degenerate
    /// configuration (no threads, zero-width structures).
    pub fn restore_checkpoint<R: Read>(
        cfg: SimConfig,
        input: &mut R,
    ) -> Result<Simulator, CheckpointError> {
        // Mirrors the save side: the stream is read as `&mut dyn Read` so
        // each thread's `WorkloadSource::restore_state` hook can consume
        // its section through the shared reader/checksum.
        let mut r = BinReader::new(input as &mut dyn Read);
        let mut magic = [0u8; 8];
        r.bytes(&mut magic)?;
        if magic != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = r.u32()?;
        if version != FORMAT_VERSION {
            return Err(CheckpointError::UnsupportedVersion { found: version });
        }
        let expected = config_fingerprint(&cfg);
        let found = r.u64()?;
        if found != expected {
            return Err(CheckpointError::ConfigMismatch { expected, found });
        }

        let mut sim = cfg.build();

        // Section 1: core machine state.
        sim.cycle = r.u64()?;
        sim.stats_base_cycle = r.u64()?;
        sim.next_seq = r.u64()?;
        sim.insts = InstSlab::restore_state(&mut r)?;
        let slab_len = sim.insts.hot.len();
        let read_iref = |r: &mut BinReader<&mut dyn Read>| -> std::io::Result<InstRef> {
            let i = r.u32()?;
            if (i as usize) < slab_len {
                Ok(InstRef::from_raw(i))
            } else {
                Err(invalid(format!("instruction handle {i} outside the slab")))
            }
        };
        let read_genref = |r: &mut BinReader<&mut dyn Read>| -> std::io::Result<GenRef> {
            let slot = r.u32()?;
            // NULL placeholders carry slot 0 even in an empty slab.
            if slot as usize >= slab_len.max(1) {
                return Err(invalid(format!("event handle {slot} outside the slab")));
            }
            let gen = r.u32()?;
            Ok(GenRef::from_parts(InstRef::from_raw(slot), gen))
        };
        sim.regs[0].restore_state(&mut r, slab_len)?;
        sim.regs[1].restore_state(&mut r, slab_len)?;
        let n_ready = r.len()?;
        sim.ready_q.clear();
        for _ in 0..n_ready {
            let seq = r.u64()?;
            let opt_until = r.u64()?;
            let iref = read_iref(&mut r)?;
            let op_code = r.u8()?;
            let op = Opcode::from_code(op_code)
                .ok_or_else(|| invalid(format!("invalid opcode code {op_code}")))?;
            let ti = r.u8()?;
            sim.ready_q.push(ReadyEntry {
                seq,
                opt_until,
                iref,
                op,
                ti,
            });
        }
        sim.iq_len = [r.len()?, r.len()?];
        for bucket in &mut sim.exec_done {
            bucket.clear();
        }
        for b in 0..EXEC_RING {
            let n = r.len()?;
            for _ in 0..n {
                let seq = r.u64()?;
                let inst = read_genref(&mut r)?;
                sim.exec_done[b].push(ExecEvent { seq, inst });
            }
        }
        sim.pending_loads = PendingLoads::restore_state(&mut r, slab_len)?;
        sim.f_stats = restore_fetch_breakdown(&mut r)?;
        sim.i_stats = IssueBreakdown {
            issued: r.u64()?,
            wrong_path: r.u64()?,
            bank_conflicts: r.u64()?,
        };
        sim.cond_pred.hits = r.u64()?;
        sim.cond_pred.total = r.u64()?;
        sim.squashes = r.u64()?;
        sim.squashed_insts = r.u64()?;

        // Section 2: per-thread state.
        let n_threads = r.len()?;
        if n_threads != sim.threads.len() {
            return Err(CheckpointError::Corrupt(format!(
                "checkpoint has {n_threads} threads, configuration expects {}",
                sim.threads.len()
            )));
        }
        let phys = smt_isa::LOGICAL_REGS * sim.threads.len() + sim.cfg.extra_phys_regs;
        for t in &mut sim.threads {
            t.fetch_pc = r.u64()?;
            t.stall_until = r.u64()?;
            t.icache_req = if r.bool()? {
                Some(ReqId(r.u64()?))
            } else {
                None
            };
            t.in_flight = r.u32()?;
            t.outstanding_misses = r.u32()?;
            t.wrong_path = r.bool()?;
            let n = r.len()?;
            t.frontend.clear();
            for _ in 0..n {
                let iref = read_iref(&mut r)?;
                let ready_at = r.u64()?;
                t.frontend.push_back((iref, ready_at));
            }
            let n = r.len()?;
            t.unresolved_ctrl.clear();
            for _ in 0..n {
                t.unresolved_ctrl.push(r.u64()?);
            }
            let n = r.len()?;
            t.rob.clear();
            for _ in 0..n {
                t.rob.push_back(read_iref(&mut r)?);
            }
            t.wp_salt = r.u64()?;
            t.committed = r.u64()?;
            t.committed_base = r.u64()?;
            t.map.restore_state(&mut r, [phys, phys])?;
            t.source.restore_state(&mut r)?;
        }

        // Sections 3 and 4.
        sim.mem.restore_state(&mut r)?;
        sim.bp.restore_state(&mut r)?;

        // Only now is the stream known to be intact end to end.
        r.finish()?;
        Ok(sim)
    }

    /// Marks this simulator's report as restored-from-checkpoint
    /// provenance (the `restored_from_checkpoint` report field/JSON key).
    ///
    /// Deliberately **not** set by
    /// [`restore_checkpoint`](Simulator::restore_checkpoint) itself:
    /// restoration must be bit-invisible, and whether a warm start came
    /// from a checkpoint is a fact about the *experiment pipeline*, which
    /// is therefore the layer that states it.
    pub fn mark_restored_from_checkpoint(&mut self) {
        self.restored_from_checkpoint = true;
    }
}

fn save_fetch_breakdown<W: Write>(w: &mut BinWriter<W>, f: &FetchBreakdown) -> std::io::Result<()> {
    w.u64(f.fetched)?;
    w.u64(f.wrong_path)?;
    w.u64(f.lost_icache)?;
    w.u64(f.lost_bank_conflict)?;
    w.u64(f.lost_fragmentation)?;
    w.u64(f.lost_frontend_full)?;
    w.u64(f.lost_no_thread)?;
    w.u64(f.misfetches)?;
    w.u64(f.wrong_path_fetch_conflicts)
}

fn restore_fetch_breakdown<R: Read>(r: &mut BinReader<R>) -> std::io::Result<FetchBreakdown> {
    Ok(FetchBreakdown {
        fetched: r.u64()?,
        wrong_path: r.u64()?,
        lost_icache: r.u64()?,
        lost_bank_conflict: r.u64()?,
        lost_fragmentation: r.u64()?,
        lost_frontend_full: r.u64()?,
        lost_no_thread: r.u64()?,
        misfetches: r.u64()?,
        wrong_path_fetch_conflicts: r.u64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_workload::Benchmark;

    fn cfg() -> SimConfig {
        SimConfig::new().with_benchmarks(vec![Benchmark::Espresso, Benchmark::Eqntott], 11)
    }

    fn checkpoint_of(sim: &Simulator) -> Vec<u8> {
        let mut bytes = Vec::new();
        sim.save_checkpoint(&mut bytes).expect("vec write");
        bytes
    }

    #[test]
    fn roundtrip_is_bit_equivalent_mid_run() {
        // Checkpoint at an odd, mid-flight cycle — instructions in every
        // pipeline stage, misses outstanding — and compare continuing the
        // original against continuing the restored copy.
        let mut sim = cfg().build();
        for _ in 0..1_237 {
            sim.step_cycle();
        }
        let bytes = checkpoint_of(&sim);
        let mut restored = Simulator::restore_checkpoint(cfg(), &mut bytes.as_slice())
            .expect("restore must succeed");
        assert_eq!(restored.cycle(), sim.cycle());
        let a = sim.run(2_000);
        let b = restored.run(2_000);
        assert_eq!(
            a.to_json().render(),
            b.to_json().render(),
            "restored simulator diverged from the original"
        );
    }

    #[test]
    fn restore_into_different_fork_axis_succeeds() {
        let mut sim = cfg().build();
        for _ in 0..500 {
            sim.step_cycle();
        }
        let bytes = checkpoint_of(&sim);
        let forked = cfg()
            .with_fetch(Box::new(crate::policy::RoundRobin))
            .with_ablation(crate::Ablation::PerfectICache);
        let mut restored = Simulator::restore_checkpoint(forked, &mut bytes.as_slice())
            .expect("fork axes must not invalidate the fingerprint");
        let report = restored.run(500);
        assert_eq!(report.fetch_policy, "RR");
        assert!(report.total_committed() > 0);
    }

    #[test]
    fn restore_rejects_wrong_machine() {
        let sim = cfg().build();
        let bytes = checkpoint_of(&sim);
        let other = cfg().with_seed(99);
        match Simulator::restore_checkpoint(other, &mut bytes.as_slice()) {
            Err(CheckpointError::ConfigMismatch { .. }) => {}
            Err(e) => panic!("expected ConfigMismatch, got {e}"),
            Ok(_) => panic!("expected ConfigMismatch, restore succeeded"),
        }
    }

    #[test]
    fn restore_rejects_bad_magic_and_version() {
        let sim = cfg().build();
        let mut bytes = checkpoint_of(&sim);
        let mut garbled = bytes.clone();
        garbled[0] ^= 0xff;
        assert!(matches!(
            Simulator::restore_checkpoint(cfg(), &mut garbled.as_slice()),
            Err(CheckpointError::BadMagic)
        ));
        // Bump the version field (bytes 8..12).
        bytes[8] = bytes[8].wrapping_add(1);
        assert!(matches!(
            Simulator::restore_checkpoint(cfg(), &mut bytes.as_slice()),
            Err(CheckpointError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn corruption_and_truncation_yield_typed_errors_never_panics() {
        let mut sim = cfg().build();
        for _ in 0..300 {
            sim.step_cycle();
        }
        let bytes = checkpoint_of(&sim);
        // Flip one bit in every region of the stream (sampled stride keeps
        // the test fast); each must surface as a typed error.
        let mut offset = 20; // past magic + version (exercised above)
        while offset < bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[offset] ^= 0x10;
            match Simulator::restore_checkpoint(cfg(), &mut corrupt.as_slice()) {
                Ok(_) => panic!("bit flip at byte {offset} went undetected"),
                Err(
                    CheckpointError::Corrupt(_)
                    | CheckpointError::Truncated
                    | CheckpointError::ConfigMismatch { .. },
                ) => {}
                Err(e) => panic!("unexpected error kind for bit flip at {offset}: {e}"),
            }
            offset += 97;
        }
        // Truncation at every region boundary.
        for cut in [bytes.len() - 1, bytes.len() / 2, 21] {
            let mut short = bytes.clone();
            short.truncate(cut);
            match Simulator::restore_checkpoint(cfg(), &mut short.as_slice()) {
                Err(CheckpointError::Truncated | CheckpointError::Corrupt(_)) => {}
                Err(e) => panic!("truncation at {cut} mishandled: {e}"),
                Ok(_) => panic!("truncation at {cut} went undetected"),
            }
        }
    }

    #[test]
    fn restore_does_not_set_the_provenance_flag() {
        let mut sim = cfg().build();
        for _ in 0..100 {
            sim.step_cycle();
        }
        let bytes = checkpoint_of(&sim);
        let mut restored =
            Simulator::restore_checkpoint(cfg(), &mut bytes.as_slice()).expect("restore");
        assert!(
            !restored.report().restored_from_checkpoint,
            "restore itself must stay bit-invisible"
        );
        restored.mark_restored_from_checkpoint();
        assert!(restored.report().restored_from_checkpoint);
    }
}

//! Mechanism ablations: Section-4-style "turn one thing off" switches.
//!
//! The paper attributes throughput effects by ablating one mechanism at a
//! time (perfect branch prediction, wrong-path overhead, queue pressure).
//! [`Ablations`] is the typed set of such switches a [`SimConfig`] carries;
//! each [`Ablation`] disables exactly one source of loss in the modeled
//! machine so the IPC delta against an un-ablated baseline *is* that
//! mechanism's cost:
//!
//! * [`Ablation::ExemptWrongPathFromBankArbitration`] — wrong-path fetch
//!   streams no longer arbitrate for I-cache banks and ports: they are
//!   never turned away and never occupy a bank a correct-path thread
//!   wants. The baseline-vs-ablation IPC delta quantifies the paper's ~2%
//!   wrong-path I-fetch interference claim.
//! * [`Ablation::PerfectICache`] — every instruction fetch hits in one
//!   cycle (no I-misses, no I-TLB walks, no I-bank conflicts). Isolates
//!   cold-start and capacity I-cache behaviour, e.g. in the ICOUNT-vs-RR
//!   gap decomposition.
//! * [`Ablation::PerfectBranchPrediction`] — fetch always follows the
//!   correct path: no mispredicts, no wrong-path work, no misfetches, and
//!   the predictor is neither consulted nor trained. Isolates total
//!   speculation cost.
//! * [`Ablation::InfiniteFrontendQueues`] — the per-thread front-end
//!   buffers and the per-class instruction queues are unbounded, so fetch
//!   never stalls on queue back-pressure (`lost_frontend_full` collapses
//!   to zero). Renaming registers stay finite. Isolates the IQ-clog
//!   behaviour ICOUNT's feedback is designed to avoid.
//!
//! With the set empty (the default) every hook is inert and the simulator
//! is bit-identical to an ablation-unaware build — `tests/golden.rs` pins
//! this.
//!
//! [`SimConfig`]: crate::SimConfig

use std::fmt;

/// One mechanism switch (see the module docs for exact semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ablation {
    /// Wrong-path fetches bypass I-cache bank/port arbitration.
    ExemptWrongPathFromBankArbitration,
    /// Every instruction fetch hits in one cycle.
    PerfectICache,
    /// Fetch always follows the correct path.
    PerfectBranchPrediction,
    /// Front-end buffers and instruction queues are unbounded.
    InfiniteFrontendQueues,
}

impl Ablation {
    /// Every ablation, in canonical (bit) order.
    pub const ALL: [Ablation; 4] = [
        Ablation::ExemptWrongPathFromBankArbitration,
        Ablation::PerfectICache,
        Ablation::PerfectBranchPrediction,
        Ablation::InfiniteFrontendQueues,
    ];

    /// Stable machine-readable name (used in JSON documents and CLIs).
    pub fn name(self) -> &'static str {
        match self {
            Ablation::ExemptWrongPathFromBankArbitration => "exempt_wrong_path_bank_arbitration",
            Ablation::PerfectICache => "perfect_icache",
            Ablation::PerfectBranchPrediction => "perfect_branch_prediction",
            Ablation::InfiniteFrontendQueues => "infinite_frontend_queues",
        }
    }

    /// Resolves a machine-readable name back to the ablation.
    pub fn by_name(name: &str) -> Option<Ablation> {
        Ablation::ALL.into_iter().find(|a| a.name() == name)
    }

    fn bit(self) -> u8 {
        match self {
            Ablation::ExemptWrongPathFromBankArbitration => 1 << 0,
            Ablation::PerfectICache => 1 << 1,
            Ablation::PerfectBranchPrediction => 1 << 2,
            Ablation::InfiniteFrontendQueues => 1 << 3,
        }
    }
}

impl fmt::Display for Ablation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A set of [`Ablation`]s. Empty by default (no mechanism disabled).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Ablations {
    bits: u8,
}

impl Ablations {
    /// The empty set: the un-ablated baseline machine.
    pub fn none() -> Ablations {
        Ablations::default()
    }

    /// Every ablation at once.
    pub fn all() -> Ablations {
        Ablation::ALL
            .into_iter()
            .fold(Ablations::none(), Ablations::with)
    }

    /// The singleton set `{a}`.
    pub fn only(a: Ablation) -> Ablations {
        Ablations::none().with(a)
    }

    /// This set plus `a`.
    #[must_use]
    pub fn with(self, a: Ablation) -> Ablations {
        Ablations {
            bits: self.bits | a.bit(),
        }
    }

    /// This set minus `a`.
    #[must_use]
    pub fn without(self, a: Ablation) -> Ablations {
        Ablations {
            bits: self.bits & !a.bit(),
        }
    }

    /// Whether `a` is active.
    pub fn contains(self, a: Ablation) -> bool {
        self.bits & a.bit() != 0
    }

    /// Whether no ablation is active (the baseline machine).
    pub fn is_empty(self) -> bool {
        self.bits == 0
    }

    /// The active ablations, in canonical order.
    pub fn iter(self) -> impl Iterator<Item = Ablation> {
        Ablation::ALL.into_iter().filter(move |a| self.contains(*a))
    }
}

impl FromIterator<Ablation> for Ablations {
    fn from_iter<I: IntoIterator<Item = Ablation>>(iter: I) -> Ablations {
        iter.into_iter().fold(Ablations::none(), Ablations::with)
    }
}

impl fmt::Display for Ablations {
    /// Comma-separated canonical names; `"none"` for the empty set.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("none");
        }
        let mut first = true;
        for a in self.iter() {
            if !first {
                f.write_str(",")?;
            }
            first = false;
            f.write_str(a.name())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_operations_and_canonical_order() {
        let s = Ablations::none()
            .with(Ablation::InfiniteFrontendQueues)
            .with(Ablation::PerfectICache);
        assert!(!s.is_empty());
        assert!(s.contains(Ablation::PerfectICache));
        assert!(!s.contains(Ablation::PerfectBranchPrediction));
        assert_eq!(
            s.iter().collect::<Vec<_>>(),
            vec![Ablation::PerfectICache, Ablation::InfiniteFrontendQueues]
        );
        assert_eq!(s.without(Ablation::PerfectICache).iter().count(), 1);
        assert_eq!(Ablations::all().iter().count(), Ablation::ALL.len());
        assert_eq!(Ablations::none().to_string(), "none");
        assert_eq!(s.to_string(), "perfect_icache,infinite_frontend_queues");
    }

    #[test]
    fn names_round_trip() {
        for a in Ablation::ALL {
            assert_eq!(Ablation::by_name(a.name()), Some(a));
        }
        assert_eq!(Ablation::by_name("nonesuch"), None);
        let s: Ablations = Ablation::ALL.into_iter().collect();
        assert_eq!(s, Ablations::all());
    }
}

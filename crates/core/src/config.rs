//! Simulator configuration: the public builder that wires every crate
//! together.
//!
//! [`SimConfig`] carries the machine description (fetch/issue policies,
//! fetch partition, queue and register-file sizes, cache and predictor
//! configurations) plus the workload, and [`SimConfig::build`] produces a
//! runnable [`Simulator`]. All fields are public: anything can be swapped,
//! including user-defined policies — see the `FetchPolicy` trait.

use std::sync::Arc;

use smt_branch::PredictorConfig;
use smt_mem::MemConfig;
use smt_workload::{standard_mix, Benchmark, Program, RiscvImage, TraceImage};

use crate::ablation::{Ablation, Ablations};
use crate::pipeline::Simulator;
use crate::policy::{FetchPartition, FetchPolicy, ICount, IssuePolicy, OldestFirst};

/// Maximum number of hardware contexts supported.
pub const MAX_THREADS: usize = 32;

/// One hardware context's instruction source: which workload backend the
/// thread runs. The variants mirror the `smt-workload` backends — the
/// synthetic generator (by benchmark profile or pre-generated image), a
/// functionally executed RISC-V binary, or a recorded trace replayed
/// allocation-free.
#[derive(Clone)]
pub enum WorkloadSpec {
    /// Synthetic program generated from the benchmark profile and the
    /// configuration seed (same behaviour as [`SimConfig::benchmarks`]).
    Benchmark(Benchmark),
    /// A pre-generated synthetic program image (same behaviour as
    /// [`SimConfig::programs`]).
    Program(Arc<Program>),
    /// A loaded rv32i/rv64i binary, decoded and functionally executed.
    Elf(Arc<RiscvImage>),
    /// A recorded instruction trace, replayed without execution.
    Trace(Arc<TraceImage>),
}

impl WorkloadSpec {
    /// The thread label this workload produces in reports.
    pub fn name(&self) -> &str {
        match self {
            WorkloadSpec::Benchmark(b) => b.name(),
            WorkloadSpec::Program(p) => p.name(),
            WorkloadSpec::Elf(img) => img.name(),
            WorkloadSpec::Trace(t) => t.name(),
        }
    }
}

impl std::fmt::Debug for WorkloadSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self {
            WorkloadSpec::Benchmark(_) => "benchmark",
            WorkloadSpec::Program(_) => "program",
            WorkloadSpec::Elf(_) => "elf",
            WorkloadSpec::Trace(_) => "trace",
        };
        write!(f, "{kind}:{}", self.name())
    }
}

/// Complete description of one simulation: machine plus workload.
///
/// Defaults reproduce the paper's final machine: ICOUNT.2.8 fetch,
/// OLDEST_FIRST issue, 32-entry per-class instruction queues, 100 renaming
/// registers per class, 6 integer units (4 load/store capable), 3 FP units,
/// the Table-2 memory hierarchy and the Section-2 branch predictor, running
/// the standard 8-thread mix.
pub struct SimConfig {
    /// Benchmarks, one per hardware context (defines the thread count).
    pub benchmarks: Vec<Benchmark>,
    /// Pre-generated program images, one per context. When non-empty this
    /// overrides `benchmarks` entirely; thread labels in reports come from
    /// [`Program::name`].
    pub programs: Vec<Arc<Program>>,
    /// Per-context workload sources. When non-empty this overrides both
    /// `benchmarks` and `programs`, and is the only way to mix backends —
    /// e.g. a real ELF on thread 0 next to synthetic threads. Empty by
    /// default, which keeps synthetic-only configurations (and their
    /// checkpoint fingerprints) exactly as they were before this field
    /// existed.
    pub workloads: Vec<WorkloadSpec>,
    /// Master seed for program generation and all stochastic behaviour.
    pub seed: u64,
    /// Fetch policy ranking threads each cycle.
    pub fetch: Box<dyn FetchPolicy>,
    /// Issue policy ordering ready instructions each cycle.
    pub issue: Box<dyn IssuePolicy>,
    /// Fetch partitioning scheme (`T.I`).
    pub partition: FetchPartition,
    /// Memory hierarchy parameters (Table 2).
    pub mem: MemConfig,
    /// Branch predictor parameters.
    pub predictor: PredictorConfig,
    /// Entries per instruction queue (one queue per register class).
    pub iq_entries: usize,
    /// Renaming registers per class beyond the architectural
    /// `32 × contexts`.
    pub extra_phys_regs: usize,
    /// Total integer functional units.
    pub int_units: usize,
    /// How many of the integer units can execute loads/stores.
    pub ldst_units: usize,
    /// Floating-point functional units.
    pub fp_units: usize,
    /// Instructions renamed/dispatched per cycle.
    pub decode_width: usize,
    /// Instructions committed per cycle across all threads.
    pub commit_width: usize,
    /// Per-thread front-end buffer capacity (fetched, not yet renamed).
    pub frontend_depth: usize,
    /// Front-end depth in cycles between fetch and queue insertion
    /// (decode + rename; the paper adds two stages over the 21164).
    pub decode_cycles: u64,
    /// Cycles fetch stalls after a misfetch (taken branch without a target
    /// until decode computes it).
    pub misfetch_penalty: u64,
    /// Cycles simulated before the measurement window opens. The first call
    /// to [`Simulator::run`] simulates this many cycles, then calls
    /// [`Simulator::reset_stats`] so caches, predictor tables and queues are
    /// warm but every reported counter starts from zero. `0` (the default)
    /// measures from the cold start.
    pub warmup_cycles: u64,
    /// Mechanism ablations (Section-4-style attribution switches). Empty by
    /// default: no mechanism is disabled and every hook is inert — see the
    /// [`Ablations`] docs for what each switch removes.
    pub ablations: Ablations,
    /// Fetch-block chunk size: how many instructions the front end decodes
    /// and commits to the slab per block transaction. Purely an
    /// implementation granularity — every value produces bit-identical
    /// results (the equivalence the block-rename property test pins with
    /// chunk size 1). Not part of the machine description, so it is
    /// excluded from the checkpoint config fingerprint by construction.
    #[doc(hidden)]
    pub fetch_block_chunk: usize,
}

impl SimConfig {
    /// The paper's final machine running the standard 8-thread mix.
    pub fn new() -> SimConfig {
        // Table 2 leaves the MSHR count open; 8 outstanding misses per
        // cycle-80 memory latency would cap miss bandwidth far below what
        // eight contexts generate, so the default machine carries 16.
        let mem = MemConfig {
            mshrs: 16,
            ..MemConfig::default()
        };
        SimConfig {
            benchmarks: standard_mix(),
            programs: Vec::new(),
            workloads: Vec::new(),
            seed: 42,
            fetch: Box::new(ICount),
            issue: Box::new(OldestFirst),
            partition: FetchPartition::new(2, 8),
            mem,
            predictor: PredictorConfig::default(),
            iq_entries: 32,
            extra_phys_regs: 100,
            int_units: 6,
            ldst_units: 4,
            fp_units: 3,
            decode_width: 8,
            commit_width: 12,
            frontend_depth: 8,
            decode_cycles: 2,
            misfetch_penalty: 2,
            warmup_cycles: 0,
            ablations: Ablations::none(),
            fetch_block_chunk: 8,
        }
    }

    /// Sets the warmup window: cycles simulated (and then discarded from the
    /// statistics) before measurement begins. See
    /// [`Simulator::reset_stats`].
    pub fn with_warmup(mut self, cycles: u64) -> SimConfig {
        self.warmup_cycles = cycles;
        self
    }

    /// Replaces the ablation set (see [`Ablations`]).
    pub fn with_ablations(mut self, ablations: Ablations) -> SimConfig {
        self.ablations = ablations;
        self
    }

    /// Adds one ablation to the active set.
    pub fn with_ablation(mut self, ablation: Ablation) -> SimConfig {
        self.ablations = self.ablations.with(ablation);
        self
    }

    /// Replaces the fetch policy.
    pub fn with_fetch(mut self, fetch: Box<dyn FetchPolicy>) -> SimConfig {
        self.fetch = fetch;
        self
    }

    /// Replaces the issue policy.
    pub fn with_issue(mut self, issue: Box<dyn IssuePolicy>) -> SimConfig {
        self.issue = issue;
        self
    }

    /// Replaces the fetch partition.
    pub fn with_partition(mut self, partition: FetchPartition) -> SimConfig {
        self.partition = partition;
        self
    }

    /// Replaces the workload (one benchmark per hardware context) and the
    /// generation seed.
    pub fn with_benchmarks(mut self, benchmarks: Vec<Benchmark>, seed: u64) -> SimConfig {
        self.benchmarks = benchmarks;
        self.seed = seed;
        self.programs.clear();
        self
    }

    /// Supplies pre-generated program images directly (one per context).
    pub fn with_programs(mut self, programs: Vec<Arc<Program>>) -> SimConfig {
        self.programs = programs;
        self
    }

    /// Supplies per-context workload sources directly (one per context),
    /// overriding both `benchmarks` and `programs`. This is the mixing
    /// interface: any combination of synthetic, ELF-backed and
    /// trace-replay threads.
    pub fn with_workloads(mut self, workloads: Vec<WorkloadSpec>) -> SimConfig {
        self.workloads = workloads;
        self
    }

    /// Replaces the master seed (oracle stochasticity, and program
    /// generation when `benchmarks` is used).
    pub fn with_seed(mut self, seed: u64) -> SimConfig {
        self.seed = seed;
        self
    }

    /// Replaces the memory hierarchy configuration.
    pub fn with_mem(mut self, mem: MemConfig) -> SimConfig {
        self.mem = mem;
        self
    }

    /// Replaces the branch predictor configuration.
    pub fn with_predictor(mut self, predictor: PredictorConfig) -> SimConfig {
        self.predictor = predictor;
        self
    }

    /// Number of hardware contexts this configuration describes.
    pub fn threads(&self) -> usize {
        if !self.workloads.is_empty() {
            self.workloads.len()
        } else if self.programs.is_empty() {
            self.benchmarks.len()
        } else {
            self.programs.len()
        }
    }

    /// Builds the simulator, generating program images as needed.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (no threads, more than
    /// [`MAX_THREADS`], or zero-width structures).
    pub fn build(self) -> Simulator {
        let threads = self.threads();
        assert!(threads > 0, "at least one hardware context is required");
        assert!(
            threads <= MAX_THREADS,
            "at most {MAX_THREADS} hardware contexts supported"
        );
        assert!(self.iq_entries > 0 && self.decode_width > 0 && self.commit_width > 0);
        assert!(
            self.ldst_units <= self.int_units,
            "load/store units are a subset of int units"
        );
        assert!(self.frontend_depth > 0 && self.int_units > 0 && self.fp_units > 0);
        assert!(self.fetch_block_chunk > 0, "fetch block chunk must be > 0");
        Simulator::new(self)
    }
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig::new()
    }
}

impl std::fmt::Debug for SimConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimConfig")
            .field("benchmarks", &self.benchmarks)
            .field("workloads", &self.workloads)
            .field("seed", &self.seed)
            .field("fetch", &self.fetch.name())
            .field("issue", &self.issue.name())
            .field("partition", &self.partition)
            .field("iq_entries", &self.iq_entries)
            .field("extra_phys_regs", &self.extra_phys_regs)
            .field("ablations", &self.ablations.to_string())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper_machine() {
        let c = SimConfig::new();
        assert_eq!(c.threads(), 8);
        assert_eq!(c.partition, FetchPartition::new(2, 8));
        assert_eq!(c.fetch.name(), "ICOUNT");
        assert_eq!(c.issue.name(), "OLDEST_FIRST");
        assert_eq!(c.iq_entries, 32);
        assert_eq!(c.extra_phys_regs, 100);
        assert_eq!(c.int_units, 6);
        assert_eq!(c.ldst_units, 4);
        assert_eq!(c.fp_units, 3);
    }

    #[test]
    fn builder_methods_chain() {
        let c = SimConfig::new()
            .with_fetch(Box::new(crate::policy::RoundRobin))
            .with_partition(FetchPartition::new(1, 8))
            .with_warmup(5_000)
            .with_benchmarks(vec![Benchmark::Espresso, Benchmark::Tomcatv], 7);
        assert_eq!(c.fetch.name(), "RR");
        assert_eq!(c.partition.to_string(), "1.8");
        assert_eq!(c.threads(), 2);
        assert_eq!(c.seed, 7);
        assert_eq!(c.warmup_cycles, 5_000);
    }

    #[test]
    fn ablations_default_empty_and_chain() {
        assert!(SimConfig::new().ablations.is_empty());
        let c = SimConfig::new()
            .with_ablation(Ablation::PerfectICache)
            .with_ablation(Ablation::InfiniteFrontendQueues);
        assert!(c.ablations.contains(Ablation::PerfectICache));
        assert!(c.ablations.contains(Ablation::InfiniteFrontendQueues));
        assert!(!c.ablations.contains(Ablation::PerfectBranchPrediction));
        let c = SimConfig::new().with_ablations(Ablations::all());
        assert_eq!(c.ablations, Ablations::all());
        assert!(format!("{c:?}").contains("perfect_icache"));
    }

    #[test]
    #[should_panic(expected = "at least one hardware context")]
    fn empty_workload_panics() {
        let _ = SimConfig::new().with_benchmarks(vec![], 1).build();
    }
}

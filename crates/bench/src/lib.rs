//! Simulator throughput micro-benchmark.
//!
//! Measures how fast the simulator itself runs: simulated instructions
//! committed per wall-clock second for the reference ICOUNT.2.8
//! configuration on the standard 8-thread mix. Later performance PRs report
//! against this baseline via the `smt_bench` binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

use smt_core::SimConfig;
use smt_workload::standard_mix;

/// Result of one timed simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchResult {
    /// Simulated cycles executed.
    pub cycles: u64,
    /// Correct-path instructions committed.
    pub committed: u64,
    /// Wall-clock time spent inside `Simulator::run`.
    pub wall: Duration,
}

impl BenchResult {
    /// Simulated instructions committed per wall-clock second.
    pub fn ips(&self) -> f64 {
        self.committed as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Simulated cycles per wall-clock second.
    pub fn cps(&self) -> f64 {
        self.cycles as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

impl std::fmt::Display for BenchResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} cycles, {} committed in {:.3}s -> {:.0} kinsts/s ({:.0} kcycles/s)",
            self.cycles,
            self.committed,
            self.wall.as_secs_f64(),
            self.ips() / 1e3,
            self.cps() / 1e3,
        )
    }
}

/// Builds the reference machine (ICOUNT.2.8, standard 8-thread mix) and
/// times `cycles` simulated cycles. Construction and program generation are
/// excluded from the measurement.
pub fn run_reference(cycles: u64) -> BenchResult {
    let mut sim = SimConfig::new().with_benchmarks(standard_mix(), 42).build();
    let start = Instant::now();
    let report = sim.run(cycles);
    let wall = start.elapsed();
    BenchResult {
        cycles,
        committed: report.total_committed(),
        wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_bench_runs_and_reports() {
        let r = run_reference(300);
        assert_eq!(r.cycles, 300);
        assert!(r.committed > 0);
        assert!(r.ips() > 0.0);
        let s = r.to_string();
        assert!(s.contains("committed"));
    }
}

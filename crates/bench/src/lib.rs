// placeholder

//! Simulator throughput micro-benchmark.
//!
//! Measures how fast the simulator itself runs: simulated instructions
//! committed per wall-clock second for the reference ICOUNT.2.8
//! configuration on the standard 8-thread mix. Later performance PRs report
//! against this baseline via the `smt_bench` binary; `smt_bench --json`
//! emits the machine-readable `"smt-bench"` document (same
//! `schema_version` convention as `smt_exp --json`) for BENCH_*.json
//! trajectory tracking.
//!
//! # Examples
//!
//! ```
//! use smt_bench::{bench_to_json, run_reference};
//!
//! let result = run_reference(400);
//! assert_eq!(result.cycles, 400);
//! assert!(result.ips() > 0.0);
//! let doc = bench_to_json(&[result], &result);
//! assert!(doc.render().contains("\"kind\":\"smt-bench\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

use smt_core::SimConfig;
use smt_stats::json::Json;
use smt_workload::standard_mix;

/// Result of one timed simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchResult {
    /// Simulated cycles executed.
    pub cycles: u64,
    /// Correct-path instructions committed.
    pub committed: u64,
    /// Wall-clock time spent inside `Simulator::run`.
    pub wall: Duration,
}

impl BenchResult {
    /// Simulated instructions committed per wall-clock second.
    pub fn ips(&self) -> f64 {
        self.committed as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Simulated cycles per wall-clock second.
    pub fn cps(&self) -> f64 {
        self.cycles as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// This measurement as a JSON object (one entry of the `runs` array in
    /// the `"smt-bench"` document).
    pub fn to_json(&self) -> Json {
        Json::object([
            ("cycles", Json::from(self.cycles)),
            ("committed", Json::from(self.committed)),
            ("wall_seconds", Json::from(self.wall.as_secs_f64())),
            ("insts_per_second", Json::from(self.ips())),
            ("cycles_per_second", Json::from(self.cps())),
        ])
    }
}

/// Version of the `"smt-bench"` JSON document; kept in lockstep with the
/// experiment schema so one consumer can read both (the version-2 bump
/// changed nothing in this document; [`baseline_ips`] accepts all
/// versions).
pub const JSON_SCHEMA_VERSION: u64 = 2;

/// The machine-readable benchmark document: every timed run plus the best
/// (least-noisy) one. `smt_bench --json` writes this, pretty-rendered.
/// The top-level `insts_per_sec` field is the headline number baselines and
/// the CI throughput guard compare against.
pub fn bench_to_json(runs: &[BenchResult], best: &BenchResult) -> Json {
    Json::object([
        ("schema_version", Json::from(JSON_SCHEMA_VERSION)),
        ("kind", Json::from("smt-bench")),
        ("reference", Json::from("ICOUNT.2.8/standard-mix")),
        ("insts_per_sec", Json::from(best.ips())),
        ("runs", Json::array(runs.iter().map(BenchResult::to_json))),
        ("best", best.to_json()),
    ])
}

/// Extracts the headline insts/s rate from a rendered `"smt-bench"`
/// document, accepting both the current schema (top-level `insts_per_sec`)
/// and the original one (only `best.insts_per_second`).
pub fn baseline_ips(text: &str) -> Option<f64> {
    let doc = Json::parse(text).ok()?;
    if doc.get("kind").and_then(Json::as_str) != Some("smt-bench") {
        return None;
    }
    doc.get("insts_per_sec")
        .and_then(Json::as_f64)
        .or_else(|| {
            doc.get("best")
                .and_then(|b| b.get("insts_per_second"))
                .and_then(Json::as_f64)
        })
        .filter(|v| *v > 0.0)
}

/// The PR number of a committed baseline file name (`BENCH_PR<N>.json`),
/// or `None` for any other name.
pub fn bench_pr_number(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("BENCH_PR")?.strip_suffix(".json")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Finds the newest committed benchmark baseline in `dir`: the
/// `BENCH_PR<N>.json` file with the **highest PR number** (numeric, not
/// lexicographic — `BENCH_PR10.json` beats `BENCH_PR9.json`). Returns the
/// path and its PR number; `None` when the directory holds no baseline.
///
/// This is what the CI throughput guard pins against
/// (`smt_bench --baseline-latest DIR`), so the guard re-pins itself
/// automatically whenever a PR commits a newer `BENCH_*.json` — a guard
/// left on an old pre-speedup floor would let large regressions of the
/// *current* performance pass unnoticed.
pub fn find_latest_baseline(dir: &std::path::Path) -> Option<(std::path::PathBuf, u64)> {
    let mut best: Option<(std::path::PathBuf, u64)> = None;
    for entry in std::fs::read_dir(dir).ok()?.flatten() {
        let name = entry.file_name();
        let Some(n) = name.to_str().and_then(bench_pr_number) else {
            continue;
        };
        if best.as_ref().is_none_or(|&(_, b)| n > b) {
            best = Some((entry.path(), n));
        }
    }
    best
}

impl std::fmt::Display for BenchResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} cycles, {} committed in {:.3}s -> {:.0} kinsts/s ({:.0} kcycles/s)",
            self.cycles,
            self.committed,
            self.wall.as_secs_f64(),
            self.ips() / 1e3,
            self.cps() / 1e3,
        )
    }
}

/// Builds the reference machine (ICOUNT.2.8, standard 8-thread mix) and
/// times `cycles` simulated cycles. Construction and program generation are
/// excluded from the measurement.
pub fn run_reference(cycles: u64) -> BenchResult {
    let mut sim = SimConfig::new().with_benchmarks(standard_mix(), 42).build();
    let start = Instant::now();
    let report = sim.run(cycles);
    let wall = start.elapsed();
    BenchResult {
        cycles,
        committed: report.total_committed(),
        wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_bench_runs_and_reports() {
        let r = run_reference(300);
        assert_eq!(r.cycles, 300);
        assert!(r.committed > 0);
        assert!(r.ips() > 0.0);
        let s = r.to_string();
        assert!(s.contains("committed"));
    }

    #[test]
    fn baseline_ips_reads_both_schemas() {
        let r = run_reference(300);
        let doc = bench_to_json(&[r], &r);
        let ips = baseline_ips(&doc.render_pretty()).expect("current schema must parse");
        assert!((ips - r.ips()).abs() < 1e-9);
        // Original schema: no top-level field, only best.insts_per_second.
        let old = Json::object([
            ("schema_version", Json::from(1u64)),
            ("kind", Json::from("smt-bench")),
            ("best", r.to_json()),
        ]);
        assert!(baseline_ips(&old.render()).is_some());
        assert!(baseline_ips("{\"kind\":\"other\"}").is_none());
        assert!(baseline_ips("not json").is_none());
    }

    #[test]
    fn bench_pr_numbers_parse_strictly() {
        assert_eq!(bench_pr_number("BENCH_PR2.json"), Some(2));
        assert_eq!(bench_pr_number("BENCH_PR10.json"), Some(10));
        assert_eq!(bench_pr_number("BENCH_PR.json"), None);
        assert_eq!(bench_pr_number("BENCH_PR3.json.bak"), None);
        assert_eq!(bench_pr_number("BENCH_PRx.json"), None);
        assert_eq!(bench_pr_number("bench_pr3.json"), None);
        assert_eq!(bench_pr_number("section5.json"), None);
    }

    #[test]
    fn latest_baseline_picks_highest_pr_number_numerically() {
        let dir =
            std::env::temp_dir().join(format!("smt_bench_latest_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(
            find_latest_baseline(&dir),
            None,
            "empty dir has no baseline"
        );
        // PR10 must beat PR9 (numeric order; lexicographic would pick PR9).
        for name in [
            "BENCH_PR2.json",
            "BENCH_PR9.json",
            "BENCH_PR10.json",
            "other.json",
        ] {
            std::fs::write(dir.join(name), "{}").unwrap();
        }
        let (path, n) = find_latest_baseline(&dir).expect("baselines present");
        assert_eq!(n, 10);
        assert_eq!(path.file_name().unwrap(), "BENCH_PR10.json");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn repo_root_latest_baseline_is_discoverable() {
        // The committed trajectory files themselves: the guard must pin to
        // the newest one (BENCH_PR3.json as of this PR) and it must parse.
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..");
        let (path, n) = find_latest_baseline(&root).expect("committed BENCH_*.json present");
        assert!(n >= 3, "newest committed baseline regressed to PR{n}");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            baseline_ips(&text).is_some(),
            "{} is not a valid smt-bench document",
            path.display()
        );
    }

    #[test]
    fn bench_json_parses_and_carries_runs() {
        let r = run_reference(400);
        let doc = bench_to_json(&[r, r], &r);
        let back = Json::parse(&doc.render_pretty()).expect("bench JSON must parse");
        assert_eq!(
            back.get("schema_version").and_then(Json::as_u64),
            Some(JSON_SCHEMA_VERSION)
        );
        assert_eq!(back.get("kind").and_then(Json::as_str), Some("smt-bench"));
        assert_eq!(
            back.get("runs").and_then(Json::as_array).map(<[_]>::len),
            Some(2)
        );
        assert!(back
            .get("best")
            .and_then(|b| b.get("insts_per_second"))
            .and_then(Json::as_f64)
            .is_some_and(|v| v > 0.0));
    }
}

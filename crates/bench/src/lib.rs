//! Simulator throughput micro-benchmark.
//!
//! Measures how fast the simulator itself runs: simulated instructions
//! committed per wall-clock second across the reference matrix
//! {RR, ICOUNT} × {standard, int8, fp8} on the 2.8 partition, plus the
//! real-binary [`RISCV_REFERENCE_MIX`] reference (checked-in rv64i ELFs
//! executed functionally through the `riscv:` workload backend). Later
//! performance PRs report against these baselines via the `smt_bench`
//! binary; `smt_bench --json` emits the machine-readable `"smt-bench"`
//! document (same `schema_version` convention as `smt_exp --json`, with
//! per-reference rates since version 3, the fleet section since
//! version 4 and the optional `pgo` uplift section since version 5) for
//! BENCH_*.json trajectory tracking, and the CI guard compares each
//! reference like for like.
//!
//! # Fleet mode
//!
//! `smt_bench --fleet` measures **aggregate** simulation throughput: N
//! independent reference configurations run in one process through
//! [`SimFleet`](smt_core::SimFleet) (`--fleet-cells N`, default 12,
//! cycling fetch policy fastest, then mix, then seed, so consecutive
//! cells share nothing but the engine). Setup is excluded from the
//! measurement exactly as in the single-instance benchmark: program
//! images are generated and one warmed checkpoint per unique (mix, seed,
//! partition) key is computed up front (the PR-6 sharing path — each
//! checkpoint seeds both the RR and the ICOUNT cell of its key), then the
//! fleet runs and
//!
//! ```text
//! aggregate insts/s = Σ committed(cell) / fleet wall-clock seconds
//! ```
//!
//! over all cells together — wall time of the whole batch, not a sum of
//! per-cell rates, so the number only grows when the machine genuinely
//! retires more simulated instructions per second across all cores. On a
//! single core the aggregate roughly matches the single-instance rate
//! (interleaving adds nothing but also costs nothing); on an M-core host
//! it approaches M× because cells are independent and the work-stealing
//! queue keeps every core busy.
//!
//! In the schema-4 JSON document the fleet lands in two places: the
//! top-level `fleet` object (cell count, worker count, per-cell cycles,
//! warm-key accounting, total committed, wall seconds,
//! `aggregate_insts_per_sec`) and — for the regression guard — a
//! synthetic [`FLEET_REFERENCE`] (`"FLEET/aggregate"`) entry returned by
//! [`baseline_reference_rates`], so `--max-regress` compares the fleet
//! aggregate like for like whenever both documents carry one and skips it
//! against pre-fleet baselines.
//!
//! # Profiling the hot loop
//!
//! Two complementary tools, both already wired up:
//!
//! 1. **Per-phase wall clock** — the `phase-timing` feature in `smt-core`
//!    accumulates the cycle driver's seven phases (memory begin-cycle,
//!    miss completions, writeback, commit, issue, rename, fetch) into
//!    global counters. The front door is this crate's `--stage-timing`
//!    mode (requires the `stage-timing` feature, which forwards to the
//!    probes):
//!
//!    ```text
//!    cargo run --release -p smt-bench --features stage-timing -- 100000 --stage-timing
//!    ```
//!
//!    which prints each stage's wall clock, share and instructions
//!    through-rate; the raw counters are also printed by the smt-core
//!    `phase_timing` example. The probes cost ~15% of throughput (two
//!    `clock_gettime`s per phase), so the feature is compiled out of
//!    normal builds; treat the per-phase shares as accurate and the
//!    absolute total as inflated.
//!
//! 2. **Sampling profilers** — the release profile ships
//!    `debug = "line-tables-only"`, so `perf` / flamegraphs attribute the
//!    fully-inlined hot loop back to source lines with no rebuild:
//!
//!    ```text
//!    perf record --call-graph dwarf -F 999 -- target/release/smt_bench 400000
//!    perf report --no-children          # or: flamegraph target/release/smt_bench 400000
//!    ```
//!
//! What the steady-state profile should look like (reference machine,
//! warmed, block-granular front end): the seven phases split roughly
//! rename (~24%) > fetch ≈ issue (~20% each) > writeback (~17%) >
//! commit (~12%) > memory events (~7%), with **zero heap allocations per
//! cycle** (pinned by the allocation-guard test in this crate — a
//! counting global allocator over a warmed 5k-cycle window). Rename leads
//! because the block-granular path concentrates per-instruction work
//! there: the whole fetch block moves through one slab free-list
//! transaction and a flat block-local rename scratch, so fetch and
//! dispatch are mostly bulk cursor moves while rename does the per-operand
//! probes. Leaf components are cheap (oracle step and a predictor lookup
//! are each a few nanoseconds); the cycle cost is dominated by cache
//! traffic over the pipeline's own state, which is why the data layout
//! (packed 48-byte hot records, 4-byte slab handles, inline wakeup lists)
//! is the performance-critical part. A profile showing a *function*
//! hotspot — a hash probe, an allocator frame, a `memmove` — is a
//! regression signal, not background noise.
//!
//! A third, build-level lever rides on top: the PGO path
//! (`scripts/pgo.sh`, the `smt-pgo` converter crate) builds `smt_bench`
//! with `-Cprofile-use` against the committed `pgo/smt_bench.profdata`;
//! measured uplift lands in the bench document's `pgo` section
//! (schema 5) via `--pgo-from`, kept separate from the guarded plain
//! rates so the CI regression guard stays like for like.
//!
//! # Examples
//!
//! ```
//! use smt_bench::{bench_to_json, run_reference, ReferenceResult};
//!
//! let result = run_reference(400);
//! assert_eq!(result.cycles, 400);
//! assert!(result.ips() > 0.0);
//! let reference = ReferenceResult {
//!     name: smt_bench::reference_name("icount", "standard"),
//!     runs: vec![result],
//!     best: result,
//! };
//! let doc = bench_to_json(&[reference]);
//! assert!(doc.render().contains("\"kind\":\"smt-bench\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

use smt_core::SimConfig;
use smt_stats::json::Json;

/// Result of one timed simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchResult {
    /// Simulated cycles executed.
    pub cycles: u64,
    /// Correct-path instructions committed.
    pub committed: u64,
    /// Wall-clock time spent inside `Simulator::run`.
    pub wall: Duration,
}

impl BenchResult {
    /// Simulated instructions committed per wall-clock second.
    pub fn ips(&self) -> f64 {
        self.committed as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Simulated cycles per wall-clock second.
    pub fn cps(&self) -> f64 {
        self.cycles as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// This measurement as a JSON object (one entry of the `runs` array in
    /// the `"smt-bench"` document).
    pub fn to_json(&self) -> Json {
        Json::object([
            ("cycles", Json::from(self.cycles)),
            ("committed", Json::from(self.committed)),
            ("wall_seconds", Json::from(self.wall.as_secs_f64())),
            ("insts_per_second", Json::from(self.ips())),
            ("cycles_per_second", Json::from(self.cps())),
        ])
    }
}

/// Version of the `"smt-bench"` JSON document. Version 3 added the
/// multi-reference `references` map; version 4 added the optional `fleet`
/// object (aggregate throughput across a [`SimFleet`](smt_core::SimFleet)
/// of reference configurations — see "Fleet mode" in the crate docs);
/// version 5 added the optional `pgo` object (`--pgo-from`, the uplift of
/// a profile-guided build over this one, reported separately so the
/// guarded reference rates stay plain-build like-for-like).
/// [`baseline_ips`] and [`baseline_reference_rates`] accept all versions.
pub const JSON_SCHEMA_VERSION: u64 = 5;

/// Fetch policies the multi-reference benchmark sweeps.
pub const REFERENCE_FETCHES: [&str; 2] = ["icount", "rr"];

/// Workload mixes the multi-reference benchmark sweeps (see
/// `smt_experiments::study::mix_by_name`).
pub const REFERENCE_MIXES: [&str; 3] = ["standard", "int8", "fp8"];

/// Canonical mix label of the real-binary reference: the three checked-in
/// rv64i ELFs (`loops`, `memsum`, `gcd` in `testdata/riscv/`) executed
/// functionally through the `riscv:` workload backend. The reference is
/// measured alongside the synthetic matrix and guarded under
/// `"ICOUNT/riscv3"` / `"RR/riscv3"`; baselines committed before the
/// backend existed simply lack those names, so the like-for-like guard
/// skips them against old documents exactly as it does for the fleet.
pub const RISCV_REFERENCE_MIX: &str = "riscv3";

/// The custom-mix string behind [`RISCV_REFERENCE_MIX`]: a `+`-separated
/// `riscv:PATH` list over the checked-in test binaries, resolvable by
/// `smt_experiments::study::resolve_mix` (paths are fixed at compile time
/// relative to this crate, so the binary measures the same images from any
/// working directory).
pub fn riscv_reference_spec() -> String {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../testdata/riscv");
    format!("riscv:{dir}/loops.elf+riscv:{dir}/memsum.elf+riscv:{dir}/gcd.elf")
}

/// The canonical name of one benchmark reference, e.g. `"ICOUNT/standard"`
/// — also the key in the JSON document's `references` map, which the
/// regression guard uses to compare like for like.
pub fn reference_name(fetch: &str, mix: &str) -> String {
    let canonical = smt_core::fetch_policy_by_name(fetch)
        .map(|p| p.name().to_string())
        .unwrap_or_else(|| fetch.to_ascii_uppercase());
    format!("{canonical}/{mix}")
}

/// One fully-measured reference configuration: its timed runs and the best
/// (least-noisy) one.
#[derive(Debug, Clone)]
pub struct ReferenceResult {
    /// Canonical reference name ([`reference_name`]).
    pub name: String,
    /// Every timed run, in execution order.
    pub runs: Vec<BenchResult>,
    /// The run with the highest instruction rate.
    pub best: BenchResult,
}

impl ReferenceResult {
    /// Times `runs` measurements of the given configuration (after one
    /// short warmup run) and returns the collected reference.
    ///
    /// # Panics
    ///
    /// Panics if `fetch` or `mix` is not a known name.
    pub fn measure(fetch: &str, mix: &str, cycles: u64, runs: usize) -> ReferenceResult {
        Self::measure_labeled(fetch, mix, mix, cycles, runs)
    }

    /// [`ReferenceResult::measure`] with the reference reported under a
    /// separate canonical `label` — how the real-binary reference keeps
    /// the short [`RISCV_REFERENCE_MIX`] name in the JSON `references`
    /// map while the measured `mix` is a full `riscv:PATH+…` custom-mix
    /// string.
    ///
    /// # Panics
    ///
    /// Panics if `fetch` is not a known policy or `mix` does not resolve.
    pub fn measure_labeled(
        fetch: &str,
        mix: &str,
        label: &str,
        cycles: u64,
        runs: usize,
    ) -> ReferenceResult {
        let _ = run_configured(fetch, mix, cycles / 10);
        let results: Vec<BenchResult> = (0..runs.max(1))
            .map(|_| run_configured(fetch, mix, cycles))
            .collect();
        let best = *results
            .iter()
            .max_by(|a, b| a.ips().total_cmp(&b.ips()))
            .expect("at least one run");
        ReferenceResult {
            name: reference_name(fetch, label),
            runs: results,
            best,
        }
    }
}

/// Checkpoint micro-benchmark result for one reference configuration:
/// the warmed machine's checkpoint size plus best-of-N save and restore
/// latencies (`smt_bench --checkpoint`).
#[derive(Debug, Clone)]
pub struct CheckpointBench {
    /// Canonical reference name ([`reference_name`]).
    pub name: String,
    /// Cycles the machine was warmed before checkpointing.
    pub warm_cycles: u64,
    /// Serialized checkpoint size in bytes.
    pub bytes: u64,
    /// Best wall-clock time to serialize the checkpoint.
    pub save: Duration,
    /// Best wall-clock time to restore a simulator from the checkpoint.
    pub restore: Duration,
}

impl CheckpointBench {
    /// This measurement as a JSON object (one entry of the `checkpoints`
    /// map in the `"smt-bench"` document).
    pub fn to_json(&self) -> Json {
        Json::object([
            ("warm_cycles", Json::from(self.warm_cycles)),
            ("checkpoint_bytes", Json::from(self.bytes)),
            ("save_seconds", Json::from(self.save.as_secs_f64())),
            ("restore_seconds", Json::from(self.restore.as_secs_f64())),
        ])
    }
}

/// Measures checkpoint size and save/restore latency for one reference
/// `(fetch, mix)` machine warmed for `cycles` cycles; latencies are the
/// best of `runs` attempts. The restore is validated to land on the saved
/// cycle — this doubles as an in-process round-trip check on the reference
/// machines.
///
/// # Panics
///
/// Panics if `fetch` is not a known policy, `mix` does not resolve, or
/// the just-written checkpoint fails to restore (a bug, not an input
/// error).
pub fn bench_checkpoint(fetch: &str, mix: &str, cycles: u64, runs: usize) -> CheckpointBench {
    let images = smt_experiments::study::resolve_mix(mix, 42)
        .unwrap_or_else(|e| panic!("cannot resolve mix '{mix}': {e}"));
    let mk_cfg = || {
        let policy = smt_core::fetch_policy_by_name(fetch)
            .unwrap_or_else(|| panic!("unknown fetch policy '{fetch}'"));
        images
            .apply(SimConfig::new())
            .with_seed(42)
            .with_fetch(policy)
    };
    let mut sim = mk_cfg().build();
    for _ in 0..cycles {
        sim.step_cycle();
    }
    let mut bytes = Vec::new();
    sim.save_checkpoint(&mut bytes)
        .expect("writing a checkpoint to a Vec cannot fail");
    let mut save = Duration::MAX;
    let mut restore = Duration::MAX;
    for _ in 0..runs.max(1) {
        let mut buf = Vec::with_capacity(bytes.len());
        let start = Instant::now();
        sim.save_checkpoint(&mut buf)
            .expect("writing a checkpoint to a Vec cannot fail");
        save = save.min(start.elapsed());

        let cfg = mk_cfg();
        let start = Instant::now();
        let restored = smt_core::Simulator::restore_checkpoint(cfg, &mut bytes.as_slice())
            .expect("a just-written checkpoint must restore");
        restore = restore.min(start.elapsed());
        assert_eq!(restored.cycle(), sim.cycle(), "restore landed off-cycle");
    }
    CheckpointBench {
        name: reference_name(fetch, mix),
        warm_cycles: cycles,
        bytes: bytes.len() as u64,
        save,
        restore,
    }
}

/// The synthetic reference name the fleet aggregate is guarded under:
/// the key [`baseline_reference_rates`] reports a document's
/// `fleet.aggregate_insts_per_sec` as, so the like-for-like regression
/// guard covers the fleet alongside the single-instance references.
pub const FLEET_REFERENCE: &str = "FLEET/aggregate";

/// Result of one fleet measurement (`smt_bench --fleet`): N reference
/// configurations run to completion in one process, timed as a batch.
/// See "Fleet mode" in the crate docs for how the cells are chosen and
/// what the aggregate means.
#[derive(Debug, Clone)]
pub struct FleetBench {
    /// Number of cells the fleet ran.
    pub cells: usize,
    /// Worker threads that ran them (resolved from the available cores).
    pub workers: usize,
    /// Measured cycles each cell simulated.
    pub cycles_per_cell: u64,
    /// Warmup cycles captured in each cell's checkpoint.
    pub warmup_cycles: u64,
    /// Unique (mix, seed, partition) warm keys — warmups actually
    /// simulated; every cell forks one of these shared checkpoints.
    pub warm_keys: usize,
    /// Correct-path instructions committed across all cells' measured
    /// windows.
    pub total_committed: u64,
    /// Wall-clock time of the whole fleet run (setup excluded).
    pub wall: Duration,
}

impl FleetBench {
    /// Aggregate simulated instructions per wall-clock second across all
    /// cells: `total_committed / wall`.
    pub fn aggregate_ips(&self) -> f64 {
        self.total_committed as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// This measurement as the `fleet` object of the `"smt-bench"`
    /// document (schema version 4).
    pub fn to_json(&self) -> Json {
        Json::object([
            ("cells", Json::from(self.cells)),
            ("workers", Json::from(self.workers)),
            ("cycles_per_cell", Json::from(self.cycles_per_cell)),
            ("warmup_cycles", Json::from(self.warmup_cycles)),
            ("warm_keys", Json::from(self.warm_keys)),
            ("total_committed", Json::from(self.total_committed)),
            ("wall_seconds", Json::from(self.wall.as_secs_f64())),
            ("aggregate_insts_per_sec", Json::from(self.aggregate_ips())),
        ])
    }
}

impl std::fmt::Display for FleetBench {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} cells on {} workers ({} warm keys), {} committed in {:.3}s \
             -> {:.0} kinsts/s aggregate",
            self.cells,
            self.workers,
            self.warm_keys,
            self.total_committed,
            self.wall.as_secs_f64(),
            self.aggregate_ips() / 1e3,
        )
    }
}

/// Measures fleet aggregate throughput: builds `cells` reference
/// configurations (cycling fetch policy, then mix, then seed over the
/// reference matrix), computes one shared warmed checkpoint per unique
/// (mix, seed) key, forks every cell off its key's checkpoint, and times
/// one [`SimFleet`](smt_core::SimFleet) run of `cycles` measured cycles
/// per cell on `jobs` workers (`0` = one per core). Checkpoint warmup is
/// `cycles / 10` and is excluded from the measurement, like construction
/// and program generation in the single-instance benchmark.
///
/// # Panics
///
/// Panics if `cells` is zero.
pub fn bench_fleet(cells: usize, cycles: u64, jobs: usize) -> FleetBench {
    use std::sync::Arc;

    assert!(cells > 0, "a fleet needs at least one cell");
    let warmup = (cycles / 10).max(1);
    let partition = smt_core::FetchPartition::new(2, 8);

    // Cell i: fetch cycles fastest so each warm key's checkpoint seeds
    // both the RR and the ICOUNT cell before the next key begins.
    let spec = |i: usize| {
        let fetch = REFERENCE_FETCHES[i % REFERENCE_FETCHES.len()];
        let mix = REFERENCE_MIXES[(i / REFERENCE_FETCHES.len()) % REFERENCE_MIXES.len()];
        let seed = 42 + (i / (REFERENCE_FETCHES.len() * REFERENCE_MIXES.len())) as u64;
        (fetch, mix, seed)
    };

    // One program image set and one warmed checkpoint per unique
    // (mix, seed) key, shared across the cells that fork it.
    let mut keys: Vec<(&str, u64)> = Vec::new();
    for i in 0..cells {
        let (_, mix, seed) = spec(i);
        if !keys.contains(&(mix, seed)) {
            keys.push((mix, seed));
        }
    }
    // (workload images, warmed checkpoint) per key.
    type WarmKey = (smt_experiments::study::MixImages, Arc<Vec<u8>>);
    let warmed: Vec<WarmKey> = keys
        .iter()
        .map(|&(mix, seed)| {
            let images = smt_experiments::study::resolve_mix(mix, seed)
                .unwrap_or_else(|e| panic!("cannot resolve mix '{mix}': {e}"));
            let warm = smt_experiments::warmup::warm_checkpoint(
                &images, mix, seed, partition, warmup, None,
            );
            (images, warm.checkpoint)
        })
        .collect();

    let mut fleet = smt_core::SimFleet::new().with_jobs(jobs);
    for i in 0..cells {
        let (fetch, mix, seed) = spec(i);
        let key = keys
            .iter()
            .position(|&k| k == (mix, seed))
            .expect("key collected");
        let (images, ckpt) = &warmed[key];
        let cfg = smt_experiments::warmup::canonical_config_for(images, seed, partition)
            .with_fetch(smt_core::fetch_policy_by_name(fetch).expect("shipped policy"));
        fleet.push(smt_core::FleetCell::forked(cfg, ckpt.clone(), cycles));
    }

    let workers = smt_stats::sched::resolve_workers(jobs, cells);
    let start = Instant::now();
    let reports = fleet.run();
    let wall = start.elapsed();
    FleetBench {
        cells,
        workers,
        cycles_per_cell: cycles,
        warmup_cycles: warmup,
        warm_keys: keys.len(),
        total_committed: reports.iter().map(|r| r.total_committed()).sum(),
        wall,
    }
}

/// Uplift of a profile-guided build over this (plain) one
/// (`smt_bench --pgo-from`): per-reference rate pairs, matched by name.
/// Lives in the schema-5 `pgo` object, *separate* from the `references`
/// map — the guarded rates always describe the plain build, so the CI
/// throughput guard and the committed `BENCH_*.json` trajectory stay
/// like-for-like whether or not a PGO build was measured alongside.
#[derive(Debug, Clone)]
pub struct PgoBench {
    /// `(reference name, PGO build insts/s, plain build insts/s)` for
    /// every reference present in both documents.
    pub entries: Vec<(String, f64, f64)>,
}

impl PgoBench {
    /// Geometric-mean uplift factor across the paired references.
    pub fn mean_uplift(&self) -> f64 {
        let log_sum: f64 = self
            .entries
            .iter()
            .map(|(_, pgo, plain)| (pgo / plain.max(1e-9)).ln())
            .sum();
        (log_sum / self.entries.len().max(1) as f64).exp()
    }

    /// This measurement as the `pgo` object of the `"smt-bench"` document
    /// (schema version 5).
    pub fn to_json(&self) -> Json {
        Json::object([
            (
                "references",
                Json::object(self.entries.iter().map(|(name, pgo, plain)| {
                    (
                        name.as_str(),
                        Json::object([
                            ("insts_per_sec", Json::from(*pgo)),
                            ("plain_insts_per_sec", Json::from(*plain)),
                            ("uplift", Json::from(pgo / plain.max(1e-9))),
                        ]),
                    )
                })),
            ),
            ("mean_uplift", Json::from(self.mean_uplift())),
        ])
    }
}

/// Pairs a PGO-built `smt_bench --json` document (the `--pgo-from` file,
/// written by `target/pgo/release/smt_bench`) against this run's measured
/// references, like for like by name. `None` when the text is not an
/// `"smt-bench"` document or shares no reference with `references`.
pub fn pgo_uplift(pgo_document: &str, references: &[ReferenceResult]) -> Option<PgoBench> {
    let pgo_rates = baseline_reference_rates(pgo_document)?;
    let entries: Vec<(String, f64, f64)> = references
        .iter()
        .filter_map(|r| {
            pgo_rates
                .iter()
                .find(|(name, _)| *name == r.name)
                .map(|&(_, pgo)| (r.name.clone(), pgo, r.best.ips()))
        })
        .collect();
    if entries.is_empty() {
        return None;
    }
    Some(PgoBench { entries })
}

/// The machine-readable benchmark document: one entry per measured
/// reference plus the headline. `smt_bench --json` writes this,
/// pretty-rendered.
///
/// The top-level `insts_per_sec` is the **best rate across references**
/// (the `reference` field names which one); per-reference rates live in
/// the `references` map, keyed by canonical name, and the CI guard
/// compares those like for like against the committed baseline.
pub fn bench_to_json(references: &[ReferenceResult]) -> Json {
    bench_to_json_with_checkpoints(references, &[])
}

/// [`bench_to_json`] plus the `--checkpoint` measurements: when
/// `checkpoints` is non-empty the document carries an additional
/// `checkpoints` map keyed by reference name (additive — documents
/// without the flag are identical).
pub fn bench_to_json_with_checkpoints(
    references: &[ReferenceResult],
    checkpoints: &[CheckpointBench],
) -> Json {
    bench_to_json_full(references, checkpoints, None, None)
}

/// The full `"smt-bench"` document: references, optional `--checkpoint`
/// measurements, the optional `--fleet` aggregate (the `fleet` object,
/// schema version 4), and the optional `--pgo-from` uplift (the `pgo`
/// object, schema version 5). Every optional section is additive —
/// omitting them yields the same document older PRs committed.
pub fn bench_to_json_full(
    references: &[ReferenceResult],
    checkpoints: &[CheckpointBench],
    fleet: Option<&FleetBench>,
    pgo: Option<&PgoBench>,
) -> Json {
    let headline = references
        .iter()
        .max_by(|a, b| a.best.ips().total_cmp(&b.best.ips()))
        .expect("at least one reference");
    let mut fields = vec![
        ("schema_version", Json::from(JSON_SCHEMA_VERSION)),
        ("kind", Json::from("smt-bench")),
        ("reference", Json::from(headline.name.clone())),
        ("insts_per_sec", Json::from(headline.best.ips())),
        (
            "references",
            Json::object(references.iter().map(|r| {
                (
                    r.name.as_str(),
                    Json::object([
                        ("insts_per_sec", Json::from(r.best.ips())),
                        ("runs", Json::array(r.runs.iter().map(BenchResult::to_json))),
                        ("best", r.best.to_json()),
                    ]),
                )
            })),
        ),
    ];
    if !checkpoints.is_empty() {
        fields.push((
            "checkpoints",
            Json::object(checkpoints.iter().map(|c| (c.name.as_str(), c.to_json()))),
        ));
    }
    if let Some(fleet) = fleet {
        fields.push(("fleet", fleet.to_json()));
    }
    if let Some(pgo) = pgo {
        fields.push(("pgo", pgo.to_json()));
    }
    // Legacy mirror of the headline reference, so older consumers keep
    // parsing the document.
    fields.push((
        "runs",
        Json::array(headline.runs.iter().map(BenchResult::to_json)),
    ));
    fields.push(("best", headline.best.to_json()));
    Json::object(fields)
}

/// Extracts the headline insts/s rate from a rendered `"smt-bench"`
/// document, accepting every schema version (top-level `insts_per_sec`,
/// falling back to `best.insts_per_second`).
pub fn baseline_ips(text: &str) -> Option<f64> {
    let doc = Json::parse(text).ok()?;
    if doc.get("kind").and_then(Json::as_str) != Some("smt-bench") {
        return None;
    }
    doc.get("insts_per_sec")
        .and_then(Json::as_f64)
        .or_else(|| {
            doc.get("best")
                .and_then(|b| b.get("insts_per_second"))
                .and_then(Json::as_f64)
        })
        .filter(|v| *v > 0.0)
}

/// Per-reference `(name, insts_per_sec)` rates from a bench document. For
/// pre-version-3 documents — which measured only ICOUNT on the standard
/// mix — the single headline rate is returned under its canonical
/// `"ICOUNT/standard"` name, so like-for-like guards work across the whole
/// committed trajectory. A version-4 `fleet` section is reported as the
/// synthetic [`FLEET_REFERENCE`] entry; pre-fleet baselines simply lack
/// it, so the guard skips the fleet comparison against them.
pub fn baseline_reference_rates(text: &str) -> Option<Vec<(String, f64)>> {
    let doc = Json::parse(text).ok()?;
    if doc.get("kind").and_then(Json::as_str) != Some("smt-bench") {
        return None;
    }
    let fleet_rate = doc
        .get("fleet")
        .and_then(|f| f.get("aggregate_insts_per_sec"))
        .and_then(Json::as_f64);
    if let Some(refs) = doc.get("references").and_then(Json::as_object) {
        let mut out = Vec::new();
        for (name, entry) in refs {
            let rate = entry.get("insts_per_sec").and_then(Json::as_f64)?;
            out.push((name.clone(), rate));
        }
        if let Some(rate) = fleet_rate {
            out.push((FLEET_REFERENCE.to_string(), rate));
        }
        return Some(out);
    }
    Some(vec![(
        reference_name("icount", "standard"),
        baseline_ips(text)?,
    )])
}

/// The PR number of a committed baseline file name (`BENCH_PR<N>.json`),
/// or `None` for any other name.
pub fn bench_pr_number(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("BENCH_PR")?.strip_suffix(".json")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Finds the newest committed benchmark baseline in `dir`: the
/// `BENCH_PR<N>.json` file with the **highest PR number** (numeric, not
/// lexicographic — `BENCH_PR10.json` beats `BENCH_PR9.json`). Returns the
/// path and its PR number; `None` when the directory holds no baseline.
///
/// This is what the CI throughput guard pins against
/// (`smt_bench --baseline-latest DIR`), so the guard re-pins itself
/// automatically whenever a PR commits a newer `BENCH_*.json` — a guard
/// left on an old pre-speedup floor would let large regressions of the
/// *current* performance pass unnoticed.
pub fn find_latest_baseline(dir: &std::path::Path) -> Option<(std::path::PathBuf, u64)> {
    let mut best: Option<(std::path::PathBuf, u64)> = None;
    for entry in std::fs::read_dir(dir).ok()?.flatten() {
        let name = entry.file_name();
        let Some(n) = name.to_str().and_then(bench_pr_number) else {
            continue;
        };
        if best.as_ref().is_none_or(|&(_, b)| n > b) {
            best = Some((entry.path(), n));
        }
    }
    best
}

impl std::fmt::Display for BenchResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} cycles, {} committed in {:.3}s -> {:.0} kinsts/s ({:.0} kcycles/s)",
            self.cycles,
            self.committed,
            self.wall.as_secs_f64(),
            self.ips() / 1e3,
            self.cps() / 1e3,
        )
    }
}

/// Builds the reference machine (ICOUNT.2.8, standard 8-thread mix) and
/// times `cycles` simulated cycles. Construction and program generation are
/// excluded from the measurement.
pub fn run_reference(cycles: u64) -> BenchResult {
    run_configured("icount", "standard", cycles)
}

/// [`run_reference`] for an arbitrary `(fetch policy, mix)` reference, on
/// the 2.8 partition at seed 42 — one cell of the multi-reference
/// benchmark.
///
/// # Panics
///
/// Panics if `fetch` is not a known policy or `mix` does not resolve
/// (unknown name, bad custom-mix syntax, unreadable workload file).
pub fn run_configured(fetch: &str, mix: &str, cycles: u64) -> BenchResult {
    let images = smt_experiments::study::resolve_mix(mix, 42)
        .unwrap_or_else(|e| panic!("cannot resolve mix '{mix}': {e}"));
    let policy = smt_core::fetch_policy_by_name(fetch)
        .unwrap_or_else(|| panic!("unknown fetch policy '{fetch}'"));
    let mut sim = images
        .apply(SimConfig::new())
        .with_seed(42)
        .with_fetch(policy)
        .build();
    let start = Instant::now();
    let report = sim.run(cycles);
    let wall = start.elapsed();
    BenchResult {
        cycles,
        committed: report.total_committed(),
        wall,
    }
}

/// The seven pipeline-phase names, in the order `smt-core`'s `phase-timing`
/// probes accumulate them (and the order one simulated cycle runs them).
pub const STAGE_NAMES: [&str; 7] = [
    "mem.begin",
    "completions",
    "writeback",
    "commit",
    "issue",
    "rename",
    "fetch",
];

/// One pipeline stage's share of the reference run (`--stage-timing`).
#[cfg(feature = "stage-timing")]
#[derive(Debug, Clone, Copy)]
pub struct StageResult {
    /// Phase name ([`STAGE_NAMES`]).
    pub name: &'static str,
    /// Wall-clock nanoseconds accumulated inside the phase.
    pub nanos: u64,
    /// Committed instructions divided by this phase's seconds: how fast
    /// the simulator would run if this stage were the whole cycle — the
    /// per-stage insts/s that makes stages comparable across PRs even as
    /// the total shifts.
    pub insts_per_sec: f64,
}

/// Runs the reference machine (ICOUNT.2.8, standard mix) for `cycles`
/// and returns the committed-instruction count plus each pipeline
/// stage's accumulated wall clock and per-stage insts/s, measured by
/// `smt-core`'s `phase-timing` probes. Only meaningful in a process that
/// has not already run other simulations (the probes are global
/// accumulators).
#[cfg(feature = "stage-timing")]
pub fn run_stage_timing(cycles: u64) -> (u64, Vec<StageResult>) {
    let mut sim = SimConfig::new().build();
    let committed = sim.run(cycles).total_committed();
    let stages = STAGE_NAMES
        .iter()
        .zip(smt_core::pipeline_phase_ns())
        .map(|(&name, nanos)| StageResult {
            name,
            nanos,
            insts_per_sec: committed as f64 / (nanos as f64 / 1e9).max(1e-9),
        })
        .collect();
    (committed, stages)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_bench_runs_and_reports() {
        let r = run_reference(300);
        assert_eq!(r.cycles, 300);
        assert!(r.committed > 0);
        assert!(r.ips() > 0.0);
        let s = r.to_string();
        assert!(s.contains("committed"));
    }

    fn reference_of(r: BenchResult, fetch: &str, mix: &str) -> ReferenceResult {
        ReferenceResult {
            name: reference_name(fetch, mix),
            runs: vec![r],
            best: r,
        }
    }

    #[test]
    fn baseline_ips_reads_every_schema() {
        let r = run_reference(300);
        let doc = bench_to_json(&[reference_of(r, "icount", "standard")]);
        let ips = baseline_ips(&doc.render_pretty()).expect("current schema must parse");
        assert!((ips - r.ips()).abs() < 1e-9);
        // Original schema: no top-level field, only best.insts_per_second.
        let old = Json::object([
            ("schema_version", Json::from(1u64)),
            ("kind", Json::from("smt-bench")),
            ("best", r.to_json()),
        ]);
        assert!(baseline_ips(&old.render()).is_some());
        assert!(baseline_ips("{\"kind\":\"other\"}").is_none());
        assert!(baseline_ips("not json").is_none());
    }

    #[test]
    fn reference_rates_read_current_and_legacy_documents() {
        let mut fast = run_reference(300);
        let mut slow = fast;
        fast.wall = std::time::Duration::from_millis(10);
        slow.wall = std::time::Duration::from_millis(20);
        let doc = bench_to_json(&[
            reference_of(slow, "icount", "standard"),
            reference_of(fast, "rr", "fp8"),
        ]);
        let text = doc.render_pretty();
        // Headline is the best rate across references, and names it.
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(
            parsed.get("reference").and_then(Json::as_str),
            Some("RR/fp8")
        );
        assert!((baseline_ips(&text).unwrap() - fast.ips()).abs() < 1e-9);
        // Per-reference rates survive the round trip, like for like.
        let rates = baseline_reference_rates(&text).unwrap();
        assert_eq!(rates.len(), 2);
        assert!(rates
            .iter()
            .any(|(n, v)| n == "ICOUNT/standard" && (v - slow.ips()).abs() < 1e-9));
        assert!(rates
            .iter()
            .any(|(n, v)| n == "RR/fp8" && (v - fast.ips()).abs() < 1e-9));
        // A legacy (pre-v3) document maps onto the ICOUNT/standard name.
        let legacy = Json::object([
            ("schema_version", Json::from(2u64)),
            ("kind", Json::from("smt-bench")),
            ("insts_per_sec", Json::from(123.0)),
        ]);
        assert_eq!(
            baseline_reference_rates(&legacy.render()),
            Some(vec![("ICOUNT/standard".to_string(), 123.0)])
        );
    }

    #[test]
    fn multi_reference_measure_covers_the_matrix() {
        // A tiny end-to-end sweep of the full {fetch} x {mix} matrix.
        for fetch in REFERENCE_FETCHES {
            for mix in REFERENCE_MIXES {
                let r = ReferenceResult::measure(fetch, mix, 300, 1);
                assert_eq!(r.name, reference_name(fetch, mix));
                assert_eq!(r.runs.len(), 1);
                assert!(r.best.committed > 0, "{} made no progress", r.name);
            }
        }
    }

    #[test]
    fn riscv_reference_measures_real_binaries() {
        // The real-binary reference: measured from a custom `riscv:` mix
        // string, reported under its short canonical label.
        let spec = riscv_reference_spec();
        let r = ReferenceResult::measure_labeled("icount", &spec, RISCV_REFERENCE_MIX, 400, 1);
        assert_eq!(r.name, "ICOUNT/riscv3");
        assert!(r.best.committed > 0, "real binaries made no progress");

        // Guard semantics: the committed (pre-backend) baseline carries no
        // riscv3 entry, so the like-for-like guard has nothing to compare
        // it against and skips it — while a current document does carry it
        // for future baselines to pin.
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..");
        let (path, _) = find_latest_baseline(&root).expect("committed BENCH_*.json present");
        let baseline = std::fs::read_to_string(&path).unwrap();
        let base_rates = baseline_reference_rates(&baseline).expect("baseline parses");
        assert!(
            base_rates.iter().all(|(n, _)| !n.ends_with("/riscv3")),
            "committed baseline unexpectedly already guards the riscv reference"
        );
        let doc = bench_to_json(std::slice::from_ref(&r)).render_pretty();
        let rates = baseline_reference_rates(&doc).unwrap();
        assert!(rates
            .iter()
            .any(|(n, v)| n == "ICOUNT/riscv3" && (v - r.best.ips()).abs() < 1e-9));
    }

    #[test]
    fn checkpoint_bench_measures_and_serializes() {
        let c = bench_checkpoint("icount", "standard", 400, 1);
        assert_eq!(c.name, "ICOUNT/standard");
        assert_eq!(c.warm_cycles, 400);
        assert!(c.bytes > 0, "checkpoint must have a size");
        assert!(c.save > Duration::ZERO && c.restore > Duration::ZERO);

        let r = run_reference(300);
        let refs = [reference_of(r, "icount", "standard")];
        // Additive: without checkpoints the document is unchanged …
        let plain = bench_to_json(&refs).render_pretty();
        assert!(!plain.contains("\"checkpoints\""));
        // … and with them it carries the per-reference map.
        let doc = bench_to_json_with_checkpoints(&refs, std::slice::from_ref(&c));
        let back = Json::parse(&doc.render_pretty()).unwrap();
        let entry = back
            .get("checkpoints")
            .and_then(|m| m.get("ICOUNT/standard"))
            .expect("checkpoint entry present");
        assert_eq!(
            entry.get("checkpoint_bytes").and_then(Json::as_u64),
            Some(c.bytes)
        );
        assert!(entry
            .get("restore_seconds")
            .and_then(Json::as_f64)
            .is_some_and(|v| v > 0.0));
    }

    #[test]
    fn fleet_bench_measures_and_serializes() {
        // Two warm keys (standard/int8 at seed 42), each seeding an RR
        // and an ICOUNT cell.
        let f = bench_fleet(4, 300, 2);
        assert_eq!(f.cells, 4);
        assert_eq!(f.warm_keys, 2);
        assert_eq!(f.workers, 2);
        assert_eq!(f.cycles_per_cell, 300);
        assert!(f.total_committed > 0, "fleet cells made no progress");
        assert!(f.aggregate_ips() > 0.0);
        assert!(f.to_string().contains("aggregate"));

        let r = run_reference(300);
        let refs = [reference_of(r, "icount", "standard")];
        // Additive: without the fleet the document is unchanged …
        let plain = bench_to_json_full(&refs, &[], None, None).render_pretty();
        assert!(!plain.contains("\"fleet\""));
        // … and with it the schema-4 fleet object round-trips.
        let doc = bench_to_json_full(&refs, &[], Some(&f), None);
        let back = Json::parse(&doc.render_pretty()).unwrap();
        assert_eq!(
            back.get("schema_version").and_then(Json::as_u64),
            Some(JSON_SCHEMA_VERSION)
        );
        let entry = back.get("fleet").expect("fleet object present");
        assert_eq!(entry.get("cells").and_then(Json::as_u64), Some(4));
        assert_eq!(
            entry.get("total_committed").and_then(Json::as_u64),
            Some(f.total_committed)
        );
        assert!(entry
            .get("aggregate_insts_per_sec")
            .and_then(Json::as_f64)
            .is_some_and(|v| v > 0.0));
    }

    #[test]
    fn fleet_rate_joins_the_guarded_references() {
        let r = run_reference(300);
        let refs = [reference_of(r, "icount", "standard")];
        let f = FleetBench {
            cells: 12,
            workers: 4,
            cycles_per_cell: 300,
            warmup_cycles: 30,
            warm_keys: 6,
            total_committed: 1_000_000,
            wall: Duration::from_millis(250),
        };
        let text = bench_to_json_full(&refs, &[], Some(&f), None).render_pretty();
        let rates = baseline_reference_rates(&text).unwrap();
        assert!(rates
            .iter()
            .any(|(n, v)| n == FLEET_REFERENCE && (v - f.aggregate_ips()).abs() < 1e-6));
        // A document without a fleet section carries no synthetic entry,
        // so guards against pre-fleet baselines skip the comparison.
        let plain = bench_to_json_full(&refs, &[], None, None).render_pretty();
        let rates = baseline_reference_rates(&plain).unwrap();
        assert!(rates.iter().all(|(n, _)| n != FLEET_REFERENCE));
    }

    #[test]
    fn pgo_uplift_pairs_like_for_like_and_serializes() {
        let mut plain = run_reference(300);
        plain.wall = Duration::from_millis(20);
        let mut faster = plain;
        faster.wall = Duration::from_millis(10); // the PGO build: 2x
        let refs = [
            reference_of(plain, "icount", "standard"),
            reference_of(plain, "rr", "fp8"),
        ];
        // The "PGO build's document": same references, one twice as fast,
        // plus one reference this run did not measure.
        let pgo_doc = bench_to_json(&[
            reference_of(faster, "icount", "standard"),
            reference_of(plain, "icount", "int8"),
            reference_of(plain, "rr", "fp8"),
        ])
        .render_pretty();
        let pgo = pgo_uplift(&pgo_doc, &refs).expect("shared references");
        // Only the two shared names pair up; ICOUNT/int8 is dropped.
        assert_eq!(pgo.entries.len(), 2);
        let by_name = |n: &str| {
            pgo.entries
                .iter()
                .find(|(name, _, _)| name == n)
                .map(|&(_, p, b)| p / b)
                .expect("entry present")
        };
        assert!((by_name("ICOUNT/standard") - 2.0).abs() < 1e-9);
        assert!((by_name("RR/fp8") - 1.0).abs() < 1e-9);
        assert!((pgo.mean_uplift() - 2.0f64.sqrt()).abs() < 1e-9);

        // Additive: the pgo object round-trips and leaves the guarded
        // reference rates untouched (plain-build numbers).
        let text = bench_to_json_full(&refs, &[], None, Some(&pgo)).render_pretty();
        let back = Json::parse(&text).unwrap();
        let entry = back
            .get("pgo")
            .and_then(|p| p.get("references"))
            .and_then(|r| r.get("ICOUNT/standard"))
            .expect("pgo entry present");
        assert!((entry.get("uplift").and_then(Json::as_f64).unwrap() - 2.0).abs() < 1e-9);
        let rates = baseline_reference_rates(&text).unwrap();
        assert!(rates.iter().all(|(_, v)| (v - plain.ips()).abs() < 1e-9));
        // A document with no shared references yields no measurement.
        let other = bench_to_json(&[reference_of(plain, "icount", "int8")]).render_pretty();
        assert!(pgo_uplift(&other, &refs).is_none());
        assert!(pgo_uplift("not json", &refs).is_none());
    }

    #[test]
    fn bench_pr_numbers_parse_strictly() {
        assert_eq!(bench_pr_number("BENCH_PR2.json"), Some(2));
        assert_eq!(bench_pr_number("BENCH_PR10.json"), Some(10));
        assert_eq!(bench_pr_number("BENCH_PR.json"), None);
        assert_eq!(bench_pr_number("BENCH_PR3.json.bak"), None);
        assert_eq!(bench_pr_number("BENCH_PRx.json"), None);
        assert_eq!(bench_pr_number("bench_pr3.json"), None);
        assert_eq!(bench_pr_number("section5.json"), None);
    }

    #[test]
    fn latest_baseline_picks_highest_pr_number_numerically() {
        let dir =
            std::env::temp_dir().join(format!("smt_bench_latest_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(
            find_latest_baseline(&dir),
            None,
            "empty dir has no baseline"
        );
        // PR10 must beat PR9 (numeric order; lexicographic would pick PR9).
        for name in [
            "BENCH_PR2.json",
            "BENCH_PR9.json",
            "BENCH_PR10.json",
            "other.json",
        ] {
            std::fs::write(dir.join(name), "{}").unwrap();
        }
        let (path, n) = find_latest_baseline(&dir).expect("baselines present");
        assert_eq!(n, 10);
        assert_eq!(path.file_name().unwrap(), "BENCH_PR10.json");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn repo_root_latest_baseline_is_discoverable() {
        // The committed trajectory files themselves: the guard must pin to
        // the newest one (BENCH_PR3.json as of this PR) and it must parse.
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..");
        let (path, n) = find_latest_baseline(&root).expect("committed BENCH_*.json present");
        assert!(n >= 3, "newest committed baseline regressed to PR{n}");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            baseline_ips(&text).is_some(),
            "{} is not a valid smt-bench document",
            path.display()
        );
    }

    #[test]
    fn bench_json_parses_and_carries_runs() {
        let r = run_reference(400);
        let doc = bench_to_json(&[ReferenceResult {
            name: reference_name("icount", "standard"),
            runs: vec![r, r],
            best: r,
        }]);
        let back = Json::parse(&doc.render_pretty()).expect("bench JSON must parse");
        assert_eq!(
            back.get("schema_version").and_then(Json::as_u64),
            Some(JSON_SCHEMA_VERSION)
        );
        assert_eq!(back.get("kind").and_then(Json::as_str), Some("smt-bench"));
        assert_eq!(
            back.get("runs").and_then(Json::as_array).map(<[_]>::len),
            Some(2)
        );
        assert!(back
            .get("best")
            .and_then(|b| b.get("insts_per_second"))
            .and_then(Json::as_f64)
            .is_some_and(|v| v > 0.0));
    }
}

//! `smt_bench` — simulator throughput baseline.
//!
//! Runs a short warmup, then three timed measurements of the reference
//! ICOUNT.2.8 configuration and reports the best (least-noisy) rate.
//!
//! ```text
//! smt_bench [CYCLES]   # default 200000 simulated cycles per measurement
//! ```

use smt_bench::run_reference;

fn main() {
    let cycles: u64 = match std::env::args().nth(1) {
        None => 200_000,
        Some(s) => match s.parse() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("usage: smt_bench [CYCLES]   (CYCLES must be a number, got '{s}')");
                std::process::exit(1);
            }
        },
    };

    // Warmup: touch code paths and the allocator.
    let _ = run_reference(cycles / 10);

    let mut best: Option<smt_bench::BenchResult> = None;
    for i in 1..=3 {
        let r = run_reference(cycles);
        println!("run {i}: {r}");
        if best.is_none_or(|b| r.ips() > b.ips()) {
            best = Some(r);
        }
    }
    let best = best.expect("three runs completed");
    println!("best: {best}");
}

//! `smt_bench` — simulator throughput baseline.
//!
//! Benchmarks the full reference matrix {RR, ICOUNT} × {standard, int8,
//! fp8} on the 2.8 partition — plus the real-binary `riscv3` reference
//! ({RR, ICOUNT} over the checked-in `testdata/riscv` ELFs, executed
//! functionally through the `riscv:` workload backend): a short warmup,
//! then three timed measurements per reference, reporting each
//! reference's best (least-noisy) rate. The headline number is the best
//! rate across references (historically ICOUNT/standard, the only
//! reference older baselines carry; baselines that predate the workload
//! backend likewise lack the riscv3 entries, which the like-for-like
//! guard then skips).
//!
//! ```text
//! smt_bench [CYCLES] [--json PATH] [--reference-only] [--checkpoint]
//!           [--fleet] [--fleet-cells N] [--jobs N] [--pgo-from PATH]
//!           [--stage-timing]
//!           [--baseline PATH | --baseline-latest DIR] [--max-regress FRAC]
//! ```
//!
//! `CYCLES` defaults to 200000 simulated cycles per measurement; `--json`
//! additionally writes the machine-readable `"smt-bench"` document
//! (schema 4: per-reference `insts_per_sec` under `references`, plus the
//! `fleet` object with `--fleet`). `--reference-only` measures just
//! ICOUNT/standard — the quick local check. `--checkpoint` additionally
//! measures each reference's warmed-state checkpoint: size in bytes plus
//! best-of-3 save and restore latency, printed and carried in the JSON
//! document's `checkpoints` map (additive). `--fleet` measures the
//! aggregate insts/s of `--fleet-cells` (default 12) reference
//! configurations batched through one `SimFleet` on `--jobs` workers
//! (default: one per core) — see "Fleet mode" in the `smt-bench` crate
//! docs. `--baseline` reads a previously written document (e.g. the
//! committed `BENCH_*.json` trajectory files) and prints the speedup
//! factor per reference; `--baseline-latest DIR` auto-picks the
//! `BENCH_PR<N>.json` in `DIR` with the highest PR number, so the
//! comparison re-pins itself whenever a newer baseline is committed. With
//! `--max-regress FRAC` the run exits non-zero when any reference present
//! in **both** documents — including the fleet's synthetic
//! `FLEET/aggregate` — fell more than `FRAC` (e.g. `0.30`) below its
//! like-for-like baseline rate — the CI throughput guard. (Old baselines
//! carry neither every reference nor a fleet section; only names present
//! in both are guarded.)
//!
//! `--pgo-from PATH` reads the document written by a **profile-guided**
//! build of this same binary (`scripts/pgo.sh build`, then
//! `target/pgo/release/smt_bench --json ...`) and reports each shared
//! reference's PGO uplift, carried in this document's additive `pgo`
//! object (schema 5) — separate from the guarded plain-build rates.
//!
//! `--stage-timing` runs the reference machine once and prints each
//! pipeline stage's wall-clock share and per-stage insts/s instead of the
//! benchmark matrix. Requires building with `--features stage-timing`
//! (the probes cost throughput, so they are compiled out of normal
//! builds and of every number this binary reports elsewhere).

use smt_bench::{
    baseline_reference_rates, bench_checkpoint, bench_fleet, bench_to_json_full,
    find_latest_baseline, pgo_uplift, riscv_reference_spec, CheckpointBench, FleetBench, PgoBench,
    ReferenceResult, FLEET_REFERENCE, REFERENCE_FETCHES, REFERENCE_MIXES, RISCV_REFERENCE_MIX,
};

fn main() {
    let mut cycles: u64 = 200_000;
    let mut json_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut max_regress: Option<f64> = None;
    let mut reference_only = false;
    let mut checkpoint = false;
    let mut fleet = false;
    let mut fleet_cells: usize = 12;
    let mut jobs: usize = 0;
    let mut pgo_from: Option<String> = None;
    let mut stage_timing = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => match args.next() {
                Some(path) => json_path = Some(path),
                None => die("--json requires a path"),
            },
            "--reference-only" => reference_only = true,
            "--checkpoint" => checkpoint = true,
            "--stage-timing" => stage_timing = true,
            "--pgo-from" => match args.next() {
                Some(path) => pgo_from = Some(path),
                None => die("--pgo-from requires a path"),
            },
            "--fleet" => fleet = true,
            "--fleet-cells" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => fleet_cells = n,
                _ => die("--fleet-cells requires a positive number"),
            },
            "--jobs" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => jobs = n,
                None => die("--jobs requires a number (0 = one per core)"),
            },
            "--baseline" => match args.next() {
                Some(path) => match baseline_path {
                    None => baseline_path = Some(path),
                    Some(_) => die("use either --baseline or --baseline-latest, not both"),
                },
                None => die("--baseline requires a path"),
            },
            "--baseline-latest" => match args.next() {
                Some(_) if baseline_path.is_some() => {
                    die("use either --baseline or --baseline-latest, not both")
                }
                Some(dir) => match find_latest_baseline(std::path::Path::new(&dir)) {
                    Some((path, pr)) => {
                        println!("baseline: BENCH_PR{pr}.json (newest committed in {dir})");
                        baseline_path = Some(path.to_string_lossy().into_owned());
                    }
                    None => die(&format!("no BENCH_PR<N>.json baseline found in {dir}")),
                },
                None => die("--baseline-latest requires a directory"),
            },
            "--max-regress" => match args.next().and_then(|v| v.parse().ok()) {
                Some(frac) if (0.0..1.0).contains(&frac) => max_regress = Some(frac),
                _ => die("--max-regress requires a fraction in [0, 1)"),
            },
            _ => match arg.parse() {
                Ok(n) => cycles = n,
                Err(_) => die(&format!(
                    "usage: smt_bench [CYCLES] [--json PATH] [--reference-only] [--checkpoint] \
                     [--fleet] [--fleet-cells N] [--jobs N] [--pgo-from PATH] [--stage-timing] \
                     [--baseline PATH | --baseline-latest DIR] [--max-regress FRAC]   \
                     (CYCLES must be a number, got '{arg}')"
                )),
            },
        }
    }
    if max_regress.is_some() && baseline_path.is_none() {
        die("--max-regress requires --baseline");
    }
    if stage_timing {
        run_stage_timing_mode(cycles);
        return;
    }

    let mut references: Vec<ReferenceResult> = Vec::new();
    let mut checkpoints: Vec<CheckpointBench> = Vec::new();
    for fetch in REFERENCE_FETCHES {
        for mix in REFERENCE_MIXES {
            if reference_only && (fetch != "icount" || mix != "standard") {
                continue;
            }
            let r = ReferenceResult::measure(fetch, mix, cycles, 3);
            for (i, run) in r.runs.iter().enumerate() {
                println!("{:16} run {}: {run}", r.name, i + 1);
            }
            println!("{:16} best : {}", r.name, r.best);
            references.push(r);
            if checkpoint {
                let c = bench_checkpoint(fetch, mix, cycles, 3);
                println!(
                    "{:16} ckpt : {} bytes, save {:.3} ms, restore {:.3} ms \
                     (warmed {} cycles)",
                    c.name,
                    c.bytes,
                    c.save.as_secs_f64() * 1e3,
                    c.restore.as_secs_f64() * 1e3,
                    c.warm_cycles
                );
                checkpoints.push(c);
            }
        }
    }
    if !reference_only {
        // The real-binary reference: checked-in rv64i ELFs executed
        // functionally, guarded under the short riscv3 label (skipped
        // against baselines that predate the workload backend).
        let spec = riscv_reference_spec();
        for fetch in REFERENCE_FETCHES {
            let r = ReferenceResult::measure_labeled(fetch, &spec, RISCV_REFERENCE_MIX, cycles, 3);
            for (i, run) in r.runs.iter().enumerate() {
                println!("{:16} run {}: {run}", r.name, i + 1);
            }
            println!("{:16} best : {}", r.name, r.best);
            references.push(r);
        }
    }
    let headline = references
        .iter()
        .max_by(|a, b| a.best.ips().total_cmp(&b.best.ips()))
        .expect("at least one reference measured");
    println!(
        "headline: {} at {:.0} kinsts/s",
        headline.name,
        headline.best.ips() / 1e3
    );

    let fleet_result: Option<FleetBench> = if fleet {
        let f = bench_fleet(fleet_cells, cycles, jobs);
        println!("{FLEET_REFERENCE:16} : {f}");
        // Same committed-instructions metric as the references, so the
        // ratio reads as effective parallel speedup over one instance.
        let single = references
            .iter()
            .find(|r| r.name == "ICOUNT/standard")
            .map(|r| r.best.ips());
        if let Some(single) = single {
            println!(
                "{FLEET_REFERENCE:16} : {:.2}x the single-instance ICOUNT/standard rate \
                 on {} workers",
                f.aggregate_ips() / single,
                f.workers
            );
        }
        Some(f)
    } else {
        None
    };

    let pgo_result: Option<PgoBench> = pgo_from.map(|path| {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| die(&format!("failed to read PGO document {path}: {e}")));
        let pgo = pgo_uplift(&text, &references)
            .unwrap_or_else(|| die(&format!("{path} shares no reference with this run")));
        for (name, pgo_ips, plain_ips) in &pgo.entries {
            println!(
                "pgo {:16} {:.2}x ({:.0} -> {:.0} kinsts/s)",
                name,
                pgo_ips / plain_ips,
                plain_ips / 1e3,
                pgo_ips / 1e3
            );
        }
        println!(
            "pgo mean uplift : {:.2}x over the plain build ({path})",
            pgo.mean_uplift()
        );
        pgo
    });

    if let Some(path) = json_path {
        let doc = bench_to_json_full(
            &references,
            &checkpoints,
            fleet_result.as_ref(),
            pgo_result.as_ref(),
        );
        if let Err(e) = std::fs::write(&path, doc.render_pretty()) {
            die(&format!("failed to write {path}: {e}"));
        }
        println!("wrote {path}");
    }

    if let Some(path) = baseline_path {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| die(&format!("failed to read baseline {path}: {e}")));
        let base_rates = baseline_reference_rates(&text)
            .unwrap_or_else(|| die(&format!("{path} carries no reference rates")));
        // Headline speedup only when the baseline measured the same
        // reference — anything else would compare apples to oranges
        // (e.g. --reference-only's ICOUNT/standard against a full
        // baseline's fastest mix).
        if let Some(&(_, base)) = base_rates.iter().find(|(name, _)| *name == headline.name) {
            println!(
                "headline speedup vs {path} ({}): {:.2}x ({:.0} kinsts/s -> {:.0} kinsts/s)",
                headline.name,
                headline.best.ips() / base,
                base / 1e3,
                headline.best.ips() / 1e3
            );
        }
        // Like-for-like comparison: only references present in both runs.
        // The fleet aggregate joins under its synthetic name, so it is
        // guarded exactly like a reference once a baseline carries one.
        let mut measured: Vec<(String, f64)> = references
            .iter()
            .map(|r| (r.name.clone(), r.best.ips()))
            .collect();
        if let Some(f) = &fleet_result {
            measured.push((FLEET_REFERENCE.to_string(), f.aggregate_ips()));
        }
        let mut regressed = Vec::new();
        for (name, now) in &measured {
            let Some(&(_, base)) = base_rates.iter().find(|(n, _)| n == name) else {
                continue;
            };
            let (name, now) = (name.as_str(), *now);
            println!(
                "  {:16} {:.2}x ({:.0} -> {:.0} kinsts/s)",
                name,
                now / base,
                base / 1e3,
                now / 1e3
            );
            if let Some(frac) = max_regress {
                if now < base * (1.0 - frac) {
                    regressed.push((name.to_string(), base, now));
                }
            }
        }
        if let Some(frac) = max_regress {
            if regressed.is_empty() {
                println!(
                    "throughput guard: OK (no reference more than {:.0}% below its baseline)",
                    frac * 100.0
                );
            } else {
                for (name, base, now) in &regressed {
                    eprintln!(
                        "THROUGHPUT REGRESSION: {name} at {:.0} kinsts/s is more than {:.0}% \
                         below its baseline's {:.0} kinsts/s",
                        now / 1e3,
                        frac * 100.0,
                        base / 1e3
                    );
                }
                std::process::exit(1);
            }
        }
    }
}

/// `--stage-timing`: one reference run, per-stage wall clock and insts/s.
#[cfg(feature = "stage-timing")]
fn run_stage_timing_mode(cycles: u64) {
    let (committed, stages) = smt_bench::run_stage_timing(cycles);
    let total: u64 = stages.iter().map(|s| s.nanos).sum();
    println!("{cycles} cycles, {committed} committed (reference machine, probes on)");
    for s in &stages {
        println!(
            "{:12} {:8.1} ms  {:5.1}%  {:8.0} kinsts/s through stage",
            s.name,
            s.nanos as f64 / 1e6,
            s.nanos as f64 / total as f64 * 100.0,
            s.insts_per_sec / 1e3,
        );
    }
    println!(
        "total        {:8.1} ms  ({:.0} kinsts/s with probes; plain-build rates are higher)",
        total as f64 / 1e6,
        committed as f64 / (total as f64 / 1e9) / 1e3,
    );
}

#[cfg(not(feature = "stage-timing"))]
fn run_stage_timing_mode(_cycles: u64) {
    die(
        "--stage-timing needs the timing probes compiled in: \
         cargo run --release -p smt-bench --features stage-timing --bin smt_bench -- --stage-timing",
    );
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(1);
}

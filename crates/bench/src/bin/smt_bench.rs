//! `smt_bench` — simulator throughput baseline.
//!
//! Runs a short warmup, then three timed measurements of the reference
//! ICOUNT.2.8 configuration and reports the best (least-noisy) rate.
//!
//! ```text
//! smt_bench [CYCLES] [--json PATH]
//!           [--baseline PATH | --baseline-latest DIR] [--max-regress FRAC]
//! ```
//!
//! `CYCLES` defaults to 200000 simulated cycles per measurement; `--json`
//! additionally writes the machine-readable `"smt-bench"` document.
//! `--baseline` reads a previously written document (e.g. the committed
//! `BENCH_*.json` trajectory files) and prints the speedup factor against
//! it; `--baseline-latest DIR` auto-picks the `BENCH_PR<N>.json` in `DIR`
//! with the highest PR number, so the comparison re-pins itself whenever a
//! newer baseline is committed. With `--max-regress FRAC` the run exits
//! non-zero when throughput fell more than `FRAC` (e.g. `0.30`) below the
//! baseline — the CI throughput guard.

use smt_bench::{baseline_ips, bench_to_json, find_latest_baseline, run_reference, BenchResult};

fn main() {
    let mut cycles: u64 = 200_000;
    let mut json_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut max_regress: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => match args.next() {
                Some(path) => json_path = Some(path),
                None => die("--json requires a path"),
            },
            "--baseline" => match args.next() {
                Some(path) => match baseline_path {
                    None => baseline_path = Some(path),
                    Some(_) => die("use either --baseline or --baseline-latest, not both"),
                },
                None => die("--baseline requires a path"),
            },
            "--baseline-latest" => match args.next() {
                Some(_) if baseline_path.is_some() => {
                    die("use either --baseline or --baseline-latest, not both")
                }
                Some(dir) => match find_latest_baseline(std::path::Path::new(&dir)) {
                    Some((path, pr)) => {
                        println!("baseline: BENCH_PR{pr}.json (newest committed in {dir})");
                        baseline_path = Some(path.to_string_lossy().into_owned());
                    }
                    None => die(&format!("no BENCH_PR<N>.json baseline found in {dir}")),
                },
                None => die("--baseline-latest requires a directory"),
            },
            "--max-regress" => match args.next().and_then(|v| v.parse().ok()) {
                Some(frac) if (0.0..1.0).contains(&frac) => max_regress = Some(frac),
                _ => die("--max-regress requires a fraction in [0, 1)"),
            },
            _ => match arg.parse() {
                Ok(n) => cycles = n,
                Err(_) => die(&format!(
                    "usage: smt_bench [CYCLES] [--json PATH] \
                     [--baseline PATH | --baseline-latest DIR] [--max-regress FRAC]   \
                     (CYCLES must be a number, got '{arg}')"
                )),
            },
        }
    }
    if max_regress.is_some() && baseline_path.is_none() {
        die("--max-regress requires --baseline");
    }

    // Warmup: touch code paths and the allocator.
    let _ = run_reference(cycles / 10);

    let mut runs: Vec<BenchResult> = Vec::with_capacity(3);
    for i in 1..=3 {
        let r = run_reference(cycles);
        println!("run {i}: {r}");
        runs.push(r);
    }
    let best = *runs
        .iter()
        .max_by(|a, b| a.ips().total_cmp(&b.ips()))
        .expect("three runs completed");
    println!("best: {best}");

    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, bench_to_json(&runs, &best).render_pretty()) {
            die(&format!("failed to write {path}: {e}"));
        }
        println!("wrote {path}");
    }

    if let Some(path) = baseline_path {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| die(&format!("failed to read baseline {path}: {e}")));
        let base = baseline_ips(&text)
            .unwrap_or_else(|| die(&format!("{path} is not an smt-bench document")));
        let speedup = best.ips() / base;
        println!(
            "speedup vs {path}: {speedup:.2}x ({:.0} kinsts/s -> {:.0} kinsts/s)",
            base / 1e3,
            best.ips() / 1e3
        );
        if let Some(frac) = max_regress {
            let floor = base * (1.0 - frac);
            if best.ips() < floor {
                eprintln!(
                    "THROUGHPUT REGRESSION: {:.0} kinsts/s is more than {:.0}% below \
                     the baseline's {:.0} kinsts/s",
                    best.ips() / 1e3,
                    frac * 100.0,
                    base / 1e3
                );
                std::process::exit(1);
            }
            println!(
                "throughput guard: OK ({:.0} kinsts/s >= floor {:.0} kinsts/s)",
                best.ips() / 1e3,
                floor / 1e3
            );
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(1);
}

//! `smt_bench` — simulator throughput baseline.
//!
//! Runs a short warmup, then three timed measurements of the reference
//! ICOUNT.2.8 configuration and reports the best (least-noisy) rate.
//!
//! ```text
//! smt_bench [CYCLES] [--json PATH]
//! ```
//!
//! `CYCLES` defaults to 200000 simulated cycles per measurement; `--json`
//! additionally writes the machine-readable `"smt-bench"` document.

use smt_bench::{bench_to_json, run_reference, BenchResult};

fn main() {
    let mut cycles: u64 = 200_000;
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--json" {
            match args.next() {
                Some(path) => json_path = Some(path),
                None => {
                    eprintln!("--json requires a path");
                    std::process::exit(1);
                }
            }
        } else {
            match arg.parse() {
                Ok(n) => cycles = n,
                Err(_) => {
                    eprintln!(
                        "usage: smt_bench [CYCLES] [--json PATH]   \
                         (CYCLES must be a number, got '{arg}')"
                    );
                    std::process::exit(1);
                }
            }
        }
    }

    // Warmup: touch code paths and the allocator.
    let _ = run_reference(cycles / 10);

    let mut runs: Vec<BenchResult> = Vec::with_capacity(3);
    for i in 1..=3 {
        let r = run_reference(cycles);
        println!("run {i}: {r}");
        runs.push(r);
    }
    let best = *runs
        .iter()
        .max_by(|a, b| a.ips().total_cmp(&b.ips()))
        .expect("three runs completed");
    println!("best: {best}");

    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, bench_to_json(&runs, &best).render_pretty()) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {path}");
    }
}

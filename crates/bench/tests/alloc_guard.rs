//! The zero-allocation pin: a counting global allocator proves the warmed
//! simulator's cycle path performs **no heap allocation at all** — the
//! property the data-oriented hot loop (slab storage, pooled scratch
//! buffers, inline wakeup lists, recycled MSHR waiter lists) was built to
//! provide, and one the throughput guard is far too coarse to notice
//! losing. Runs in release mode in CI.
//!
//! Lives in its own integration-test binary (one test, one process):
//! the counter is process-global, so sharing a binary with other tests
//! would race their allocations into the measured window.

#![allow(unsafe_code)] // the counting allocator is an `unsafe impl` by nature

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation and reallocation the process makes.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A warmed simulator steps 5000 cycles without a single heap allocation.
/// The simulation is deterministic, so this is a sharp regression
/// tripwire: any future per-cycle allocation — a grown scratch vector, an
/// un-pooled event list, a map rehash — fails it immediately.
#[test]
fn warmed_cycle_path_is_allocation_free() {
    let mut sim = smt_core::SimConfig::new()
        .with_benchmarks(smt_workload::standard_mix(), 42)
        .build();
    // Warm every structure past its high-water mark: caches, TLBs and
    // predictor tables fill, the slab and every scratch buffer reach
    // steady-state capacity.
    sim.run(30_000);
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..5_000 {
        sim.step_cycle();
    }
    let during = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(
        during, 0,
        "warmed simulator allocated {during} times across a 5k-cycle window"
    );
    // The machine made real progress while we were counting.
    assert!(sim.cycle() >= 35_000);
}

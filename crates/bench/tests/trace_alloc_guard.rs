//! The zero-allocation pin for **trace replay**: a counting global
//! allocator proves that a warmed simulator whose threads feed from
//! recorded SMT1TRCE traces steps its cycle path without a single heap
//! allocation — the property that makes trace-driven sweeps as cheap as
//! the synthetic hot loop. Replay is a cursor walk over the pre-decoded
//! step arrays (wrapping at the end of the trace), so nothing on the
//! steady-state path may allocate; this test is the tripwire that keeps
//! it that way. Runs in release mode in CI next to the synthetic
//! allocation guard.
//!
//! Lives in its own integration-test binary (one test, one process): the
//! counter is process-global, so sharing a binary with other tests would
//! race their allocations into the measured window.

#![allow(unsafe_code)] // the counting allocator is an `unsafe impl` by nature

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counts every allocation and reallocation the process makes.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A warmed trace-replaying simulator steps 5000 cycles without a single
/// heap allocation. Setup — loading the ELFs, recording the traces,
/// building the machine and warming it past every structure's high-water
/// mark — may allocate freely; the measured window may not.
#[test]
fn warmed_trace_replay_is_allocation_free() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("testdata")
        .join("riscv");
    let workloads: Vec<smt_core::WorkloadSpec> = ["loops", "memsum", "gcd"]
        .iter()
        .map(|stem| {
            let img = Arc::new(
                smt_workload::RiscvImage::load(&dir.join(format!("{stem}.elf")))
                    .expect("checked-in test ELF loads"),
            );
            let trace = smt_workload::TraceImage::record(&img, 16_384).expect("record trace");
            smt_core::WorkloadSpec::Trace(Arc::new(trace))
        })
        .collect();
    let mut sim = smt_core::SimConfig::new().with_workloads(workloads).build();
    // Warm every structure past its high-water mark — and far enough that
    // each trace cursor has wrapped at least once, so the measured window
    // covers the wrap path too.
    sim.run(30_000);
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..5_000 {
        sim.step_cycle();
    }
    let during = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(
        during, 0,
        "warmed trace replay allocated {during} times across a 5k-cycle window"
    );
    // The machine made real progress while we were counting.
    assert!(sim.cycle() >= 35_000);
    assert!(sim.run(0).total_committed() > 0);
}

//! Property tests for workload-input robustness: malformed trace files and
//! ELF binaries must always produce typed errors — never a panic, never a
//! silently-accepted corrupt image. The sweep's per-cell fault containment
//! relies on this layer (a bad `riscv:`/`trace:` file becomes a `workload`
//! entry in `failed_cells`), so the loaders are fuzzed here exhaustively
//! over truncation points and byte flips.

use std::sync::Arc;

use smt_workload::{RiscvImage, TraceImage, Xlen};

/// A tiny valid RISC-V flat image (the store/load/branch loop the
/// workspace's other tests use).
fn loop_image() -> Arc<RiscvImage> {
    let words: [u32; 7] = [
        0x0000_0293, // addi x5, x0, 0
        0x00a0_0313, // addi x6, x0, 10
        0x0012_8293, // addi x5, x5, 1
        0x1050_2023, // sw x5, 256(x0)
        0x1000_2383, // lw x7, 256(x0)
        0xfe62_cae3, // blt x5, x6, -12
        0x0000_0073, // ecall
    ];
    let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
    Arc::new(RiscvImage::from_flat("loop10", &bytes, Xlen::Rv64).expect("valid image"))
}

/// A valid serialized trace to mutate.
fn valid_trace_bytes() -> Vec<u8> {
    let trace = TraceImage::record(&loop_image(), 32).expect("record");
    let mut bytes = Vec::new();
    trace.write_to(&mut bytes).expect("vec write");
    bytes
}

#[test]
fn every_trace_truncation_is_a_typed_error() {
    let bytes = valid_trace_bytes();
    assert!(
        TraceImage::read_from(&bytes[..]).is_ok(),
        "the unmutated trace must parse"
    );
    // Every proper prefix — as a torn write or partial download would
    // leave behind — must be rejected, not panic or misparse.
    for cut in 0..bytes.len() {
        let result = TraceImage::read_from(&bytes[..cut]);
        assert!(result.is_err(), "truncation at byte {cut} was accepted");
    }
}

#[test]
fn every_trace_byte_flip_is_a_typed_error() {
    let bytes = valid_trace_bytes();
    // Any single-byte corruption must fail some check — magic, version,
    // a bounds check, or ultimately the checksum trailer. Two flip
    // patterns per position cover both low- and high-bit corruption.
    for pos in 0..bytes.len() {
        for mask in [0x01u8, 0x80] {
            let mut mutated = bytes.clone();
            mutated[pos] ^= mask;
            let result = TraceImage::read_from(&mutated[..]);
            assert!(
                result.is_err(),
                "flip {mask:#04x} at byte {pos} was accepted"
            );
        }
    }
}

#[test]
fn malformed_elves_are_typed_errors() {
    let elf = std::fs::read(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../testdata/riscv/loops.elf"
    ))
    .expect("testdata ELF");
    assert!(
        RiscvImage::from_elf("loops", &elf).is_ok(),
        "the unmutated ELF must parse"
    );
    // Truncations: every prefix of the header region byte-by-byte, the
    // rest sampled (segment payloads are large and homogeneous).
    for cut in (0..elf.len().min(256)).chain((256..elf.len()).step_by(37)) {
        assert!(
            RiscvImage::from_elf("loops", &elf[..cut]).is_err(),
            "ELF truncated at {cut} was accepted"
        );
    }
    // Header/program-header corruption: flip bytes across the first 256
    // bytes, where class, machine, offsets and counts live. Payload bit
    // flips can legitimately still parse (they only change code bytes),
    // so the property is scoped to the structural region — it must never
    // panic and never produce an image with absurd geometry.
    for pos in 0..elf.len().min(256) {
        for mask in [0x01u8, 0xff] {
            let mut mutated = elf.clone();
            mutated[pos] ^= mask;
            if let Ok(image) = RiscvImage::from_elf("loops", &mutated) {
                assert!(
                    image.arena_len() <= 1 << 28,
                    "corrupt ELF produced an implausible arena (flip {mask:#04x} at {pos})"
                );
            }
        }
    }
    // Garbage and empty inputs.
    assert!(RiscvImage::from_elf("e", &[]).is_err());
    assert!(RiscvImage::from_elf("e", b"\x7fELF").is_err());
    assert!(RiscvImage::from_elf("e", &[0xAB; 4096]).is_err());
}

#[test]
fn custom_mix_load_failures_are_typed_not_fatal() {
    // The study layer's view of the same property: resolving a mix whose
    // file is missing or malformed yields an Err(String) naming the file,
    // never a panic or a process abort.
    let missing = smt_experiments::study::resolve_mix("riscv:/nonexistent/nope.elf", 42);
    let msg = missing.expect_err("missing file must not resolve");
    assert!(msg.contains("nope.elf"), "{msg}");

    let dir = std::env::temp_dir().join(format!("smt-exp-loader-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let junk = dir.join("junk.trace");
    std::fs::write(&junk, b"not a trace at all").unwrap();
    let bad = smt_experiments::study::resolve_mix(&format!("trace:{}", junk.display()), 42);
    let msg = bad.expect_err("junk trace must not resolve");
    assert!(msg.contains("junk.trace"), "{msg}");
    std::fs::remove_dir_all(&dir).ok();
}

//! The fault-injection property suite (requires `--features fault-inject`).
//!
//! Drives deterministic faults — panics, transient and hard I/O errors,
//! corruption — into chosen cells of real sweeps via
//! [`smt_stats::faults`], and asserts the containment contract the crate
//! documents:
//!
//! * the sweep **always terminates** and returns `Ok`;
//! * exactly the injected cells appear as typed `failed_cells` entries;
//! * every healthy cell's report is **bit-exact** against a fault-free
//!   run, across worker counts 1/2/8;
//! * recoverable incidents (transient I/O, torn cache/journal entries)
//!   degrade on the record without changing any result bytes.
//!
//! The fault registry is process-global, so every test serializes on one
//! lock and clears the registry on entry and exit.

#![cfg(feature = "fault-inject")]

use std::sync::Mutex;

use smt_core::FetchPartition;
use smt_experiments::fault::{CellErrorKind, DegradeReason};
use smt_experiments::study::{run_study, Study, StudyConfig};
use smt_stats::faults::{arm, clear, remaining_shots, FaultKind};

static TEST_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with the panic hook silenced (injected panics are expected;
/// their default-hook backtraces would bury real failures in noise).
fn quiet<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

/// An 8-cell sweep: 2 fetch × 2 issue × 2 partitions × 1 mix × 1 seed.
fn tiny(jobs: usize) -> StudyConfig {
    StudyConfig {
        fetch_policies: vec!["rr".into(), "icount".into()],
        issue_policies: vec!["oldest".into(), "spec_last".into()],
        partitions: vec![FetchPartition::new(2, 2), FetchPartition::new(2, 8)],
        mixes: vec!["mixed4".into()],
        seeds: vec![42],
        cycles: 400,
        warmup: 100,
        jobs,
        ..StudyConfig::default()
    }
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("smt-exp-fi-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Asserts every non-failed cell of `study` is bit-exact against the
/// fault-free `reference` (matched by matrix coordinates).
fn assert_healthy_cells_bit_exact(study: &Study, reference: &Study) {
    let failed: Vec<_> = study
        .failed
        .iter()
        .map(|f| (f.fetch.clone(), f.issue.clone(), f.partition, f.seed))
        .collect();
    let mut healthy = study.cells.iter();
    for r in &reference.cells {
        if failed.contains(&(r.fetch.clone(), r.issue.clone(), r.partition, r.seed)) {
            continue;
        }
        let c = healthy.next().expect("healthy cell missing from the sweep");
        assert_eq!(
            (&c.fetch, &c.issue, c.partition, c.seed),
            (&r.fetch, &r.issue, r.partition, r.seed),
            "healthy cells out of order"
        );
        assert_eq!(c.report, r.report, "a fault perturbed a healthy cell");
    }
    assert!(healthy.next().is_none(), "unexpected extra cell");
}

#[test]
fn injected_panics_fail_exactly_those_cells_across_worker_counts() {
    let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    clear();
    let reference = run_study(&tiny(1)).unwrap();
    let injected: [u64; 3] = [0, 3, 7];
    for jobs in [1, 2, 8] {
        for &i in &injected {
            arm("cell", Some(i), FaultKind::Panic, 1);
        }
        let study = quiet(|| run_study(&tiny(jobs))).unwrap();
        assert_eq!(remaining_shots(), 0, "every armed fault must fire");
        assert_eq!(
            study.failed.len(),
            injected.len(),
            "jobs={jobs}: exactly the injected cells must fail"
        );
        for f in &study.failed {
            assert_eq!(f.error.kind, CellErrorKind::Panic);
            assert!(
                f.error.message.contains("injected panic at cell#"),
                "jobs={jobs}: panic payload lost: {}",
                f.error.message
            );
        }
        assert_eq!(study.cells.len(), reference.cells.len() - injected.len());
        assert_healthy_cells_bit_exact(&study, &reference);
        // The document stays well-formed and carries the failures.
        let doc = study.to_json().render_pretty();
        let back = smt_stats::json::Json::parse(&doc).unwrap();
        let failed = back
            .get("failed_cells")
            .and_then(smt_stats::json::Json::as_array)
            .unwrap();
        assert_eq!(failed.len(), injected.len());
        clear();
    }
}

#[test]
fn transient_journal_io_is_absorbed_by_retries() {
    let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    clear();
    let dir = tmp_dir("journal-transient");
    let reference = run_study(&tiny(1)).unwrap().to_json().render_pretty();
    // Two transient failures on journal stores — under the retry budget
    // of four attempts — must be invisible: no degradation, no failure,
    // identical bytes, every entry durable.
    arm("journal-store", None, FaultKind::IoTransient, 2);
    let cfg = StudyConfig {
        journal: Some(dir.clone()),
        ..tiny(1)
    };
    let study = run_study(&cfg).unwrap();
    assert_eq!(remaining_shots(), 0);
    assert!(study.failed.is_empty());
    assert!(study.degraded.is_empty(), "{:?}", study.degraded);
    assert_eq!(study.to_json().render_pretty(), reference);
    let resumed = run_study(&cfg).unwrap();
    assert_eq!(
        resumed.journal_loaded,
        cfg.cell_count(),
        "a transiently-failing store must still end up durable"
    );
    clear();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn hard_journal_store_failures_degrade_without_losing_the_result() {
    let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    clear();
    let dir = tmp_dir("journal-hard");
    let reference = run_study(&tiny(1)).unwrap();
    // A single hard store failure (hard errors are not retried, so one
    // shot fails one store outright): the cell's result stays in the
    // document, the incident is on the record, and only that one entry
    // is missing from the journal.
    arm("journal-store", None, FaultKind::Io, 1);
    let cfg = StudyConfig {
        journal: Some(dir.clone()),
        ..tiny(1)
    };
    let study = run_study(&cfg).unwrap();
    assert_eq!(
        remaining_shots(),
        0,
        "the one hard fault fires once; a retry would have healed it"
    );
    clear();
    assert!(study.failed.is_empty());
    assert_eq!(study.degraded.len(), 1);
    assert_eq!(study.degraded[0].reason, DegradeReason::JournalWrite);
    assert!(study.degraded[0].detail.contains("result not durable"));
    assert_eq!(study.cells.len(), cfg.cell_count());
    for (a, b) in reference.cells.iter().zip(study.cells.iter()) {
        assert_eq!(a.report, b.report);
    }
    let resumed = run_study(&cfg).unwrap();
    assert_eq!(resumed.journal_loaded, cfg.cell_count() - 1);
    assert_eq!(
        resumed.to_json().render_pretty(),
        reference.to_json().render_pretty(),
        "resuming around the lost entry changed bytes"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn journal_read_corruption_degrades_and_reruns_the_cell() {
    let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    clear();
    let dir = tmp_dir("journal-rot");
    let cfg = StudyConfig {
        journal: Some(dir.clone()),
        ..tiny(1)
    };
    let first = run_study(&cfg).unwrap();
    // One corrupted read during the resume prescan: the checksum catches
    // it, the cell re-runs, and the incident is recorded.
    arm("journal-read", None, FaultKind::Corrupt, 1);
    let resumed = run_study(&cfg).unwrap();
    assert_eq!(remaining_shots(), 0);
    clear();
    assert!(resumed.failed.is_empty());
    assert_eq!(resumed.journal_loaded, cfg.cell_count() - 1);
    assert_eq!(resumed.degraded.len(), 1);
    assert_eq!(resumed.degraded[0].reason, DegradeReason::JournalRead);
    assert!(resumed.degraded[0].detail.contains("cell re-run"));
    for (a, b) in first.cells.iter().zip(resumed.cells.iter()) {
        assert_eq!(a.report, b.report, "re-run produced different bytes");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_cache_faults_fall_back_to_recomputation() {
    let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    clear();
    let dir = tmp_dir("cache");
    let cfg = StudyConfig {
        checkpoint_dir: Some(dir.clone()),
        ..tiny(1)
    };
    let reference = run_study(&cfg).unwrap();
    assert!(reference.warmups_performed > 0, "cold cache computes");
    // A hard read failure on one cached entry: degrade, recompute that
    // warmup, serve the rest from the cache, identical results.
    arm("cache-read", None, FaultKind::Io, 1);
    let read_fail = run_study(&cfg).unwrap();
    assert_eq!(remaining_shots(), 0);
    assert_eq!(read_fail.degraded.len(), 1);
    assert_eq!(
        read_fail.degraded[0].reason,
        DegradeReason::CheckpointCacheRead
    );
    assert_eq!(read_fail.warmups_performed, 1);
    for (a, b) in reference.cells.iter().zip(read_fail.cells.iter()) {
        assert_eq!(a.report, b.report);
    }
    // Corruption on a cached entry: the fingerprint/checksum validation
    // rejects it and the warmup recomputes.
    arm("cache-read", None, FaultKind::Corrupt, 1);
    let corrupt = run_study(&cfg).unwrap();
    assert_eq!(remaining_shots(), 0);
    assert_eq!(corrupt.degraded.len(), 1);
    assert_eq!(
        corrupt.degraded[0].reason,
        DegradeReason::CheckpointCacheInvalid
    );
    for (a, b) in reference.cells.iter().zip(corrupt.cells.iter()) {
        assert_eq!(a.report, b.report);
    }
    // A hard write failure on a fresh cache: the sweep continues uncached
    // for that key and says so.
    let fresh = tmp_dir("cache-fresh");
    arm("cache-write", None, FaultKind::Io, 1);
    let write_fail = run_study(&StudyConfig {
        checkpoint_dir: Some(fresh.clone()),
        ..tiny(1)
    })
    .unwrap();
    assert_eq!(remaining_shots(), 0);
    clear();
    assert_eq!(write_fail.degraded.len(), 1);
    assert_eq!(
        write_fail.degraded[0].reason,
        DegradeReason::CheckpointCacheWrite
    );
    assert!(write_fail.degraded[0].detail.contains("uncached"));
    for (a, b) in reference.cells.iter().zip(write_fail.cells.iter()) {
        assert_eq!(a.report, b.report);
    }
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&fresh).ok();
}

#[test]
fn ablation_sweep_contains_injected_panics_too() {
    let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    clear();
    use smt_experiments::ablation::{run_ablation_study, AblationStudyConfig};
    let cfg = AblationStudyConfig {
        fetch_policies: vec!["rr".into(), "icount".into()],
        ablations: vec!["perfect_icache".into()],
        partitions: vec![FetchPartition::new(2, 8)],
        mixes: vec!["mixed4".into()],
        seeds: vec![42],
        cycles: 400,
        warmup: 200,
        jobs: 2,
        ..AblationStudyConfig::default()
    };
    let reference = run_ablation_study(&cfg).unwrap();
    arm("cell", Some(2), FaultKind::Panic, 1);
    let study = quiet(|| run_ablation_study(&cfg)).unwrap();
    assert_eq!(remaining_shots(), 0);
    clear();
    assert_eq!(study.failed.len(), 1);
    assert_eq!(study.failed[0].error.kind, CellErrorKind::Panic);
    assert_eq!(study.cells.len(), reference.cells.len() - 1);
    // Every surviving cell is bit-exact against its fault-free twin.
    let mut healthy = study.cells.iter();
    for r in &reference.cells {
        let f = &study.failed[0];
        if r.ablation == f.ablation
            && r.fetch == f.fetch
            && r.partition == f.partition
            && r.window == f.window
            && r.seed == f.seed
        {
            continue;
        }
        assert_eq!(healthy.next().unwrap().report, r.report);
    }
}

//! Experiment harness for the fetch/issue policy studies.
//!
//! This crate drives `smt-core` the way the paper's Sections 4 and 5 do,
//! and is the repo's standard experiment entry point:
//!
//! * **Matrix mode** (Section 4): sweep fetch policies × partitions over a
//!   fixed multiprogrammed mix and tabulate total throughput —
//!   [`run_matrix`].
//! * **Study mode** (Section 5): sweep issue policies × fetch policies ×
//!   partitions over several workload mixes and seeds, behind a warmup
//!   window, in parallel across OS threads — [`study::run_study`].
//! * **Ablation mode** (Section-4-style attribution): run every mechanism
//!   [`Ablation`](smt_core::Ablation) against the un-ablated baseline
//!   across fetch policies × partitions × mixes × seeds × {cold, warm}
//!   windows — [`ablation::run_ablation_study`] — quantifying the paper's
//!   ~2% wrong-path-fetch claim and the ICOUNT-vs-RR gap decomposition.
//!
//! The `smt_exp` binary is a thin CLI over all three ([`parse_cli`]).
//!
//! Both studies measure behind a warmup window and fork their warm cells
//! off `smt-core` checkpoints ([`warmup`]). The issue study's warmup
//! trajectory depends only on the machine and workload identity — not on
//! the policy axes being compared — so it computes each warmup **once**
//! per unique (mix, seed, partition), under a canonical configuration,
//! and forks the warmed state across the whole fetch × issue
//! cross-product. The ablation study's warm cells warm under their own
//! fetch policy and ablation set (an ablation changes the machine being
//! warmed), deduplicated across repeat sweeps by the cache instead.
//! `--cold-warmup` disables checkpoint reuse (byte-identical results, one
//! warmup per cell), `--checkpoint-dir` caches the checkpoints on disk
//! across invocations, and the `checkpoint-write` / `checkpoint-verify`
//! subcommands perform a cross-process save/restore round trip for CI.
//!
//! # Examples
//!
//! Run a miniature Section-5 study and inspect the qualitative result
//! (issue policy moves IPC far less than fetch policy does):
//!
//! ```
//! use smt_experiments::study::{run_study, StudyConfig};
//!
//! let study = run_study(&StudyConfig {
//!     fetch_policies: vec!["rr".into(), "icount".into()],
//!     issue_policies: vec!["oldest".into(), "spec_last".into()],
//!     partitions: vec![smt_core::FetchPartition::new(2, 8)],
//!     mixes: vec!["mixed4".into()],
//!     seeds: vec![42],
//!     cycles: 400,
//!     warmup: 100,
//!     ..StudyConfig::default()
//! })
//! .unwrap();
//! assert_eq!(study.cells.len(), 4);
//! let json = study.to_json().render();
//! assert!(json.contains("\"schema_version\""));
//! ```
//!
//! # JSON schema (version 4)
//!
//! `smt_exp --study issue --json out.json` writes one pretty-rendered JSON
//! object ([`study::Study::to_json`]); `--json` in matrix mode writes the
//! analogous `"smt-exp-matrix"` document. Consumers should accept unknown
//! fields and check `schema_version`. Version 2 added the ablation-study
//! document below and the optional per-report `ablations` field; version 3
//! added the optional per-report `restored_from_checkpoint` flag (present
//! and `true` exactly when the cell was forked off a warmed-state
//! checkpoint — every issue-study cell and every warm-window ablation cell
//! under the default shared-warmup path); version 4 added the
//! always-present `failed_cells` and `degraded_cells` lists (both empty on
//! a fault-free run). Version-1/2/3 documents are otherwise
//! forward-compatible.
//!
//! ```text
//! {
//!   "schema_version": 4,                // bumped on breaking changes
//!   "kind": "smt-exp-study",            // or "smt-exp-matrix"
//!   "study": "issue",                   // study mode only
//!   "config": {
//!     "cycles": u64, "warmup_cycles": u64,
//!     "fetch_policies": [str], "issue_policies": [str],
//!     "partitions": ["T.I"], "mixes": [str], "seeds": [u64]
//!   },                                   // a mix is a named mix or a
//!                                       // custom 'riscv:PATH+trace:PATH+
//!                                       // <benchmark>' workload list,
//!                                       // carried verbatim (no schema
//!                                       // change)
//!   "cells": [{
//!     "fetch": str, "issue": str, "partition": "T.I",
//!     "mix": str, "seed": u64,
//!     "total_ipc": f64,
//!     "delta_vs_oldest": f64 | null,    // vs the OLDEST_FIRST cell with
//!                                       // the same fetch/partition/mix/seed
//!     "report": { ... }                 // SimReport::to_json(): scheme,
//!                                       // cycles, warmup_cycles, threads[],
//!                                       // fetch/issue/branch/mem breakdowns,
//!                                       // plus "ablations": [str] when any
//!                                       // ablation was active and
//!                                       // "restored_from_checkpoint": true
//!                                       // when the cell forked a warmed
//!                                       // checkpoint
//!   }],
//!   "failed_cells": [{                  // contained cell faults (v4);
//!     "fetch": str, "issue": str,       // empty on a fault-free run
//!     "partition": "T.I", "mix": str, "seed": u64,
//!     "error": {"kind": "panic" | "workload" | "checkpoint" | "io",
//!               "message": str}
//!   }],
//!   "degraded_cells": [{                // recovered incidents (v4):
//!     "key": str,                       // the affected cell/warmup
//!     "reason": "checkpoint_cache_read_failed"
//!             | "checkpoint_cache_invalid"
//!             | "checkpoint_cache_write_failed"
//!             | "journal_read_failed" | "journal_write_failed",
//!     "detail": str                     // what happened + the fallback
//!   }],
//!   "summary": {
//!     "baseline_issue": "OLDEST_FIRST",
//!     "issue_policies": [{"issue": str, "mean_ipc": f64,
//!                         "mean_delta_vs_oldest": f64}],
//!     "fetch_policies": [{"fetch": str, "mean_ipc": f64}],
//!     "issue_ipc_spread": f64,          // max-min of issue-policy means
//!     "fetch_ipc_spread": f64           // max-min of fetch-policy means
//!   }
//! }
//! ```
//!
//! `smt_exp --study ablation --json out.json` writes the ablation document
//! ([`ablation::AblationStudy::to_json`]):
//!
//! ```text
//! {
//!   "schema_version": 4,
//!   "kind": "smt-exp-study",
//!   "study": "ablation",
//!   "config": {
//!     "cycles": u64, "warmup_cycles": u64,   // warm-window warmup
//!     "fetch_policies": [str], "ablations": [str],
//!     "partitions": ["T.I"], "mixes": [str], "seeds": [u64],
//!     "windows": ["cold", "warm"]
//!   },
//!   "cells": [{
//!     "ablation": str | null,           // null = un-ablated baseline
//!     "fetch": str, "partition": "T.I", "mix": str, "seed": u64,
//!     "window": "cold" | "warm",
//!     "total_ipc": f64,
//!     "delta_vs_baseline": f64,         // vs the null-ablation cell with
//!                                       // the same fetch/partition/mix/
//!                                       // seed/window (0.0 for baselines)
//!     "loss_shift": {                   // ablation − baseline, in slots
//!       "lost_icache": i64, "lost_frontend_full": i64,
//!       "wrong_path_fetch_conflicts": i64
//!     },
//!     "report": { ... }
//!   }],
//!   "failed_cells": [{                  // as in the issue document, plus
//!     "ablation": str | null,           // the cell's ablation and window
//!     "fetch": str, "partition": "T.I", "mix": str, "seed": u64,
//!     "window": "cold" | "warm",
//!     "error": {"kind": str, "message": str}
//!   }],
//!   "degraded_cells": [{ "key": str, "reason": str, "detail": str }],
//!   "summary": {
//!     "ablations": [{"ablation": str, "window": str, "mean_ipc": f64,
//!                    "mean_baseline_ipc": f64, "mean_delta_ipc": f64,
//!                    "mean_loss_shift": { ... }}],
//!     "wrong_path_claim": {             // the paper's ~2% claim
//!       "paper_claim_pct": 2.0, "window": "warm", "mix": "standard",
//!       "measured_delta_pct": f64 | null
//!     },
//!     "gap_decomposition": {            // ICOUNT − RR mean-IPC gaps
//!       "fetch_hi": "ICOUNT", "fetch_lo": "RR",
//!       "cold_gap_baseline": f64 | null,
//!       "warm_gap_baseline": f64 | null,
//!       "cold_gap_perfect_icache": f64 | null,
//!       "warm_gap_infinite_frontend_queues": f64 | null
//!     }
//!   }
//! }
//! ```
//!
//! `smt_bench --json` emits a sibling `"smt-bench"` document with the same
//! `schema_version` convention, so BENCH_*.json trajectory tooling can
//! consume both.
//!
//! # Operational robustness
//!
//! A sweep is a long-running fleet of independent cells, and the harness
//! treats it that way ([`fault`], [`journal`]):
//!
//! * **Per-cell fault isolation.** Every cell (and every shared warmup)
//!   runs behind `catch_unwind` at the scheduler boundary. A panic, an
//!   unloadable `riscv:`/`trace:` workload file, a checkpoint mismatch or
//!   a post-retry I/O failure becomes a typed entry in the document's
//!   `failed_cells` list — tagged `panic` / `workload` / `checkpoint` /
//!   `io` — while every other cell's result stays byte-identical to a
//!   fault-free run. `smt_exp` exits nonzero when any cell failed.
//! * **A durable, resumable journal.** `--journal DIR` atomically
//!   publishes each completed cell's lossless binary report to `DIR` the
//!   moment it finishes (entry format: [`journal`]). Re-running the
//!   identical command after a SIGKILL resumes from the valid entries and
//!   produces a document **byte-identical** to an uninterrupted run — CI
//!   pins exactly this with a kill-and-resume step.
//! * **Graceful degradation, on the record.** Transient I/O on the
//!   `--checkpoint-dir` cache and the journal is retried with bounded
//!   backoff; anything that still fails (unreadable cache entry, torn or
//!   bit-rotted journal entry, failed store) falls back — recompute the
//!   warmup, re-run the cell, keep the in-memory result — and is reported
//!   as a reason-tagged entry in `degraded_cells` instead of an
//!   `eprintln!` lost to a log. Degradation never changes result bytes.
//! * **A fault-injection harness.** The `fault-inject` cargo feature
//!   (never enabled in release artifacts) arms deterministic panics, I/O
//!   errors and corruption at the named probe sites
//!   (`smt_stats::faults`); the property suite drives it to assert the
//!   sweep always terminates, reports exactly the injected failures and
//!   leaves healthy cells bit-exact, across worker counts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub(crate) mod durable;
pub mod fault;
pub mod journal;
pub mod study;
pub mod warmup;

use std::sync::Arc;

use smt_core::{fetch_policy_by_name, issue_policy_by_name, FetchPartition, SimConfig, SimReport};
use smt_stats::json::Json;
use smt_stats::TextTable;
use smt_workload::{standard_mix, Benchmark, Program};

use crate::ablation::AblationStudyConfig;
use crate::study::{StudyConfig, JSON_SCHEMA_VERSION, STUDY_MIXES};
use crate::warmup::CheckpointCliConfig;

/// One experiment sweep: which policies and partitions to run, on what
/// workload, for how long.
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// Fetch policies to sweep (shipped-policy names).
    pub fetch_policies: Vec<String>,
    /// Issue policy (one per sweep; issue is a study-mode axis).
    pub issue_policy: String,
    /// Partitions to sweep.
    pub partitions: Vec<FetchPartition>,
    /// Number of hardware contexts (cycles through the standard mix).
    pub threads: usize,
    /// Measured cycles per simulation.
    pub cycles: u64,
    /// Warmup cycles excluded from statistics (0 = cold-start measurement).
    pub warmup: u64,
    /// Workload generation seed.
    pub seed: u64,
    /// Print the full per-run report instead of just the summary table.
    pub verbose: bool,
    /// Write the machine-readable result document here.
    pub json: Option<String>,
}

impl Default for ExpConfig {
    fn default() -> ExpConfig {
        ExpConfig {
            fetch_policies: vec![
                "rr".to_string(),
                "icount".to_string(),
                "brcount".to_string(),
                "misscount".to_string(),
            ],
            issue_policy: "oldest".to_string(),
            partitions: vec![FetchPartition::new(2, 8)],
            threads: 8,
            cycles: 20_000,
            warmup: 0,
            seed: 42,
            verbose: false,
            json: None,
        }
    }
}

/// The workload for `threads` contexts: the standard mix, cycled.
pub fn mix_for(threads: usize) -> Vec<Benchmark> {
    let mix = standard_mix();
    (0..threads).map(|i| mix[i % mix.len()]).collect()
}

/// Generates the sweep's program images once. Every cell of a sweep runs
/// the identical workload, so images are generated here and shared
/// (`Arc`-cloned) across cells instead of being regenerated per run.
pub fn generate_programs(cfg: &ExpConfig) -> Vec<Arc<Program>> {
    mix_for(cfg.threads)
        .iter()
        .enumerate()
        .map(|(slot, b)| Arc::new(b.generate(cfg.seed, slot as u32)))
        .collect()
}

/// Runs one `(fetch policy, partition)` cell on pre-generated images from
/// [`generate_programs`].
///
/// # Panics
///
/// Panics if a policy name is unknown — the CLI validates names first.
pub fn run_cell(
    cfg: &ExpConfig,
    fetch: &str,
    partition: FetchPartition,
    programs: &[Arc<Program>],
) -> SimReport {
    SimConfig::new()
        .with_programs(programs.to_vec())
        .with_seed(cfg.seed)
        .with_fetch(fetch_policy_by_name(fetch).expect("validated fetch policy"))
        .with_issue(issue_policy_by_name(&cfg.issue_policy).expect("validated issue policy"))
        .with_partition(partition)
        .with_warmup(cfg.warmup)
        .build()
        .run(cfg.cycles)
}

/// Runs the full sweep and renders the Section-4-style throughput table:
/// one row per partition, one column per fetch policy, cells in IPC.
pub fn run_matrix(cfg: &ExpConfig) -> (TextTable, Vec<SimReport>) {
    let programs = generate_programs(cfg);
    let mut table = TextTable::new();
    let mut header = vec!["partition".to_string()];
    header.extend(cfg.fetch_policies.iter().map(|p| p.to_uppercase()));
    table.header(header);
    let mut reports = Vec::new();
    for &partition in &cfg.partitions {
        let mut row = vec![partition.to_string()];
        for fetch in &cfg.fetch_policies {
            let report = run_cell(cfg, fetch, partition, &programs);
            row.push(format!("{:.2}", report.total_ipc()));
            reports.push(report);
        }
        table.row(row);
    }
    (table, reports)
}

/// The machine-readable document for a matrix run (`kind:
/// "smt-exp-matrix"`, same schema conventions as the study document).
pub fn matrix_to_json(cfg: &ExpConfig, reports: &[SimReport]) -> Json {
    Json::object([
        ("schema_version", Json::from(JSON_SCHEMA_VERSION)),
        ("kind", Json::from("smt-exp-matrix")),
        (
            "config",
            Json::object([
                ("cycles", Json::from(cfg.cycles)),
                ("warmup_cycles", Json::from(cfg.warmup)),
                (
                    "fetch_policies",
                    Json::array(cfg.fetch_policies.iter().map(String::as_str)),
                ),
                ("issue_policy", Json::from(cfg.issue_policy.as_str())),
                (
                    "partitions",
                    Json::array(cfg.partitions.iter().map(|p| p.to_string())),
                ),
                ("threads", Json::from(cfg.threads)),
                ("seeds", Json::array([cfg.seed])),
            ]),
        ),
        (
            "cells",
            Json::array(reports.iter().map(|r| {
                Json::object([
                    ("fetch", Json::from(r.fetch_policy.clone())),
                    ("issue", Json::from(r.issue_policy.clone())),
                    ("partition", Json::from(r.partition.to_string())),
                    ("total_ipc", Json::from(r.total_ipc())),
                    ("report", r.to_json()),
                ])
            })),
        ),
    ])
}

/// What the CLI asked for: a Section-4 matrix, the Section-5 issue study,
/// or the mechanism-ablation study.
#[derive(Debug, Clone)]
pub enum Command {
    /// Fetch-policy × partition sweep on one mix ([`run_matrix`]).
    Matrix(ExpConfig),
    /// Issue × fetch × partition × mix × seed sweep
    /// ([`study::run_study`]).
    Study {
        /// The sweep to run.
        cfg: StudyConfig,
        /// Where `--json` asked the result document to be written.
        json: Option<String>,
    },
    /// Ablation × fetch × partition × mix × seed × window sweep
    /// ([`ablation::run_ablation_study`]).
    Ablation {
        /// The sweep to run.
        cfg: AblationStudyConfig,
        /// Where `--json` asked the result document to be written.
        json: Option<String>,
    },
    /// `smt_exp checkpoint-write`: write one canonical warmed checkpoint
    /// to a file ([`warmup::run_checkpoint_write`]).
    CheckpointWrite(CheckpointCliConfig),
    /// `smt_exp checkpoint-verify`: restore a checkpoint file (written by
    /// any process) and verify bit-equivalence against a straight-through
    /// run ([`warmup::run_checkpoint_verify`]).
    CheckpointVerify(CheckpointCliConfig),
}

/// Parses the flags of the `checkpoint-write` / `checkpoint-verify`
/// subcommands (everything after the subcommand name).
fn parse_checkpoint_cli(args: &[String]) -> Result<CheckpointCliConfig, String> {
    let mut cfg = CheckpointCliConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--mix" => {
                let v = value("--mix")?;
                study::validate_mix(&v)?;
                cfg.mix = v;
            }
            "--seed" => {
                cfg.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed expects a number".to_string())?;
            }
            "--partition" => {
                let v = value("--partition")?;
                cfg.partition = FetchPartition::parse(&v)
                    .ok_or_else(|| format!("bad partition '{v}' (expected T.I)"))?;
            }
            "--warmup" => {
                cfg.warmup = value("--warmup")?
                    .parse()
                    .map_err(|_| "--warmup expects a number".to_string())?;
            }
            "--cycles" => {
                cfg.cycles = value("--cycles")?
                    .parse()
                    .map_err(|_| "--cycles expects a number".to_string())?;
            }
            "--path" => cfg.path = value("--path")?,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
    }
    if cfg.path.is_empty() {
        return Err("checkpoint subcommands require --path FILE".to_string());
    }
    Ok(cfg)
}

/// Parses CLI arguments (everything after the program name) into a
/// [`Command`].
///
/// # Errors
///
/// Returns a usage-style message on unknown flags, bad values or unknown
/// policy/mix names. `--help` returns [`USAGE`] as the error message.
pub fn parse_cli(args: &[String]) -> Result<Command, String> {
    match args.first().map(String::as_str) {
        Some("checkpoint-write") => {
            return parse_checkpoint_cli(&args[1..]).map(Command::CheckpointWrite)
        }
        Some("checkpoint-verify") => {
            return parse_checkpoint_cli(&args[1..]).map(Command::CheckpointVerify)
        }
        _ => {}
    }

    let mut exp = ExpConfig::default();
    let mut study_kind: Option<String> = None;
    let mut issue_list: Option<Vec<String>> = None;
    let mut seeds: Option<Vec<u64>> = None;
    let mut mixes: Option<Vec<String>> = None;
    let mut warmup: Option<u64> = None;
    let mut jobs: Option<usize> = None;
    let mut ablations: Option<Vec<String>> = None;
    let mut cold_warmup = false;
    let mut checkpoint_dir: Option<String> = None;
    let mut journal: Option<String> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--study" => {
                let v = value("--study")?;
                if v != "issue" && v != "ablation" {
                    return Err(format!("unknown study '{v}' (known: issue, ablation)"));
                }
                study_kind = Some(v);
            }
            "--ablations" => {
                let v = value("--ablations")?;
                let list: Vec<String> = if v.eq_ignore_ascii_case("all") {
                    AblationStudyConfig::default().ablations
                } else {
                    for name in v.split(',') {
                        if smt_core::Ablation::by_name(name).is_none() {
                            let known: Vec<&str> =
                                smt_core::Ablation::ALL.iter().map(|a| a.name()).collect();
                            return Err(format!(
                                "unknown ablation '{name}' (known: {})",
                                known.join(", ")
                            ));
                        }
                    }
                    v.split(',').map(str::to_string).collect()
                };
                ablations = Some(list);
            }
            "--fetch" => {
                let v = value("--fetch")?;
                if v.eq_ignore_ascii_case("all") {
                    exp.fetch_policies = ExpConfig::default().fetch_policies;
                } else {
                    for name in v.split(',') {
                        if fetch_policy_by_name(name).is_none() {
                            return Err(format!("unknown fetch policy '{name}'"));
                        }
                    }
                    exp.fetch_policies = v.split(',').map(str::to_string).collect();
                }
            }
            "--issue" => {
                let v = value("--issue")?;
                let list: Vec<String> = if v.eq_ignore_ascii_case("all") {
                    StudyConfig::default().issue_policies
                } else {
                    for name in v.split(',') {
                        if issue_policy_by_name(name).is_none() {
                            return Err(format!("unknown issue policy '{name}'"));
                        }
                    }
                    v.split(',').map(str::to_string).collect()
                };
                exp.issue_policy = list[0].clone();
                issue_list = Some(list);
            }
            "--partition" => {
                let v = value("--partition")?;
                if v.eq_ignore_ascii_case("all") {
                    exp.partitions = FetchPartition::all_schemes().to_vec();
                } else {
                    exp.partitions = v
                        .split(',')
                        .map(|s| {
                            FetchPartition::parse(s)
                                .ok_or_else(|| format!("bad partition '{s}' (expected T.I)"))
                        })
                        .collect::<Result<_, _>>()?;
                }
            }
            "--mixes" => {
                let v = value("--mixes")?;
                let list: Vec<String> = if v.eq_ignore_ascii_case("all") {
                    STUDY_MIXES.iter().map(|s| s.to_string()).collect()
                } else {
                    for name in v.split(',') {
                        study::validate_mix(name)?;
                    }
                    v.split(',').map(str::to_string).collect()
                };
                mixes = Some(list);
            }
            "--threads" => {
                exp.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "--threads expects a number".to_string())?;
                if exp.threads == 0 || exp.threads > smt_core::MAX_THREADS {
                    return Err(format!("--threads must be 1..={}", smt_core::MAX_THREADS));
                }
            }
            "--cycles" => {
                exp.cycles = value("--cycles")?
                    .parse()
                    .map_err(|_| "--cycles expects a number".to_string())?;
            }
            "--warmup" => {
                warmup = Some(
                    value("--warmup")?
                        .parse()
                        .map_err(|_| "--warmup expects a number".to_string())?,
                );
            }
            "--seed" => {
                exp.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed expects a number".to_string())?;
            }
            "--seeds" => {
                let v = value("--seeds")?;
                let parsed: Result<Vec<u64>, _> = v.split(',').map(str::parse).collect();
                seeds = Some(
                    parsed.map_err(|_| "--seeds expects comma-separated numbers".to_string())?,
                );
            }
            "--jobs" => {
                jobs = Some(
                    value("--jobs")?
                        .parse()
                        .map_err(|_| "--jobs expects a number".to_string())?,
                );
            }
            "--json" => exp.json = Some(value("--json")?),
            "--cold-warmup" => cold_warmup = true,
            "--checkpoint-dir" => checkpoint_dir = Some(value("--checkpoint-dir")?),
            "--journal" => journal = Some(value("--journal")?),
            "--verbose" | "-v" => exp.verbose = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
    }

    if let Some(w) = warmup {
        exp.warmup = w;
    }
    match study_kind.as_deref() {
        None => {
            // Reject study-only flags so a forgotten '--study issue' fails
            // loudly instead of silently running a different experiment.
            for (given, flag) in [
                (mixes.is_some(), "--mixes"),
                (seeds.is_some(), "--seeds"),
                (jobs.is_some(), "--jobs"),
                (ablations.is_some(), "--ablations"),
                (cold_warmup, "--cold-warmup"),
                (checkpoint_dir.is_some(), "--checkpoint-dir"),
                (journal.is_some(), "--journal"),
            ] {
                if given {
                    return Err(format!("{flag} requires a --study mode"));
                }
            }
            if issue_list.as_ref().is_some_and(|l| l.len() > 1) {
                return Err("matrix mode takes a single --issue policy; \
                     use --study issue to sweep issue policies"
                    .to_string());
            }
            Ok(Command::Matrix(exp))
        }
        Some(kind) => {
            // Matrix-only flags have no effect in study mode; reject them
            // rather than yield results the user did not ask for.
            if args.iter().any(|a| a == "--threads") {
                return Err("--threads applies to matrix mode; study thread counts \
                     come from --mixes"
                    .to_string());
            }
            if exp.verbose {
                return Err("--verbose applies to matrix mode only".to_string());
            }
            if kind == "issue" {
                if ablations.is_some() {
                    return Err("--ablations requires --study ablation".to_string());
                }
                let defaults = StudyConfig::default();
                let cfg = StudyConfig {
                    fetch_policies: if args.iter().any(|a| a == "--fetch") {
                        exp.fetch_policies
                    } else {
                        defaults.fetch_policies
                    },
                    issue_policies: issue_list.unwrap_or(defaults.issue_policies),
                    partitions: if args.iter().any(|a| a == "--partition") {
                        exp.partitions
                    } else {
                        defaults.partitions
                    },
                    mixes: mixes.unwrap_or(defaults.mixes),
                    seeds: seeds.unwrap_or_else(|| {
                        if args.iter().any(|a| a == "--seed") {
                            vec![exp.seed]
                        } else {
                            defaults.seeds
                        }
                    }),
                    cycles: exp.cycles,
                    warmup: warmup.unwrap_or(defaults.warmup),
                    jobs: jobs.unwrap_or(0),
                    share_warmup: !cold_warmup,
                    checkpoint_dir: checkpoint_dir.map(std::path::PathBuf::from),
                    journal: journal.map(std::path::PathBuf::from),
                };
                cfg.validate()?;
                Ok(Command::Study {
                    cfg,
                    json: exp.json,
                })
            } else {
                // The ablation study fixes the issue policy (Section 5
                // showed it is not a sensitive axis).
                if issue_list.is_some() || args.iter().any(|a| a == "--issue") {
                    return Err("--issue applies to matrix mode and --study issue; \
                         the ablation study runs OLDEST_FIRST"
                        .to_string());
                }
                let defaults = AblationStudyConfig::default();
                let cfg = AblationStudyConfig {
                    fetch_policies: if args.iter().any(|a| a == "--fetch") {
                        exp.fetch_policies
                    } else {
                        defaults.fetch_policies
                    },
                    ablations: ablations.unwrap_or(defaults.ablations),
                    partitions: if args.iter().any(|a| a == "--partition") {
                        exp.partitions
                    } else {
                        defaults.partitions
                    },
                    mixes: mixes.unwrap_or(defaults.mixes),
                    seeds: seeds.unwrap_or_else(|| {
                        if args.iter().any(|a| a == "--seed") {
                            vec![exp.seed]
                        } else {
                            defaults.seeds
                        }
                    }),
                    cycles: exp.cycles,
                    warmup: warmup.unwrap_or(defaults.warmup),
                    jobs: jobs.unwrap_or(0),
                    share_warmup: !cold_warmup,
                    checkpoint_dir: checkpoint_dir.map(std::path::PathBuf::from),
                    journal: journal.map(std::path::PathBuf::from),
                };
                cfg.validate()?;
                Ok(Command::Ablation {
                    cfg,
                    json: exp.json,
                })
            }
        }
    }
}

/// CLI usage text.
pub const USAGE: &str = "\
usage: smt_exp [--fetch rr,icount,brcount,misscount|all] [--issue oldest|opt_last|spec_last|branch_first]
               [--partition T.I[,T.I...]|all] [--threads N] [--cycles N] [--warmup N]
               [--seed N] [--verbose] [--json PATH]
       smt_exp --study issue [--fetch LIST] [--issue LIST|all] [--partition LIST|all]
               [--mixes MIX[,MIX...]|all] [--seeds N,N,...] [--cycles N]
               [--warmup N] [--jobs N] [--cold-warmup] [--checkpoint-dir DIR]
               [--journal DIR] [--json PATH]
       smt_exp --study ablation [--fetch LIST] [--ablations LIST|all] [--partition LIST|all]
               [--mixes LIST|all] [--seeds N,N,...] [--cycles N] [--warmup N]
               [--jobs N] [--cold-warmup] [--checkpoint-dir DIR] [--journal DIR]
               [--json PATH]
       smt_exp checkpoint-write --path FILE [--mix NAME] [--seed N] [--partition T.I]
               [--warmup N]
       smt_exp checkpoint-verify --path FILE [--mix NAME] [--seed N] [--partition T.I]
               [--warmup N] [--cycles N]

Reproduces the throughput comparisons of Tullsen et al., ISCA 1996. The default
mode is the Section-4 matrix (one row per fetch partition, one column per fetch
policy, cells in total IPC). '--study issue' runs the Section-5 issue-policy
comparison: every issue policy against every fetch policy, partition, workload
mix and seed, behind a warmup window, parallelized across CPU cores. '--study
ablation' runs every mechanism ablation (exempt_wrong_path_bank_arbitration,
perfect_icache, perfect_branch_prediction, infinite_frontend_queues) against
the un-ablated baseline over cold and warm measurement windows, quantifying
the paper's ~2% wrong-path claim and the ICOUNT-vs-RR gap decomposition;
'--json' writes the versioned machine-readable result document.

A MIX is a named mix (standard, int8, fp8, mixed4) or a custom workload
list: '+'-separated entries, each 'riscv:PATH' (a RISC-V binary, executed
functionally), 'trace:PATH' (a recorded SMT1TRCE trace, replayed) or a
synthetic benchmark name — e.g.
'--mixes riscv:testdata/riscv/loops.elf+riscv:testdata/riscv/gcd.elf+espresso'.
The checkpoint subcommands' --mix accepts the same syntax.

Both studies fork their warm cells off warmed-state checkpoints: '--study
issue' computes each warmup once per unique (mix, seed, partition) and forks it
across the whole policy cross-product, while '--study ablation' warms each warm
cell under its own fetch policy and ablation set (sharing across repeat sweeps
via the cache); '--cold-warmup' recomputes every warmup per cell instead
(byte-identical results, more work) and '--checkpoint-dir DIR' caches the
warmup checkpoints on disk across invocations. 'checkpoint-write' simulates one
canonical warmup (ICOUNT fetch, OLDEST_FIRST issue, no ablations) and writes
the checkpoint to --path; 'checkpoint-verify' restores such a file — from any
process — and fails unless the restored run's report is byte-identical to a
straight-through run of the same machine.

Sweeps contain cell faults: a cell that panics or fails to load its workload
becomes a typed entry in the document's 'failed_cells' list (and a nonzero
exit code) while every other cell completes unchanged. '--journal DIR'
additionally makes the sweep crash-resumable: every completed cell is
atomically published to DIR as it finishes, and re-running the identical
command resumes from the journal, producing a document byte-identical to an
uninterrupted run.";

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn default_sweep_covers_the_papers_policies() {
        let cfg = ExpConfig::default();
        assert_eq!(cfg.fetch_policies.len(), 4);
        assert_eq!(cfg.partitions, vec![FetchPartition::new(2, 8)]);
        assert_eq!(cfg.warmup, 0, "matrix mode defaults to cold-start");
    }

    #[test]
    fn parse_cli_matrix_roundtrip() {
        let args = argv(&[
            "--fetch",
            "icount",
            "--partition",
            "2.8,1.8",
            "--threads",
            "4",
            "--cycles",
            "500",
            "--warmup",
            "250",
            "--seed",
            "9",
            "--json",
            "out.json",
        ]);
        let Command::Matrix(cfg) = parse_cli(&args).unwrap() else {
            panic!("expected matrix mode");
        };
        assert_eq!(cfg.fetch_policies, vec!["icount"]);
        assert_eq!(cfg.partitions.len(), 2);
        assert_eq!(cfg.threads, 4);
        assert_eq!(cfg.cycles, 500);
        assert_eq!(cfg.warmup, 250);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.json.as_deref(), Some("out.json"));
    }

    #[test]
    fn parse_cli_study_roundtrip() {
        let args = argv(&[
            "--study",
            "issue",
            "--issue",
            "all",
            "--fetch",
            "icount",
            "--mixes",
            "standard,fp8",
            "--seeds",
            "1,2,3",
            "--cycles",
            "800",
            "--warmup",
            "400",
            "--jobs",
            "3",
        ]);
        let Command::Study { cfg, json } = parse_cli(&args).unwrap() else {
            panic!("expected study mode");
        };
        assert_eq!(json, None);
        assert_eq!(cfg.issue_policies.len(), 4);
        assert_eq!(cfg.fetch_policies, vec!["icount"]);
        assert_eq!(cfg.mixes, vec!["standard", "fp8"]);
        assert_eq!(cfg.seeds, vec![1, 2, 3]);
        assert_eq!(cfg.cycles, 800);
        assert_eq!(cfg.warmup, 400);
        assert_eq!(cfg.jobs, 3);
    }

    #[test]
    fn parse_cli_study_defaults() {
        let Command::Study { cfg, .. } = parse_cli(&argv(&["--study", "issue"])).unwrap() else {
            panic!("expected study mode");
        };
        let d = StudyConfig::default();
        assert_eq!(cfg.issue_policies, d.issue_policies);
        assert_eq!(cfg.fetch_policies, d.fetch_policies);
        assert_eq!(cfg.seeds, d.seeds);
        assert_eq!(cfg.warmup, d.warmup);
    }

    #[test]
    fn parse_cli_ablation_roundtrip() {
        let args = argv(&[
            "--study",
            "ablation",
            "--ablations",
            "perfect_icache,infinite_frontend_queues",
            "--fetch",
            "rr,icount",
            "--mixes",
            "standard",
            "--seeds",
            "42",
            "--cycles",
            "800",
            "--warmup",
            "400",
            "--jobs",
            "2",
            "--json",
            "ablation.json",
        ]);
        let Command::Ablation { cfg, json } = parse_cli(&args).unwrap() else {
            panic!("expected ablation mode");
        };
        assert_eq!(json.as_deref(), Some("ablation.json"));
        assert_eq!(
            cfg.ablations,
            vec!["perfect_icache", "infinite_frontend_queues"]
        );
        assert_eq!(cfg.fetch_policies, vec!["rr", "icount"]);
        assert_eq!(cfg.mixes, vec!["standard"]);
        assert_eq!(cfg.seeds, vec![42]);
        assert_eq!(cfg.cycles, 800);
        assert_eq!(cfg.warmup, 400);
        assert_eq!(cfg.jobs, 2);
    }

    #[test]
    fn parse_cli_ablation_defaults_and_rejections() {
        let Command::Ablation { cfg, .. } = parse_cli(&argv(&["--study", "ablation"])).unwrap()
        else {
            panic!("expected ablation mode");
        };
        let d = AblationStudyConfig::default();
        assert_eq!(cfg.ablations, d.ablations);
        assert_eq!(cfg.ablations.len(), 4, "default sweeps every ablation");
        assert_eq!(cfg.fetch_policies, d.fetch_policies);
        assert_eq!(cfg.warmup, d.warmup);
        // '--ablations all' expands like the other list flags.
        let Command::Ablation { cfg, .. } =
            parse_cli(&argv(&["--study", "ablation", "--ablations", "all"])).unwrap()
        else {
            panic!("expected ablation mode");
        };
        assert_eq!(cfg.ablations.len(), 4);
        // Flags from the wrong mode fail loudly.
        assert!(parse_cli(&argv(&["--ablations", "perfect_icache"])).is_err());
        assert!(parse_cli(&argv(&["--study", "issue", "--ablations", "all"])).is_err());
        assert!(parse_cli(&argv(&["--study", "ablation", "--issue", "oldest"])).is_err());
        assert!(parse_cli(&argv(&["--study", "ablation", "--threads", "4"])).is_err());
        assert!(parse_cli(&argv(&["--study", "ablation", "--ablations", "nonesuch"])).is_err());
    }

    #[test]
    fn parse_accepts_custom_workload_mixes() {
        // The custom riscv:/trace:/benchmark mix syntax is validated at
        // parse time (syntax only — files are loaded when the sweep runs).
        let mix = "riscv:a.elf+trace:b.trace+espresso";
        let Command::Study { cfg, .. } =
            parse_cli(&argv(&["--study", "issue", "--mixes", mix])).unwrap()
        else {
            panic!("expected study mode");
        };
        assert_eq!(cfg.mixes, vec![mix]);
        assert!(parse_cli(&argv(&["--study", "issue", "--mixes", "bogus:x"])).is_err());
        // The checkpoint subcommands accept the same syntax.
        let Command::CheckpointWrite(cfg) = parse_cli(&argv(&[
            "checkpoint-write",
            "--path",
            "x.ckpt",
            "--mix",
            mix,
        ]))
        .unwrap() else {
            panic!("expected checkpoint-write");
        };
        assert_eq!(cfg.mix, mix);
    }

    #[test]
    fn parse_journal_flag_is_study_only() {
        let Command::Study { cfg, .. } =
            parse_cli(&argv(&["--study", "issue", "--journal", "j.dir"])).unwrap()
        else {
            panic!("expected study mode");
        };
        assert_eq!(cfg.journal.as_deref(), Some(std::path::Path::new("j.dir")));
        let Command::Ablation { cfg, .. } =
            parse_cli(&argv(&["--study", "ablation", "--journal", "j.dir"])).unwrap()
        else {
            panic!("expected ablation mode");
        };
        assert_eq!(cfg.journal.as_deref(), Some(std::path::Path::new("j.dir")));
        // Matrix mode rejects it loudly, like the other study-only flags.
        assert!(parse_cli(&argv(&["--journal", "j.dir"])).is_err());
    }

    #[test]
    fn parse_rejects_unknown_names() {
        assert!(parse_cli(&argv(&["--fetch", "nonesuch"])).is_err());
        assert!(parse_cli(&argv(&["--partition", "0.8"])).is_err());
        assert!(parse_cli(&argv(&["--study", "fetch"])).is_err());
        assert!(parse_cli(&argv(&["--study", "issue", "--mixes", "nonesuch"])).is_err());
        assert!(parse_cli(&argv(&["--issue", "nonesuch"])).is_err());
    }

    #[test]
    fn parse_rejects_flags_from_the_other_mode() {
        // Study-only flags without --study must fail loudly, not silently
        // run a different experiment.
        for flags in [
            &["--mixes", "int8"][..],
            &["--seeds", "1,2"][..],
            &["--jobs", "2"][..],
            &["--issue", "all"][..],
            &["--issue", "oldest,opt_last"][..],
        ] {
            assert!(
                parse_cli(&argv(flags)).is_err(),
                "matrix mode accepted {flags:?}"
            );
        }
        // Matrix-only flags are rejected in study mode.
        assert!(parse_cli(&argv(&["--study", "issue", "--threads", "4"])).is_err());
        assert!(parse_cli(&argv(&["--study", "issue", "--verbose"])).is_err());
        // A single --issue is still fine in matrix mode.
        let Command::Matrix(cfg) = parse_cli(&argv(&["--issue", "spec_last"])).unwrap() else {
            panic!("expected matrix mode");
        };
        assert_eq!(cfg.issue_policy, "spec_last");
    }

    #[test]
    fn small_matrix_runs_and_renders() {
        let cfg = ExpConfig {
            fetch_policies: vec!["rr".into(), "icount".into()],
            partitions: vec![FetchPartition::new(2, 8)],
            threads: 2,
            cycles: 400,
            ..ExpConfig::default()
        };
        let (table, reports) = run_matrix(&cfg);
        assert_eq!(reports.len(), 2);
        let rendered = table.to_string();
        assert!(rendered.contains("RR"));
        assert!(rendered.contains("ICOUNT"));
        assert!(rendered.contains("2.8"));
        // The matrix JSON document parses and carries every cell.
        let doc = matrix_to_json(&cfg, &reports);
        let back = Json::parse(&doc.render_pretty()).unwrap();
        assert_eq!(
            back.get("kind").and_then(Json::as_str),
            Some("smt-exp-matrix")
        );
        assert_eq!(
            back.get("cells").and_then(Json::as_array).map(<[_]>::len),
            Some(2)
        );
    }

    #[test]
    fn matrix_honours_warmup() {
        let cfg = ExpConfig {
            fetch_policies: vec!["icount".into()],
            threads: 2,
            cycles: 300,
            warmup: 150,
            ..ExpConfig::default()
        };
        let (_, reports) = run_matrix(&cfg);
        assert_eq!(reports[0].cycles, 300);
        assert_eq!(reports[0].warmup_cycles, 150);
    }

    #[test]
    fn mix_cycles_when_threads_exceed_benchmarks() {
        let m = mix_for(10);
        assert_eq!(m.len(), 10);
        assert_eq!(m[0], m[8]);
    }
}

//! Experiment harness for the fetch/issue policy studies.
//!
//! This crate drives `smt-core` the way the paper's Sections 4 and 5 do:
//! sweep fetch policies and partitions over a fixed multiprogrammed mix and
//! tabulate total throughput. The `smt_exp` binary is a thin CLI over
//! [`ExpConfig`] and [`run_matrix`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;

use smt_core::{fetch_policy_by_name, issue_policy_by_name, FetchPartition, SimConfig, SimReport};
use smt_stats::TextTable;
use smt_workload::{standard_mix, Benchmark, Program};

/// One experiment sweep: which policies and partitions to run, on what
/// workload, for how long.
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// Fetch policies to sweep (shipped-policy names).
    pub fetch_policies: Vec<String>,
    /// Issue policy (one per sweep; the paper's issue-policy deltas are
    /// small, so the sweep axis is fetch).
    pub issue_policy: String,
    /// Partitions to sweep.
    pub partitions: Vec<FetchPartition>,
    /// Number of hardware contexts (cycles through the standard mix).
    pub threads: usize,
    /// Cycles per simulation.
    pub cycles: u64,
    /// Workload generation seed.
    pub seed: u64,
    /// Print the full per-run report instead of just the summary table.
    pub verbose: bool,
}

impl Default for ExpConfig {
    fn default() -> ExpConfig {
        ExpConfig {
            fetch_policies: vec![
                "rr".to_string(),
                "icount".to_string(),
                "brcount".to_string(),
                "misscount".to_string(),
            ],
            issue_policy: "oldest".to_string(),
            partitions: vec![FetchPartition::new(2, 8)],
            threads: 8,
            cycles: 20_000,
            seed: 42,
            verbose: false,
        }
    }
}

/// The workload for `threads` contexts: the standard mix, cycled.
pub fn mix_for(threads: usize) -> Vec<Benchmark> {
    let mix = standard_mix();
    (0..threads).map(|i| mix[i % mix.len()]).collect()
}

/// Generates the sweep's program images once. Every cell of a sweep runs
/// the identical workload, so images are generated here and shared
/// (`Arc`-cloned) across cells instead of being regenerated per run.
pub fn generate_programs(cfg: &ExpConfig) -> Vec<Arc<Program>> {
    mix_for(cfg.threads)
        .iter()
        .enumerate()
        .map(|(slot, b)| Arc::new(b.generate(cfg.seed, slot as u32)))
        .collect()
}

/// Runs one `(fetch policy, partition)` cell on pre-generated images from
/// [`generate_programs`].
///
/// # Panics
///
/// Panics if a policy name is unknown — the CLI validates names first.
pub fn run_cell(
    cfg: &ExpConfig,
    fetch: &str,
    partition: FetchPartition,
    programs: &[Arc<Program>],
) -> SimReport {
    SimConfig::new()
        .with_programs(programs.to_vec())
        .with_seed(cfg.seed)
        .with_fetch(fetch_policy_by_name(fetch).expect("validated fetch policy"))
        .with_issue(issue_policy_by_name(&cfg.issue_policy).expect("validated issue policy"))
        .with_partition(partition)
        .build()
        .run(cfg.cycles)
}

/// Runs the full sweep and renders the Section-4-style throughput table:
/// one row per partition, one column per fetch policy, cells in IPC.
pub fn run_matrix(cfg: &ExpConfig) -> (TextTable, Vec<SimReport>) {
    let programs = generate_programs(cfg);
    let mut table = TextTable::new();
    let mut header = vec!["partition".to_string()];
    header.extend(cfg.fetch_policies.iter().map(|p| p.to_uppercase()));
    table.header(header);
    let mut reports = Vec::new();
    for &partition in &cfg.partitions {
        let mut row = vec![partition.to_string()];
        for fetch in &cfg.fetch_policies {
            let report = run_cell(cfg, fetch, partition, &programs);
            row.push(format!("{:.2}", report.total_ipc()));
            reports.push(report);
        }
        table.row(row);
    }
    (table, reports)
}

/// Parses CLI arguments (everything after the program name).
///
/// # Errors
///
/// Returns a usage-style message on unknown flags, bad values or unknown
/// policy names.
pub fn parse_args(args: &[String]) -> Result<ExpConfig, String> {
    let mut cfg = ExpConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--fetch" => {
                let v = value("--fetch")?;
                if v.eq_ignore_ascii_case("all") {
                    cfg.fetch_policies = ExpConfig::default().fetch_policies;
                } else {
                    for name in v.split(',') {
                        if fetch_policy_by_name(name).is_none() {
                            return Err(format!("unknown fetch policy '{name}'"));
                        }
                    }
                    cfg.fetch_policies = v.split(',').map(str::to_string).collect();
                }
            }
            "--issue" => {
                let v = value("--issue")?;
                if issue_policy_by_name(&v).is_none() {
                    return Err(format!("unknown issue policy '{v}'"));
                }
                cfg.issue_policy = v;
            }
            "--partition" => {
                let v = value("--partition")?;
                if v.eq_ignore_ascii_case("all") {
                    cfg.partitions = FetchPartition::all_schemes().to_vec();
                } else {
                    cfg.partitions = v
                        .split(',')
                        .map(|s| {
                            FetchPartition::parse(s)
                                .ok_or_else(|| format!("bad partition '{s}' (expected T.I)"))
                        })
                        .collect::<Result<_, _>>()?;
                }
            }
            "--threads" => {
                cfg.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "--threads expects a number".to_string())?;
                if cfg.threads == 0 || cfg.threads > smt_core::MAX_THREADS {
                    return Err(format!("--threads must be 1..={}", smt_core::MAX_THREADS));
                }
            }
            "--cycles" => {
                cfg.cycles = value("--cycles")?
                    .parse()
                    .map_err(|_| "--cycles expects a number".to_string())?;
            }
            "--seed" => {
                cfg.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed expects a number".to_string())?;
            }
            "--verbose" | "-v" => cfg.verbose = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
    }
    Ok(cfg)
}

/// CLI usage text.
pub const USAGE: &str = "\
usage: smt_exp [--fetch rr,icount,brcount,misscount|all] [--issue oldest|opt_last|spec_last|branch_first]
               [--partition T.I[,T.I...]|all] [--threads N] [--cycles N] [--seed N] [--verbose]

Reproduces the throughput comparisons of Tullsen et al., ISCA 1996 (Sections 4/5):
one row per fetch partition, one column per fetch policy, cells in total IPC.";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_sweep_covers_the_papers_policies() {
        let cfg = ExpConfig::default();
        assert_eq!(cfg.fetch_policies.len(), 4);
        assert_eq!(cfg.partitions, vec![FetchPartition::new(2, 8)]);
    }

    #[test]
    fn parse_args_roundtrip() {
        let args: Vec<String> = [
            "--fetch",
            "icount",
            "--partition",
            "2.8,1.8",
            "--threads",
            "4",
            "--cycles",
            "500",
            "--seed",
            "9",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let cfg = parse_args(&args).unwrap();
        assert_eq!(cfg.fetch_policies, vec!["icount"]);
        assert_eq!(cfg.partitions.len(), 2);
        assert_eq!(cfg.threads, 4);
        assert_eq!(cfg.cycles, 500);
        assert_eq!(cfg.seed, 9);
    }

    #[test]
    fn parse_rejects_unknown_policy() {
        let args = vec!["--fetch".to_string(), "nonesuch".to_string()];
        assert!(parse_args(&args).is_err());
        let args = vec!["--partition".to_string(), "0.8".to_string()];
        assert!(parse_args(&args).is_err());
    }

    #[test]
    fn small_matrix_runs_and_renders() {
        let cfg = ExpConfig {
            fetch_policies: vec!["rr".into(), "icount".into()],
            partitions: vec![FetchPartition::new(2, 8)],
            threads: 2,
            cycles: 400,
            ..ExpConfig::default()
        };
        let (table, reports) = run_matrix(&cfg);
        assert_eq!(reports.len(), 2);
        let rendered = table.to_string();
        assert!(rendered.contains("RR"));
        assert!(rendered.contains("ICOUNT"));
        assert!(rendered.contains("2.8"));
    }

    #[test]
    fn mix_cycles_when_threads_exceed_benchmarks() {
        let m = mix_for(10);
        assert_eq!(m.len(), 10);
        assert_eq!(m[0], m[8]);
    }
}

//! The Section-5 issue-policy study: a warmed-up, multi-mix, multi-seed
//! sweep of the full issue-policy × fetch-policy × partition matrix.
//!
//! The paper's Section 5 finds that once ICOUNT fetch keeps the queues full
//! of *good* instructions, the issue-policy choice (OLDEST_FIRST vs
//! OPT_LAST / SPEC_LAST / BRANCH_FIRST) barely moves total throughput —
//! issue bandwidth is no longer the bottleneck. [`run_study`] reproduces
//! that comparison: every cell runs behind a warmup window (so cold-start
//! cache effects do not drown the small issue-policy deltas), cells are
//! independent simulations and run in parallel across OS threads, and the
//! result renders as a table or as the versioned JSON document described in
//! the crate docs.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use smt_core::checkpoint::config_fingerprint;
use smt_core::{
    fetch_policy_by_name, issue_policy_by_name, FetchPartition, SimConfig, SimReport, WorkloadSpec,
    MAX_THREADS,
};
use smt_stats::json::Json;
use smt_stats::TextTable;
use smt_workload::{standard_mix, Benchmark, Program, RiscvImage, TraceImage};

use crate::fault::{CellError, Degradation, DegradeReason};
use crate::journal::{journal_key, Journal};

/// Version of the JSON documents emitted by [`Study::to_json`],
/// [`crate::ablation::AblationStudy::to_json`] and `smt_exp --json`. Bump
/// on any breaking change to a schema. Version 2 added the ablation-study
/// document (and the optional per-report `ablations` field). Version 3
/// added the optional per-report `restored_from_checkpoint` provenance
/// flag written by the shared-warmup sweep path. Version 4 added the
/// always-present `failed_cells` and `degraded_cells` lists (both empty
/// on a fault-free run).
pub const JSON_SCHEMA_VERSION: u64 = 4;

/// The issue policy every delta is measured against.
pub const BASELINE_ISSUE: &str = "OLDEST_FIRST";

/// Workload mixes the studies sweep, by name.
///
/// * `standard` — the paper's 8-thread mix (4 integer + 4 FP benchmarks),
/// * `int8` — eight integer-heavy contexts (branchy, pointer-chasing),
/// * `fp8` — eight FP-heavy contexts (streaming, high ILP),
/// * `mixed4` — a four-thread half-machine mix.
pub fn mix_by_name(name: &str) -> Option<Vec<Benchmark>> {
    use Benchmark::*;
    match name {
        "standard" => Some(standard_mix()),
        "int8" => Some(vec![
            Espresso, Eqntott, Xlisp, Compress, Espresso, Eqntott, Xlisp, Compress,
        ]),
        "fp8" => Some(vec![
            Alvinn, Tomcatv, Doduc, Fpppp, Su2cor, Swm256, Alvinn, Tomcatv,
        ]),
        "mixed4" => Some(vec![Espresso, Xlisp, Alvinn, Tomcatv]),
        _ => None,
    }
}

/// The named mixes [`mix_by_name`] knows, for CLI validation and help text.
pub const STUDY_MIXES: [&str; 4] = ["standard", "int8", "fp8", "mixed4"];

/// One entry of a custom `+`-separated mix string (see [`parse_custom_mix`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MixEntry {
    /// A synthetic benchmark, by canonical name (e.g. `espresso`).
    Bench(Benchmark),
    /// `riscv:PATH` — a RISC-V binary, functionally executed.
    Elf(PathBuf),
    /// `trace:PATH` — a recorded `SMT1TRCE` trace, replayed.
    Trace(PathBuf),
}

/// Whether `mix` is a custom workload list (to be parsed by
/// [`parse_custom_mix`]) rather than one of the [`STUDY_MIXES`] names.
pub fn is_custom_mix(mix: &str) -> bool {
    mix.contains(':') || mix.contains('+')
}

/// Parses a custom mix string: one workload per hardware context,
/// `+`-separated, each entry `riscv:PATH` (a RISC-V binary to execute),
/// `trace:PATH` (a recorded trace to replay) or a synthetic benchmark
/// name. `riscv:loops.elf+trace:memsum.trace+espresso` is a three-thread
/// mix. Paths are not touched here — existence is checked when the sweep
/// loads its images.
///
/// # Errors
///
/// Returns a usage-style message for an empty entry, an unknown entry
/// kind or benchmark name, or more entries than hardware contexts.
pub fn parse_custom_mix(mix: &str) -> Result<Vec<MixEntry>, String> {
    let mut entries = Vec::new();
    for entry in mix.split('+') {
        let entry = entry.trim();
        let parsed = match entry.split_once(':') {
            Some(("riscv", path)) if !path.is_empty() => MixEntry::Elf(PathBuf::from(path)),
            Some(("trace", path)) if !path.is_empty() => MixEntry::Trace(PathBuf::from(path)),
            Some((kind, _)) => {
                return Err(format!(
                    "unknown workload kind '{kind}:' in mix entry '{entry}' \
                     (known: riscv:PATH, trace:PATH)"
                ))
            }
            None => match Benchmark::ALL.iter().find(|b| b.name() == entry) {
                Some(&b) => MixEntry::Bench(b),
                None => {
                    return Err(format!(
                        "unknown benchmark '{entry}' in custom mix \
                         (entries are riscv:PATH, trace:PATH or a benchmark name)"
                    ))
                }
            },
        };
        entries.push(parsed);
    }
    if entries.is_empty() || entries.len() > MAX_THREADS {
        return Err(format!(
            "custom mix must name 1..={MAX_THREADS} workloads, got {}",
            entries.len()
        ));
    }
    Ok(entries)
}

/// Validates one `--mixes` entry: a [`STUDY_MIXES`] name or a custom
/// workload list.
///
/// # Errors
///
/// Returns the [`parse_custom_mix`] message for a bad custom mix, or an
/// unknown-name message listing the named mixes and the custom syntax.
pub fn validate_mix(mix: &str) -> Result<(), String> {
    if is_custom_mix(mix) {
        parse_custom_mix(mix).map(|_| ())
    } else if mix_by_name(mix).is_some() {
        Ok(())
    } else {
        Err(format!(
            "unknown mix '{mix}' (known: {}; or a custom riscv:PATH / \
             trace:PATH / benchmark list joined with '+')",
            STUDY_MIXES.join(", ")
        ))
    }
}

/// Pre-generated workload images for one (mix, seed) pair, shared
/// (`Arc`-cloned) between every cell that uses the pair.
#[derive(Debug, Clone)]
pub enum MixImages {
    /// A named synthetic mix as program images — the legacy
    /// `with_programs` path, byte- and fingerprint-identical to every
    /// sweep that predates custom mixes.
    Programs(Vec<Arc<Program>>),
    /// A custom workload list (`riscv:` / `trace:` entries, possibly mixed
    /// with synthetic benchmarks), run through the `with_workloads` path.
    Workloads(Vec<WorkloadSpec>),
}

impl MixImages {
    /// Installs this workload set on a configuration.
    pub fn apply(&self, cfg: SimConfig) -> SimConfig {
        match self {
            MixImages::Programs(p) => cfg.with_programs(p.clone()),
            MixImages::Workloads(w) => cfg.with_workloads(w.clone()),
        }
    }

    /// Hardware contexts this mix occupies.
    pub fn thread_count(&self) -> usize {
        match self {
            MixImages::Programs(p) => p.len(),
            MixImages::Workloads(w) => w.len(),
        }
    }
}

/// Resolves one mix string for one seed: named mixes generate their
/// synthetic program images, custom mixes load each `riscv:` / `trace:`
/// file (and generate any synthetic entries). Benchmark entries are
/// pre-generated here — once per (mix, seed) — so cells share images
/// instead of regenerating them.
///
/// # Errors
///
/// Returns the mix-syntax error or the loader's message for an unreadable
/// or malformed workload file.
pub fn resolve_mix(mix: &str, seed: u64) -> Result<MixImages, String> {
    if !is_custom_mix(mix) {
        let benchmarks = mix_by_name(mix).ok_or_else(|| format!("unknown mix '{mix}'"))?;
        return Ok(MixImages::Programs(
            benchmarks
                .iter()
                .enumerate()
                .map(|(slot, b)| Arc::new(b.generate(seed, slot as u32)))
                .collect(),
        ));
    }
    let mut workloads = Vec::new();
    for (slot, entry) in parse_custom_mix(mix)?.into_iter().enumerate() {
        workloads.push(match entry {
            MixEntry::Bench(b) => WorkloadSpec::Program(Arc::new(b.generate(seed, slot as u32))),
            MixEntry::Elf(path) => WorkloadSpec::Elf(Arc::new(RiscvImage::load(&path)?)),
            MixEntry::Trace(path) => WorkloadSpec::Trace(Arc::new(TraceImage::load(&path)?)),
        });
    }
    Ok(MixImages::Workloads(workloads))
}

/// Workload images for a sweep, resolved once per (mix, seed) and shared
/// between every cell that uses the pair. Mix names are pre-validated
/// ([`validate_mix`]) but file loads can still fail — per *key*, not per
/// sweep: an unreadable `riscv:`/`trace:` file fails only the cells of
/// its own (mix, seed) pair (as typed `workload` [`CellError`]s), while
/// every other key's cells run to completion.
pub(crate) fn generate_images(
    mixes: &[String],
    seeds: &[u64],
) -> HashMap<(String, u64), Result<MixImages, String>> {
    let mut images = HashMap::new();
    for mix in mixes {
        for &seed in seeds {
            images
                .entry((mix.clone(), seed))
                .or_insert_with(|| resolve_mix(mix, seed));
        }
    }
    images
}

/// Configuration of one study sweep.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Fetch policies to cross with the issue policies.
    pub fetch_policies: Vec<String>,
    /// Issue policies under study.
    pub issue_policies: Vec<String>,
    /// Fetch partitions to sweep.
    pub partitions: Vec<FetchPartition>,
    /// Workload mixes: [`STUDY_MIXES`] names or custom `riscv:` /
    /// `trace:` lists (see [`validate_mix`]).
    pub mixes: Vec<String>,
    /// Workload-generation seeds; every cell runs once per seed.
    pub seeds: Vec<u64>,
    /// Measured cycles per cell (after warmup).
    pub cycles: u64,
    /// Warmup cycles excluded from every cell's statistics.
    pub warmup: u64,
    /// Worker threads for the sweep; `0` means one per available core.
    pub jobs: usize,
    /// Warm each unique (mix, seed, partition) once under the canonical
    /// configuration and fork the checkpoint across the policy
    /// cross-product (see [`crate::warmup`]). `false` recomputes the same
    /// canonical warmup per cell; results are byte-identical either way.
    pub share_warmup: bool,
    /// Cache the per-key warmup checkpoints in this directory
    /// (`--checkpoint-dir`); entries are fingerprint-validated on load and
    /// recomputed on any mismatch.
    pub checkpoint_dir: Option<PathBuf>,
    /// Durable result journal (`--journal`): append each completed cell's
    /// report to this directory as it finishes, and on start resume every
    /// journaled cell instead of re-running it. A sweep killed mid-flight
    /// and re-run with the same journal produces a document byte-identical
    /// to an uninterrupted run (see [`crate::journal`]).
    pub journal: Option<PathBuf>,
}

impl Default for StudyConfig {
    fn default() -> StudyConfig {
        StudyConfig {
            fetch_policies: vec!["rr".into(), "icount".into()],
            issue_policies: vec![
                "oldest".into(),
                "opt_last".into(),
                "spec_last".into(),
                "branch_first".into(),
            ],
            // PR 5's hot-loop speedup bought the wider default matrix the
            // PR-3 roadmap item asked for: the 2.2 (narrow per-thread) and
            // 4.4 (over-provisioned) partitions bracket the paper's 2.8,
            // and a third seed tightens every mean.
            partitions: vec![
                FetchPartition::new(2, 2),
                FetchPartition::new(2, 8),
                FetchPartition::new(4, 4),
            ],
            mixes: vec!["standard".into(), "int8".into(), "fp8".into()],
            seeds: vec![42, 1337, 7],
            cycles: 20_000,
            warmup: 10_000,
            jobs: 0,
            share_warmup: true,
            checkpoint_dir: None,
            journal: None,
        }
    }
}

impl StudyConfig {
    /// Validates every policy, partition and mix name.
    ///
    /// # Errors
    ///
    /// Returns a usage-style message naming the first unknown entry.
    pub fn validate(&self) -> Result<(), String> {
        for f in &self.fetch_policies {
            if fetch_policy_by_name(f).is_none() {
                return Err(format!("unknown fetch policy '{f}'"));
            }
        }
        for i in &self.issue_policies {
            if issue_policy_by_name(i).is_none() {
                return Err(format!("unknown issue policy '{i}'"));
            }
        }
        for m in &self.mixes {
            validate_mix(m)?;
        }
        if self.fetch_policies.is_empty()
            || self.issue_policies.is_empty()
            || self.partitions.is_empty()
            || self.mixes.is_empty()
            || self.seeds.is_empty()
        {
            return Err("study sweep axes must all be non-empty".to_string());
        }
        Ok(())
    }

    /// Number of cells the sweep will run.
    pub fn cell_count(&self) -> usize {
        self.fetch_policies.len()
            * self.issue_policies.len()
            * self.partitions.len()
            * self.mixes.len()
            * self.seeds.len()
    }
}

/// One completed cell of the study matrix.
#[derive(Debug, Clone)]
pub struct StudyCell {
    /// Canonical fetch-policy name (e.g. `"ICOUNT"`).
    pub fetch: String,
    /// Canonical issue-policy name (e.g. `"OPT_LAST"`).
    pub issue: String,
    /// Fetch partition this cell ran.
    pub partition: FetchPartition,
    /// Workload-mix name.
    pub mix: String,
    /// Workload-generation seed.
    pub seed: u64,
    /// The full simulation report for the measured window.
    pub report: SimReport,
}

/// One contained cell failure: the cell's matrix coordinates plus the
/// typed error. Failed cells appear in the document's `failed_cells` list
/// (in deterministic spec order) instead of aborting the sweep.
#[derive(Debug, Clone)]
pub struct FailedStudyCell {
    /// Canonical fetch-policy name.
    pub fetch: String,
    /// Canonical issue-policy name.
    pub issue: String,
    /// Fetch partition the cell would have run.
    pub partition: FetchPartition,
    /// Workload-mix name.
    pub mix: String,
    /// Workload-generation seed.
    pub seed: u64,
    /// Why the cell failed.
    pub error: CellError,
}

/// Results of one sweep: the configuration plus every cell.
#[derive(Debug, Clone)]
pub struct Study {
    /// The sweep configuration that produced these cells.
    pub config: StudyConfig,
    /// One entry per *completed* matrix cell, in deterministic
    /// (mix, seed, partition, fetch, issue) order.
    pub cells: Vec<StudyCell>,
    /// Cells whose fault was contained (panic, workload, checkpoint or
    /// I/O), in the same deterministic spec order. Empty on a fault-free
    /// run; completed cells are byte-identical either way.
    pub failed: Vec<FailedStudyCell>,
    /// Graceful-degradation events survived along the way (cache or
    /// journal trouble that cost speed or durability, never results), in
    /// deterministic order: journal-read first, then warmup-cache, then
    /// journal-write events.
    pub degraded: Vec<Degradation>,
    /// Warmup simulations actually executed: one per unique (mix, seed,
    /// partition) when warmups are shared, one per cell when not, fewer
    /// when a checkpoint directory served cached entries. Deliberately not
    /// part of [`Study::to_json`] — the shared and cold paths produce
    /// byte-identical documents.
    pub warmups_performed: usize,
    /// Cells resumed from the `--journal` directory instead of re-run.
    /// Deliberately not part of [`Study::to_json`] — a resumed run's
    /// document is byte-identical to an uninterrupted one.
    pub journal_loaded: usize,
}

/// The canonical policy name for a validated raw name (used to label
/// failed cells consistently with completed ones, whose names come off
/// their reports).
pub(crate) fn canonical_fetch_name(name: &str) -> String {
    fetch_policy_by_name(name).map_or_else(|| name.to_string(), |p| p.name().to_string())
}

/// See [`canonical_fetch_name`].
pub(crate) fn canonical_issue_name(name: &str) -> String {
    issue_policy_by_name(name).map_or_else(|| name.to_string(), |p| p.name().to_string())
}

/// Runs the full study matrix, parallelized across OS threads. Each cell is
/// an independent [`Simulator`](smt_core::Simulator), so the sweep scales to
/// the available cores; program images are generated once per (mix, seed)
/// and shared between the cells that use them. With
/// [`StudyConfig::share_warmup`] (the default) the warmup window is also
/// computed once per unique (mix, seed, partition) and forked across the
/// fetch × issue cross-product as a checkpoint (see [`crate::warmup`]).
///
/// Cell faults are contained: a panicking cell, an unloadable workload
/// file, a checkpoint mismatch or a post-retry I/O failure becomes a
/// [`FailedStudyCell`] while every other cell completes with bytes
/// identical to a fault-free run. With [`StudyConfig::journal`] the sweep
/// is also crash-resumable (see [`crate::journal`]).
///
/// # Errors
///
/// Returns the [`StudyConfig::validate`] message for bad names, or the
/// open error when the requested journal directory cannot be created —
/// the only faults that still fail the whole sweep.
pub fn run_study(cfg: &StudyConfig) -> Result<Study, String> {
    cfg.validate()?;

    let images = generate_images(&cfg.mixes, &cfg.seeds);

    // The work list: one spec per cell, in deterministic order.
    struct Spec<'a> {
        fetch: &'a str,
        issue: &'a str,
        partition: FetchPartition,
        mix: &'a str,
        seed: u64,
    }
    let mut specs = Vec::with_capacity(cfg.cell_count());
    for mix in &cfg.mixes {
        for &seed in &cfg.seeds {
            for &partition in &cfg.partitions {
                for fetch in &cfg.fetch_policies {
                    for issue in &cfg.issue_policies {
                        specs.push(Spec {
                            fetch,
                            issue,
                            partition,
                            mix,
                            seed,
                        });
                    }
                }
            }
        }
    }
    let cell_label = |spec: &Spec| {
        format!(
            "{}/{}/{}/{}/s{}",
            spec.fetch, spec.issue, spec.partition, spec.mix, spec.seed
        )
    };

    // The durable journal, when asked for. Each cell's 64-bit identity
    // folds the canonical machine/workload fingerprint of its (mix, seed,
    // partition) key with the fork axes and cycle counts, so entries are
    // only ever resumed into a sweep that would reproduce them exactly.
    let journal = match &cfg.journal {
        Some(dir) => Some(
            Journal::open(dir)
                .map_err(|e| format!("cannot open journal {}: {e}", dir.display()))?,
        ),
        None => None,
    };
    let mut fingerprints: HashMap<(String, u64, FetchPartition), u64> = HashMap::new();
    if journal.is_some() {
        for mix in &cfg.mixes {
            for &seed in &cfg.seeds {
                if let Ok(imgs) = &images[&(mix.clone(), seed)] {
                    for &partition in &cfg.partitions {
                        fingerprints.insert(
                            (mix.clone(), seed, partition),
                            config_fingerprint(&crate::warmup::canonical_config_for(
                                imgs, seed, partition,
                            )),
                        );
                    }
                }
            }
        }
    }
    let cell_key = |spec: &Spec| -> Option<u64> {
        let fp = fingerprints.get(&(spec.mix.to_string(), spec.seed, spec.partition))?;
        Some(journal_key(
            *fp,
            &["issue-study", spec.fetch, spec.issue],
            &[cfg.cycles, cfg.warmup],
        ))
    };

    // Journal prescan: resume every valid completed entry; an invalid one
    // degrades (and the cell re-runs). Failed cells are never journaled —
    // deterministic failures re-fail on resume, keeping the resumed
    // document byte-identical to an uninterrupted run.
    let mut journaled: Vec<Option<SimReport>> = (0..specs.len()).map(|_| None).collect();
    let mut degraded: Vec<Degradation> = Vec::new();
    if let Some(journal) = &journal {
        for (i, spec) in specs.iter().enumerate() {
            let Some(key) = cell_key(spec) else { continue };
            match journal.load(key, i as u64) {
                Ok(found) => journaled[i] = found,
                Err(detail) => degraded.push(Degradation {
                    key: cell_label(spec),
                    reason: DegradeReason::JournalRead,
                    detail: format!("{detail}; cell re-run"),
                }),
            }
        }
    }

    // One canonical warmup checkpoint per unique (mix, seed, partition)
    // still needed by a non-journaled cell, computed up front (in
    // parallel) and forked across every cell that shares the key. The
    // cold path recomputes the identical canonical warmup per cell
    // instead, so both paths yield byte-identical cells. A warmup that
    // panics poisons exactly the cells that depend on its key.
    type WarmKey = (String, u64, FetchPartition);
    let (shared, mut warmups_performed) = if cfg.share_warmup {
        let mut needed: Vec<WarmKey> = Vec::new();
        for (i, spec) in specs.iter().enumerate() {
            let key = (spec.mix.to_string(), spec.seed, spec.partition);
            if journaled[i].is_none()
                && images[&(key.0.clone(), key.1)].is_ok()
                && !needed.contains(&key)
            {
                needed.push(key);
            }
        }
        let outcomes = smt_stats::sched::work_steal_map_catch(needed.len(), cfg.jobs, |i| {
            let (mix, seed, partition) = &needed[i];
            let imgs = images[&(mix.clone(), *seed)]
                .as_ref()
                .expect("needed keys filtered to loadable images");
            crate::warmup::warm_checkpoint(
                imgs,
                mix,
                *seed,
                *partition,
                cfg.warmup,
                cfg.checkpoint_dir.as_deref(),
            )
        });
        let mut computed = 0;
        let mut map: HashMap<WarmKey, Result<Arc<Vec<u8>>, CellError>> = HashMap::new();
        for (key, outcome) in needed.into_iter().zip(outcomes) {
            match outcome {
                Ok(warm) => {
                    if warm.computed {
                        computed += 1;
                    }
                    degraded.extend(warm.degradations);
                    map.insert(key, Ok(warm.checkpoint));
                }
                Err(panic_msg) => {
                    map.insert(
                        key,
                        Err(CellError::panic(format!("warmup panicked: {panic_msg}"))),
                    );
                }
            }
        }
        (Some(map), computed)
    } else {
        (None, 0)
    };

    // The cell phase, each cell isolated behind `catch_unwind` at the
    // scheduler boundary: one cell's fault becomes its own failure record
    // while every other cell's result stays byte-identical.
    struct Done {
        cell: StudyCell,
        from_journal: bool,
        warmed_cold: bool,
        degradation: Option<Degradation>,
    }
    let outcomes = smt_stats::sched::work_steal_map_catch(specs.len(), cfg.jobs, |i| {
        let spec = &specs[i];
        #[cfg(feature = "fault-inject")]
        smt_stats::faults::panic_point("cell", i as u64);
        let mix_images = match &images[&(spec.mix.to_string(), spec.seed)] {
            Ok(imgs) => imgs,
            Err(e) => return Err(CellError::workload(e.clone())),
        };
        if let Some(report) = &journaled[i] {
            return Ok(Done {
                cell: StudyCell {
                    fetch: report.fetch_policy.clone(),
                    issue: report.issue_policy.clone(),
                    partition: spec.partition,
                    mix: spec.mix.to_string(),
                    seed: spec.seed,
                    report: report.clone(),
                },
                from_journal: true,
                warmed_cold: false,
                degradation: None,
            });
        }
        let mut warmed_cold = false;
        let checkpoint = match &shared {
            Some(map) => match &map[&(spec.mix.to_string(), spec.seed, spec.partition)] {
                Ok(bytes) => bytes.clone(),
                Err(poisoned) => return Err(poisoned.clone()),
            },
            None => {
                warmed_cold = true;
                Arc::new(crate::warmup::compute_checkpoint(
                    mix_images,
                    spec.seed,
                    spec.partition,
                    cfg.warmup,
                ))
            }
        };
        let cell_cfg = mix_images
            .apply(SimConfig::new())
            .with_seed(spec.seed)
            .with_fetch(fetch_policy_by_name(spec.fetch).expect("validated"))
            .with_issue(issue_policy_by_name(spec.issue).expect("validated"))
            .with_partition(spec.partition);
        let report = crate::warmup::try_fork_cell(cell_cfg, &checkpoint, cfg.cycles)
            .map_err(|e| CellError::checkpoint(e.to_string()))?;
        let mut degradation = None;
        if let (Some(journal), Some(key)) = (&journal, cell_key(spec)) {
            if let Err(e) = journal.store(key, i as u64, &report) {
                degradation = Some(Degradation {
                    key: cell_label(spec),
                    reason: DegradeReason::JournalWrite,
                    detail: format!("store failed: {e}; result not durable"),
                });
            }
        }
        Ok(Done {
            cell: StudyCell {
                fetch: report.fetch_policy.clone(),
                issue: report.issue_policy.clone(),
                partition: spec.partition,
                mix: spec.mix.to_string(),
                seed: spec.seed,
                report,
            },
            from_journal: false,
            warmed_cold,
            degradation,
        })
    });

    let mut cells = Vec::new();
    let mut failed = Vec::new();
    let mut store_degradations = Vec::new();
    let mut journal_loaded = 0;
    let mut cold_warmups = 0;
    for (spec, outcome) in specs.iter().zip(outcomes) {
        // Flatten the scheduler's catch layer (an escaped panic) into the
        // cell's own typed result.
        let flat = match outcome {
            Ok(inner) => inner,
            Err(panic_msg) => Err(CellError::panic(panic_msg)),
        };
        match flat {
            Ok(done) => {
                if done.from_journal {
                    journal_loaded += 1;
                }
                if done.warmed_cold {
                    cold_warmups += 1;
                }
                store_degradations.extend(done.degradation);
                cells.push(done.cell);
            }
            Err(error) => failed.push(FailedStudyCell {
                fetch: canonical_fetch_name(spec.fetch),
                issue: canonical_issue_name(spec.issue),
                partition: spec.partition,
                mix: spec.mix.to_string(),
                seed: spec.seed,
                error,
            }),
        }
    }
    degraded.extend(store_degradations);
    if !cfg.share_warmup {
        warmups_performed = cold_warmups;
    }
    Ok(Study {
        config: cfg.clone(),
        cells,
        failed,
        degraded,
        warmups_performed,
        journal_loaded,
    })
}

impl Study {
    /// The cell's IPC delta against the OLDEST_FIRST cell with the same
    /// fetch policy, partition, mix and seed (`None` when the baseline was
    /// not part of the sweep; `0.0` for baseline cells themselves).
    pub fn delta_vs_baseline(&self, cell: &StudyCell) -> Option<f64> {
        let base = self.cells.iter().find(|c| {
            c.issue == BASELINE_ISSUE
                && c.fetch == cell.fetch
                && c.partition == cell.partition
                && c.mix == cell.mix
                && c.seed == cell.seed
        })?;
        Some(cell.report.total_ipc() - base.report.total_ipc())
    }

    /// Mean total IPC per issue policy, averaged over every fetch policy,
    /// partition, mix and seed, in first-seen order.
    pub fn mean_ipc_by_issue(&self) -> Vec<(String, f64)> {
        mean_by(&self.cells, |c| c.issue.clone())
    }

    /// Mean total IPC per fetch policy, restricted to the baseline issue
    /// policy so the comparison is not diluted by issue-policy variation.
    pub fn mean_ipc_by_fetch(&self) -> Vec<(String, f64)> {
        let base: Vec<StudyCell> = self
            .cells
            .iter()
            .filter(|c| c.issue == BASELINE_ISSUE)
            .cloned()
            .collect();
        if base.is_empty() {
            mean_by(&self.cells, |c| c.fetch.clone())
        } else {
            mean_by(&base, |c| c.fetch.clone())
        }
    }

    /// Max-minus-min of the per-issue-policy mean IPCs: how much the issue
    /// policy choice moves throughput.
    pub fn issue_ipc_spread(&self) -> f64 {
        spread(&self.mean_ipc_by_issue())
    }

    /// Max-minus-min of the per-fetch-policy mean IPCs: how much the fetch
    /// policy choice moves throughput.
    pub fn fetch_ipc_spread(&self) -> f64 {
        spread(&self.mean_ipc_by_fetch())
    }

    /// A Section-5-style table: one row per (partition, mix, seed, fetch),
    /// one column per issue policy, cells in total IPC.
    pub fn summary_table(&self) -> TextTable {
        let mut issues: Vec<String> = Vec::new();
        for c in &self.cells {
            if !issues.contains(&c.issue) {
                issues.push(c.issue.clone());
            }
        }
        let mut table = TextTable::new();
        let mut header = vec!["scheme/mix/seed".to_string()];
        header.extend(issues.iter().cloned());
        table.header(header);
        let mut seen: Vec<(String, FetchPartition, String, u64)> = Vec::new();
        for c in &self.cells {
            let key = (c.fetch.clone(), c.partition, c.mix.clone(), c.seed);
            if seen.contains(&key) {
                continue;
            }
            seen.push(key);
            let mut row = vec![format!("{}.{}/{}/{}", c.fetch, c.partition, c.mix, c.seed)];
            for issue in &issues {
                let ipc = self
                    .cells
                    .iter()
                    .find(|x| {
                        x.issue == *issue
                            && x.fetch == c.fetch
                            && x.partition == c.partition
                            && x.mix == c.mix
                            && x.seed == c.seed
                    })
                    .map(|x| x.report.total_ipc());
                row.push(match ipc {
                    Some(ipc) => format!("{ipc:.2}"),
                    None => "-".to_string(),
                });
            }
            table.row(row);
        }
        table
    }

    /// The versioned machine-readable document (see the crate docs for the
    /// schema). `smt_exp --study issue --json out.json` writes exactly this,
    /// pretty-rendered.
    pub fn to_json(&self) -> Json {
        let cfg = &self.config;
        let config = Json::object([
            ("cycles", Json::from(cfg.cycles)),
            ("warmup_cycles", Json::from(cfg.warmup)),
            (
                "fetch_policies",
                Json::array(cfg.fetch_policies.iter().map(String::as_str)),
            ),
            (
                "issue_policies",
                Json::array(cfg.issue_policies.iter().map(String::as_str)),
            ),
            (
                "partitions",
                Json::array(cfg.partitions.iter().map(|p| p.to_string())),
            ),
            ("mixes", Json::array(cfg.mixes.iter().map(String::as_str))),
            ("seeds", Json::array(cfg.seeds.iter().copied())),
        ]);
        let cells = Json::array(self.cells.iter().map(|c| {
            Json::object([
                ("fetch", Json::from(c.fetch.clone())),
                ("issue", Json::from(c.issue.clone())),
                ("partition", Json::from(c.partition.to_string())),
                ("mix", Json::from(c.mix.clone())),
                ("seed", Json::from(c.seed)),
                ("total_ipc", Json::from(c.report.total_ipc())),
                (
                    "delta_vs_oldest",
                    match self.delta_vs_baseline(c) {
                        Some(d) => Json::from(d),
                        None => Json::Null,
                    },
                ),
                ("report", c.report.to_json()),
            ])
        }));
        let issue_summary = Json::array(self.mean_ipc_by_issue().into_iter().map(|(name, ipc)| {
            let mean_delta: f64 = {
                let deltas: Vec<f64> = self
                    .cells
                    .iter()
                    .filter(|c| c.issue == name)
                    .filter_map(|c| self.delta_vs_baseline(c))
                    .collect();
                if deltas.is_empty() {
                    0.0
                } else {
                    deltas.iter().sum::<f64>() / deltas.len() as f64
                }
            };
            Json::object([
                ("issue", Json::from(name)),
                ("mean_ipc", Json::from(ipc)),
                ("mean_delta_vs_oldest", Json::from(mean_delta)),
            ])
        }));
        let fetch_summary = Json::array(self.mean_ipc_by_fetch().into_iter().map(|(name, ipc)| {
            Json::object([("fetch", Json::from(name)), ("mean_ipc", Json::from(ipc))])
        }));
        Json::object([
            ("schema_version", Json::from(JSON_SCHEMA_VERSION)),
            ("kind", Json::from("smt-exp-study")),
            ("study", Json::from("issue")),
            ("config", config),
            ("cells", cells),
            (
                "failed_cells",
                Json::array(self.failed.iter().map(|f| {
                    Json::object([
                        ("fetch", Json::from(f.fetch.as_str())),
                        ("issue", Json::from(f.issue.as_str())),
                        ("partition", Json::from(f.partition.to_string())),
                        ("mix", Json::from(f.mix.as_str())),
                        ("seed", Json::from(f.seed)),
                        ("error", f.error.to_json()),
                    ])
                })),
            ),
            (
                "degraded_cells",
                Json::array(self.degraded.iter().map(Degradation::to_json)),
            ),
            (
                "summary",
                Json::object([
                    ("baseline_issue", Json::from(BASELINE_ISSUE)),
                    ("issue_policies", issue_summary),
                    ("fetch_policies", fetch_summary),
                    ("issue_ipc_spread", Json::from(self.issue_ipc_spread())),
                    ("fetch_ipc_spread", Json::from(self.fetch_ipc_spread())),
                ]),
            ),
        ])
    }
}

fn mean_by(cells: &[StudyCell], key: impl Fn(&StudyCell) -> String) -> Vec<(String, f64)> {
    let mut order: Vec<String> = Vec::new();
    let mut sums: HashMap<String, (f64, usize)> = HashMap::new();
    for c in cells {
        let k = key(c);
        if !order.contains(&k) {
            order.push(k.clone());
        }
        let e = sums.entry(k).or_insert((0.0, 0));
        e.0 += c.report.total_ipc();
        e.1 += 1;
    }
    order
        .into_iter()
        .map(|k| {
            let (sum, n) = sums[&k];
            (k, sum / n as f64)
        })
        .collect()
}

fn spread(means: &[(String, f64)]) -> f64 {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &(_, ipc) in means {
        min = min.min(ipc);
        max = max.max(ipc);
    }
    if means.is_empty() {
        0.0
    } else {
        max - min
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::CellErrorKind;

    fn tiny_study() -> StudyConfig {
        StudyConfig {
            fetch_policies: vec!["rr".into(), "icount".into()],
            issue_policies: vec!["oldest".into(), "spec_last".into()],
            mixes: vec!["mixed4".into()],
            seeds: vec![42],
            cycles: 600,
            warmup: 200,
            jobs: 2,
            ..StudyConfig::default()
        }
    }

    #[test]
    fn default_config_is_valid_and_sized() {
        let cfg = StudyConfig::default();
        cfg.validate().unwrap();
        // 2 fetch × 4 issue × 3 partitions × 3 mixes × 3 seeds.
        assert_eq!(cfg.cell_count(), 216);
        assert!(
            cfg.seeds.contains(&7),
            "the widened default matrix carries seed 7"
        );
        for p in ["2.2", "4.4", "2.8"] {
            assert!(
                cfg.partitions.contains(&FetchPartition::parse(p).unwrap()),
                "the widened default matrix carries the {p} partition"
            );
        }
    }

    #[test]
    fn validate_rejects_unknown_names() {
        let cfg = StudyConfig {
            mixes: vec!["nonesuch".into()],
            ..StudyConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = StudyConfig {
            issue_policies: vec!["nonesuch".into()],
            ..StudyConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = StudyConfig {
            seeds: Vec::new(),
            ..StudyConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn every_named_mix_resolves() {
        for name in STUDY_MIXES {
            let mix = mix_by_name(name).unwrap();
            assert!(!mix.is_empty(), "{name} is empty");
        }
        assert!(mix_by_name("nope").is_none());
    }

    fn elf_path(stem: &str) -> String {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../testdata/riscv")
            .join(format!("{stem}.elf"))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn custom_mixes_parse_validate_and_resolve() {
        assert!(is_custom_mix("riscv:a.elf"));
        assert!(is_custom_mix("espresso+tomcatv"));
        assert!(!is_custom_mix("standard"));

        let entries = parse_custom_mix("riscv:a.elf+trace:b.trace+espresso").unwrap();
        assert_eq!(entries.len(), 3);
        assert!(matches!(entries[0], MixEntry::Elf(_)));
        assert!(matches!(entries[1], MixEntry::Trace(_)));
        assert!(matches!(entries[2], MixEntry::Bench(Benchmark::Espresso)));

        assert!(parse_custom_mix("bogus:a")
            .unwrap_err()
            .contains("unknown workload kind"));
        assert!(parse_custom_mix("riscv:").is_err());
        assert!(parse_custom_mix("nonesuch+espresso")
            .unwrap_err()
            .contains("unknown benchmark"));

        validate_mix("standard").unwrap();
        assert!(validate_mix("nonesuch").is_err());
        validate_mix("espresso+espresso").unwrap();

        // Loader errors surface at resolve time, with the path named.
        assert!(resolve_mix("riscv:/no/such/file.elf", 42).is_err());
        let resolved = resolve_mix(&format!("riscv:{}+espresso", elf_path("loops")), 42).unwrap();
        assert_eq!(resolved.thread_count(), 2);
        assert!(matches!(resolved, MixImages::Workloads(_)));
    }

    #[test]
    fn riscv_mix_study_reports_icount_vs_rr_frontend_losses() {
        // The acceptance measurement for the real-binary workload path:
        // ICOUNT vs RR on the checked-in ELFs, with every cell's measured
        // lost_frontend_full present in the study JSON.
        let mix = format!(
            "riscv:{}+riscv:{}+riscv:{}",
            elf_path("loops"),
            elf_path("memsum"),
            elf_path("gcd")
        );
        let cfg = StudyConfig {
            fetch_policies: vec!["rr".into(), "icount".into()],
            issue_policies: vec!["oldest".into()],
            partitions: vec![FetchPartition::new(2, 8)],
            mixes: vec![mix.clone()],
            seeds: vec![42],
            cycles: 1_500,
            warmup: 500,
            jobs: 2,
            ..StudyConfig::default()
        };
        let study = run_study(&cfg).unwrap();
        assert_eq!(study.cells.len(), 2);
        for c in &study.cells {
            assert!(c.report.total_committed() > 0, "real workload starved");
            assert_eq!(c.report.threads[0].benchmark, "loops");
            assert_eq!(c.mix, mix);
        }
        let doc = study.to_json().render_pretty();
        let back = Json::parse(&doc).unwrap();
        let mut fetches = Vec::new();
        for cell in back.get("cells").and_then(Json::as_array).unwrap() {
            let lost = cell
                .get("report")
                .and_then(|r| r.get("fetch"))
                .and_then(|f| f.get("lost_frontend_full"))
                .and_then(Json::as_u64);
            assert!(lost.is_some(), "cell lacks measured lost_frontend_full");
            fetches.push(
                cell.get("fetch")
                    .and_then(Json::as_str)
                    .unwrap()
                    .to_string(),
            );
        }
        assert!(fetches.contains(&"RR".to_string()));
        assert!(fetches.contains(&"ICOUNT".to_string()));
        // The whole document — warmup forking included — is reproducible.
        assert_eq!(doc, run_study(&cfg).unwrap().to_json().render_pretty());
    }

    #[test]
    fn tiny_study_runs_all_cells_with_warmup() {
        let cfg = tiny_study();
        let study = run_study(&cfg).unwrap();
        assert_eq!(study.cells.len(), cfg.cell_count());
        for c in &study.cells {
            assert_eq!(c.report.cycles, cfg.cycles);
            assert_eq!(c.report.warmup_cycles, cfg.warmup);
            assert!(c.report.total_committed() > 0, "cell made no progress");
        }
        // Baseline cells have exactly zero delta; every cell has one.
        for c in &study.cells {
            let d = study.delta_vs_baseline(c).expect("baseline in sweep");
            if c.issue == BASELINE_ISSUE {
                assert_eq!(d, 0.0);
            }
        }
        // Parallel scheduling must not perturb results: rerun serially.
        let serial = run_study(&StudyConfig {
            jobs: 1,
            ..cfg.clone()
        })
        .unwrap();
        for (a, b) in study.cells.iter().zip(serial.cells.iter()) {
            assert_eq!(a.report.total_committed(), b.report.total_committed());
            assert_eq!(
                (a.fetch.clone(), a.issue.clone()),
                (b.fetch.clone(), b.issue.clone())
            );
        }
    }

    #[test]
    fn shared_and_cold_warmup_paths_are_byte_identical() {
        let cfg = tiny_study();
        let shared = run_study(&cfg).unwrap();
        let cold = run_study(&StudyConfig {
            share_warmup: false,
            ..cfg.clone()
        })
        .unwrap();
        // One warmup per unique (mix, seed, partition) vs one per cell.
        assert_eq!(
            shared.warmups_performed,
            cfg.mixes.len() * cfg.seeds.len() * cfg.partitions.len()
        );
        assert_eq!(cold.warmups_performed, cfg.cell_count());
        assert!(shared.warmups_performed < cold.warmups_performed);
        // The sharing must be invisible in the result document.
        assert_eq!(
            shared.to_json().render_pretty(),
            cold.to_json().render_pretty(),
            "warmup sharing changed the study's results"
        );
        // Every cell self-describes its checkpoint provenance.
        for c in &shared.cells {
            assert!(c.report.restored_from_checkpoint);
        }
    }

    #[test]
    fn worker_count_never_leaks_into_the_study_document() {
        // The scheduler-determinism property: the full `--study issue`
        // JSON document must be byte-identical whether the sweep runs on
        // one worker, two, or eight (oversubscribed on this box) — the
        // work-stealing queue may reorder *execution* but never results.
        let base = tiny_study();
        let reference = run_study(&StudyConfig {
            jobs: 1,
            ..base.clone()
        })
        .unwrap()
        .to_json()
        .render_pretty();
        for jobs in [2, 8] {
            let doc = run_study(&StudyConfig {
                jobs,
                ..base.clone()
            })
            .unwrap()
            .to_json()
            .render_pretty();
            assert_eq!(
                doc, reference,
                "jobs={jobs} perturbed the study document bytes"
            );
        }
    }

    #[test]
    fn checkpoint_dir_serves_repeat_sweeps_from_disk() {
        let dir = std::env::temp_dir().join(format!("smt-exp-study-cache-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cfg = StudyConfig {
            checkpoint_dir: Some(dir.clone()),
            ..tiny_study()
        };
        let first = run_study(&cfg).unwrap();
        assert!(first.warmups_performed > 0, "cold cache must compute");
        let second = run_study(&cfg).unwrap();
        assert_eq!(second.warmups_performed, 0, "warm cache must serve");
        assert_eq!(
            first.to_json().render_pretty(),
            second.to_json().render_pretty()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_resume_is_byte_identical_and_reuses_entries() {
        let dir =
            std::env::temp_dir().join(format!("smt-exp-study-journal-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let plain = tiny_study();
        let cfg = StudyConfig {
            journal: Some(dir.clone()),
            ..plain.clone()
        };
        // A journaled sweep changes nothing about the results …
        let reference = run_study(&plain).unwrap().to_json().render_pretty();
        let first = run_study(&cfg).unwrap();
        assert_eq!(first.journal_loaded, 0);
        assert!(first.degraded.is_empty());
        assert_eq!(first.to_json().render_pretty(), reference);
        // … publishes one entry per cell …
        let entries = || {
            let mut names: Vec<String> = std::fs::read_dir(&dir)
                .unwrap()
                .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
                .collect();
            names.sort();
            names
        };
        assert_eq!(entries().len(), cfg.cell_count());
        // … and a full re-run resumes every cell, byte-identical, with no
        // warmups at all.
        let resumed = run_study(&cfg).unwrap();
        assert_eq!(resumed.journal_loaded, cfg.cell_count());
        assert_eq!(resumed.warmups_performed, 0);
        assert_eq!(resumed.to_json().render_pretty(), reference);
        // A *partial* journal (as a SIGKILL mid-sweep leaves behind)
        // resumes what it has and re-runs the rest — still byte-identical.
        for name in entries().iter().step_by(2) {
            std::fs::remove_file(dir.join(name)).unwrap();
        }
        let kept = entries().len();
        let partial = run_study(&cfg).unwrap();
        assert_eq!(partial.journal_loaded, kept);
        assert!(partial.degraded.is_empty());
        assert_eq!(partial.to_json().render_pretty(), reference);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_journal_entries_degrade_and_rerun() {
        let dir =
            std::env::temp_dir().join(format!("smt-exp-study-journal-rot-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cfg = StudyConfig {
            journal: Some(dir.clone()),
            ..tiny_study()
        };
        let first = run_study(&cfg).unwrap();
        // Bit-rot one entry; the resumed sweep must not trust it.
        let mut names: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        names.sort();
        let victim = &names[0];
        let mut bytes = std::fs::read(victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(victim, &bytes).unwrap();
        let resumed = run_study(&cfg).unwrap();
        assert_eq!(resumed.journal_loaded, cfg.cell_count() - 1);
        assert_eq!(resumed.degraded.len(), 1);
        assert_eq!(resumed.degraded[0].reason, DegradeReason::JournalRead);
        assert!(resumed.degraded[0].detail.contains("cell re-run"));
        // The re-run cell reproduced the identical result.
        for (a, b) in first.cells.iter().zip(resumed.cells.iter()) {
            assert_eq!(a.report, b.report);
        }
        assert!(resumed.failed.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_keys_do_not_collide_across_sweep_shapes() {
        // Two sweeps differing only in measured length share a journal
        // directory without poisoning each other: the cycle counts are
        // part of every key.
        let dir = std::env::temp_dir().join(format!(
            "smt-exp-study-journal-shapes-{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let short = StudyConfig {
            journal: Some(dir.clone()),
            ..tiny_study()
        };
        let long = StudyConfig {
            cycles: short.cycles + 100,
            ..short.clone()
        };
        run_study(&short).unwrap();
        let other = run_study(&long).unwrap();
        assert_eq!(
            other.journal_loaded, 0,
            "a different sweep shape resumed foreign entries"
        );
        // Both populations coexist; re-running either resumes fully.
        assert_eq!(
            run_study(&short).unwrap().journal_loaded,
            short.cell_count()
        );
        assert_eq!(run_study(&long).unwrap().journal_loaded, long.cell_count());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unloadable_workloads_fail_their_cells_only() {
        // A mix naming a file that does not exist must not abort the
        // sweep: its cells become typed `workload` failures and every
        // other cell is byte-identical to a sweep without the bad mix.
        let good = tiny_study();
        let cfg = StudyConfig {
            mixes: vec!["mixed4".into(), "riscv:/nonexistent/nope.elf".into()],
            ..good.clone()
        };
        let study = run_study(&cfg).unwrap();
        let per_mix = cfg.cell_count() / cfg.mixes.len();
        assert_eq!(study.failed.len(), per_mix);
        assert_eq!(study.cells.len(), per_mix);
        for f in &study.failed {
            assert_eq!(f.error.kind, CellErrorKind::Workload);
            assert_eq!(f.mix, "riscv:/nonexistent/nope.elf");
            assert!(f.error.message.contains("nope.elf"), "{}", f.error.message);
        }
        let reference = run_study(&good).unwrap();
        for (a, b) in reference.cells.iter().zip(study.cells.iter()) {
            assert_eq!(a.report, b.report, "a failing mix perturbed a healthy cell");
        }
        // The document carries the failures and still parses.
        let back = Json::parse(&study.to_json().render_pretty()).unwrap();
        let failed = back.get("failed_cells").and_then(Json::as_array).unwrap();
        assert_eq!(failed.len(), per_mix);
        assert_eq!(
            failed[0]
                .get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str),
            Some("workload")
        );
    }

    #[test]
    fn study_json_round_trips_and_carries_summary() {
        let study = run_study(&tiny_study()).unwrap();
        let doc = study.to_json();
        let text = doc.render_pretty();
        let back = Json::parse(&text).expect("study JSON must parse");
        assert_eq!(
            back.get("schema_version").and_then(Json::as_u64),
            Some(JSON_SCHEMA_VERSION)
        );
        assert_eq!(
            back.get("kind").and_then(Json::as_str),
            Some("smt-exp-study")
        );
        let cells = back.get("cells").and_then(Json::as_array).unwrap();
        assert_eq!(cells.len(), study.cells.len());
        // The v4 fault lists are always present — and empty on a clean run.
        for list in ["failed_cells", "degraded_cells"] {
            let entries = back.get(list).and_then(Json::as_array).unwrap();
            assert!(entries.is_empty(), "{list} not empty on a fault-free run");
        }
        let summary = back.get("summary").unwrap();
        assert!(summary
            .get("issue_ipc_spread")
            .and_then(Json::as_f64)
            .is_some());
        assert_eq!(
            summary.get("baseline_issue").and_then(Json::as_str),
            Some(BASELINE_ISSUE)
        );
        // The table renders one row per (fetch, partition, mix, seed).
        let table = study.summary_table().to_string();
        assert!(table.contains("OLDEST_FIRST"));
        assert!(table.contains("SPEC_LAST"));
    }
}
